// Evolving truth: a streaming campaign where the sensed phenomenon drifts
// over time (afternoon Wi-Fi congestion degrading a POI's signal). The
// Online estimator follows the drift while a batch aggregate over the full
// history lags behind.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sybiltd"
)

func main() {
	const numTasks = 3
	// The true signal at task 0 degrades by 1.5 dB per round; the others
	// are stable.
	base := []float64{-60, -72, -80}
	drift := []float64{-1.5, 0, 0}

	online, err := sybiltd.NewOnline(numTasks, sybiltd.OnlineConfig{Decay: 0.6})
	if err != nil {
		log.Fatalf("evolvingtruth: %v", err)
	}
	rng := rand.New(rand.NewSource(5))

	// cumulative keeps every report ever made, to contrast the batch view.
	type report struct {
		task  int
		value float64
	}
	var history []report

	fmt.Println("round  true(T1)  online(T1)  batch-mean(T1)")
	for round := 0; round < 10; round++ {
		truthNow := make([]float64, numTasks)
		for j := range truthNow {
			truthNow[j] = base[j] + drift[j]*float64(round)
		}
		for u := 0; u < 5; u++ {
			account := fmt.Sprintf("user%d", u+1)
			for j := 0; j < numTasks; j++ {
				v := truthNow[j] + rng.NormFloat64()
				if err := online.Observe(account, j, v); err != nil {
					log.Fatalf("evolvingtruth: observe: %v", err)
				}
				history = append(history, report{task: j, value: v})
			}
		}
		est := online.Estimate()

		var batchSum float64
		var batchN int
		for _, r := range history {
			if r.task == 0 {
				batchSum += r.value
				batchN++
			}
		}
		fmt.Printf("%5d  %8.2f  %10.2f  %14.2f\n",
			round, truthNow[0], est[0], batchSum/float64(batchN))
		online.Tick()
	}
	fmt.Println("\nThe online estimate tracks the drifting truth; the batch mean")
	fmt.Println("over the full history trails it by several dB.")
}
