// Live dashboard: a city operations view over a streaming campaign whose
// phenomenon drifts while a Sybil burst hits mid-stream. The windowed
// Sybil-resistant framework tracks the drift and contains the burst, and
// the per-window uncertainty flags the low-evidence estimates a dashboard
// should grey out.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"sybiltd"
)

func main() {
	const task = 0
	base := time.Date(2026, 7, 4, 6, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(12))

	// Six hours of city noise at one junction: quiet dawn, rush hour,
	// midday lull. One fresh session account per (user, hour), as a real
	// app would create sensing sessions.
	truthAt := func(hour int) float64 {
		profile := []float64{52, 58, 71, 74, 66, 60}
		return profile[hour%len(profile)]
	}
	ds := sybiltd.NewDataset(1)
	for hour := 0; hour < 6; hour++ {
		for u := 0; u < 5; u++ {
			ds.AddAccount(sybiltd.Account{
				ID: fmt.Sprintf("u%d-h%d", u, hour),
				Observations: []sybiltd.Observation{{
					Task:  task,
					Value: truthAt(hour) + rng.NormFloat64()*1.2,
					Time:  base.Add(time.Duration(hour)*time.Hour + time.Duration(u*11)*time.Minute),
				}},
			})
		}
	}
	// A Sybil burst during rush hour (hour 2): six accounts claiming the
	// junction is quiet (45 dBA), 40 s apart, between the honest slots.
	for s := 0; s < 6; s++ {
		ds.AddAccount(sybiltd.Account{
			ID: fmt.Sprintf("burst-%d", s),
			Observations: []sybiltd.Observation{{
				Task:  task,
				Value: 45,
				Time:  base.Add(2*time.Hour + 30*time.Minute + time.Duration(s*40)*time.Second),
			}},
		})
	}

	windowed := sybiltd.Windowed{
		Algorithm: sybiltd.Framework{
			Grouper: sybiltd.AGTR{Phi: 0.05, TimeUnit: time.Hour},
		},
		Window: time.Hour,
	}
	series, err := windowed.Run(ds)
	if err != nil {
		log.Fatalf("livedashboard: %v", err)
	}
	naive := sybiltd.Windowed{Algorithm: sybiltd.Mean{}, Window: time.Hour}
	naiveSeries, err := naive.Run(ds)
	if err != nil {
		log.Fatalf("livedashboard: %v", err)
	}

	fmt.Println("hour  true dBA  naive mean  framework  accounts")
	for i, p := range series {
		hour := p.Start.Sub(base) / time.Hour
		flag := ""
		if int(hour) == 2 {
			flag = "  <- Sybil burst"
		}
		fmt.Printf("%4d  %8.1f  %10.1f  %9.1f  %8d%s\n",
			hour, truthAt(int(hour)), naiveSeries[i].Truths[task], p.Truths[task], p.Accounts, flag)
	}

	// Uncertainty on the full-campaign batch estimate.
	res, err := (sybiltd.Framework{Grouper: sybiltd.AGTR{Phi: 0.05, TimeUnit: time.Hour}}).Run(ds)
	if err != nil {
		log.Fatalf("livedashboard: %v", err)
	}
	unc, err := sybiltd.Uncertainty(ds, res)
	if err != nil {
		log.Fatalf("livedashboard: %v", err)
	}
	if !math.IsNaN(unc[task]) {
		fmt.Printf("\nwhole-campaign estimate %.1f dBA ± %.1f (1 s.e.) — wide, because the\n", res.Truths[task], unc[task])
		fmt.Println("level genuinely moved during the day; the windowed view above is the")
		fmt.Println("right lens for an evolving phenomenon.")
	}
}
