// Attack analysis: how many accounts does a Sybil attacker need before
// plain truth discovery caves, and does the framework hold? Sweeps the
// attacker's account count and prints the aggregation error of CRH vs the
// framework, plus the attacker's "success" (how far the estimate moved
// toward the fabrication target).
package main

import (
	"fmt"
	"log"
	"math"

	"sybiltd"
)

func main() {
	const target = -50.0
	fmt.Println("accounts  CRH-MAE  TD-TR-MAE  CRH-pull%  TD-TR-pull%")
	for _, accounts := range []int{1, 2, 3, 5, 8, 12} {
		sc, err := sybiltd.BuildScenario(sybiltd.ScenarioConfig{
			Seed:            21,
			LegitActiveness: 0.5,
			Attackers: []sybiltd.AttackProfile{{
				Kind:        sybiltd.AttackII,
				NumAccounts: accounts,
				NumDevices:  2,
				Activeness:  0.8,
				Strategy:    sybiltd.FabricateStrategy{Target: target},
			}},
		})
		if err != nil {
			log.Fatalf("attackanalysis: %v", err)
		}

		crh, err := sybiltd.CRH{}.Run(sc.Dataset)
		if err != nil {
			log.Fatalf("attackanalysis: CRH: %v", err)
		}
		fw := sybiltd.Framework{Grouper: sybiltd.AGTR{Phi: 0.3}}
		res, err := fw.Run(sc.Dataset)
		if err != nil {
			log.Fatalf("attackanalysis: framework: %v", err)
		}

		fmt.Printf("%8d  %7.2f  %9.2f  %8.0f%%  %10.0f%%\n",
			accounts,
			mae(crh.Truths, sc.GroundTruth),
			mae(res.Truths, sc.GroundTruth),
			pullToward(crh.Truths, sc.GroundTruth, target),
			pullToward(res.Truths, sc.GroundTruth, target),
		)
	}
	fmt.Println("\npull% = how far the estimate moved from the truth toward the")
	fmt.Println("attacker's -50 dBm target, averaged over attacked tasks.")
}

func mae(estimates, truth []float64) float64 {
	var sum float64
	var n int
	for j, v := range estimates {
		if math.IsNaN(v) {
			continue
		}
		sum += math.Abs(v - truth[j])
		n++
	}
	return sum / float64(n)
}

// pullToward measures attack success: 0% means the estimate equals the
// truth, 100% means it reached the fabrication target.
func pullToward(estimates, truth []float64, target float64) float64 {
	var sum float64
	var n int
	for j, v := range estimates {
		if math.IsNaN(v) {
			continue
		}
		gap := target - truth[j]
		if math.Abs(gap) < 1 {
			continue
		}
		frac := (v - truth[j]) / gap
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		sum += frac
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}
