// Noise mapping: a participatory urban-noise campaign (the Ear-Phone
// scenario the paper's introduction cites) built by hand against the
// public API. A rapacious Sybil attacker duplicates one real measurement
// from several accounts to farm rewards; the framework with the combined
// grouping method (the paper's future-work extension) neutralizes it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"sybiltd"
)

func main() {
	const numTasks = 6 // street corners with noise-level (dBA) sensing tasks
	trueLevels := []float64{68, 72, 81, 64, 76, 70}
	rng := rand.New(rand.NewSource(11))
	start := time.Date(2026, 7, 5, 8, 0, 0, 0, time.UTC)

	ds := sybiltd.NewDataset(numTasks)

	// Six honest residents each measure a few corners on their commute.
	for u := 0; u < 6; u++ {
		walkStart := start.Add(time.Duration(u*13) * time.Minute)
		var obs []sybiltd.Observation
		for j := 0; j < numTasks; j++ {
			if rng.Float64() < 0.4 {
				continue // not on this resident's route
			}
			obs = append(obs, sybiltd.Observation{
				Task:  j,
				Value: trueLevels[j] + rng.NormFloat64()*1.5,
				Time:  walkStart.Add(time.Duration(j*4) * time.Minute),
			})
		}
		if len(obs) < 2 {
			obs = append(obs, sybiltd.Observation{Task: 0, Value: trueLevels[0] + rng.NormFloat64()*1.5, Time: walkStart},
				sybiltd.Observation{Task: 1, Value: trueLevels[1] + rng.NormFloat64()*1.5, Time: walkStart.Add(4 * time.Minute)})
		}
		ds.AddAccount(sybiltd.Account{ID: fmt.Sprintf("resident%d", u+1), Observations: obs})
	}

	// A rapacious attacker walks the route once, then resubmits the same
	// readings from four extra accounts (duplicate strategy, Attack-I).
	attackerWalk := start.Add(40 * time.Minute)
	measured := make([]float64, numTasks)
	for j := range measured {
		measured[j] = trueLevels[j] + rng.NormFloat64()*1.5 + 6 // cheap sensor bias
	}
	strategy := sybiltd.DuplicateStrategy{JitterSigma: 0.3}
	for s := 0; s < 5; s++ {
		var obs []sybiltd.Observation
		for j := 0; j < numTasks; j++ {
			obs = append(obs, sybiltd.Observation{
				Task:  j,
				Value: strategy.Fabricate(trueLevels[j], measured[j], s, rng),
				Time:  attackerWalk.Add(time.Duration(j*4)*time.Minute + time.Duration(s*50)*time.Second),
			})
		}
		ds.AddAccount(sybiltd.Account{ID: fmt.Sprintf("farm%d", s+1), Observations: obs})
	}

	// Combine task-set and trajectory evidence (paper §IV-C Remarks).
	combo := sybiltd.Combo{
		Members: []sybiltd.Grouper{sybiltd.AGTS{}, sybiltd.AGTR{Phi: 0.3}},
		Mode:    sybiltd.CombineUnion,
	}

	for _, alg := range []sybiltd.Algorithm{
		sybiltd.Mean{},
		sybiltd.CRH{},
		sybiltd.Framework{Grouper: combo},
	} {
		res, err := alg.Run(ds)
		if err != nil {
			log.Fatalf("noisemapping: %s: %v", alg.Name(), err)
		}
		var sum float64
		var n int
		for j, v := range res.Truths {
			if math.IsNaN(v) {
				continue
			}
			sum += math.Abs(v - trueLevels[j])
			n++
		}
		fmt.Printf("%-28s MAE = %.2f dBA\n", alg.Name(), sum/float64(n))
	}

	g, err := combo.Group(ds)
	if err != nil {
		log.Fatalf("noisemapping: group: %v", err)
	}
	fmt.Println("\nsuspicious groups (the reward farm):")
	for _, members := range g.Groups {
		if len(members) < 2 {
			continue
		}
		ids := make([]string, len(members))
		for i, m := range members {
			ids[i] = ds.Accounts[m].ID
		}
		fmt.Printf("  %v\n", ids)
	}
}
