// Quickstart: run plain truth discovery and the Sybil-resistant framework
// on the paper's Table I example and watch the attack succeed and fail.
package main

import (
	"fmt"
	"log"

	"sybiltd"
)

func main() {
	// The paper's running example: 4 Wi-Fi measurement tasks, 3 honest
	// users, and a Sybil attacker submitting -50 dBm from accounts
	// 4', 4'', 4''' to fake a strong signal at tasks 1, 3, and 4.
	ds := sybiltd.PaperExampleWithSybil()

	// Plain truth discovery (CRH) believes the attacker.
	crh, err := sybiltd.CRH{}.Run(ds)
	if err != nil {
		log.Fatalf("quickstart: CRH: %v", err)
	}

	// The Sybil-resistant framework groups the attacker's accounts by
	// trajectory (they performed the same tasks seconds apart) and treats
	// the group as one voice.
	fw := sybiltd.Framework{Grouper: sybiltd.AGTR{Mode: 2 /* absolute-cost DTW, matches the paper's example */}}
	resistant, err := fw.Run(ds)
	if err != nil {
		log.Fatalf("quickstart: framework: %v", err)
	}

	honest, err := sybiltd.CRH{}.Run(sybiltd.PaperExampleHonest())
	if err != nil {
		log.Fatalf("quickstart: honest baseline: %v", err)
	}

	fmt.Println("task  honest-CRH  CRH-under-attack  framework-under-attack")
	for j := range crh.Truths {
		fmt.Printf("T%d    %8.2f    %12.2f      %12.2f\n",
			j+1, honest.Truths[j], crh.Truths[j], resistant.Truths[j])
	}
	fmt.Println("\nCRH swings T1/T3/T4 toward the fabricated -50 dBm;")
	fmt.Println("the framework stays near the honest estimates.")
}
