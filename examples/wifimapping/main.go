// Wi-Fi mapping: the paper's evaluation scenario end to end — a synthetic
// campus campaign measuring Wi-Fi signal strength at 10 POIs with 8 honest
// volunteers and two Sybil attackers (Attack-I and Attack-II), aggregated
// with CRH and with the framework under each grouping method.
package main

import (
	"fmt"
	"log"
	"math"

	"sybiltd"
)

func main() {
	sc, err := sybiltd.BuildScenario(sybiltd.ScenarioConfig{
		Seed:            7,
		NumTasks:        10,
		NumLegit:        8,
		LegitActiveness: 0.5,
		SybilActiveness: 0.8,
	})
	if err != nil {
		log.Fatalf("wifimapping: build scenario: %v", err)
	}
	fmt.Printf("campaign: %d tasks, %d accounts (%d of them Sybil)\n\n",
		sc.Dataset.NumTasks(), sc.Dataset.NumAccounts(), len(sc.SybilAccounts))

	algorithms := []sybiltd.Algorithm{
		sybiltd.CRH{},
		sybiltd.Framework{Grouper: sybiltd.AGFP{}},
		sybiltd.Framework{Grouper: sybiltd.AGTS{}},
		sybiltd.Framework{Grouper: sybiltd.AGTR{Phi: 0.3}},
	}

	fmt.Println("method  MAE(dB)  iterations")
	for _, alg := range algorithms {
		res, err := alg.Run(sc.Dataset)
		if err != nil {
			log.Fatalf("wifimapping: %s: %v", alg.Name(), err)
		}
		mae := maeOf(res.Truths, sc.GroundTruth)
		fmt.Printf("%-7s %7.2f  %d\n", alg.Name(), mae, res.Iterations)
	}

	// Show the grouping quality of the best method.
	g, err := (sybiltd.AGTR{Phi: 0.3}).Group(sc.Dataset)
	if err != nil {
		log.Fatalf("wifimapping: grouping: %v", err)
	}
	ari, err := sybiltd.AdjustedRandIndex(sc.TrueGrouping(), g.Labels(sc.Dataset.NumAccounts()))
	if err != nil {
		log.Fatalf("wifimapping: ARI: %v", err)
	}
	fmt.Printf("\nAG-TR grouping ARI vs true account owners: %.2f\n", ari)
	fmt.Println("groups found:")
	for _, members := range g.Groups {
		if len(members) < 2 {
			continue
		}
		ids := make([]string, len(members))
		for i, m := range members {
			ids[i] = sc.Dataset.Accounts[m].ID
		}
		fmt.Printf("  %v\n", ids)
	}
}

func maeOf(estimates, truth []float64) float64 {
	var sum float64
	var n int
	for j, v := range estimates {
		if math.IsNaN(v) {
			continue
		}
		sum += math.Abs(v - truth[j])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
