module sybiltd

go 1.22
