GO ?= go

.PHONY: build test race vet fmt verify bench bench-ingest bench-stream fuzz recovery chaos stream shard replication reshard shrink

build:
	$(GO) build ./...

# Fails when any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Runs the full suite under the race detector; the parallel grouping,
# clustering, and experiment paths all spawn worker pools, so this is the
# tier-1 verification for any change touching them.
race:
	$(GO) test -race ./...

# Crash-recovery and fault-injection suite under the race detector: the
# WAL corruption table, the injected write/fsync failures, and the
# crash-at-every-byte-offset torture test (which strides offsets under
# -short; this target runs it exhaustively).
recovery:
	$(GO) test -race -run 'WAL|Durable|Recovery|Torture|Crash|Fsync|Snapshot|Scan|Reset|ShortWrite|RoundTrip|OpenRepairs|FailSync|AppendBatch|GroupCommit' ./internal/wal ./internal/platform

# Overload-protection and chaos suite under the race detector: the fault
# injector's campaign (drops, 5xx/429 bursts, torn bodies) with the
# zero-acknowledged-loss check, the admission gate / rate limiter / client
# breaker state machines, retry semantics (Retry-After honored, semantic
# 4xx never retried), and graceful degradation of the framework under
# cancelled grouping.
chaos:
	$(GO) test -race -run 'Chaos|Overload|Breaker|Gate|AccountLimiter|RateLimit|RetryAfter|Retry|Degrad|Ctx|Draining|RequestDeadline|ZeroLimits|AllowN|Jitter|DrainBounded|SubmitBatch' ./internal/chaos ./internal/platform ./internal/core ./internal/parallel

# Streaming-truth suite under the race detector: end-to-end on-change
# delivery over the watch route, latest-wins coalescing and backpressure
# (hub-level and over a saturated socket), the flusher and
# timeout-exemption regressions, subscriber churn goroutine-leak checks,
# and the online estimator's pruning bound.
stream:
	$(GO) test -race -run 'Watch|Stream|Flusher|Online' ./internal/platform ./internal/truth

# Sharded-platform suite under the race detector: the consistent-hash
# ring, shard-aware batch splitting, scatter-gather reads and their
# degradation policy, the router's wire-API and aggregated /readyz, the
# Store interface suite over LocalStore and RemoteStore, the wire-code
# conformance table, the exported-API snapshot, and the 3-shard
# kill-and-recover chaos campaign.
shard:
	$(GO) test -race -run 'Ring|Shard|Router|Remote|Readyz|StoreSuite|WireCode|APISnapshot|ExportedAPI|ChaosSharded' ./internal/platform/...

# Replication-and-failover suite under the race detector: WAL frame
# shipping (idempotent replay, sequence gaps, CRC refusal, epoch rules),
# semi-sync ack redundancy, follower catch-up from the WAL tail, the
# router's failover poller (jittered probes, promotion, demotion of a
# returning stale primary), read fallback to followers, the typed
# unimplemented wire code, and the replicated primary-kill chaos campaign.
replication:
	$(GO) test -race -run 'Repl|Failover|Follower|SemiSync|Promotion|Unimplemented|Flapping|ChaosReplicated|ApplyShip|ShardHealth' ./internal/platform/...

# Online-resharding suite under the race detector: the minimal-delta ring
# property, the stale-ring-version fence on the wire, the wrong_shard
# client re-route (no breaker burn, no retry-budget burn), writes raced
# against the cutover, clean pre-flip aborts, journal resume on either
# side of the flip, and the kill-mid-migration chaos campaign with the
# zero-acked-loss check.
reshard:
	$(GO) test -race -run 'Reshard|RingMovedDelta|Migration|WrongShard' ./internal/platform/...

# Ring-shrink and rebalance suite under the race detector: weighted-vnode
# ring properties (movement proportional to the weight delta; shrink moves
# only the retired group's keys), the live decommission end to end with
# donor purge, rebalance end to end, shrink journal resume on either side
# of the flip, corrupted/empty-journal recovery, the persisted ring-version
# floor, the purge-survives-restart WAL replay check, and the
# kill-survivor-primary-mid-decommission chaos campaign.
shrink:
	$(GO) test -race -run 'Shrink|Decommission|Rebalance|RingWeighted|RingFloor|JournalCorrupt|Purge' ./internal/platform/...

verify: build fmt vet test race recovery chaos stream shard replication reshard shrink

# Regenerates every paper table/figure plus the ablations and the parallel
# grouping scaling benchmark (see EXPERIMENTS.md for a curated run).
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDistance -fuzztime=30s ./internal/dtw/

# Ingestion throughput benchmark: 32 concurrent submitters against a
# durable store, per-record fsync vs group commit vs batched submits,
# plus the sharded variant routing the same load across 1/2/4 durable
# shards. Emits the raw test2json stream to BENCH_ingest.json for trend
# tracking; the human-readable table goes to stdout as usual.
bench-ingest:
	$(GO) test -run '^$$' -bench BenchmarkIngest -benchtime=2s -json ./internal/platform/... | tee BENCH_ingest.json | \
		grep -o '"Output":".*acked-submits/sec[^"]*"' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n"//' || true

# Truth-stream fan-out benchmark: pushed updates/sec and latest-wins drop
# rate at 1, 100, and 1000 draining subscribers. Emits the raw test2json
# stream to BENCH_stream.json for trend tracking, mirroring bench-ingest.
bench-stream:
	$(GO) test -run '^$$' -bench BenchmarkStream -benchtime=2s -json ./internal/platform/ | tee BENCH_stream.json | \
		grep -o '"Output":".*pushed-updates/sec[^"]*"' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n"//' || true
