GO ?= go

.PHONY: build test race vet fmt verify bench fuzz recovery

build:
	$(GO) build ./...

# Fails when any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Runs the full suite under the race detector; the parallel grouping,
# clustering, and experiment paths all spawn worker pools, so this is the
# tier-1 verification for any change touching them.
race:
	$(GO) test -race ./...

# Crash-recovery and fault-injection suite under the race detector: the
# WAL corruption table, the injected write/fsync failures, and the
# crash-at-every-byte-offset torture test (which strides offsets under
# -short; this target runs it exhaustively).
recovery:
	$(GO) test -race -run 'WAL|Durable|Recovery|Torture|Crash|Fsync|Snapshot|Scan|Reset|ShortWrite|RoundTrip|OpenRepairs|FailSync' ./internal/wal ./internal/platform

verify: build fmt vet test race recovery

# Regenerates every paper table/figure plus the ablations and the parallel
# grouping scaling benchmark (see EXPERIMENTS.md for a curated run).
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDistance -fuzztime=30s ./internal/dtw/
