package sybiltd_test

import (
	"math"
	"testing"
	"time"

	"sybiltd"
)

func TestFacadeEndToEnd(t *testing.T) {
	// The full public-API path: build a scenario, run CRH and the
	// framework, compare accuracy.
	sc, err := sybiltd.BuildScenario(sybiltd.ScenarioConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	crhRes, err := sybiltd.CRH{}.Run(sc.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	fw := sybiltd.Framework{Grouper: sybiltd.AGTR{Phi: 0.3}}
	fwRes, err := fw.Run(sc.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	maeOf := func(r sybiltd.Result) float64 {
		var est, gt []float64
		for j, v := range r.Truths {
			if !math.IsNaN(v) {
				est = append(est, v)
				gt = append(gt, sc.GroundTruth[j])
			}
		}
		m, err := sybiltd.MAE(est, gt)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if maeOf(fwRes) >= maeOf(crhRes) {
		t.Errorf("framework MAE %.2f should beat CRH %.2f", maeOf(fwRes), maeOf(crhRes))
	}
}

func TestFacadeGroupingAndARI(t *testing.T) {
	ds := sybiltd.PaperExampleWithSybil()
	g, err := sybiltd.AGTR{Mode: 2 /* TRAbsolute */}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	labels := g.Labels(ds.NumAccounts())
	want := []int{0, 1, 2, 3, 3, 3}
	ari, err := sybiltd.AdjustedRandIndex(want, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Errorf("ARI = %v, want 1 on the walkthrough", ari)
	}
}

func TestFacadeManualDataset(t *testing.T) {
	ds := sybiltd.NewDataset(2)
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	ds.AddAccount(sybiltd.Account{ID: "alice", Observations: []sybiltd.Observation{
		{Task: 0, Value: 10, Time: base},
		{Task: 1, Value: 20, Time: base.Add(time.Minute)},
	}})
	ds.AddAccount(sybiltd.Account{ID: "bob", Observations: []sybiltd.Observation{
		{Task: 0, Value: 12, Time: base.Add(2 * time.Minute)},
	}})
	res, err := sybiltd.Median{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 11 || res.Truths[1] != 20 {
		t.Errorf("truths = %v", res.Truths)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := sybiltd.ExperimentIDs()
	if len(ids) != 15 {
		t.Fatalf("experiment count = %d, want 15", len(ids))
	}
	if _, ok := sybiltd.Experiments()["fig7"]; !ok {
		t.Error("fig7 missing from registry")
	}
}

func TestFacadeComboGrouper(t *testing.T) {
	ds := sybiltd.PaperExampleWithSybil()
	combo := sybiltd.Combo{
		Members: []sybiltd.Grouper{sybiltd.AGTS{}, sybiltd.AGTR{Mode: 2}},
		Mode:    sybiltd.CombineIntersect,
	}
	g, err := combo.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 4 {
		t.Errorf("combo groups = %v", g.Groups)
	}
}

func TestFacadeWindowedAndUncertainty(t *testing.T) {
	ds := sybiltd.NewDataset(1)
	base := time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC)
	for i, v := range []float64{5, 5.2, 4.9} {
		ds.AddAccount(sybiltd.Account{ID: string(rune('a' + i)), Observations: []sybiltd.Observation{
			{Task: 0, Value: v, Time: base.Add(time.Duration(i) * time.Minute)},
		}})
	}
	res, err := sybiltd.CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	unc, err := sybiltd.Uncertainty(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if unc[0] <= 0 || unc[0] > 1 {
		t.Errorf("uncertainty = %v", unc[0])
	}
	w := sybiltd.Windowed{Algorithm: sybiltd.Median{}, Window: time.Hour}
	series, err := w.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || math.Abs(series[0].Truths[0]-5) > 0.5 {
		t.Errorf("series = %+v", series)
	}
}

// facadeObserver records the callbacks a Framework run emits through the
// re-exported Observer interface.
type facadeObserver struct {
	stages     []string
	iterations int
}

func (o *facadeObserver) SpanStart(string)                     {}
func (o *facadeObserver) SpanEnd(name string, _ time.Duration) { o.stages = append(o.stages, name) }
func (o *facadeObserver) Iteration(string, int, float64)       { o.iterations++ }

func TestFacadeObservability(t *testing.T) {
	ds := sybiltd.PaperExampleWithSybil()
	obsv := &facadeObserver{}
	fw := sybiltd.Framework{
		Grouper: sybiltd.AGTR{Mode: 2 /* TRAbsolute */, Phi: 1},
		Config:  sybiltd.FrameworkConfig{Observer: obsv},
	}
	runsBefore := sybiltd.Metrics().Counter("framework.runs").Value()
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(obsv.stages) != 3 {
		t.Errorf("stages = %v, want grouping/group_aggregation/truth_loop", obsv.stages)
	}
	if obsv.iterations != res.Iterations {
		t.Errorf("observer saw %d iterations, result says %d", obsv.iterations, res.Iterations)
	}
	// The library instrumented itself against the shared registry.
	if got := sybiltd.Metrics().Counter("framework.runs").Value(); got != runsBefore+1 {
		t.Errorf("framework.runs = %d, want %d", got, runsBefore+1)
	}
	// The snapshot is a plain value usable without importing internals.
	var snap sybiltd.MetricsSnapshot = sybiltd.Metrics().Snapshot()
	if len(snap.Counters) == 0 {
		t.Error("snapshot has no counters after a framework run")
	}
}
