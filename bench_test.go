package sybiltd_test

// One benchmark per table/figure of the paper (see DESIGN.md's
// per-experiment index), plus ablation benches for the design choices the
// reproduction had to make. Each benchmark executes the experiment that
// regenerates the corresponding artifact; the first iteration of each
// prints the regenerated rows/series so that
// `go test -bench=. -benchmem` leaves a full copy of the paper's
// evaluation in its output (EXPERIMENTS.md records a curated run).

import (
	"fmt"

	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"sybiltd"
	"sybiltd/internal/core"
	"sybiltd/internal/experiment"
	"sybiltd/internal/grouping"
	"sybiltd/internal/simulate"
	"sybiltd/internal/truth"
)

// printOnce renders an experiment's tables to stdout the first time a
// benchmark runs, so bench output doubles as the regenerated evaluation.
var printedExperiments sync.Map

func printOnce(b *testing.B, id string, tables []*experiment.Table) {
	b.Helper()
	if _, loaded := printedExperiments.LoadOrStore(id, true); loaded {
		return
	}
	fmt.Printf("\n===== %s =====\n", id)
	for _, t := range tables {
		t.Render(os.Stdout)
		fmt.Println()
	}
}

func BenchmarkTable1Vulnerability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "table1", r.Tables())
		}
	}
}

func BenchmarkFig2AGFPExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig2(2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig2", r.Tables())
		}
	}
}

func BenchmarkFig3AGTSExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig3", r.Tables())
		}
	}
}

func BenchmarkFig4AGTRExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig4", r.Tables())
		}
	}
}

// benchSweep keeps the per-iteration cost of the Fig. 6/7 benches sane
// while preserving the axes the paper reports.
func benchSweep() experiment.SweepConfig {
	return experiment.SweepConfig{
		LegitActiveness: []float64{0.2, 0.5, 1.0},
		SybilActiveness: []float64{0.2, 0.6, 1.0},
		Trials:          2,
		Seed:            5,
	}
}

func BenchmarkFig6ARIComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig6(benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig6", r.Tables())
		}
	}
}

func BenchmarkFig7MAEComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig7(benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig7", r.Tables())
		}
	}
}

func BenchmarkFig8FingerprintCenters(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig8(8, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig8", r.Tables())
		}
	}
}

func BenchmarkTable4Inventory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiment.Table4()
		if i == 0 {
			printOnce(b, "table4", r.Tables())
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationGroupAggregator compares the three readings of the
// degenerate Eq. (3) (see DESIGN.md errata): framework MAE under each
// group-aggregation strategy on the same attacked campaign.
func BenchmarkAblationGroupAggregator(b *testing.B) {
	sc, err := simulate.Build(simulate.Config{Seed: 3, SybilActiveness: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	for _, agg := range []core.Aggregator{core.AggregateMean, core.AggregateMedian, core.AggregateInverseDeviation} {
		b.Run(agg.String(), func(b *testing.B) {
			fw := core.Framework{
				Grouper: grouping.AGTR{Phi: 0.3},
				Config:  core.Config{Aggregator: agg},
			}
			b.ReportAllocs()
			var lastMAE float64
			for i := 0; i < b.N; i++ {
				res, err := fw.Run(sc.Dataset)
				if err != nil {
					b.Fatal(err)
				}
				mae, err := experiment.MAEAgainstTruth(res.Truths, sc.GroundTruth)
				if err != nil {
					b.Fatal(err)
				}
				lastMAE = mae
			}
			b.ReportMetric(lastMAE, "MAE-dB")
		})
	}
}

// BenchmarkAblationAGTRThreshold sweeps the Eq. (8) threshold φ, reporting
// grouping ARI, to document the sensitivity the paper's Remarks discuss.
func BenchmarkAblationAGTRThreshold(b *testing.B) {
	sc, err := simulate.Build(simulate.Config{Seed: 3, SybilActiveness: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	want := sc.TrueGrouping()
	for _, phi := range []float64{0.05, 0.15, 0.3, 0.6, 1.2} {
		b.Run(fmt.Sprintf("phi=%.2f", phi), func(b *testing.B) {
			b.ReportAllocs()
			var lastARI float64
			for i := 0; i < b.N; i++ {
				g, err := (grouping.AGTR{Phi: phi}).Group(sc.Dataset)
				if err != nil {
					b.Fatal(err)
				}
				ari, err := sybiltd.AdjustedRandIndex(want, g.Labels(sc.Dataset.NumAccounts()))
				if err != nil {
					b.Fatal(err)
				}
				lastARI = ari
			}
			b.ReportMetric(lastARI, "ARI")
		})
	}
}

// BenchmarkAblationAGTSThreshold sweeps the Eq. (6) threshold ρ.
func BenchmarkAblationAGTSThreshold(b *testing.B) {
	sc, err := simulate.Build(simulate.Config{Seed: 3, SybilActiveness: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	want := sc.TrueGrouping()
	for _, rho := range []float64{0.25, 0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			b.ReportAllocs()
			var lastARI float64
			for i := 0; i < b.N; i++ {
				g, err := (grouping.AGTS{Rho: rho}).Group(sc.Dataset)
				if err != nil {
					b.Fatal(err)
				}
				ari, err := sybiltd.AdjustedRandIndex(want, g.Labels(sc.Dataset.NumAccounts()))
				if err != nil {
					b.Fatal(err)
				}
				lastARI = ari
			}
			b.ReportMetric(lastARI, "ARI")
		})
	}
}

// BenchmarkAblationElbowVsFixedK compares AG-FP with the elbow method
// against a fixed oracle k (the true device count), isolating how much of
// AG-FP's error is k-selection.
func BenchmarkAblationElbowVsFixedK(b *testing.B) {
	sc, err := simulate.Build(simulate.Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	want := sc.TrueGrouping()
	devSet := map[int]bool{}
	for _, d := range sc.DeviceLabels {
		devSet[d] = true
	}
	cases := []struct {
		name string
		g    grouping.Grouper
	}{
		{"elbow", grouping.AGFP{}},
		{"silhouette", grouping.AGFP{UseSilhouette: true}},
		{"oracle-k", grouping.AGFP{FixedK: len(devSet)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var lastARI float64
			for i := 0; i < b.N; i++ {
				g, err := tc.g.Group(sc.Dataset)
				if err != nil {
					b.Fatal(err)
				}
				ari, err := sybiltd.AdjustedRandIndex(want, g.Labels(sc.Dataset.NumAccounts()))
				if err != nil {
					b.Fatal(err)
				}
				lastARI = ari
			}
			b.ReportMetric(lastARI, "ARI")
		})
	}
}

// BenchmarkAblationCombo compares the combined grouper modes (future work)
// against the individual methods.
func BenchmarkAblationCombo(b *testing.B) {
	sc, err := simulate.Build(simulate.Config{Seed: 3, SybilActiveness: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	want := sc.TrueGrouping()
	members := []grouping.Grouper{grouping.AGFP{}, grouping.AGTS{}, grouping.AGTR{Phi: 0.3}}
	cases := []struct {
		name string
		g    grouping.Grouper
	}{
		{"AG-FP", members[0]},
		{"AG-TS", members[1]},
		{"AG-TR", members[2]},
		{"combo-intersect", grouping.Combo{Members: members, Mode: grouping.CombineIntersect}},
		{"combo-union", grouping.Combo{Members: members, Mode: grouping.CombineUnion}},
		{"combo-majority", grouping.Combo{Members: members, Mode: grouping.CombineMajority}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var lastARI float64
			for i := 0; i < b.N; i++ {
				g, err := tc.g.Group(sc.Dataset)
				if err != nil {
					b.Fatal(err)
				}
				ari, err := sybiltd.AdjustedRandIndex(want, g.Labels(sc.Dataset.NumAccounts()))
				if err != nil {
					b.Fatal(err)
				}
				lastARI = ari
			}
			b.ReportMetric(lastARI, "ARI")
		})
	}
}

// BenchmarkAGTRGrouping500 measures the parallel pairwise-distance engine
// on a 500-account synthetic campaign (490 legitimate users plus two
// default attackers with 5 accounts each): ~125k account pairs, each
// costing two DTW evaluations. The procs=1 case is the sequential path;
// higher procs fan the packed dissimilarity matrix out across workers with
// per-worker DTW buffers. The first iteration of each case cross-checks
// that the partitions are byte-identical regardless of parallelism.
func BenchmarkAGTRGrouping500(b *testing.B) {
	sc, err := simulate.Build(simulate.Config{Seed: 11, NumLegit: 490, SybilActiveness: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	if n := sc.Dataset.NumAccounts(); n < 500 {
		b.Fatalf("campaign has %d accounts, want >= 500", n)
	}
	grouper := grouping.AGTR{Phi: 0.3}
	var baseline grouping.Grouping
	var baselineSet bool
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := grouper.Group(sc.Dataset)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.StopTimer()
					if !baselineSet {
						baseline, baselineSet = g, true
					} else if !reflect.DeepEqual(baseline, g) {
						b.Fatalf("procs=%d partition differs from sequential baseline", procs)
					}
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkEndToEndCampaign measures the full pipeline: scenario build,
// grouping, and framework aggregation.
func BenchmarkEndToEndCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := simulate.Build(simulate.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		fw := core.Framework{Grouper: grouping.AGTR{Phi: 0.3}}
		if _, err := fw.Run(sc.Dataset); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRHScaling measures CRH iteration cost as the campaign grows.
func BenchmarkCRHScaling(b *testing.B) {
	for _, users := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			sc, err := simulate.Build(simulate.Config{
				Seed:     9,
				NumLegit: users,
				NumTasks: 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (truth.CRH{}).Run(sc.Dataset); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtAlgorithms regenerates the extension algorithm-family
// comparison (see EXPERIMENTS.md).
func BenchmarkExtAlgorithms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtAlgorithms(13, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "ext-algorithms", r.Tables())
		}
	}
}

// BenchmarkExtStrategies regenerates the attacker-strategy extension.
func BenchmarkExtStrategies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtStrategies(13, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "ext-strategies", r.Tables())
		}
	}
}

func BenchmarkFig5POIMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig5(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "fig5", r.Tables())
		}
	}
}

// BenchmarkExtScale regenerates the large-scale attack extension.
func BenchmarkExtScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtScale(13, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "ext-scale", r.Tables())
		}
	}
}

// BenchmarkExtSelection regenerates the incentive-selection extension.
func BenchmarkExtSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtSelection(13, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "ext-selection", r.Tables())
		}
	}
}

// BenchmarkExtThresholds regenerates the threshold-sensitivity extension.
func BenchmarkExtThresholds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtThresholds(13, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "ext-thresholds", r.Tables())
		}
	}
}

// BenchmarkExtEvolving regenerates the evolving-truth extension.
func BenchmarkExtEvolving(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtEvolving(12)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, "ext-evolving", r.Tables())
		}
	}
}
