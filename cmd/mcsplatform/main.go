// Command mcsplatform serves the MCS platform HTTP API.
//
// Usage:
//
//	mcsplatform -addr :8080 -tasks 10 [-data-dir ./data] [-pprof]
//
// The platform publishes N sensing tasks laid out as a synthetic POI map,
// accepts submissions and sign-in fingerprint captures, and serves
// Sybil-resistant aggregation at POST /v1/aggregate.
//
// Durability: with -data-dir, every mutation is appended and fsynced to a
// write-ahead log before it is acknowledged, and the log is periodically
// compacted into snapshots (every -snapshot-every records, plus once at
// shutdown). On startup the directory is recovered — snapshot first, then
// the WAL tail, truncating any torn or corrupt final record — so a
// kill -9 or power cut loses nothing that was acknowledged. Without
// -data-dir the platform is purely in-memory, exactly as before.
//
// Observability: GET /v1/metrics returns the process metrics registry as
// JSON (request counters, route latency histograms, framework stage
// timings, WAL append/fsync latency, snapshot counters, recovery gauges);
// GET /metrics serves the same registry in the Prometheus text format.
// The -pprof flag additionally mounts net/http/pprof under /debug/pprof/
// for CPU and heap profiling of a live platform.
//
// Streaming truth: GET /v1/truths:watch is a server-push SSE stream of
// on-change truth estimates. Every accepted report feeds a shared
// evolving-truth estimator incrementally — no /v1/aggregate round trips —
// and subscribers receive per-task updates with latest-wins coalescing
// under backpressure (-watch-buffer, -watch-max-subscribers). The stream
// is exempt from -timeout and -request-timeout; reconnecting clients
// resume via the SSE Last-Event-ID.
//
// Replication: with -followers the node is a replica-group primary — every
// durable WAL record is shipped (sequence-numbered, CRC-carrying,
// idempotent on replay) to each follower over POST /v1/repl/frames; with
// -follower-of the node starts as a follower, applying shipped frames and
// rejecting client writes with 503 not_primary until promoted via
// POST /v1/repl/role. -repl-ack async acknowledges writes after the local
// fsync; semisync withholds the ack until at least one follower confirmed
// durability. Both require -data-dir.
//
// Joining a live fleet: -join http://router:8080 (with -advertise
// listing this group's externally reachable URLs, primary first) asks
// the fleet's router to admit this replica group via its online-reshard
// coordinator once the node is serving. Run it on one member per group;
// the request retries until the router accepts it.
//
// Leaving a live fleet: -leave http://router:8080 (with -advertise) asks
// the router to decommission this replica group — the ring-shrink inverse
// of -join: the group's keys drain to the survivors, the group is fenced
// and its moved data purged. Keep the group running until the router's
// reshard journal reads done; the drain streams from this group's WAL.
//
// Overload protection: every /v1 route passes a weighted-concurrency
// admission gate (-max-concurrent, -max-queue, -queue-timeout) and carries
// a propagated deadline (-request-timeout); mutating routes are optionally
// rate-limited per account (-rate, -rate-burst). Shed requests get 503 (or
// 429) with a Retry-After header. GET /healthz is liveness, GET /readyz is
// readiness (503 while draining or saturated). On SIGINT/SIGTERM the
// server flips /readyz, drains in-flight requests for up to
// -drain-timeout, and only then writes the final snapshot.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mobility"
	"sybiltd/internal/platform"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	numTasks := flag.Int("tasks", 10, "number of sensing tasks to publish")
	seed := flag.Int64("seed", 1, "seed for the POI layout")
	maxAccounts := flag.Int("max-accounts", 0, "cap on registered accounts (0 = unlimited)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 1024, "WAL records between snapshot compactions (with -data-dir)")
	commitLinger := flag.Duration("commit-linger", 2*time.Millisecond, "group-commit linger: max extra ack latency while coalescing concurrent WAL fsyncs (0 = one fsync per record; with -data-dir)")
	commitBatch := flag.Int("commit-batch", 64, "group-commit fsyncs early once this many records are pending (with -commit-linger)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request read/write timeout (0 disables; slowloris guard)")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	maxConcurrent := flag.Int("max-concurrent", 64, "admission gate capacity in weight units (aggregate=4, dataset=2, rest=1; 0 disables the gate)")
	maxQueue := flag.Int("max-queue", 128, "requests allowed to wait for admission before shedding with 503")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "max wait for admission before shedding with 503")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "deadline propagated into store/durability/aggregation work (0 disables)")
	rate := flag.Float64("rate", 0, "per-account token-bucket rate limit in requests/sec for mutating routes (0 disables)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst size (0 = ceil(rate))")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on SIGTERM before forcing shutdown")
	followers := flag.String("followers", "", "comma-separated follower base URLs to ship the WAL to (makes this node a replica-group primary; requires -data-dir)")
	followerOf := flag.String("follower-of", "", "primary base URL this node replicates from (starts as a follower: writes answer 503 not_primary until promoted; requires -data-dir)")
	replAck := flag.String("repl-ack", "async", "replication ack mode: async (ack after local fsync) or semisync (ack only once >=1 follower confirmed durability)")
	watchBuffer := flag.Int("watch-buffer", 0, "per-subscriber pending-update buffer on GET /v1/truths:watch; coalesced latest-wins per task (0 = one slot per task)")
	watchMaxSubs := flag.Int("watch-max-subscribers", 4096, "concurrent watch subscribers before new ones are shed with 503 (negative = unlimited)")
	watchTick := flag.Duration("watch-tick", 0, "evolving-truth round interval for the watch stream: older reports decay each round (0 disables decay)")
	join := flag.String("join", "", "router base URL to join as a new replica group via POST /v1/admin/reshard (run on one member per group; requires -advertise)")
	leave := flag.String("leave", "", "router base URL to leave the fleet through via POST /v1/admin/decommission (run on one member per group; requires -advertise; keep the group running until the router's reshard journal reads done)")
	advertise := flag.String("advertise", "", "comma-separated externally reachable base URLs of this replica group, primary first (used with -join / -leave)")
	flag.Parse()

	if *numTasks < 1 {
		fmt.Fprintln(os.Stderr, "mcsplatform: -tasks must be >= 1")
		os.Exit(2)
	}
	if *join != "" && *leave != "" {
		fmt.Fprintln(os.Stderr, "mcsplatform: -join and -leave are mutually exclusive")
		os.Exit(2)
	}
	var advertised []string
	if *join != "" || *leave != "" {
		for _, a := range strings.Split(*advertise, ",") {
			if a = strings.TrimSpace(a); a != "" {
				advertised = append(advertised, a)
			}
		}
		if len(advertised) == 0 {
			fmt.Fprintln(os.Stderr, "mcsplatform: -join/-leave require -advertise URLs for this group (primary first)")
			os.Exit(2)
		}
	}

	logger := log.New(os.Stderr, "mcsplatform ", log.LstdFlags)
	rng := rand.New(rand.NewSource(*seed))
	pois := mobility.LayoutPOIs(*numTasks, 400, 300, 30, rng)
	tasks := make([]mcs.Task, len(pois))
	for i, p := range pois {
		tasks[i] = mcs.Task{ID: i, Name: fmt.Sprintf("POI-%d", i+1), X: p.X, Y: p.Y}
	}

	var store *platform.LocalStore
	var durability *platform.Durability
	if *dataDir != "" {
		var stats platform.RecoveryStats
		var err error
		store, durability, stats, err = platform.OpenDurable(*dataDir, tasks, platform.DurableOptions{
			SnapshotEvery:  *snapshotEvery,
			CommitLinger:   *commitLinger,
			CommitMaxBatch: *commitBatch,
			Logger:         logger,
		})
		if err != nil {
			logger.Printf("open data dir %s: %v", *dataDir, err)
			os.Exit(1)
		}
		logger.Printf("durable: %s (snapshot seq %d, %d WAL records replayed, %d skipped, %d bytes truncated)",
			*dataDir, stats.SnapshotSeq, stats.RecordsReplayed, stats.RecordsSkipped, stats.BytesTruncated)
		if recovered, _ := store.Tasks(context.Background()); len(recovered) != len(tasks) {
			logger.Printf("durable: serving %d tasks recovered from snapshot (-tasks %d ignored)", len(recovered), *numTasks)
		}
	} else {
		store = platform.NewLocalStore(tasks)
	}
	if *maxAccounts > 0 {
		store.SetMaxAccounts(*maxAccounts)
	}

	var repl *platform.Replication
	if *followers != "" || *followerOf != "" {
		if durability == nil {
			fmt.Fprintln(os.Stderr, "mcsplatform: replication (-followers / -follower-of) requires -data-dir")
			os.Exit(2)
		}
		var followerList []string
		for _, f := range strings.Split(*followers, ",") {
			if f = strings.TrimSpace(f); f != "" {
				followerList = append(followerList, f)
			}
		}
		mode := platform.AckMode(*replAck)
		if mode != platform.AckAsync && mode != platform.AckSemiSync {
			fmt.Fprintf(os.Stderr, "mcsplatform: -repl-ack must be async or semisync, got %q\n", *replAck)
			os.Exit(2)
		}
		repl = platform.NewReplication(store, durability, platform.ReplicationOptions{
			Mode:       mode,
			Followers:  followerList,
			FollowerOf: *followerOf,
			Logger:     logger,
		})
		if *followerOf != "" {
			logger.Printf("replication: follower of %s (writes rejected until promoted)", *followerOf)
		} else {
			logger.Printf("replication: primary shipping to %d follower(s), ack mode %s", len(followerList), mode)
		}
	}

	apiServer := platform.NewServerWithOptions(store, platform.ServerOptions{
		Logger: logger,
		Limits: platform.ServerLimits{
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
			QueueTimeout:   *queueTimeout,
			RequestTimeout: *requestTimeout,
			RatePerSec:     *rate,
			RateBurst:      *rateBurst,
		},
		// The watch stream itself is exempt from -timeout and
		// -request-timeout: the handler lifts the connection deadlines via
		// http.ResponseController, bounding individual writes instead.
		Stream: platform.StreamConfig{
			Buffer:         *watchBuffer,
			MaxSubscribers: *watchMaxSubs,
			TickEvery:      *watchTick,
		},
		Replication: repl,
		// A follower's state advances by replicated frames, not client
		// acks, so its watch stream would sit silent; watchers belong on
		// the router or the primary.
		DisableWatch: *followerOf != "",
	})
	mux := http.NewServeMux()
	mux.Handle("/", apiServer)
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// Full-request timeouts so a slowloris client dripping one byte at
		// a time cannot hold a connection (and its goroutine) forever.
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
	}
	if *timeout > 0 {
		srv.IdleTimeout = 2 * *timeout
	}
	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// closeDurability writes the final snapshot; it must run after the
	// server stops accepting mutations, on every exit path.
	exitCode := 0
	closeDurability := func() {
		if durability == nil {
			return
		}
		if err := durability.Close(); err != nil {
			logger.Printf("durable close: %v", err)
			exitCode = 1
			return
		}
		logger.Printf("durable: final snapshot written to %s", *dataDir)
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	served, _ := store.Tasks(context.Background())
	logger.Printf("serving %d tasks on %s (metrics at /metrics and /v1/metrics)", len(served), *addr)
	if *join != "" {
		go joinFleet(ctx, *join, advertised, logger)
	}
	if *leave != "" {
		go leaveFleet(ctx, *leave, advertised[0], logger)
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exitCode = 1
		}
	case <-ctx.Done():
		// Graceful drain: flip /readyz first so load balancers stop
		// routing here, then let in-flight requests finish (bounded by
		// -drain-timeout), and only then write the final snapshot.
		logger.Printf("shutting down: draining in-flight requests (up to %v)", *drainTimeout)
		apiServer.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
			exitCode = 1
		}
		<-errCh // wait for the serve goroutine to exit
	}
	apiServer.Close() // disconnect watch subscribers, stop the stream hub
	if repl != nil {
		repl.Close() // stop shippers before the final snapshot
	}
	closeDurability()
	os.Exit(exitCode)
}

// joinFleet asks the router to admit this replica group to the live
// fleet. The router may still be booting (or already coordinating a
// different migration), so the request retries with backoff until it is
// accepted, permanently refused, or the process shuts down. The group
// must already be serving before this runs — the router's coordinator
// seeds it through the regular write API the moment the request lands.
func joinFleet(ctx context.Context, router string, addrs []string, logger *log.Logger) {
	postAdmin(ctx, router, "/v1/admin/reshard", "join", map[string]any{"addrs": addrs}, logger)
}

// leaveFleet asks the router to decommission this replica group — the
// shrink inverse of joinFleet, naming the group by its advertised primary
// URL. The group must keep serving until the router's migration finishes:
// the coordinator drains this group's WAL tail and purges its fenced data
// through the same API it serves clients on.
func leaveFleet(ctx context.Context, router, addr string, logger *log.Logger) {
	postAdmin(ctx, router, "/v1/admin/decommission", "leave", map[string]any{"addr": addr}, logger)
}

// postAdmin posts one admin request to the router, retrying with backoff
// until it is accepted (202), permanently refused (501/400), or the
// process shuts down.
func postAdmin(ctx context.Context, router, path, verb string, payload map[string]any, logger *log.Logger) {
	body, err := json.Marshal(payload)
	if err != nil {
		logger.Printf("%s: encode request: %v", verb, err)
		return
	}
	url := strings.TrimRight(router, "/") + path
	client := &http.Client{Timeout: 10 * time.Second}
	for delay := time.Second; ; {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			logger.Printf("%s: build request: %v", verb, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			logger.Printf("%s: router %s unreachable (retrying in %v): %v", verb, router, delay, err)
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				logger.Printf("%s: router %s accepted: %s", verb, router, strings.TrimSpace(string(msg)))
				return
			case http.StatusNotImplemented, http.StatusBadRequest:
				logger.Printf("%s: router %s refused permanently (%d): %s", verb, router, resp.StatusCode, strings.TrimSpace(string(msg)))
				return
			default:
				logger.Printf("%s: router %s answered %d (retrying in %v): %s", verb, router, resp.StatusCode, delay, strings.TrimSpace(string(msg)))
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		if delay < 30*time.Second {
			delay *= 2
		}
	}
}
