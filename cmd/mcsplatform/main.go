// Command mcsplatform serves the MCS platform HTTP API.
//
// Usage:
//
//	mcsplatform -addr :8080 -tasks 10 [-pprof]
//
// The platform publishes N sensing tasks laid out as a synthetic POI map,
// accepts submissions and sign-in fingerprint captures, and serves
// Sybil-resistant aggregation at POST /v1/aggregate.
//
// Observability: GET /v1/metrics returns the process metrics registry as
// JSON (request counters, route latency histograms, framework stage
// timings, truth-loop iteration counts, worker-pool utilization); GET
// /metrics serves the same registry in the Prometheus text format. The
// -pprof flag additionally mounts net/http/pprof under /debug/pprof/ for
// CPU and heap profiling of a live platform.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mobility"
	"sybiltd/internal/platform"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	numTasks := flag.Int("tasks", 10, "number of sensing tasks to publish")
	seed := flag.Int64("seed", 1, "seed for the POI layout")
	maxAccounts := flag.Int("max-accounts", 0, "cap on registered accounts (0 = unlimited)")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	if *numTasks < 1 {
		fmt.Fprintln(os.Stderr, "mcsplatform: -tasks must be >= 1")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "mcsplatform ", log.LstdFlags)
	rng := rand.New(rand.NewSource(*seed))
	pois := mobility.LayoutPOIs(*numTasks, 400, 300, 30, rng)
	tasks := make([]mcs.Task, len(pois))
	for i, p := range pois {
		tasks[i] = mcs.Task{ID: i, Name: fmt.Sprintf("POI-%d", i+1), X: p.X, Y: p.Y}
	}

	store := platform.NewStore(tasks)
	if *maxAccounts > 0 {
		store.SetMaxAccounts(*maxAccounts)
	}

	mux := http.NewServeMux()
	mux.Handle("/", platform.NewServer(store, logger))
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	logger.Printf("serving %d tasks on %s (metrics at /metrics and /v1/metrics)", *numTasks, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		<-errCh // wait for the serve goroutine to exit
	}
}
