// Command sybiltd regenerates the paper's tables and figures.
//
// Usage:
//
//	sybiltd list                 # show available experiments
//	sybiltd all [flags]          # run everything
//	sybiltd <experiment> [flags] # run one (table1, fig2, ..., table4)
//
// Flags:
//
//	-seed N     base random seed (default: per-experiment documented seed)
//	-trials N   trials per sweep point for fig6/fig7 (default 10)
//	-quick      shrink the sweeps for a fast smoke run
//	-csv        emit CSV instead of ASCII tables
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sybiltd/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Subcommands with their own flag sets.
	if len(args) > 0 {
		switch args[0] {
		case "gen":
			return runGen(args[1:])
		case "aggregate":
			return runAggregate(args[1:])
		case "report":
			return runReport(args[1:])
		}
	}

	fs := flag.NewFlagSet("sybiltd", flag.ContinueOnError)
	seed := fs.Int64("seed", 0, "base random seed (0 = experiment default)")
	trials := fs.Int("trials", 0, "trials per sweep point (0 = default)")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast run")
	csv := fs.Bool("csv", false, "emit CSV instead of ASCII tables")
	outDir := fs.String("out", "", "also write each experiment's output to <dir>/<id>.txt (or .csv with -csv)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sybiltd [flags] <experiment|all|list>")
		fmt.Fprintln(os.Stderr, "       sybiltd gen [-seed N] [-tasks N] [-o campaign.json] [-truth truths.csv]")
		fmt.Fprintln(os.Stderr, "       sybiltd aggregate [-method M] [-i campaign.json]")
		fmt.Fprintln(os.Stderr, "       sybiltd report [-o report.md] [-trials N] [-quick]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "\nexperiments:")
		for _, id := range experiment.IDs() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", id, experiment.Registry()[id].Description)
		}
	}

	// Accept the experiment name in any position relative to flags.
	var name string
	var flagArgs []string
	for _, a := range args {
		if len(a) > 0 && a[0] != '-' && name == "" {
			name = a
			continue
		}
		flagArgs = append(flagArgs, a)
	}
	if err := fs.Parse(flagArgs); err != nil {
		return 2
	}
	if name == "" || name == "list" {
		fs.Usage()
		if name == "list" {
			return 0
		}
		return 2
	}

	opts := experiment.Options{Seed: *seed, Trials: *trials, Quick: *quick, CSV: *csv}
	reg := experiment.Registry()

	runOne := func(id string) error {
		var sink io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return fmt.Errorf("create -out dir: %w", err)
			}
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(*outDir, id+ext))
			if err != nil {
				return fmt.Errorf("create artifact: %w", err)
			}
			file = f
			sink = io.MultiWriter(os.Stdout, f)
		}
		err := reg[id].Run(sink, opts)
		if file != nil {
			if cerr := file.Close(); err == nil && cerr != nil {
				err = fmt.Errorf("close artifact: %w", cerr)
			}
		}
		return err
	}

	if name == "all" {
		for _, id := range experiment.IDs() {
			fmt.Printf("== %s ==\n", id)
			if err := runOne(id); err != nil {
				fmt.Fprintf(os.Stderr, "sybiltd: %s: %v\n", id, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	}
	if _, ok := reg[name]; !ok {
		fmt.Fprintf(os.Stderr, "sybiltd: unknown experiment %q (try `sybiltd list`)\n", name)
		return 2
	}
	if err := runOne(name); err != nil {
		fmt.Fprintf(os.Stderr, "sybiltd: %s: %v\n", name, err)
		return 1
	}
	return 0
}
