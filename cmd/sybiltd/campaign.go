package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	"sybiltd/internal/mcs"
	"sybiltd/internal/platform"
	"sybiltd/internal/simulate"
)

// runGen implements `sybiltd gen`: build a synthetic campaign and write it
// as JSON (the schema of internal/mcs), so it can be archived, shared, or
// re-aggregated later with `sybiltd aggregate`.
func runGen(args []string) int {
	fs := flag.NewFlagSet("sybiltd gen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	tasks := fs.Int("tasks", 10, "number of tasks")
	legit := fs.Int("legit", 8, "number of honest users")
	legitAct := fs.Float64("legit-activeness", 0.5, "honest activeness")
	sybilAct := fs.Float64("sybil-activeness", 0.5, "attacker activeness")
	out := fs.String("o", "", "output file (default stdout)")
	truthOut := fs.String("truth", "", "also write the ground truths (CSV: task,value)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc, err := simulate.Build(simulate.Config{
		Seed:            *seed,
		NumTasks:        *tasks,
		NumLegit:        *legit,
		LegitActiveness: *legitAct,
		SybilActiveness: *sybilAct,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sybiltd gen: %v\n", err)
		return 1
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd gen: %v\n", err)
			return 1
		}
		defer closeFile(f)
		sink = f
	}
	if err := sc.Dataset.EncodeJSON(sink); err != nil {
		fmt.Fprintf(os.Stderr, "sybiltd gen: %v\n", err)
		return 1
	}
	if *truthOut != "" {
		f, err := os.Create(*truthOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd gen: %v\n", err)
			return 1
		}
		defer closeFile(f)
		fmt.Fprintln(f, "task,value")
		for j, v := range sc.GroundTruth {
			fmt.Fprintf(f, "%d,%.6f\n", j, v)
		}
	}
	return 0
}

// runAggregate implements `sybiltd aggregate`: read a JSON campaign and
// aggregate it with one or all methods.
func runAggregate(args []string) int {
	fs := flag.NewFlagSet("sybiltd aggregate", flag.ContinueOnError)
	method := fs.String("method", "all", "aggregation method (crh, mean, median, td-fp, td-ts, td-tr, or all)")
	input := fs.String("i", "", "input campaign JSON (default stdin)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd aggregate: %v\n", err)
			return 1
		}
		defer closeFile(f)
		src = f
	}
	ds, err := mcs.DecodeJSON(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sybiltd aggregate: %v\n", err)
		return 1
	}

	methods := []string{*method}
	if *method == "all" {
		methods = []string{"mean", "median", "crh", "td-fp", "td-ts", "td-tr"}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "task"
	for _, m := range methods {
		header += "\t" + m
	}
	fmt.Fprintln(w, header)
	results := make([][]float64, len(methods))
	for mi, m := range methods {
		alg, err := platform.AlgorithmByName(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd aggregate: %v\n", err)
			return 2
		}
		res, err := alg.Run(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd aggregate: %s: %v\n", m, err)
			return 1
		}
		results[mi] = res.Truths
	}
	for j := 0; j < ds.NumTasks(); j++ {
		row := ds.Tasks[j].Name
		for mi := range methods {
			v := results[mi][j]
			if math.IsNaN(v) {
				row += "\tx"
			} else {
				row += fmt.Sprintf("\t%.2f", v)
			}
		}
		fmt.Fprintln(w, row)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "sybiltd aggregate: %v\n", err)
		return 1
	}
	return 0
}

func closeFile(f *os.File) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sybiltd: close %s: %v\n", f.Name(), err)
	}
}
