package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sybiltd/internal/experiment"
)

// runReport implements `sybiltd report`: run every experiment and write a
// single markdown document with one section per artifact — a freshly
// regenerated companion to EXPERIMENTS.md.
func runReport(args []string) int {
	fs := flag.NewFlagSet("sybiltd report", flag.ContinueOnError)
	out := fs.String("o", "report.md", "output markdown file (- for stdout)")
	trials := fs.Int("trials", 5, "trials per sweep point")
	seed := fs.Int64("seed", 0, "base random seed (0 = experiment defaults)")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var sink io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd report: %v\n", err)
			return 1
		}
		defer closeFile(f)
		sink = f
	}

	opts := experiment.Options{Seed: *seed, Trials: *trials, Quick: *quick}
	reg := experiment.Registry()
	fmt.Fprintln(sink, "# sybiltd experiment report")
	fmt.Fprintln(sink)
	fmt.Fprintf(sink, "Generated %s with trials=%d seed=%d quick=%v.\n",
		time.Now().UTC().Format(time.RFC3339), *trials, *seed, *quick)
	fmt.Fprintln(sink, "Every table below is regenerated live; see EXPERIMENTS.md for the")
	fmt.Fprintln(sink, "paper-vs-measured analysis of each artifact.")
	for _, id := range experiment.IDs() {
		r := reg[id]
		fmt.Fprintf(sink, "\n## %s\n\n%s\n\n```\n", id, r.Description)
		if err := r.Run(sink, opts); err != nil {
			fmt.Fprintf(os.Stderr, "sybiltd report: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintln(sink, "```")
	}
	if *out != "-" {
		fmt.Printf("report written to %s\n", *out)
	}
	return 0
}
