package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if got := run([]string{"list"}); got != 0 {
		t.Errorf("list exit = %d, want 0", got)
	}
}

func TestRunNoArgs(t *testing.T) {
	if got := run(nil); got != 2 {
		t.Errorf("no-args exit = %d, want 2", got)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if got := run([]string{"fig99"}); got != 2 {
		t.Errorf("unknown exit = %d, want 2", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if got := run([]string{"table1", "-bogus"}); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if got := run([]string{"table4"}); got != 0 {
		t.Errorf("table4 exit = %d, want 0", got)
	}
}

func TestRunWithFlagsAnyOrder(t *testing.T) {
	if got := run([]string{"-csv", "table4"}); got != 0 {
		t.Errorf("flag-first exit = %d, want 0", got)
	}
	if got := run([]string{"table1", "-seed", "3"}); got != 0 {
		t.Errorf("flag-last exit = %d, want 0", got)
	}
}

func TestRunQuickFig6(t *testing.T) {
	if got := run([]string{"fig6", "-quick"}); got != 0 {
		t.Errorf("quick fig6 exit = %d, want 0", got)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if got := run([]string{"table4", "-out", dir, "-csv"}); got != 0 {
		t.Fatalf("exit = %d", got)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "iPhone SE") {
		t.Errorf("artifact content: %s", data)
	}
}

func TestGenAndAggregateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	campaign := filepath.Join(dir, "campaign.json")
	truths := filepath.Join(dir, "truths.csv")
	if got := run([]string{"gen", "-seed", "4", "-o", campaign, "-truth", truths}); got != 0 {
		t.Fatalf("gen exit = %d", got)
	}
	if _, err := os.Stat(campaign); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(truths)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "task,value\n") {
		t.Errorf("truths header: %s", data[:20])
	}
	if got := run([]string{"aggregate", "-method", "td-tr", "-i", campaign}); got != 0 {
		t.Fatalf("aggregate exit = %d", got)
	}
	if got := run([]string{"aggregate", "-method", "all", "-i", campaign}); got != 0 {
		t.Fatalf("aggregate all exit = %d", got)
	}
	if got := run([]string{"aggregate", "-method", "bogus", "-i", campaign}); got != 2 {
		t.Errorf("bogus method exit = %d, want 2", got)
	}
	if got := run([]string{"aggregate", "-i", filepath.Join(dir, "missing.json")}); got != 1 {
		t.Errorf("missing file exit = %d, want 1", got)
	}
}

func TestReportSubcommand(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.md")
	if got := run([]string{"report", "-o", out, "-quick"}); got != 0 {
		t.Fatalf("report exit = %d", got)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"# sybiltd experiment report", "## table1", "## fig7", "## ext-evolving"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
