// Command mcsrouter fronts a fleet of mcsplatform shard processes with
// the same /v1 wire API each shard serves.
//
// Usage:
//
//	mcsrouter -addr :8080 -shards http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Accounts are partitioned across the shards by a consistent-hash ring
// (account-keyed, -vnodes virtual nodes per shard), so every account's
// reports, duplicate guard, and WAL records live on exactly one shard.
// Writes are routed to the owning shard; POST /v1/reports:batch is split
// per shard, dispatched concurrently, and reassembled positionally.
// Whole-campaign reads (aggregate, stats, dataset) scatter-gather: with
// some shards unreachable, aggregation and stats answer from the
// reachable part flagged `"degraded": true` in the response meta, while
// the dataset export fails retryably (a partial archive is worse than a
// late one). GET /readyz aggregates per-shard health and flips 503 with a
// per-shard breakdown if any shard is draining or unreachable.
//
// The router is stateless: it can be restarted (or replicated behind a
// load balancer) at any time, and the ring depends only on the -shards
// list order, which must therefore be identical across router replicas
// and restarts.
//
// Replication: each -shards entry may be a replica group, members
// separated by '|' (first listed = initial primary):
//
//	mcsrouter -shards 'http://a1|http://a2,http://b1|http://b2'
//
// The ring spans groups, writes go to each group's current primary, and
// reads fall back to followers when the primary is unreachable. A
// background poller probes every replica on a jittered -probe-interval;
// when a primary stays dead past -dead-interval the freshest reachable
// follower is promoted (at a higher replication epoch) and writes resume
// there. A returning old primary is demoted and catches up from the new
// primary's WAL. GET /readyz lists every replica with its role and probe
// age.
//
// Online resharding: POST /v1/admin/reshard admits a new replica group
// to the live fleet (requires -data-dir for the coordinator journal):
//
//	curl -XPOST localhost:8080/v1/admin/reshard \
//	  -d '{"addrs":["http://c1","http://c2"]}'
//
// The coordinator seeds the joiner with every account the grown ring
// re-homes, streams the donors' WAL tails until caught up, flips the
// ring (bumping the ring version stamped on every shard RPC), fences
// the moved accounts on the donors, and drains the last raced writes —
// all while the fleet keeps serving. Coordinator state journals to
// <data-dir>/reshard.json; a restarted router resumes an in-flight
// migration automatically (post-flip it completes it, pre-flip it
// restarts the idempotent seed). GET /readyz reports ring_version and
// a migrating flag while a reshard is in flight.
//
// Ring shrink: POST /v1/admin/decommission retires a replica group live,
// by index or by any member address:
//
//	curl -XPOST localhost:8080/v1/admin/decommission -d '{"group":1}'
//	curl -XPOST localhost:8080/v1/admin/decommission -d '{"addr":"http://b1"}'
//
// The same coordinator runs with donor and joiner swapped: the retiring
// group's keys seed onto the survivors, its WAL tail streams until caught
// up, the shrunk ring flips, the group is fenced, the tail drains, and
// its fenced data is purged (the fence stays, so stale writers still get
// wrong_shard). Keep the retiring group in -shards until the journal
// reads done; after that, restart the router without it.
//
// Rebalance: POST /v1/admin/rebalance re-weights the ring for
// heterogeneous hardware, moving only the weight delta's worth of keys:
//
//	curl -XPOST localhost:8080/v1/admin/rebalance -d '{"weights":[2,1,1]}'
//
// Boot-time weights come from -weights (positional with -shards). The
// router also persists its ring floor (version, seeds, weights) to
// <data-dir>/ring_state.json on every topology change and refuses to
// serve below it at boot — a restarted router can never reintroduce a
// pre-flip ring, even when its reshard journal was cleaned up.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sybiltd/internal/platform"
	"sybiltd/internal/platform/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shardList := flag.String("shards", "", "comma-separated shard base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082 (order defines the ring; keep it stable). Replica groups separate members with '|': primary|follower[,...]")
	dataDir := flag.String("data-dir", "", "router state directory (reshard coordinator journal + persisted ring floor); empty disables the /v1/admin reshard endpoints")
	weightList := flag.String("weights", "", "comma-separated per-group ring weights, positional with -shards (empty = uniform 1.0)")
	probeInterval := flag.Duration("probe-interval", time.Second, "mean interval between health probes of each replica (per-replica jittered; replicated fleets)")
	deadInterval := flag.Duration("dead-interval", 0, "how long a primary must stay unreachable before a follower is promoted (0 = 3x -probe-interval)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the consistent-hash ring (0 = default 128)")
	retries := flag.Int("retries", 2, "per-shard request retries (connection errors, 5xx, shed 429s)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "base backoff before the first shard retry (doubles per attempt)")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-request timeout toward a shard")
	startupWait := flag.Duration("startup-wait", 30*time.Second, "how long to wait for at least one shard to answer at startup")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request read/write timeout (0 disables; slowloris guard)")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	maxConcurrent := flag.Int("max-concurrent", 128, "admission gate capacity in weight units (aggregate=4, dataset=2, rest=1; 0 disables the gate)")
	maxQueue := flag.Int("max-queue", 256, "requests allowed to wait for admission before shedding with 503")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "max wait for admission before shedding with 503")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "deadline propagated into shard calls and merged aggregation (0 disables)")
	rate := flag.Float64("rate", 0, "per-account token-bucket rate limit in requests/sec for mutating routes (0 disables)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst size (0 = ceil(rate))")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on SIGTERM before forcing shutdown")
	watchBuffer := flag.Int("watch-buffer", 0, "per-subscriber pending-update buffer on GET /v1/truths:watch (0 = one slot per task)")
	watchMaxSubs := flag.Int("watch-max-subscribers", 4096, "concurrent watch subscribers before new ones are shed with 503 (negative = unlimited)")
	watchTick := flag.Duration("watch-tick", 0, "evolving-truth round interval for the watch stream (0 disables decay)")
	flag.Parse()

	logger := log.New(os.Stderr, "mcsrouter ", log.LstdFlags)
	newBackend := func(e string) platform.Store {
		client := platform.NewClient(e,
			platform.WithHTTPClient(&http.Client{Timeout: *shardTimeout}),
			platform.WithRetries(*retries),
			platform.WithBackoff(*retryBase, 0),
		)
		return platform.NewRemoteStore(client)
	}
	var configs []shard.GroupConfig
	replicated := false
	for _, grp := range strings.Split(*shardList, ",") {
		if grp = strings.TrimSpace(grp); grp == "" {
			continue
		}
		var gc shard.GroupConfig
		for _, e := range strings.Split(grp, "|") {
			if e = strings.TrimSpace(e); e == "" {
				continue
			}
			gc.Replicas = append(gc.Replicas, newBackend(e))
			gc.Addrs = append(gc.Addrs, e)
		}
		if len(gc.Replicas) == 0 {
			continue
		}
		if len(gc.Replicas) > 1 {
			replicated = true
		}
		configs = append(configs, gc)
	}
	if len(configs) == 0 {
		fmt.Fprintln(os.Stderr, "mcsrouter: -shards must list at least one shard URL")
		os.Exit(2)
	}
	if *weightList != "" {
		parts := strings.Split(*weightList, ",")
		if len(parts) != len(configs) {
			fmt.Fprintf(os.Stderr, "mcsrouter: -weights lists %d weights for %d shard groups\n", len(parts), len(configs))
			os.Exit(2)
		}
		for i, p := range parts {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcsrouter: -weights entry %d: %v\n", i, err)
				os.Exit(2)
			}
			configs[i].Weight = w
		}
	}

	// The ring needs the fleet's task list; wait (bounded) for at least
	// one shard to answer so a fleet booting in parallel with its router
	// converges instead of crash-looping.
	startupCtx, cancelStartup := context.WithTimeout(context.Background(), *startupWait)
	defer cancelStartup()
	var store *shard.Store
	for {
		var err error
		store, err = shard.NewReplicated(startupCtx, configs, shard.Options{VirtualNodes: *vnodes})
		if err == nil {
			break
		}
		select {
		case <-startupCtx.Done():
			logger.Printf("no shard answered within %v: %v", *startupWait, err)
			os.Exit(1)
		case <-time.After(500 * time.Millisecond):
			logger.Printf("waiting for shards: %v", err)
		}
	}
	var poller *shard.FailoverPoller
	if replicated {
		poller = store.StartFailover(shard.FailoverOptions{
			ProbeInterval: *probeInterval,
			DeadInterval:  *deadInterval,
			Logger:        logger,
		})
		dead := *deadInterval
		if dead <= 0 {
			dead = 3 * *probeInterval
		}
		logger.Printf("failover poller running (probe %v, dead after %v)", *probeInterval, dead)
	}

	// Online resharding: the coordinator journal and the ring floor live
	// under -data-dir. A pending journal means a router died mid-migration
	// — resume it before taking traffic, because post-flip the new ring
	// must be reinstalled before any write routes by the stale topology and
	// trips a donor fence. The ring floor covers the journal's blind spot:
	// after a completed migration's journal describes a fleet shape the
	// current -shards no longer matches (or was cleaned up), the persisted
	// floor still pins the minimum version and exact ring this router may
	// serve.
	var journalPath string
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			logger.Printf("data dir %s: %v", *dataDir, err)
			os.Exit(1)
		}
		journalPath = filepath.Join(*dataDir, "reshard.json")
		ringStatePath := filepath.Join(*dataDir, "ring_state.json")
		j, jok, err := shard.LoadMigrationJournal(journalPath)
		if err != nil {
			logger.Printf("reshard journal: %v", err)
			os.Exit(1)
		}
		st, sok, err := shard.LoadRingState(ringStatePath)
		if err != nil {
			// An unreadable floor is fatal: serving below an unknown floor
			// is exactly the stale-ring window the floor exists to close.
			logger.Printf("ring state: %v", err)
			os.Exit(1)
		}
		pending := jok && j.Pending()
		if sok && !(pending && j.RingVersion >= st.Floor) {
			// Refuse to serve below the persisted floor. A pending journal
			// at or above the floor supersedes it — the resume below
			// reinstalls (or re-reaches) that version itself.
			if err := store.AdoptRingState(st.Floor, st.Seeds, st.Weights); err != nil {
				logger.Printf("ring state: refusing to serve below persisted floor v%d: %v", st.Floor, err)
				os.Exit(1)
			}
			logger.Printf("ring floor: serving at persisted v%d", st.Floor)
		}
		var resume *shard.Migration
		if pending {
			var gc shard.GroupConfig
			if j.Kind == "" || j.Kind == shard.MigrationGrow {
				// Only a grow's joiner is absent from -shards; shrink and
				// rebalance involve only configured groups.
				gc.Addrs = append([]string(nil), j.Addrs...)
				for _, e := range j.Addrs {
					gc.Replicas = append(gc.Replicas, newBackend(e))
				}
			}
			resume, err = store.ResumeMigration(gc, j, shard.MigrationOptions{JournalPath: journalPath, Logger: logger})
			if err != nil {
				logger.Printf("reshard: resume: %v", err)
				os.Exit(1)
			}
			logger.Printf("reshard: resuming journaled %s migration to ring v%d (phase %s)", j.Kind, j.RingVersion, j.Phase)
		} else if jok && j.Phase == shard.MigrationDone {
			// The fleet cut over while this router was down and -shards now
			// lists the post-migration fleet. Adopt the journaled ring so
			// requests are stamped with the version the fenced donors
			// demand; a fresh topology would stamp v1 and be refused
			// wholesale. Journals with recorded seeds rebuild the exact ring
			// (shrinks leave gapped seeds); older grow journals fall back to
			// the version-only bump.
			if len(j.Seeds) > 0 && len(configs) == len(j.Seeds) {
				if err := store.AdoptRingState(j.RingVersion, j.Seeds, j.Weights); err != nil {
					logger.Printf("reshard: adopt completed migration's ring v%d: %v", j.RingVersion, err)
					os.Exit(1)
				}
				logger.Printf("reshard: adopted completed %s migration's ring v%d", j.Kind, j.RingVersion)
			} else if len(j.Seeds) == 0 && len(configs) == len(j.Cursors)+1 {
				store.AdoptRingVersion(j.RingVersion)
				logger.Printf("reshard: adopted completed migration's ring v%d", j.RingVersion)
			}
		}
		// Persist the floor from here on. Enabled only after any adoption or
		// resume installed the right topology — enabling earlier would
		// overwrite the old floor with this process's fresh version 1.
		if err := store.EnableRingStatePersistence(ringStatePath); err != nil {
			logger.Printf("ring state: %v", err)
			os.Exit(1)
		}
		if resume != nil {
			go func() {
				if err := resume.Run(context.Background()); err != nil {
					logger.Printf("reshard: %v", err)
				}
			}()
		}
	}

	apiServer := platform.NewServerWithOptions(store, platform.ServerOptions{
		Logger: logger,
		Limits: platform.ServerLimits{
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
			QueueTimeout:   *queueTimeout,
			RequestTimeout: *requestTimeout,
			RatePerSec:     *rate,
			RateBurst:      *rateBurst,
		},
		Stream: platform.StreamConfig{
			Buffer:         *watchBuffer,
			MaxSubscribers: *watchMaxSubs,
			TickEvery:      *watchTick,
		},
	})
	mux := http.NewServeMux()
	mux.Handle("/", apiServer)
	adminError := func(w http.ResponseWriter, status int, code, msg string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]string{"code": code, "message": msg},
		})
	}
	mux.HandleFunc("POST /v1/admin/reshard", func(w http.ResponseWriter, r *http.Request) {
		if journalPath == "" {
			adminError(w, http.StatusNotImplemented, "unimplemented", "resharding requires -data-dir for the coordinator journal")
			return
		}
		var req struct {
			Addrs []string `json:"addrs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			adminError(w, http.StatusBadRequest, "bad_request", "decode body: "+err.Error())
			return
		}
		var gc shard.GroupConfig
		for _, e := range req.Addrs {
			if e = strings.TrimSpace(e); e != "" {
				gc.Replicas = append(gc.Replicas, newBackend(e))
				gc.Addrs = append(gc.Addrs, e)
			}
		}
		if len(gc.Replicas) == 0 {
			adminError(w, http.StatusBadRequest, "bad_request", "addrs must list at least one replica URL (primary first)")
			return
		}
		m, err := store.StartMigration(gc, shard.MigrationOptions{JournalPath: journalPath, Logger: logger})
		if err != nil {
			adminError(w, http.StatusConflict, "conflict", err.Error())
			return
		}
		// Read the journaled version before Run starts mutating the journal.
		ringVersion := m.Journal().RingVersion
		logger.Printf("reshard: admitting %v as group %d (ring v%d)", gc.Addrs, store.Shards(), ringVersion)
		go func() {
			if err := m.Run(context.Background()); err != nil {
				logger.Printf("reshard: %v", err)
			}
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":       "migrating",
			"ring_version": ringVersion,
		})
	})
	mux.HandleFunc("POST /v1/admin/decommission", func(w http.ResponseWriter, r *http.Request) {
		if journalPath == "" {
			adminError(w, http.StatusNotImplemented, "unimplemented", "decommission requires -data-dir for the coordinator journal")
			return
		}
		var req struct {
			Group *int   `json:"group,omitempty"`
			Addr  string `json:"addr,omitempty"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			adminError(w, http.StatusBadRequest, "bad_request", "decode body: "+err.Error())
			return
		}
		gi := -1
		switch {
		case req.Group != nil:
			gi = *req.Group
		case req.Addr != "":
			for i, gc := range configs {
				for _, a := range gc.Addrs {
					if a == req.Addr {
						gi = i
					}
				}
			}
			if gi < 0 {
				adminError(w, http.StatusBadRequest, "bad_request", "addr "+req.Addr+" is not a member of any configured group")
				return
			}
		default:
			adminError(w, http.StatusBadRequest, "bad_request", "body must name the retiring group by index (group) or member URL (addr)")
			return
		}
		m, err := store.StartDecommission(gi, shard.MigrationOptions{JournalPath: journalPath, Logger: logger})
		if err != nil {
			adminError(w, http.StatusConflict, "conflict", err.Error())
			return
		}
		ringVersion := m.Journal().RingVersion
		logger.Printf("reshard: decommissioning group %d (ring v%d)", gi, ringVersion)
		go func() {
			if err := m.Run(context.Background()); err != nil {
				logger.Printf("reshard: %v", err)
			}
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":       "migrating",
			"ring_version": ringVersion,
			"retiring":     gi,
		})
	})
	mux.HandleFunc("POST /v1/admin/rebalance", func(w http.ResponseWriter, r *http.Request) {
		if journalPath == "" {
			adminError(w, http.StatusNotImplemented, "unimplemented", "rebalance requires -data-dir for the coordinator journal")
			return
		}
		var req struct {
			Weights []float64 `json:"weights"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			adminError(w, http.StatusBadRequest, "bad_request", "decode body: "+err.Error())
			return
		}
		m, err := store.StartRebalance(req.Weights, shard.MigrationOptions{JournalPath: journalPath, Logger: logger})
		if err != nil {
			adminError(w, http.StatusConflict, "conflict", err.Error())
			return
		}
		ringVersion := m.Journal().RingVersion
		logger.Printf("reshard: rebalancing to weights %v (ring v%d)", req.Weights, ringVersion)
		go func() {
			if err := m.Run(context.Background()); err != nil {
				logger.Printf("reshard: %v", err)
			}
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":       "migrating",
			"ring_version": ringVersion,
		})
	})
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *timeout,
		WriteTimeout:      *timeout,
	}
	if *timeout > 0 {
		srv.IdleTimeout = 2 * *timeout
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exitCode := 0
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	tasks, _ := store.Tasks(context.Background())
	logger.Printf("routing %d tasks across %d shards on %s", len(tasks), store.Shards(), *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exitCode = 1
		}
	case <-ctx.Done():
		// Graceful drain: flip /readyz first so load balancers stop
		// routing here, then let in-flight requests finish. The shards
		// keep running — draining a stateless router loses nothing.
		logger.Printf("shutting down: draining in-flight requests (up to %v)", *drainTimeout)
		apiServer.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
			exitCode = 1
		}
		<-errCh
	}
	if poller != nil {
		poller.Stop()
	}
	apiServer.Close()
	os.Exit(exitCode)
}
