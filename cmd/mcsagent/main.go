// Command mcsagent simulates a crowd of users — honest participants and
// Sybil attackers — driving a running mcsplatform instance over HTTP, then
// requests aggregation and prints a comparison of the methods.
//
// Usage:
//
//	mcsagent -url http://localhost:8080 -legit 8 -sybil-accounts 5
//
// The agent fetches the platform's task list, builds walking traces over
// the tasks' POI coordinates, uploads sign-in fingerprint captures and
// sensing reports for every account, and finally asks the platform to
// aggregate with crh, td-fp, td-ts, and td-tr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/platform"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mcsagent: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://localhost:8080", "platform base URL")
	legit := flag.Int("legit", 8, "number of honest users")
	sybilAccounts := flag.Int("sybil-accounts", 5, "accounts per Sybil attacker (0 disables attackers)")
	activeness := flag.Float64("activeness", 0.5, "per-account activeness in (0,1]")
	target := flag.Float64("target", -50, "value the attackers fabricate")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 30*time.Second, "overall request timeout")
	replay := flag.String("replay", "", "replay an archived campaign JSON instead of simulating a crowd")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := platform.NewClient(*url, nil)
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		ds, err := mcs.DecodeJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		n, err := platform.ReplayDataset(ctx, client, ds, platform.ReplayOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("replayed %d submissions from %s\n", n, *replay)
		return printAggregates(ctx, client)
	}

	report, err := platform.DriveCampaign(ctx, client, platform.AgentConfig{
		NumLegit:      *legit,
		SybilAccounts: *sybilAccounts,
		Activeness:    *activeness,
		Target:        *target,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("campaign complete: %d accounts over %d tasks\n\n", report.Accounts, report.Tasks)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tMAE vs ground truth\tconverged")
	for _, o := range report.Outcomes {
		fmt.Fprintf(w, "%s\t%.2f dB\t%v\n", o.Method, o.MAE, o.Converged)
	}
	return w.Flush()
}

// printAggregates runs every standard method and prints the estimates
// (replay mode has no agent-side ground truth to score against).
func printAggregates(ctx context.Context, client *platform.Client) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tconverged\testimates")
	for _, method := range []string{"crh", "td-fp", "td-ts", "td-tr"} {
		resp, err := client.Aggregate(ctx, method)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%v\t", method, resp.Meta.Converged)
		for _, tr := range resp.Truths {
			if tr.Estimated {
				fmt.Fprintf(w, "%.1f ", tr.Value)
			} else {
				fmt.Fprint(w, "x ")
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
