// Command mcsagent simulates a crowd of users — honest participants and
// Sybil attackers — driving a running mcsplatform instance over HTTP, then
// requests aggregation and prints a comparison of the methods.
//
// Usage:
//
//	mcsagent -url http://localhost:8080 -legit 8 -sybil-accounts 5
//
// The agent fetches the platform's task list, builds walking traces over
// the tasks' POI coordinates, uploads sign-in fingerprint captures and
// sensing reports for every account, and finally asks the platform to
// aggregate with crh, td-fp, td-ts, and td-tr. Transient platform
// failures (connection errors, 5xx) are retried with exponential backoff
// (-retries); permanent rejections are classified via the API's stable
// error codes rather than by matching message text.
//
// With -watch the agent instead opens a long-lived subscription to
// GET /v1/truths:watch and prints on-change truth updates as they are
// pushed, reconnecting (with resume) across platform blips.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/platform"
)

func main() {
	if err := run(); err != nil {
		// The stable error codes let the agent explain platform
		// rejections precisely instead of parsing message strings.
		switch {
		case errors.Is(err, platform.ErrTooManyAccounts):
			fmt.Fprintf(os.Stderr, "mcsagent: %v\n", err)
			fmt.Fprintln(os.Stderr, "mcsagent: the platform's account cap is reached; raise -max-accounts on mcsplatform or drive fewer accounts")
		case errors.Is(err, platform.ErrDuplicateReport):
			fmt.Fprintf(os.Stderr, "mcsagent: %v\n", err)
			fmt.Fprintln(os.Stderr, "mcsagent: an account already reported on this task; use -prefix style isolation (AccountPrefix) or a fresh platform")
		case errors.Is(err, platform.ErrCircuitOpen):
			fmt.Fprintf(os.Stderr, "mcsagent: %v\n", err)
			fmt.Fprintln(os.Stderr, "mcsagent: the client circuit breaker is open after repeated transport failures; check the platform, then retry (tune -breaker-threshold / -breaker-cooldown)")
		case errors.Is(err, platform.ErrRateLimited), errors.Is(err, platform.ErrOverloaded):
			fmt.Fprintf(os.Stderr, "mcsagent: %v\n", err)
			fmt.Fprintln(os.Stderr, "mcsagent: the platform is shedding load; slow down (fewer accounts, lower -activeness) or raise the platform's limits")
		default:
			fmt.Fprintf(os.Stderr, "mcsagent: %v\n", err)
		}
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://localhost:8080", "platform base URL")
	legit := flag.Int("legit", 8, "number of honest users")
	sybilAccounts := flag.Int("sybil-accounts", 5, "accounts per Sybil attacker (0 disables attackers)")
	activeness := flag.Float64("activeness", 0.5, "per-account activeness in (0,1]")
	target := flag.Float64("target", -50, "value the attackers fabricate")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 30*time.Second, "overall request timeout")
	retries := flag.Int("retries", 2, "retry attempts for connection errors, 5xx responses, and rate-limit 429s")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive transport failures that open the client circuit breaker (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "circuit breaker open -> half-open delay")
	replay := flag.String("replay", "", "replay an archived campaign JSON instead of simulating a crowd")
	batch := flag.Int("batch", 1, "send reports via POST /v1/reports:batch in chunks of this many (1 = one request per report)")
	watch := flag.Bool("watch", false, "subscribe to GET /v1/truths:watch and print on-change truth updates until -timeout elapses (no crowd is driven)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := platform.NewClientWithConfig(*url, platform.ClientConfig{
		MaxRetries:       *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if *watch {
		return runWatch(ctx, client)
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		ds, err := mcs.DecodeJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		n, err := platform.ReplayDataset(ctx, client, ds, platform.ReplayOptions{BatchSize: *batch})
		if err != nil {
			return err
		}
		fmt.Printf("replayed %d submissions from %s\n", n, *replay)
		return printAggregates(ctx, client)
	}

	report, err := platform.DriveCampaign(ctx, client, platform.AgentConfig{
		NumLegit:      *legit,
		SybilAccounts: *sybilAccounts,
		Activeness:    *activeness,
		Target:        *target,
		Seed:          *seed,
		BatchSize:     *batch,
	})
	if err != nil {
		// Surface the breaker position alongside the failure so the
		// operator can tell "platform down, breaker protecting us" from a
		// one-off error.
		if st := client.BreakerState(); st != platform.BreakerClosed {
			return fmt.Errorf("%w (client circuit breaker: %s)", err, st)
		}
		return err
	}

	fmt.Printf("campaign complete: %d accounts over %d tasks\n\n", report.Accounts, report.Tasks)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tMAE vs ground truth\tconverged")
	for _, o := range report.Outcomes {
		fmt.Fprintf(w, "%s\t%.2f dB\t%v\n", o.Method, o.MAE, o.Converged)
	}
	return w.Flush()
}

// runWatch streams on-change truth updates to stdout until the context
// ends. Connection blips are survived transparently: the watcher redials
// with backoff and resumes from the last sequence number it delivered.
func runWatch(ctx context.Context, client *platform.Client) error {
	w, err := client.Watch(ctx, platform.WatchOptions{Reconnect: true})
	if err != nil {
		return err
	}
	fmt.Println("watching truth updates (ctrl-c or -timeout to stop)")
	for u := range w.Updates() {
		fmt.Printf("seq=%-6d task=%-3d value=%.3f round=%d\n", u.Seq, u.Task, u.Value, u.Round)
	}
	// A context deadline/cancel is the normal way out of a watch.
	if err := w.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// printAggregates runs every standard method and prints the estimates
// (replay mode has no agent-side ground truth to score against). A
// platform build that lacks one of the methods reports it as unsupported
// — detected via the unknown_aggregation error code, not message text —
// without aborting the rest.
func printAggregates(ctx context.Context, client *platform.Client) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tconverged\testimates")
	for _, method := range []string{"crh", "td-fp", "td-ts", "td-tr"} {
		resp, err := client.Aggregate(ctx, method)
		if errors.Is(err, platform.ErrUnknownAggregation) {
			fmt.Fprintf(w, "%s\t-\tunsupported by this platform\n", method)
			continue
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%v\t", method, resp.Meta.Converged)
		for _, tr := range resp.Truths {
			if tr.Estimated {
				fmt.Fprintf(w, "%.1f ", tr.Value)
			} else {
				fmt.Fprint(w, "x ")
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
