package spectral

import (
	"math"
	"math/rand"
	"testing"

	"sybiltd/internal/signal"
)

func sinusoid(freq, sampleRate float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * freq * float64(i) / sampleRate)
	}
	return xs
}

func whiteNoise(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func spectrumOf(xs []float64) signal.Spectrum {
	return signal.PowerSpectrum(xs, 100, signal.Hann)
}

func TestCentroidOfPureTone(t *testing.T) {
	// Energy concentrated at 10 Hz puts the centroid near 10 Hz.
	sp := spectrumOf(sinusoid(10, 100, 256))
	c := Centroid(sp)
	if math.Abs(c-10) > 1.5 {
		t.Errorf("centroid = %v, want ~10", c)
	}
}

func TestCentroidOrdersByFrequency(t *testing.T) {
	lo := Centroid(spectrumOf(sinusoid(5, 100, 256)))
	hi := Centroid(spectrumOf(sinusoid(30, 100, 256)))
	if lo >= hi {
		t.Errorf("centroid(5 Hz)=%v should be < centroid(30 Hz)=%v", lo, hi)
	}
}

func TestSpreadToneVsNoise(t *testing.T) {
	tone := Spread(spectrumOf(sinusoid(10, 100, 256)))
	noise := Spread(spectrumOf(whiteNoise(256, 1)))
	if tone >= noise {
		t.Errorf("spread(tone)=%v should be < spread(noise)=%v", tone, noise)
	}
}

func TestFlatnessBounds(t *testing.T) {
	tone := Flatness(spectrumOf(sinusoid(10, 100, 256)))
	noise := Flatness(spectrumOf(whiteNoise(256, 2)))
	if tone < 0 || tone > 1 || noise < 0 || noise > 1 {
		t.Fatalf("flatness out of [0,1]: tone=%v noise=%v", tone, noise)
	}
	if tone >= noise {
		t.Errorf("flatness(tone)=%v should be < flatness(noise)=%v", tone, noise)
	}
}

func TestEntropyBoundsAndOrdering(t *testing.T) {
	tone := Entropy(spectrumOf(sinusoid(10, 100, 256)))
	noise := Entropy(spectrumOf(whiteNoise(256, 3)))
	if tone < 0 || tone > 1+1e-9 || noise < 0 || noise > 1+1e-9 {
		t.Fatalf("entropy out of [0,1]: tone=%v noise=%v", tone, noise)
	}
	if tone >= noise {
		t.Errorf("entropy(tone)=%v should be < entropy(noise)=%v", tone, noise)
	}
}

func TestRolloff(t *testing.T) {
	// For a pure 10 Hz tone nearly all magnitude sits at 10 Hz, so the 85%
	// rolloff must be at or just above 10 Hz.
	r := Rolloff(spectrumOf(sinusoid(10, 100, 256)), DefaultRolloffFraction)
	if r < 8 || r > 14 {
		t.Errorf("rolloff = %v, want near 10", r)
	}
	// Rolloff is monotone in the fraction.
	sp := spectrumOf(whiteNoise(256, 4))
	if Rolloff(sp, 0.5) > Rolloff(sp, 0.95) {
		t.Error("rolloff should be monotone in fraction")
	}
	// Invalid fraction falls back to the default.
	if got, want := Rolloff(sp, -1), Rolloff(sp, DefaultRolloffFraction); got != want {
		t.Errorf("invalid fraction rolloff = %v, want %v", got, want)
	}
}

func TestBrightness(t *testing.T) {
	loTone := Brightness(spectrumOf(sinusoid(5, 100, 256)), 20)
	hiTone := Brightness(spectrumOf(sinusoid(40, 100, 256)), 20)
	if loTone >= hiTone {
		t.Errorf("brightness(5 Hz)=%v should be < brightness(40 Hz)=%v", loTone, hiTone)
	}
	if b := Brightness(spectrumOf(sinusoid(40, 100, 256)), 0); math.Abs(b-1) > 1e-9 {
		t.Errorf("brightness with zero cutoff = %v, want 1", b)
	}
}

func TestSkewnessAndKurtosisFinite(t *testing.T) {
	for _, xs := range [][]float64{
		sinusoid(10, 100, 256),
		whiteNoise(256, 5),
	} {
		sp := spectrumOf(xs)
		for name, v := range map[string]float64{
			"skewness": Skewness(sp),
			"kurtosis": Kurtosis(sp),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s is not finite: %v", name, v)
			}
		}
	}
}

func TestIrregularity(t *testing.T) {
	smooth := signal.Spectrum{
		Freqs: []float64{0, 1, 2, 3},
		Mags:  []float64{1, 1, 1, 1},
	}
	jagged := signal.Spectrum{
		Freqs: []float64{0, 1, 2, 3},
		Mags:  []float64{1, 0, 1, 0},
	}
	if Irregularity(smooth) != 0 {
		t.Errorf("irregularity of flat spectrum = %v, want 0", Irregularity(smooth))
	}
	if Irregularity(jagged) <= Irregularity(smooth) {
		t.Error("jagged spectrum should be more irregular than flat")
	}
}

func TestRoughness(t *testing.T) {
	// Two close tones beat against each other: roughness > single tone.
	two := make([]float64, 512)
	for i := range two {
		ti := float64(i) / 100
		two[i] = math.Sin(2*math.Pi*20*ti) + math.Sin(2*math.Pi*24*ti)
	}
	one := sinusoid(20, 100, 512)
	rTwo := Roughness(spectrumOf(two))
	rOne := Roughness(spectrumOf(one))
	if rTwo <= rOne {
		t.Errorf("roughness(two close tones)=%v should exceed single tone=%v", rTwo, rOne)
	}
}

func TestDegenerateSpectraAllZero(t *testing.T) {
	empty := signal.Spectrum{}
	zero := signal.Spectrum{Freqs: []float64{0, 1}, Mags: []float64{0, 0}}
	for _, sp := range []signal.Spectrum{empty, zero} {
		feats := map[string]float64{
			"centroid":     Centroid(sp),
			"spread":       Spread(sp),
			"skewness":     Skewness(sp),
			"kurtosis":     Kurtosis(sp),
			"irregularity": Irregularity(sp),
			"entropy":      Entropy(sp),
			"rolloff":      Rolloff(sp, 0.85),
			"brightness":   Brightness(sp, 10),
			"rms":          RMS(sp),
			"roughness":    Roughness(sp),
		}
		for name, v := range feats {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s on degenerate spectrum is %v, want finite", name, v)
			}
		}
	}
	// Flatness of an all-zero spectrum uses the floor; it must stay finite
	// and within [0, 1].
	if f := Flatness(zero); math.IsNaN(f) || f < 0 || f > 1+1e-9 {
		t.Errorf("flatness degenerate = %v", f)
	}
}

func TestAllFeaturesFiniteOnRandomSignals(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sp := spectrumOf(whiteNoise(128, seed))
		vals := []float64{
			Centroid(sp), Spread(sp), Skewness(sp), Kurtosis(sp),
			Flatness(sp), Irregularity(sp), Entropy(sp),
			Rolloff(sp, 0.85), Brightness(sp, 10), RMS(sp), Roughness(sp),
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("seed %d feature %d not finite: %v", seed, i, v)
			}
		}
	}
}
