// Package spectral implements the eleven frequency-domain features of
// Table II in the paper (features #10-#20): spectral centroid, spread,
// skewness, kurtosis, flatness, irregularity, entropy, rolloff, brightness,
// RMS, and roughness. The definitions follow Peeters, "A large set of audio
// features for sound description" (CUIDADO technical report, 2004), the
// reference the paper cites.
//
// All features operate on a one-sided magnitude spectrum produced by
// signal.PowerSpectrum. Degenerate spectra (all-zero magnitude) yield zero
// for every feature rather than NaN, so downstream clustering never sees
// non-finite values.
package spectral

import (
	"math"

	"sybiltd/internal/signal"
)

// Centroid returns the spectral centroid: the magnitude-weighted mean
// frequency, i.e. the center of mass of the spectral power distribution.
func Centroid(s signal.Spectrum) float64 {
	total := s.TotalMagnitude()
	if total == 0 {
		return 0
	}
	var sum float64
	for i, m := range s.Mags {
		sum += s.Freqs[i] * m
	}
	return sum / total
}

// Spread returns the spectral spread: the magnitude-weighted standard
// deviation of frequency around the centroid.
func Spread(s signal.Spectrum) float64 {
	total := s.TotalMagnitude()
	if total == 0 {
		return 0
	}
	c := Centroid(s)
	var sum float64
	for i, m := range s.Mags {
		d := s.Freqs[i] - c
		sum += d * d * m
	}
	return math.Sqrt(sum / total)
}

// Skewness returns the coefficient of skewness of the spectrum: the
// magnitude-weighted third standardized moment of frequency.
func Skewness(s signal.Spectrum) float64 {
	total := s.TotalMagnitude()
	if total == 0 {
		return 0
	}
	c := Centroid(s)
	sp := Spread(s)
	if sp == 0 {
		return 0
	}
	var sum float64
	for i, m := range s.Mags {
		d := s.Freqs[i] - c
		sum += d * d * d * m
	}
	return sum / total / (sp * sp * sp)
}

// Kurtosis returns the magnitude-weighted fourth standardized moment of
// frequency, measuring the flatness or spikiness of the spectral
// distribution relative to a normal distribution.
func Kurtosis(s signal.Spectrum) float64 {
	total := s.TotalMagnitude()
	if total == 0 {
		return 0
	}
	c := Centroid(s)
	sp := Spread(s)
	if sp == 0 {
		return 0
	}
	var sum float64
	for i, m := range s.Mags {
		d := s.Freqs[i] - c
		d2 := d * d
		sum += d2 * d2 * m
	}
	return sum / total / (sp * sp * sp * sp)
}

// Flatness returns the spectral flatness (Wiener entropy): the ratio of the
// geometric mean to the arithmetic mean of the magnitude spectrum. It
// measures how evenly energy is spread across the spectrum: 1 for white
// noise, near 0 for a pure tone.
func Flatness(s signal.Spectrum) float64 {
	n := len(s.Mags)
	if n == 0 {
		return 0
	}
	const floor = 1e-12 // avoid log(0) for empty bins
	var logSum, sum float64
	for _, m := range s.Mags {
		if m < floor {
			m = floor
		}
		logSum += math.Log(m)
		sum += m
	}
	arith := sum / float64(n)
	if arith == 0 {
		return 0
	}
	geo := math.Exp(logSum / float64(n))
	return geo / arith
}

// Irregularity returns the degree of variation of successive spectral
// amplitudes: the sum of squared differences between adjacent bins,
// normalized by the total squared amplitude (Jensen's definition).
func Irregularity(s signal.Spectrum) float64 {
	if len(s.Mags) < 2 {
		return 0
	}
	var num, den float64
	for i := 1; i < len(s.Mags); i++ {
		d := s.Mags[i] - s.Mags[i-1]
		num += d * d
	}
	for _, m := range s.Mags {
		den += m * m
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Entropy returns the Shannon entropy of the normalized spectral power
// distribution, normalized to [0, 1] by dividing by log(number of bins).
// A flat spectrum has entropy 1; a single-peak spectrum has entropy 0.
func Entropy(s signal.Spectrum) float64 {
	n := len(s.Mags)
	if n < 2 {
		return 0
	}
	total := s.TotalEnergy()
	if total == 0 {
		return 0
	}
	var h float64
	for _, m := range s.Mags {
		p := m * m / total
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(n))
}

// DefaultRolloffFraction is the energy fraction used by Rolloff when the
// paper's definition ("the frequency below which 85% of the distribution
// magnitude is concentrated") is wanted.
const DefaultRolloffFraction = 0.85

// Rolloff returns the frequency below which fraction of the total spectral
// magnitude is concentrated. fraction is clamped into (0, 1].
func Rolloff(s signal.Spectrum, fraction float64) float64 {
	if len(s.Mags) == 0 {
		return 0
	}
	if fraction <= 0 || fraction > 1 {
		fraction = DefaultRolloffFraction
	}
	total := s.TotalMagnitude()
	if total == 0 {
		return 0
	}
	target := fraction * total
	var cum float64
	for i, m := range s.Mags {
		cum += m
		if cum >= target {
			return s.Freqs[i]
		}
	}
	return s.Freqs[len(s.Freqs)-1]
}

// Brightness returns the fraction of spectral magnitude above cutoff Hz.
func Brightness(s signal.Spectrum, cutoff float64) float64 {
	total := s.TotalMagnitude()
	if total == 0 {
		return 0
	}
	var high float64
	for i, m := range s.Mags {
		if s.Freqs[i] >= cutoff {
			high += m
		}
	}
	return high / total
}

// RMS returns the root mean square of the spectral magnitudes.
func RMS(s signal.Spectrum) float64 {
	return signal.RMS(s.Mags)
}

// Roughness returns the average pairwise dissonance between spectral peaks,
// using the Plomp-Levelt dissonance approximation (Sethares' parametric
// fit). Peaks are local maxima of the magnitude spectrum.
func Roughness(s signal.Spectrum) float64 {
	peaks := findPeaks(s)
	if len(peaks) < 2 {
		return 0
	}
	var total float64
	var pairs int
	for i := 0; i < len(peaks); i++ {
		for j := i + 1; j < len(peaks); j++ {
			total += dissonance(peaks[i], peaks[j])
			pairs++
		}
	}
	return total / float64(pairs)
}

type peak struct {
	freq float64
	amp  float64
}

// findPeaks returns local maxima of the magnitude spectrum (strictly greater
// than the left neighbour, at least as great as the right one).
func findPeaks(s signal.Spectrum) []peak {
	var peaks []peak
	for i := 1; i < len(s.Mags)-1; i++ {
		if s.Mags[i] > s.Mags[i-1] && s.Mags[i] >= s.Mags[i+1] && s.Mags[i] > 0 {
			peaks = append(peaks, peak{freq: s.Freqs[i], amp: s.Mags[i]})
		}
	}
	return peaks
}

// dissonance computes the Plomp-Levelt dissonance between two spectral
// peaks using Sethares' parameterization.
func dissonance(p, q peak) float64 {
	const (
		b1 = 3.5
		b2 = 5.75
		// dStar is the point of maximum dissonance; s1, s2 parameterize how
		// the dissonance curve scales with register.
		dStar = 0.24
		s1    = 0.0207
		s2    = 18.96
	)
	fLo, fHi := p.freq, q.freq
	if fLo > fHi {
		fLo, fHi = fHi, fLo
	}
	sc := dStar / (s1*fLo + s2)
	d := fHi - fLo
	a := p.amp * q.amp
	return a * (math.Exp(-b1*sc*d) - math.Exp(-b2*sc*d))
}
