package grouping

import (
	"context"
	"fmt"
	"time"

	"sybiltd/internal/dtw"
	"sybiltd/internal/graph"
	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/parallel"
)

// DefaultPhi is the dissimilarity threshold the paper uses in its worked
// example (φ = 1).
const DefaultPhi = 1.0

// TRMode selects the DTW flavor used by AG-TR.
type TRMode int

const (
	// TREq7 uses the paper's Eq. (7): squared pointwise distance, total
	// path cost divided by path length, square root. This is the default
	// and the variant used in the synthetic experiments.
	TREq7 TRMode = iota + 1
	// TRAbsolute uses the classic unnormalized absolute-distance DTW cost,
	// which is what the worked example of Fig. 4 actually tabulates.
	TRAbsolute
)

// AGTR groups accounts by trajectory (§IV-C, "Account Grouping by
// Trajectory"): each account's observations, ordered by timestamp, form a
// task series X_i (which tasks, in what order) and a timestamp series Y_i
// (when); the dissimilarity of Eq. (8),
//
//	D(i,j) = DTW(X_i, X_j) + DTW(Y_i, Y_j),
//
// is computed for every pair, pairs strictly below Phi become graph edges,
// and connected components become groups. It defends against Attack-II
// even when most accounts perform similar task sets, because the timestamp
// series still separates independent users.
type AGTR struct {
	// Phi is the dissimilarity threshold. Zero means DefaultPhi. Edges
	// require dissimilarity < Phi (the paper's strict inequality).
	Phi float64
	// PhiSet forces Phi to be used verbatim even when zero.
	PhiSet bool
	// Mode selects the DTW flavor; zero means TREq7.
	Mode TRMode
	// TimeUnit scales the timestamp series: each timestamp becomes the
	// duration since the campaign start divided by TimeUnit. Zero means
	// 24h, which reproduces the day-fraction magnitudes of Fig. 4(b).
	TimeUnit time.Duration
}

// Name implements Grouper.
func (AGTR) Name() string { return "AG-TR" }

// Series returns account ai's task series and timestamp series. Tasks are
// numbered from 1 (as in the paper's example); timestamps are offsets from
// origin in units of unit.
func (g AGTR) Series(ds *mcs.Dataset, ai int, origin time.Time, unit time.Duration) (tasks, times []float64) {
	obs := ds.Accounts[ai].SortedObservations()
	tasks = make([]float64, len(obs))
	times = make([]float64, len(obs))
	for k, o := range obs {
		tasks[k] = float64(o.Task + 1)
		times[k] = float64(o.Time.Sub(origin)) / float64(unit)
	}
	return tasks, times
}

// Dissimilarity returns the Eq. (8) dissimilarity between accounts i and j.
func (g AGTR) Dissimilarity(ds *mcs.Dataset, i, j int) float64 {
	origin, _, ok := ds.TimeSpan()
	if !ok {
		origin = time.Time{}
	}
	unit := g.TimeUnit
	if unit == 0 {
		unit = 24 * time.Hour
	}
	xi, yi := g.Series(ds, i, origin, unit)
	xj, yj := g.Series(ds, j, origin, unit)
	return g.distance(xi, xj) + g.distance(yi, yj)
}

func (g AGTR) distance(a, b []float64) float64 {
	var c dtw.Calculator
	return g.calcDistance(&c, a, b)
}

// calcDistance is distance through a caller-owned Calculator, so the hot
// pairwise loop reuses DP buffers instead of allocating four slices per
// DTW evaluation.
func (g AGTR) calcDistance(c *dtw.Calculator, a, b []float64) float64 {
	if g.Mode == TRAbsolute {
		return c.AbsoluteCost(a, b)
	}
	return c.Distance(a, b)
}

// Group implements Grouper.
func (g AGTR) Group(ds *mcs.Dataset) (Grouping, error) {
	return g.GroupContext(context.Background(), ds)
}

// GroupContext implements ContextGrouper: the O(n²) DTW distance-matrix
// fill — the framework's hottest stage — stops handing out pairs once ctx
// is done and the context error is returned, so a request deadline can
// bound a grouping pass that would otherwise run for seconds.
func (g AGTR) GroupContext(ctx context.Context, ds *mcs.Dataset) (Grouping, error) {
	if ds == nil {
		return Grouping{}, ErrNilDataset
	}
	n := ds.NumAccounts()
	if n == 0 {
		return Grouping{}, nil
	}
	phi := g.Phi
	if phi == 0 && !g.PhiSet {
		phi = DefaultPhi
	}
	unit := g.TimeUnit
	if unit == 0 {
		unit = 24 * time.Hour
	}
	origin, _, ok := ds.TimeSpan()
	if !ok {
		origin = time.Time{}
	}

	// Precompute the series once; the pairwise stage is O(n^2) DTW calls —
	// the framework's hot path. The packed Eq. (8) dissimilarity matrix is
	// filled in parallel with a per-worker DTW calculator (each pair writes
	// its own slot, so the matrix is bit-identical to the sequential loop),
	// then thresholded into the account graph in row-major order.
	taskSeries := make([][]float64, n)
	timeSeries := make([][]float64, n)
	for i := 0; i < n; i++ {
		taskSeries[i], timeSeries[i] = g.Series(ds, i, origin, unit)
	}
	dis := make([]float64, parallel.NumPairs(n))
	sw := obs.Default().Timer("grouping.agtr.distance_matrix_seconds").Start()
	err := parallel.PairwiseWorkersCtx(ctx, n, func() func(i, j, k int) {
		calc := dtw.NewCalculator()
		return func(i, j, k int) {
			if len(taskSeries[i]) == 0 || len(taskSeries[j]) == 0 {
				// No trajectory evidence: never group idle accounts.
				dis[k] = phi + 1
				return
			}
			dis[k] = g.calcDistance(calc, taskSeries[i], taskSeries[j]) +
				g.calcDistance(calc, timeSeries[i], timeSeries[j])
		}
	})
	sw.Stop()
	if err != nil {
		return Grouping{}, fmt.Errorf("grouping: AG-TR cancelled: %w", err)
	}
	sw = obs.Default().Timer("grouping.agtr.components_seconds").Start()
	ug, err := graph.ThresholdBelowPacked(n, dis, phi)
	if err != nil {
		return Grouping{}, fmt.Errorf("grouping: AG-TR: %w", err)
	}
	grp := fromComponents(ug.ConnectedComponents())
	sw.Stop()
	return grp, nil
}

var (
	_ Grouper        = AGTR{}
	_ ContextGrouper = AGTR{}
)
