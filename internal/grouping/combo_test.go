package grouping

import (
	"errors"
	"reflect"
	"testing"

	"sybiltd/internal/mcs"
)

// fixedGrouper returns a preset partition regardless of the dataset.
type fixedGrouper struct {
	name   string
	groups [][]int
	err    error
}

func (f fixedGrouper) Name() string { return f.name }
func (f fixedGrouper) Group(*mcs.Dataset) (Grouping, error) {
	if f.err != nil {
		return Grouping{}, f.err
	}
	return Grouping{Groups: f.groups}, nil
}

func comboDataset(n int) *mcs.Dataset {
	ds := mcs.NewDataset(1)
	for i := 0; i < n; i++ {
		ds.AddAccount(mcs.Account{ID: string(rune('a' + i))})
	}
	return ds
}

func TestComboIntersect(t *testing.T) {
	a := fixedGrouper{name: "A", groups: [][]int{{0, 1, 2}, {3}}}
	b := fixedGrouper{name: "B", groups: [][]int{{0, 1}, {2, 3}}}
	g, err := Combo{Members: []Grouper{a, b}, Mode: CombineIntersect}.Group(comboDataset(4))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}, {3}}
	if !reflect.DeepEqual(g.Groups, want) {
		t.Errorf("intersect = %v, want %v", g.Groups, want)
	}
}

func TestComboUnion(t *testing.T) {
	a := fixedGrouper{name: "A", groups: [][]int{{0, 1}, {2}, {3}}}
	b := fixedGrouper{name: "B", groups: [][]int{{0}, {1, 2}, {3}}}
	g, err := Combo{Members: []Grouper{a, b}, Mode: CombineUnion}.Group(comboDataset(4))
	if err != nil {
		t.Fatal(err)
	}
	// 0-1 from A, 1-2 from B: transitive closure merges {0,1,2}.
	want := [][]int{{0, 1, 2}, {3}}
	if !reflect.DeepEqual(g.Groups, want) {
		t.Errorf("union = %v, want %v", g.Groups, want)
	}
}

func TestComboMajority(t *testing.T) {
	a := fixedGrouper{name: "A", groups: [][]int{{0, 1}, {2}}}
	b := fixedGrouper{name: "B", groups: [][]int{{0, 1}, {2}}}
	c := fixedGrouper{name: "C", groups: [][]int{{0}, {1, 2}}}
	g, err := Combo{Members: []Grouper{a, b, c}, Mode: CombineMajority}.Group(comboDataset(3))
	if err != nil {
		t.Fatal(err)
	}
	// Pair (0,1) has 2/3 votes -> grouped; (1,2) has 1/3 -> not.
	want := [][]int{{0, 1}, {2}}
	if !reflect.DeepEqual(g.Groups, want) {
		t.Errorf("majority = %v, want %v", g.Groups, want)
	}
}

func TestComboDefaultsToIntersect(t *testing.T) {
	a := fixedGrouper{name: "A", groups: [][]int{{0, 1}}}
	b := fixedGrouper{name: "B", groups: [][]int{{0}, {1}}}
	g, err := Combo{Members: []Grouper{a, b}}.Group(comboDataset(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Errorf("default mode should intersect: %v", g.Groups)
	}
}

func TestComboPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	c := Combo{Members: []Grouper{fixedGrouper{name: "bad", err: boom}}}
	if _, err := c.Group(comboDataset(2)); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if _, err := (Combo{}).Group(comboDataset(2)); err == nil {
		t.Error("empty member list should error")
	}
}

func TestCombineModeString(t *testing.T) {
	if CombineIntersect.String() != "intersect" ||
		CombineUnion.String() != "union" ||
		CombineMajority.String() != "majority" {
		t.Error("mode strings wrong")
	}
	if CombineMode(99).String() == "" {
		t.Error("unknown mode should stringify")
	}
}
