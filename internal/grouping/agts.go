package grouping

import (
	"context"
	"fmt"

	"sybiltd/internal/graph"
	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/parallel"
)

// DefaultRho is the affinity threshold the paper uses in its worked
// example (ρ = 1).
const DefaultRho = 1.0

// AGTS groups accounts by accomplished task set (§IV-C, "Account Grouping
// by Task Set"): the affinity of Eq. (6),
//
//	A(i,j) = (T_ij − 2·L_ij) · (T_ij + L_ij) / m,
//
// where T_ij counts tasks both i and j performed and L_ij counts tasks
// exactly one of them performed, is computed for every account pair; pairs
// with affinity strictly above Rho become edges of an undirected graph, and
// each connected component is one group. Accounts in no component are
// singleton groups. It defends against Attack-II in campaigns where
// accounts have diverse task sets.
type AGTS struct {
	// Rho is the affinity threshold. Zero means DefaultRho. Edges require
	// affinity > Rho, matching the paper's strict inequality.
	Rho float64
	// RhoSet forces Rho to be used verbatim even when zero; set it when an
	// explicit threshold of 0 is wanted.
	RhoSet bool
}

// Name implements Grouper.
func (AGTS) Name() string { return "AG-TS" }

// Affinity returns the Eq. (6) affinity between accounts i and j of ds.
// m is taken from the dataset. Accounts with no observations have affinity
// with T=0, L=|other's tasks|.
func (AGTS) Affinity(ds *mcs.Dataset, i, j int) float64 {
	m := ds.NumTasks()
	if m == 0 {
		return 0
	}
	si := ds.Accounts[i].TaskSet()
	sj := ds.Accounts[j].TaskSet()
	return affinity(si, sj, m)
}

func affinity(si, sj map[int]bool, m int) float64 {
	var both, alone int
	for t := range si {
		if sj[t] {
			both++
		} else {
			alone++
		}
	}
	for t := range sj {
		if !si[t] {
			alone++
		}
	}
	return float64(both-2*alone) * float64(both+alone) / float64(m)
}

// Group implements Grouper.
func (g AGTS) Group(ds *mcs.Dataset) (Grouping, error) {
	return g.GroupContext(context.Background(), ds)
}

// GroupContext implements ContextGrouper: the O(n²) affinity-matrix fill
// stops handing out pairs once ctx is done and the context error is
// returned.
func (g AGTS) GroupContext(ctx context.Context, ds *mcs.Dataset) (Grouping, error) {
	if ds == nil {
		return Grouping{}, ErrNilDataset
	}
	n := ds.NumAccounts()
	if n == 0 {
		return Grouping{}, nil
	}
	rho := g.Rho
	if rho == 0 && !g.RhoSet {
		rho = DefaultRho
	}
	m := ds.NumTasks()
	sets := make([]map[int]bool, n)
	for i := range ds.Accounts {
		sets[i] = ds.Accounts[i].TaskSet()
	}
	// The packed Eq. (6) affinity matrix is filled in parallel — each pair
	// writes its own slot, so it is bit-identical to the sequential loop —
	// and thresholded into the account graph in row-major order.
	aff := make([]float64, parallel.NumPairs(n))
	sw := obs.Default().Timer("grouping.agts.affinity_matrix_seconds").Start()
	err := parallel.PairwiseCtx(ctx, n, func(i, j, k int) {
		if m == 0 {
			aff[k] = 0
			return
		}
		aff[k] = affinity(sets[i], sets[j], m)
	})
	sw.Stop()
	if err != nil {
		return Grouping{}, fmt.Errorf("grouping: AG-TS cancelled: %w", err)
	}
	sw = obs.Default().Timer("grouping.agts.components_seconds").Start()
	ug, err := graph.ThresholdAbovePacked(n, aff, rho)
	if err != nil {
		return Grouping{}, fmt.Errorf("grouping: AG-TS: %w", err)
	}
	grp := fromComponents(ug.ConnectedComponents())
	sw.Stop()
	return grp, nil
}

var (
	_ Grouper        = AGTS{}
	_ ContextGrouper = AGTS{}
)
