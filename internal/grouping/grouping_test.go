package grouping

import (
	"reflect"
	"testing"

	"sybiltd/internal/mcs"
	"sybiltd/internal/truth"
)

func TestGroupingLabels(t *testing.T) {
	g := Grouping{Groups: [][]int{{0, 2}, {1}}}
	labels := g.Labels(4)
	if labels[0] != labels[2] {
		t.Error("grouped accounts should share a label")
	}
	if labels[1] == labels[0] {
		t.Error("separate groups should differ")
	}
	if labels[3] == labels[0] || labels[3] == labels[1] {
		t.Error("uncovered account should get a fresh label")
	}
}

func TestGroupingValidate(t *testing.T) {
	good := Grouping{Groups: [][]int{{0, 1}, {2}}}
	if err := good.Validate(3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	for name, bad := range map[string]Grouping{
		"empty group":  {Groups: [][]int{{0, 1}, {}}},
		"out of range": {Groups: [][]int{{0, 1}, {5}}},
		"duplicate":    {Groups: [][]int{{0, 1}, {1}}},
		"missing":      {Groups: [][]int{{0}}},
	} {
		if err := bad.Validate(3); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGroupOf(t *testing.T) {
	g := Grouping{Groups: [][]int{{0, 2}, {1}}}
	if g.GroupOf(2) != 0 || g.GroupOf(1) != 1 {
		t.Error("GroupOf wrong")
	}
	if g.GroupOf(9) != -1 {
		t.Error("GroupOf missing should be -1")
	}
}

func TestSingletons(t *testing.T) {
	g := Singletons(3)
	if err := g.Validate(3); err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 3 {
		t.Errorf("NumGroups = %d, want 3", g.NumGroups())
	}
}

func TestAGTSPaperWalkthrough(t *testing.T) {
	// Table III example with Eq. (6) affinities and the strict threshold
	// ρ = 1. Literal Eq. (6) gives A(1,4')=1 and A(1,3)=1 — not > 1 — so
	// the Sybil accounts {4',4'',4'''} (A = 2.25 pairwise) form the only
	// multi-account component. (The paper's Fig. 3 tabulates different
	// affinity values that do not follow Eq. (6); see DESIGN.md errata.)
	ds := truth.PaperExampleWithSybil()
	g, err := AGTS{}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1}, {2}, {3, 4, 5}}
	if !reflect.DeepEqual(g.Groups, want) {
		t.Errorf("AG-TS groups = %v, want %v", g.Groups, want)
	}

	// With ρ = 0.9, the A = 1 edges (1,3) and (1,4') enter the graph and
	// the paper's false-positive component appears (plus account 3, which
	// ties account 4' in affinity to account 1 under literal Eq. 6).
	g, err = AGTS{Rho: 0.9}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	want = [][]int{{0, 2, 3, 4, 5}, {1}}
	if !reflect.DeepEqual(g.Groups, want) {
		t.Errorf("AG-TS ρ=0.9 groups = %v, want %v", g.Groups, want)
	}
}

func TestAGTSAffinityValues(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	agts := AGTS{}
	tests := []struct {
		i, j int
		want float64
	}{
		{0, 1, -2},    // 1 vs 2: T=2, L=2 -> (2-4)*(4)/4
		{0, 2, 1},     // 1 vs 3: T=3, L=1
		{0, 3, 1},     // 1 vs 4': T=3, L=1
		{3, 4, 2.25},  // 4' vs 4'': T=3, L=0
		{2, 3, -2},    // 3 vs 4': T=2, L=2
		{1, 3, -3.75}, // 2 vs 4': T=1, L=3 -> (1-6)*(4)/4 = -5? recompute below
	}
	for _, tt := range tests[:5] {
		if got := agts.Affinity(ds, tt.i, tt.j); got != tt.want {
			t.Errorf("A(%d,%d) = %v, want %v", tt.i, tt.j, got, tt.want)
		}
	}
	// 2={T2,T3}, 4'={T1,T3,T4}: T=1 (T3), L=3 (T2, T1, T4) ->
	// (1-6)*(1+3)/4 = -5.
	if got := agts.Affinity(ds, 1, 3); got != -5 {
		t.Errorf("A(2,4') = %v, want -5", got)
	}
	// Symmetry.
	if agts.Affinity(ds, 0, 3) != agts.Affinity(ds, 3, 0) {
		t.Error("affinity should be symmetric")
	}
}

func TestAGTRPaperWalkthrough(t *testing.T) {
	// Fig. 4: with absolute-cost DTW and φ = 1, only the Sybil accounts
	// (identical task series, near-identical day-fraction timestamps) are
	// grouped; accounts 1, 2, 3 stay singletons.
	ds := truth.PaperExampleWithSybil()
	g, err := AGTR{Mode: TRAbsolute}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1}, {2}, {3, 4, 5}}
	if !reflect.DeepEqual(g.Groups, want) {
		t.Errorf("AG-TR groups = %v, want %v (Fig. 4d)", g.Groups, want)
	}
}

func TestAGTRDissimilarityMatchesFig4Shape(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	agtr := AGTR{Mode: TRAbsolute}
	// D(4',4'') must be far below 1; D(1,4') just above 1 (1 task mismatch
	// + small time gap); D(2, anything) >= 2.
	if d := agtr.Dissimilarity(ds, 3, 4); d >= 0.1 {
		t.Errorf("D(4',4'') = %v, want << 1", d)
	}
	if d := agtr.Dissimilarity(ds, 0, 3); d <= 1 || d >= 1.1 {
		t.Errorf("D(1,4') = %v, want just above 1", d)
	}
	if d := agtr.Dissimilarity(ds, 1, 0); d < 2 {
		t.Errorf("D(2,1) = %v, want >= 2", d)
	}
	// Symmetry.
	if agtr.Dissimilarity(ds, 0, 3) != agtr.Dissimilarity(ds, 3, 0) {
		t.Error("dissimilarity should be symmetric")
	}
}

func TestAGTREq7ModeGroupsSybils(t *testing.T) {
	// The Eq. (7) normalized variant also isolates the Sybil accounts, with
	// a suitable threshold: normalized distances shrink (sqrt(cost/K)), so
	// the φ needs to be below the 1-mismatch level sqrt(1/4)=0.5.
	ds := truth.PaperExampleWithSybil()
	g, err := AGTR{Phi: 0.4}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.GroupOf(3); got != g.GroupOf(4) || got != g.GroupOf(5) {
		t.Errorf("Eq7 mode should group the Sybil accounts: %v", g.Groups)
	}
	for a := 0; a < 3; a++ {
		if g.GroupOf(a) == g.GroupOf(3) {
			t.Errorf("account %d wrongly grouped with Sybils: %v", a, g.Groups)
		}
	}
}

func TestAGTRIdleAccountsStaySingletons(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "idle1"})
	ds.AddAccount(mcs.Account{ID: "idle2"})
	g, err := AGTR{}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Errorf("idle accounts grouped: %v", g.Groups)
	}
}

func TestGroupersOnNilAndEmpty(t *testing.T) {
	groupers := []Grouper{AGFP{}, AGTS{}, AGTR{}, Combo{Members: []Grouper{AGTS{}}}}
	for _, gr := range groupers {
		if _, err := gr.Group(nil); err == nil {
			t.Errorf("%s: nil dataset should error", gr.Name())
		}
		g, err := gr.Group(mcs.NewDataset(3))
		if err != nil {
			t.Errorf("%s: empty dataset errored: %v", gr.Name(), err)
		}
		if g.NumGroups() != 0 {
			t.Errorf("%s: empty dataset produced groups: %v", gr.Name(), g.Groups)
		}
	}
}

func TestGrouperNames(t *testing.T) {
	if (AGFP{}).Name() != "AG-FP" || (AGTS{}).Name() != "AG-TS" || (AGTR{}).Name() != "AG-TR" {
		t.Error("unexpected grouper names")
	}
	combo := Combo{Members: []Grouper{AGFP{}, AGTR{}}, Mode: CombineIntersect}
	if got := combo.Name(); got != "AG-Combo[intersect:AG-FP+AG-TR]" {
		t.Errorf("combo name = %q", got)
	}
}

func TestGroupingsArePartitions(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	for _, gr := range []Grouper{AGTS{}, AGTR{}, AGTR{Mode: TRAbsolute}, Combo{Members: []Grouper{AGTS{}, AGTR{}}, Mode: CombineUnion}} {
		g, err := gr.Group(ds)
		if err != nil {
			t.Fatalf("%s: %v", gr.Name(), err)
		}
		if err := g.Validate(ds.NumAccounts()); err != nil {
			t.Errorf("%s: not a partition: %v", gr.Name(), err)
		}
	}
}

func TestAGFPSilhouetteVariantRuns(t *testing.T) {
	// Build a tiny fingerprinted dataset from the public simulate API is
	// not possible here (import cycle); synthesize three separable
	// fingerprint clusters directly.
	ds := mcs.NewDataset(1)
	mk := func(id string, base float64) {
		fp := make([]float64, 80)
		for i := range fp {
			fp[i] = base + float64(i%3)*0.01
		}
		ds.AddAccount(mcs.Account{ID: id, Fingerprint: fp})
	}
	mk("a1", 0)
	mk("a2", 0.02)
	mk("b1", 10)
	mk("b2", 10.02)
	for _, g := range []Grouper{AGFP{}, AGFP{UseSilhouette: true}} {
		got, err := g.Group(ds)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := got.Validate(4); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		// The two far-apart pairs must never be merged.
		if got.GroupOf(0) == got.GroupOf(2) {
			t.Errorf("%v merged distant fingerprints: %v", g, got.Groups)
		}
	}
}

func TestAGFPBareAccountsAreSingletons(t *testing.T) {
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "nofp1"})
	ds.AddAccount(mcs.Account{ID: "nofp2"})
	fp := make([]float64, 80)
	ds.AddAccount(mcs.Account{ID: "withfp", Fingerprint: fp})
	g, err := AGFP{}.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 3 {
		t.Errorf("groups = %v, want all singletons", g.Groups)
	}
}
