// Package grouping implements the paper's three account grouping methods
// (§IV-C) — AG-FP (device fingerprints), AG-TS (accomplished task sets),
// and AG-TR (trajectories) — plus the combination operator the paper leaves
// as future work. Each method partitions the accounts of a dataset into
// groups of accounts likely controlled by the same user; the
// Sybil-resistant framework (internal/core) then treats each group as a
// single data source.
package grouping

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"sybiltd/internal/mcs"
)

// ErrNilDataset is returned when Group receives a nil dataset.
var ErrNilDataset = errors.New("grouping: nil dataset")

// Grouping is a partition of account indices: every account index of the
// dataset appears in exactly one group.
type Grouping struct {
	Groups [][]int
}

// Labels converts the partition to a label vector of length n: accounts in
// the same group share a label.
func (g Grouping) Labels(n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for gi, members := range g.Groups {
		for _, a := range members {
			if a >= 0 && a < n {
				labels[a] = gi
			}
		}
	}
	next := len(g.Groups)
	for i, l := range labels {
		if l == -1 {
			labels[i] = next
			next++
		}
	}
	return labels
}

// NumGroups returns the number of groups.
func (g Grouping) NumGroups() int { return len(g.Groups) }

// GroupOf returns the group index containing account a, or -1.
func (g Grouping) GroupOf(a int) int {
	for gi, members := range g.Groups {
		for _, m := range members {
			if m == a {
				return gi
			}
		}
	}
	return -1
}

// Validate checks that the grouping is a partition of 0..n-1.
func (g Grouping) Validate(n int) error {
	seen := make([]bool, n)
	for gi, members := range g.Groups {
		if len(members) == 0 {
			return fmt.Errorf("grouping: group %d is empty", gi)
		}
		for _, a := range members {
			if a < 0 || a >= n {
				return fmt.Errorf("grouping: group %d contains out-of-range account %d", gi, a)
			}
			if seen[a] {
				return fmt.Errorf("grouping: account %d appears in multiple groups", a)
			}
			seen[a] = true
		}
	}
	for a, s := range seen {
		if !s {
			return fmt.Errorf("grouping: account %d not covered", a)
		}
	}
	return nil
}

// normalize sorts members within groups and groups by smallest member so
// that equal partitions compare equal.
func (g *Grouping) normalize() {
	for _, members := range g.Groups {
		sort.Ints(members)
	}
	sort.Slice(g.Groups, func(i, j int) bool {
		if len(g.Groups[i]) == 0 || len(g.Groups[j]) == 0 {
			return len(g.Groups[j]) == 0
		}
		return g.Groups[i][0] < g.Groups[j][0]
	})
}

// fromComponents converts connected components (which already cover every
// account) into a normalized Grouping.
func fromComponents(components [][]int) Grouping {
	g := Grouping{Groups: components}
	g.normalize()
	return g
}

// Grouper is an account grouping method: the AG(D, F) step of Algorithm 2.
type Grouper interface {
	// Name returns a short identifier such as "AG-FP".
	Name() string
	// Group partitions the dataset's accounts.
	Group(ds *mcs.Dataset) (Grouping, error)
}

// ContextGrouper is a Grouper whose pairwise/clustering work can be
// cancelled mid-flight. GroupContext must return promptly (with ctx's
// error, possibly wrapped) once ctx is done; work already scheduled on a
// worker pool is abandoned cooperatively, never leaked.
type ContextGrouper interface {
	Grouper
	// GroupContext is Group under a cancellation context.
	GroupContext(ctx context.Context, ds *mcs.Dataset) (Grouping, error)
}

// GroupWithContext partitions ds with g, honoring ctx when g implements
// ContextGrouper. Groupers without context support run to completion; the
// context is only checked before the call, so callers that need a hard
// bound should prefer context-aware groupers (AG-FP, AG-TS, AG-TR all
// are).
func GroupWithContext(ctx context.Context, g Grouper, ds *mcs.Dataset) (Grouping, error) {
	if cg, ok := g.(ContextGrouper); ok {
		return cg.GroupContext(ctx, ds)
	}
	if err := ctx.Err(); err != nil {
		return Grouping{}, err
	}
	return g.Group(ds)
}

// Singletons returns the trivial grouping in which every account is alone —
// under it, the Sybil-resistant framework degenerates to plain truth
// discovery. Useful as a baseline and for tests.
func Singletons(n int) Grouping {
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	return Grouping{Groups: groups}
}
