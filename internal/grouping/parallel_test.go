package grouping

import (
	"reflect"
	"runtime"
	"testing"

	"sybiltd/internal/simulate"
)

// withProcs runs fn under the given GOMAXPROCS and restores the previous
// value; goroutines multiplex fine onto fewer physical cores, so the
// parallel pairwise paths are exercised even on single-CPU machines.
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// TestGroupingParallelMatchesSequential pins the determinism guarantee of
// the parallel pairwise engine: every grouping method returns an identical
// partition at GOMAXPROCS=1 and GOMAXPROCS=8, because each pair's matrix
// slot is preassigned and thresholding scans in row-major order.
func TestGroupingParallelMatchesSequential(t *testing.T) {
	sc, err := simulate.Build(simulate.Config{Seed: 21, NumLegit: 30, SybilActiveness: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	n := sc.Dataset.NumAccounts()
	groupers := []Grouper{
		AGTR{Phi: 0.3},
		AGTR{Mode: TRAbsolute, Phi: 3},
		AGTS{},
		AGFP{},
		AGFP{UseSilhouette: true},
		Combo{Members: []Grouper{AGFP{}, AGTS{}, AGTR{Phi: 0.3}}, Mode: CombineMajority},
	}
	for _, g := range groupers {
		var seq, par Grouping
		withProcs(t, 1, func() {
			var err error
			if seq, err = g.Group(sc.Dataset); err != nil {
				t.Fatalf("%s sequential: %v", g.Name(), err)
			}
		})
		withProcs(t, 8, func() {
			var err error
			if par, err = g.Group(sc.Dataset); err != nil {
				t.Fatalf("%s parallel: %v", g.Name(), err)
			}
		})
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: partition differs across GOMAXPROCS:\nseq: %v\npar: %v", g.Name(), seq.Groups, par.Groups)
		}
		if err := seq.Validate(n); err != nil {
			t.Errorf("%s: invalid partition: %v", g.Name(), err)
		}
	}
}

// TestAGTRPairwiseMatchesDissimilarity checks that the packed matrix the
// parallel engine computes agrees with the per-pair Dissimilarity API the
// walkthrough experiments use.
func TestAGTRPairwiseMatchesDissimilarity(t *testing.T) {
	sc, err := simulate.Build(simulate.Config{Seed: 5, NumLegit: 6})
	if err != nil {
		t.Fatal(err)
	}
	ds := sc.Dataset
	g := AGTR{Phi: 0.3}
	grouping, err := g.Group(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := grouping.Validate(ds.NumAccounts()); err != nil {
		t.Fatal(err)
	}
	// Any pair the grouping merged must be below the threshold per the
	// public Dissimilarity; any split pair in different groups must not
	// form an edge (they can still be connected transitively, so only the
	// merged direction is a strict invariant on edges' existence).
	for _, members := range grouping.Groups {
		if len(members) < 2 {
			continue
		}
		// Connected components guarantee at least one sub-threshold edge
		// per member; check the group's closest pair is sub-threshold.
		closest := g.Dissimilarity(ds, members[0], members[1])
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				if d := g.Dissimilarity(ds, members[a], members[b]); d < closest {
					closest = d
				}
			}
		}
		if closest >= 0.3 {
			t.Errorf("group %v has no sub-threshold pair (closest %.3f)", members, closest)
		}
	}
}
