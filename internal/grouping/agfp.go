package grouping

import (
	"context"
	"fmt"

	"sybiltd/internal/cluster"
	"sybiltd/internal/fingerprint"
	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/pca"
)

// AGFP groups accounts by device fingerprint (§IV-C, "Account Grouping by
// Device Fingerprint"): the feature vectors extracted from each account's
// sign-in motion capture are standardized and clustered with k-means, with
// k chosen by the elbow method since the platform does not know the true
// number of devices. Accounts sharing a cluster are assumed to share a
// device, which defends against Attack-I (one device, many accounts).
type AGFP struct {
	// MaxK caps the elbow sweep. Zero means the number of accounts (the
	// paper's "k from 1 to n").
	MaxK int
	// FixedK, when positive, skips the elbow method and clusters with
	// exactly FixedK clusters (used by the Fig. 2 walkthrough where the
	// device count is known). Zero selects the elbow method.
	FixedK int
	// Cluster tunes the underlying k-means (restarts, iterations, rand).
	Cluster cluster.Config
	// UseSilhouette selects k by maximum mean silhouette instead of the
	// elbow method. The paper uses the elbow; silhouette is provided for
	// the k-selection ablation.
	UseSilhouette bool
	// PCAVarianceFrac controls the PCA reduction applied before
	// clustering: enough principal components are kept to explain this
	// fraction of the standardized features' variance. Reducing first
	// matters because per-capture estimation noise is spread isotropically
	// across all 80 Table II features while the device signal concentrates
	// in a few directions (Fig. 2 plots fingerprints in PC space for the
	// same reason). Zero means 0.9; negative disables PCA.
	PCAVarianceFrac float64
}

// Name implements Grouper.
func (AGFP) Name() string { return "AG-FP" }

// Group implements Grouper. Accounts without a fingerprint become
// singleton groups: without sensor evidence the method has nothing to say
// about them, and the framework's false-positive caution (§IV-A) argues
// against guessing.
func (g AGFP) Group(ds *mcs.Dataset) (Grouping, error) {
	return g.GroupContext(context.Background(), ds)
}

// GroupContext implements ContextGrouper. AG-FP's stages (standardize,
// PCA, k-means sweep) are checked against ctx at their boundaries; the
// k-means restarts themselves run to completion, so cancellation latency
// is bounded by one clustering pass rather than the whole k sweep.
func (g AGFP) GroupContext(ctx context.Context, ds *mcs.Dataset) (Grouping, error) {
	if ds == nil {
		return Grouping{}, ErrNilDataset
	}
	if err := ctx.Err(); err != nil {
		return Grouping{}, fmt.Errorf("grouping: AG-FP cancelled: %w", err)
	}
	n := ds.NumAccounts()
	if n == 0 {
		return Grouping{}, nil
	}

	// Partition accounts into fingerprinted and bare.
	var withFP []int
	var bare []int
	for i := range ds.Accounts {
		if len(ds.Accounts[i].Fingerprint) > 0 {
			withFP = append(withFP, i)
		} else {
			bare = append(bare, i)
		}
	}

	var groups [][]int
	if len(withFP) > 0 {
		matrix := make(fingerprint.Matrix, len(withFP))
		dim := len(ds.Accounts[withFP[0]].Fingerprint)
		for row, ai := range withFP {
			fp := ds.Accounts[ai].Fingerprint
			if len(fp) != dim {
				return Grouping{}, fmt.Errorf("grouping: account %q fingerprint dim %d != %d", ds.Accounts[ai].ID, len(fp), dim)
			}
			matrix[row] = fp
		}
		std := fingerprint.Standardize(matrix)
		sw := obs.Default().Timer("grouping.agfp.pca_seconds").Start()
		points, err := g.reduce(std)
		sw.Stop()
		if err != nil {
			return Grouping{}, fmt.Errorf("grouping: AG-FP PCA: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return Grouping{}, fmt.Errorf("grouping: AG-FP cancelled: %w", err)
		}

		sw = obs.Default().Timer("grouping.agfp.clustering_seconds").Start()
		var assignments []int
		if g.FixedK > 0 {
			k := g.FixedK
			if k > len(withFP) {
				k = len(withFP)
			}
			cfg := g.Cluster
			cfg.K = k
			res, err := cluster.KMeans(points, cfg)
			if err != nil {
				return Grouping{}, fmt.Errorf("grouping: AG-FP k-means: %w", err)
			}
			assignments = res.Assignments
		} else {
			maxK := g.MaxK
			if maxK <= 0 || maxK > len(withFP) {
				maxK = len(withFP)
			}
			selector := cluster.Elbow
			if g.UseSilhouette {
				selector = cluster.SilhouetteSelect
			}
			res, err := selector(points, maxK, g.Cluster)
			if err != nil {
				return Grouping{}, fmt.Errorf("grouping: AG-FP k selection: %w", err)
			}
			assignments = res.Result.Assignments
		}
		sw.Stop()

		byCluster := map[int][]int{}
		for row, c := range assignments {
			byCluster[c] = append(byCluster[c], withFP[row])
		}
		for _, members := range byCluster {
			groups = append(groups, members)
		}
	}
	for _, ai := range bare {
		groups = append(groups, []int{ai})
	}
	return fromComponents(groups), nil
}

var (
	_ Grouper        = AGFP{}
	_ ContextGrouper = AGFP{}
)

// reduce projects standardized fingerprints onto the leading principal
// components per PCAVarianceFrac.
func (g AGFP) reduce(std fingerprint.Matrix) ([][]float64, error) {
	frac := g.PCAVarianceFrac
	if frac < 0 {
		return std, nil
	}
	if frac == 0 {
		frac = 0.9
	}
	if frac > 1 {
		frac = 1
	}
	if len(std) < 2 {
		return std, nil
	}
	model, err := pca.Fit(std, 0)
	if err != nil {
		return nil, err
	}
	ratios := model.ExplainedVarianceRatio()
	keep := 0
	var cum float64
	for _, r := range ratios {
		keep++
		cum += r
		if cum >= frac {
			break
		}
	}
	if keep < 2 {
		keep = 2
	}
	model.Components = model.Components[:keep]
	model.Variances = model.Variances[:keep]
	return model.Transform(std)
}
