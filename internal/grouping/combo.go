package grouping

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"sybiltd/internal/graph"
	"sybiltd/internal/mcs"
)

// CombineMode selects how Combo merges the verdicts of its members.
// The paper lists combining the grouping methods as future work (§IV-C
// Remarks); Combo implements the three natural lattice operations on
// partitions.
type CombineMode int

const (
	// CombineIntersect groups two accounts only when every member method
	// groups them (the meet of the partitions). It minimizes false
	// positives at the cost of recall.
	CombineIntersect CombineMode = iota + 1
	// CombineUnion groups two accounts when any member method groups them
	// (the join of the partitions: connected components of the union of
	// co-membership graphs). It maximizes recall.
	CombineUnion
	// CombineMajority groups two accounts when strictly more than half of
	// the member methods group them, then takes the transitive closure.
	CombineMajority
)

// String returns a short mode label.
func (m CombineMode) String() string {
	switch m {
	case CombineIntersect:
		return "intersect"
	case CombineUnion:
		return "union"
	case CombineMajority:
		return "majority"
	default:
		return fmt.Sprintf("CombineMode(%d)", int(m))
	}
}

// Combo combines several grouping methods into one (the paper's future
// work). Member methods run independently; their pairwise co-membership
// verdicts are merged according to Mode.
type Combo struct {
	Members []Grouper
	Mode    CombineMode
}

// Name implements Grouper, e.g. "AG-Combo[intersect:AG-FP+AG-TR]".
func (c Combo) Name() string {
	names := make([]string, len(c.Members))
	for i, m := range c.Members {
		names[i] = m.Name()
	}
	return fmt.Sprintf("AG-Combo[%s:%s]", c.Mode, strings.Join(names, "+"))
}

// Group implements Grouper.
func (c Combo) Group(ds *mcs.Dataset) (Grouping, error) {
	return c.GroupContext(context.Background(), ds)
}

// GroupContext implements ContextGrouper: cancellation is forwarded to
// every member that supports it and checked between members.
func (c Combo) GroupContext(ctx context.Context, ds *mcs.Dataset) (Grouping, error) {
	if ds == nil {
		return Grouping{}, ErrNilDataset
	}
	if len(c.Members) == 0 {
		return Grouping{}, errors.New("grouping: Combo has no members")
	}
	mode := c.Mode
	if mode == 0 {
		mode = CombineIntersect
	}
	n := ds.NumAccounts()
	labelings := make([][]int, len(c.Members))
	for mi, member := range c.Members {
		g, err := GroupWithContext(ctx, member, ds)
		if err != nil {
			return Grouping{}, fmt.Errorf("grouping: combo member %s: %w", member.Name(), err)
		}
		labelings[mi] = g.Labels(n)
	}

	together := func(i, j int) bool {
		votes := 0
		for _, labels := range labelings {
			if labels[i] == labels[j] {
				votes++
			}
		}
		switch mode {
		case CombineUnion:
			return votes > 0
		case CombineMajority:
			return 2*votes > len(labelings)
		default: // CombineIntersect
			return votes == len(labelings)
		}
	}

	uf := graph.NewUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if together(i, j) {
				uf.Union(i, j)
			}
		}
	}
	return fromComponents(uf.Components()), nil
}

var (
	_ Grouper        = Combo{}
	_ ContextGrouper = Combo{}
)
