package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sybiltd/internal/mcs"
)

// randomCampaign builds a random small dataset (no fingerprints, so AG-FP
// degenerates to singletons — tested separately on simulated scenarios).
func randomCampaign(seed int64) *mcs.Dataset {
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(8)
	n := rng.Intn(10)
	ds := mcs.NewDataset(m)
	base := time.Date(2026, 7, 2, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		var obs []mcs.Observation
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.5 {
				continue
			}
			obs = append(obs, mcs.Observation{
				Task:  j,
				Value: rng.NormFloat64() * 20,
				Time:  base.Add(time.Duration(rng.Intn(7200)) * time.Second),
			})
		}
		ds.AddAccount(mcs.Account{ID: string(rune('a' + i)), Observations: obs})
	}
	return ds
}

// Property: every grouping method always returns a valid partition of the
// accounts, for arbitrary datasets and thresholds.
func TestGroupersAlwaysPartitionProperty(t *testing.T) {
	f := func(seed int64, rhoRaw, phiRaw uint8) bool {
		ds := randomCampaign(seed)
		rho := float64(rhoRaw)/32 - 2 // spans negative..positive
		phi := float64(phiRaw) / 64
		groupers := []Grouper{
			AGTS{Rho: rho, RhoSet: true},
			AGTR{Phi: phi, PhiSet: true},
			AGTR{Phi: phi, PhiSet: true, Mode: TRAbsolute},
			Combo{Members: []Grouper{AGTS{}, AGTR{}}, Mode: CombineUnion},
			Combo{Members: []Grouper{AGTS{}, AGTR{}}, Mode: CombineMajority},
		}
		for _, gr := range groupers {
			g, err := gr.Group(ds)
			if err != nil {
				return false
			}
			if err := g.Validate(ds.NumAccounts()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AG-TS affinity and AG-TR dissimilarity are symmetric on
// arbitrary datasets.
func TestPairwiseMeasuresSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomCampaign(seed)
		n := ds.NumAccounts()
		agts := AGTS{}
		agtr := AGTR{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if agts.Affinity(ds, i, j) != agts.Affinity(ds, j, i) {
					return false
				}
				dij := agtr.Dissimilarity(ds, i, j)
				dji := agtr.Dissimilarity(ds, j, i)
				// Both may be +Inf for idle accounts; NaN never.
				if dij != dji && !(dij != dij && dji != dji) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: raising AG-TR's φ (more permissive) never increases the number
// of groups; raising AG-TS's ρ (stricter) never decreases it.
func TestThresholdMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomCampaign(seed)
		if ds.NumAccounts() == 0 {
			return true
		}
		prevGroups := -1
		for _, phi := range []float64{0.01, 0.1, 0.5, 2, 10} {
			g, err := AGTR{Phi: phi, PhiSet: true}.Group(ds)
			if err != nil {
				return false
			}
			if prevGroups != -1 && g.NumGroups() > prevGroups {
				return false
			}
			prevGroups = g.NumGroups()
		}
		prevGroups = -1
		for _, rho := range []float64{-5, 0, 1, 5, 20} {
			g, err := AGTS{Rho: rho, RhoSet: true}.Group(ds)
			if err != nil {
				return false
			}
			if prevGroups != -1 && g.NumGroups() < prevGroups {
				return false
			}
			prevGroups = g.NumGroups()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
