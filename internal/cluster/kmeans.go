// Package cluster implements the clustering substrate used by AG-FP:
// k-means with k-means++ seeding, the elbow method for choosing k, and a
// silhouette score for diagnostics.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sybiltd/internal/parallel"
)

// ErrNoPoints is returned when clustering is attempted on an empty dataset.
var ErrNoPoints = errors.New("cluster: no points")

// Result is the output of a k-means run.
type Result struct {
	// Assignments[i] is the cluster index of point i, in [0, K).
	Assignments []int
	// Centroids[c] is the center of cluster c.
	Centroids [][]float64
	// SSE is the sum of squared distances from each point to its centroid
	// (the k-means objective, also called inertia).
	SSE float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// K returns the number of clusters in the result.
func (r Result) K() int { return len(r.Centroids) }

// Groups converts the assignment vector into per-cluster index lists.
// Empty clusters yield empty (non-nil) slices.
func (r Result) Groups() [][]int {
	groups := make([][]int, r.K())
	for c := range groups {
		groups[c] = []int{}
	}
	for i, c := range r.Assignments {
		groups[c] = append(groups[c], i)
	}
	return groups
}

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters; must be in [1, len(points)].
	K int
	// MaxIterations bounds the Lloyd loop. Zero means 100.
	MaxIterations int
	// Restarts is the number of independent k-means++ initializations; the
	// run with the lowest SSE wins. Zero means 4.
	Restarts int
	// Rand drives seeding. Nil means a fixed-seed source, so results are
	// reproducible by default.
	Rand *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// KMeans clusters points into cfg.K clusters using Lloyd's algorithm with
// k-means++ seeding and restarts. Points must be non-empty rows of equal
// dimension.
//
// The restarts run on up to GOMAXPROCS workers. Randomness is only drawn
// during seeding, so all initializations are drawn from cfg.Rand up front
// in restart order — exactly the stream the sequential loop consumed — and
// the deterministic Lloyd iterations fan out; the winner (lowest SSE, ties
// to the earliest restart) is therefore independent of GOMAXPROCS.
func KMeans(points [][]float64, cfg Config) (Result, error) {
	if err := validatePoints(points); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	if cfg.K < 1 || cfg.K > len(points) {
		return Result{}, fmt.Errorf("cluster: k=%d out of range [1, %d]", cfg.K, len(points))
	}
	seeds := seedRestarts(points, cfg)
	results := make([]Result, len(seeds))
	_ = parallel.ForEach(len(seeds), func(r int) error {
		results[r] = lloydFrom(points, seeds[r], cfg)
		return nil
	})
	best := Result{SSE: math.Inf(1)}
	for _, res := range results {
		if res.SSE < best.SSE {
			best = res
		}
	}
	return best, nil
}

// validatePoints checks for a non-empty rectangular point matrix.
func validatePoints(points [][]float64) error {
	if len(points) == 0 {
		return ErrNoPoints
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	return nil
}

// seedRestarts draws the k-means++ initialization for every restart. cfg
// must already have defaults applied.
func seedRestarts(points [][]float64, cfg Config) [][][]float64 {
	seeds := make([][][]float64, cfg.Restarts)
	for r := range seeds {
		seeds[r] = seedPlusPlus(points, cfg.K, cfg.Rand)
	}
	return seeds
}

// lloydFrom runs one Lloyd optimization from the given initial centroids,
// which it takes ownership of and mutates.
func lloydFrom(points [][]float64, centroids [][]float64, cfg Config) Result {
	dim := len(points[0])
	assign := make([]int, len(points))
	counts := make([]int, cfg.K)
	var iters int

	for iters = 1; iters <= cfg.MaxIterations; iters++ {
		changed := false
		for i, p := range points {
			c := nearestCentroid(p, centroids)
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iters > 1 {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for d := 0; d < dim; d++ {
				centroids[c][d] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centroids[c][d] += p[d]
			}
		}
		var donors []int
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep exactly K clusters alive.
				far := farthestPoint(points, centroids, assign)
				donor := assign[far]
				copy(centroids[c], points[far])
				assign[far] = c
				counts[c] = 1
				counts[donor]--
				donors = append(donors, donor)
				continue
			}
			inv := 1 / float64(counts[c])
			for d := 0; d < dim; d++ {
				centroids[c][d] *= inv
			}
		}
		// A re-seed steals a point whose contribution is still baked into
		// the donor's mean; recompute stolen-from centroids so neither the
		// next assignment step nor the final SSE sees a stale center.
		for _, donor := range donors {
			if counts[donor] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[donor][d] = 0
			}
			for i, p := range points {
				if assign[i] != donor {
					continue
				}
				for d := 0; d < dim; d++ {
					centroids[donor][d] += p[d]
				}
			}
			inv := 1 / float64(counts[donor])
			for d := 0; d < dim; d++ {
				centroids[donor][d] *= inv
			}
		}
	}
	if iters > cfg.MaxIterations {
		// The loop counter oversteps by one when the iteration cap is
		// exhausted (same clamp as internal/core's CRH loop).
		iters = cfg.MaxIterations
	}

	var sse float64
	for i, p := range points {
		sse += sqDist(p, centroids[assign[i]])
	}
	return Result{Assignments: assign, Centroids: centroids, SSE: sse, Iterations: iters}
}

// seedPlusPlus selects k initial centroids with the k-means++ strategy:
// the first uniformly at random, each subsequent one with probability
// proportional to its squared distance from the nearest chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, cloneVec(first))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d2[i] = sqDist(p, centroids[nearestCentroid(p, centroids)])
			total += d2[i]
		}
		var next int
		if total == 0 {
			// All points coincide with centroids; pick uniformly.
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			var cum float64
			for i := range points {
				cum += d2[i]
				if cum >= target {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, cloneVec(points[next]))
	}
	return centroids
}

func nearestCentroid(p []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range centroids {
		if d := sqDist(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func farthestPoint(points, centroids [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		if d := sqDist(p, centroids[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
