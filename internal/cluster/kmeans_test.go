package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
)

// blobs generates numBlobs well-separated Gaussian clusters of size each.
func blobs(numBlobs, size int, spread float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var points [][]float64
	var labels []int
	for b := 0; b < numBlobs; b++ {
		cx := float64(b) * 20
		cy := float64(b%2) * 20
		for i := 0; i < size; i++ {
			points = append(points, []float64{
				cx + rng.NormFloat64()*spread,
				cy + rng.NormFloat64()*spread,
			})
			labels = append(labels, b)
		}
	}
	return points, labels
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	points, labels := blobs(3, 20, 0.5, 1)
	res, err := KMeans(points, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3", res.K())
	}
	// All points of the same true blob must share an assignment, and
	// different blobs must differ (perfect recovery on separated blobs).
	blobToCluster := map[int]int{}
	for i, lbl := range labels {
		if c, ok := blobToCluster[lbl]; ok {
			if c != res.Assignments[i] {
				t.Fatalf("blob %d split across clusters", lbl)
			}
		} else {
			blobToCluster[lbl] = res.Assignments[i]
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("expected 3 distinct clusters, got %d", len(blobToCluster))
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 1}); err == nil {
		t.Error("empty input should error")
	}
	points := [][]float64{{1, 2}, {3, 4}}
	if _, err := KMeans(points, Config{K: 0}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(points, Config{K: 3}); err == nil {
		t.Error("k > n should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, Config{K: 1}); err == nil {
		t.Error("ragged input should error")
	}
}

func TestKMeansK1(t *testing.T) {
	points := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := KMeans(points, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Centroids[0]; math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("centroid = %v, want [1 1]", got)
	}
	if math.Abs(res.SSE-8) > 1e-9 {
		t.Errorf("SSE = %v, want 8", res.SSE)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(points, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-9 {
		t.Errorf("SSE with k=n should be 0, got %v", res.SSE)
	}
	seen := map[int]bool{}
	for _, c := range res.Assignments {
		if seen[c] {
			t.Error("k=n should give each point its own cluster")
		}
		seen[c] = true
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(points, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-9 {
		t.Errorf("SSE of identical points = %v, want 0", res.SSE)
	}
}

func TestKMeansDeterministicWithDefaultRand(t *testing.T) {
	points, _ := blobs(3, 10, 1.0, 2)
	a, err := KMeans(points, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("default-rand k-means should be deterministic")
		}
	}
}

func TestGroups(t *testing.T) {
	res := Result{
		Assignments: []int{0, 1, 0, 2},
		Centroids:   [][]float64{{0}, {0}, {0}},
	}
	groups := res.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 1 || len(groups[2]) != 1 {
		t.Errorf("groups = %v", groups)
	}
}

// Property: SSE is non-increasing in k (best-of-restarts, same data).
func TestSSEMonotoneInK(t *testing.T) {
	points, _ := blobs(4, 8, 2.0, 3)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		res, err := KMeans(points, Config{K: k, Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Allow tiny numeric slack; restarts make big regressions unlikely.
		if res.SSE > prev*1.05+1e-9 {
			t.Errorf("SSE(k=%d)=%v > SSE(k=%d)=%v", k, res.SSE, k-1, prev)
		}
		if res.SSE < prev {
			prev = res.SSE
		}
	}
}

// Property: every assignment is in range and every cluster non-empty.
func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		k := 1 + int(kRaw)%n
		res, err := KMeans(points, Config{K: k, Rand: rng})
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, c := range res.Assignments {
			if c < 0 || c >= k {
				return false
			}
			counts[c]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return res.SSE >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestElbowFindsTrueK(t *testing.T) {
	points, _ := blobs(3, 15, 0.5, 4)
	res, err := Elbow(points, 8, Config{Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Errorf("elbow K = %d, want 3 (SSEs: %v)", res.K, res.SSEs)
	}
	if len(res.SSEs) != 8 {
		t.Errorf("SSEs len = %d, want 8", len(res.SSEs))
	}
	if res.Result.K() != res.K {
		t.Errorf("Result.K() = %d, want %d", res.Result.K(), res.K)
	}
}

func TestElbowEdgeCases(t *testing.T) {
	if _, err := Elbow(nil, 3, Config{}); err == nil {
		t.Error("empty input should error")
	}
	// maxK clamped to n.
	points := [][]float64{{0}, {1}}
	res, err := Elbow(points, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SSEs) != 2 {
		t.Errorf("SSEs len = %d, want 2", len(res.SSEs))
	}
	// Identical points: flat SSE curve, single cluster.
	same := [][]float64{{1}, {1}, {1}}
	res, err = Elbow(same, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("identical points elbow K = %d, want 1", res.K)
	}
}

func TestKneeIndex(t *testing.T) {
	// Classic elbow: steep drop then flat.
	ys := []float64{100, 20, 15, 13, 12, 11}
	if got := kneeIndex(ys); got != 1 {
		t.Errorf("kneeIndex = %d, want 1", got)
	}
	if got := kneeIndex([]float64{5}); got != 0 {
		t.Errorf("kneeIndex single = %d, want 0", got)
	}
	if got := kneeIndex([]float64{5, 5, 5}); got != 0 {
		t.Errorf("kneeIndex flat = %d, want 0", got)
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight, separated pairs: near-perfect silhouette.
	points := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	good := Silhouette(points, []int{0, 0, 1, 1})
	if good < 0.9 {
		t.Errorf("good silhouette = %v, want > 0.9", good)
	}
	// Mixing the pairs must score worse.
	bad := Silhouette(points, []int{0, 1, 0, 1})
	if bad >= good {
		t.Errorf("bad split %v should score below good split %v", bad, good)
	}
	// Single cluster: 0 by convention.
	if s := Silhouette(points, []int{0, 0, 0, 0}); s != 0 {
		t.Errorf("single-cluster silhouette = %v, want 0", s)
	}
	if s := Silhouette(nil, nil); s != 0 {
		t.Errorf("empty silhouette = %v, want 0", s)
	}
}

func BenchmarkKMeans(b *testing.B) {
	points, _ := blobs(5, 40, 1.0, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(points, Config{K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElbow(b *testing.B) {
	points, _ := blobs(4, 15, 1.0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Elbow(points, 10, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSilhouetteSelectFindsTrueK(t *testing.T) {
	points, _ := blobs(3, 15, 0.5, 9)
	res, err := SilhouetteSelect(points, 8, Config{Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Errorf("silhouette K = %d, want 3", res.K)
	}
	if res.Result.K() != 3 {
		t.Errorf("result K = %d", res.Result.K())
	}
}

func TestSilhouetteSelectEdgeCases(t *testing.T) {
	if _, err := SilhouetteSelect(nil, 3, Config{}); err == nil {
		t.Error("empty input should error")
	}
	// Single point: k clamps to 1.
	res, err := SilhouetteSelect([][]float64{{1}}, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("single-point K = %d, want 1", res.K)
	}
}

// withProcs runs fn under the given GOMAXPROCS and restores the previous
// value; goroutines multiplex fine onto fewer physical cores.
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// TestLloydIterationsClamped forces a run that never converges (duplicate
// centroids over identical points ping-pong forever) and checks the
// reported iteration count no longer oversteps MaxIterations by one.
func TestLloydIterationsClamped(t *testing.T) {
	points := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	res := lloydFrom(points, [][]float64{{5, 5}, {5, 5}}, Config{K: 2, MaxIterations: 3})
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want exactly MaxIterations = 3", res.Iterations)
	}
	// And through the public API with defaults.
	kres, err := KMeans(points, Config{K: 2, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if kres.Iterations > 5 {
		t.Errorf("KMeans Iterations = %d > MaxIterations = 5", kres.Iterations)
	}
}

// TestLloydReseedRecomputesDonorCentroid forces an empty-cluster re-seed on
// the final iteration (MaxIterations = 1) and checks the donor cluster's
// centroid no longer carries the stolen point's contribution, so the final
// SSE is computed against true means.
func TestLloydReseedRecomputesDonorCentroid(t *testing.T) {
	// All three points land in cluster 1; cluster 0 re-seeds at point {4},
	// stealing it from cluster 1, whose correct centroid is then the mean
	// of {6} and {10}.
	points := [][]float64{{4}, {6}, {10}}
	res := lloydFrom(points, [][]float64{{100}, {7}}, Config{K: 2, MaxIterations: 1})
	if got := res.Assignments; got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("assignments = %v, want [0 1 1]", got)
	}
	if c := res.Centroids[0][0]; c != 4 {
		t.Errorf("re-seeded centroid = %v, want 4", c)
	}
	if c := res.Centroids[1][0]; c != 8 {
		t.Errorf("donor centroid = %v, want 8 (mean of 6 and 10; stale mean would retain the stolen point)", c)
	}
	if math.Abs(res.SSE-8) > 1e-12 {
		t.Errorf("SSE = %v, want 8", res.SSE)
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
}

// TestClusterParallelMatchesSequential pins the determinism guarantee:
// KMeans, Elbow, and SilhouetteSelect return bit-identical results at
// GOMAXPROCS=1 and GOMAXPROCS=8, because seedings are drawn sequentially
// and reductions happen in index order.
func TestClusterParallelMatchesSequential(t *testing.T) {
	points, _ := blobs(4, 12, 1.5, 6)
	var seqK, parK Result
	var seqE, parE, seqS, parS ElbowResult
	withProcs(t, 1, func() {
		var err error
		if seqK, err = KMeans(points, Config{K: 4}); err != nil {
			t.Fatal(err)
		}
		if seqE, err = Elbow(points, 8, Config{Restarts: 5}); err != nil {
			t.Fatal(err)
		}
		if seqS, err = SilhouetteSelect(points, 8, Config{Restarts: 5}); err != nil {
			t.Fatal(err)
		}
	})
	withProcs(t, 8, func() {
		var err error
		if parK, err = KMeans(points, Config{K: 4}); err != nil {
			t.Fatal(err)
		}
		if parE, err = Elbow(points, 8, Config{Restarts: 5}); err != nil {
			t.Fatal(err)
		}
		if parS, err = SilhouetteSelect(points, 8, Config{Restarts: 5}); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(seqK, parK) {
		t.Error("KMeans differs across GOMAXPROCS")
	}
	if !reflect.DeepEqual(seqE, parE) {
		t.Error("ElbowResult differs across GOMAXPROCS")
	}
	if !reflect.DeepEqual(seqS, parS) {
		t.Error("SilhouetteSelect result differs across GOMAXPROCS")
	}
}

// TestClusterSharedRandParallelEquivalence repeats the check with a caller
// supplied rng, whose stream must be consumed identically either way.
func TestClusterSharedRandParallelEquivalence(t *testing.T) {
	points, _ := blobs(3, 10, 1.0, 11)
	run := func(procs int) (ElbowResult, error) {
		var res ElbowResult
		var err error
		withProcs(t, procs, func() {
			res, err = Elbow(points, 6, Config{Restarts: 3, Rand: rand.New(rand.NewSource(99))})
		})
		return res, err
	}
	seq, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("shared-rand ElbowResult differs across GOMAXPROCS")
	}
}
