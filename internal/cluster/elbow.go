package cluster

import (
	"math"

	"sybiltd/internal/parallel"
)

// ElbowResult reports an elbow-method sweep.
type ElbowResult struct {
	// K is the chosen number of clusters.
	K int
	// SSEs[i] is the best SSE observed for k = i+1.
	SSEs []float64
	// Result is the k-means result at the chosen K.
	Result Result
}

// Elbow runs k-means for k = 1..maxK and picks the k "at which SSE starts
// to diminish" (the knee). The knee is located with the max-distance
// heuristic: normalize the (k, SSE) curve and pick the point with the
// largest perpendicular distance to the chord from (1, SSE_1) to
// (maxK, SSE_maxK). This is the standard formalization of the eyeballed
// elbow the paper describes (Kodinariya & Makwana 2013).
//
// maxK is clamped to len(points). cfg.K is ignored.
func Elbow(points [][]float64, maxK int, cfg Config) (ElbowResult, error) {
	if len(points) == 0 {
		return ElbowResult{}, ErrNoPoints
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	if maxK < 1 {
		maxK = 1
	}
	results, err := sweep(points, 1, maxK, cfg)
	if err != nil {
		return ElbowResult{}, err
	}
	sses := make([]float64, maxK)
	for i, res := range results {
		sses[i] = res.SSE
	}
	k := kneeIndex(sses) + 1
	return ElbowResult{K: k, SSEs: sses, Result: results[k-1]}, nil
}

// sweep runs KMeans for every k in [kMin, kMax] with all Lloyd runs of the
// whole sweep fanned out across one parallel batch. Seedings are drawn
// sequentially in (k, restart) order, each k consuming the same rng stream
// a sequential KMeans call would (a fresh fixed-seed source per k when
// cfg.Rand is nil, the shared stream otherwise), and each k's winner is
// reduced in restart order — so the sweep's results are identical to
// calling KMeans per k, at any GOMAXPROCS.
func sweep(points [][]float64, kMin, kMax int, cfg Config) ([]Result, error) {
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	nK := kMax - kMin + 1
	cfgs := make([]Config, nK)
	seeds := make([][][][]float64, nK) // [k-index][restart] initial centroids
	totalRuns := 0
	for idx := range cfgs {
		c := cfg
		c.K = kMin + idx
		c = c.withDefaults()
		cfgs[idx] = c
		seeds[idx] = seedRestarts(points, c)
		totalRuns += len(seeds[idx])
	}
	type slot struct{ kIdx, restart int }
	slots := make([]slot, 0, totalRuns)
	for idx := range seeds {
		for r := range seeds[idx] {
			slots = append(slots, slot{idx, r})
		}
	}
	runs := make([]Result, len(slots))
	_ = parallel.ForEach(len(slots), func(i int) error {
		s := slots[i]
		runs[i] = lloydFrom(points, seeds[s.kIdx][s.restart], cfgs[s.kIdx])
		return nil
	})
	results := make([]Result, nK)
	i := 0
	for idx := range results {
		best := Result{SSE: math.Inf(1)}
		for r := 0; r < len(seeds[idx]); r++ {
			if res := runs[i]; res.SSE < best.SSE {
				best = res
			}
			i++
		}
		results[idx] = best
	}
	return results, nil
}

// kneeIndex returns the index of the knee of a decreasing curve ys using
// the max-distance-to-chord method on the normalized curve.
func kneeIndex(ys []float64) int {
	n := len(ys)
	if n <= 2 {
		return 0
	}
	y0, y1 := ys[0], ys[n-1]
	span := y0 - y1
	if span <= 0 {
		// Flat or increasing curve: no structure; a single cluster is the
		// honest answer.
		return 0
	}
	// Chord from (0,1) to (1,0) in normalized coordinates; distance of
	// (x, y) to the line x + y - 1 = 0 is |x + y - 1| / sqrt(2).
	best, bestD := 0, -1.0
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		y := (ys[i] - y1) / span
		if d := math.Abs(x + y - 1); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, (b - a) / max(a, b) where a is the mean distance to its own
// cluster and b the smallest mean distance to another cluster. Values lie
// in [-1, 1]; higher is better. Clusterings with a single cluster (or
// where every point is alone) score 0.
func Silhouette(points [][]float64, assign []int) float64 {
	n := len(points)
	if n == 0 || len(assign) != n {
		return 0
	}
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	if k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	var total float64
	var counted int
	sum := make([]float64, k)
	for i := 0; i < n; i++ {
		ci := assign[i]
		if sizes[ci] <= 1 {
			continue // silhouette undefined; conventionally 0, skip
		}
		for c := range sum {
			sum[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sum[assign[j]] += math.Sqrt(sqDist(points[i], points[j]))
		}
		a := sum[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if m := sum[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// SilhouetteSelect runs k-means for k = 2..maxK and returns the clustering
// with the highest mean silhouette coefficient — an alternative to the
// elbow method when the SSE curve has no clean knee. For datasets where a
// single cluster is plausible, callers should compare the winner's
// silhouette against a threshold; this function always returns k >= 2
// unless the data has fewer than 2 points.
func SilhouetteSelect(points [][]float64, maxK int, cfg Config) (ElbowResult, error) {
	if len(points) == 0 {
		return ElbowResult{}, ErrNoPoints
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	if maxK < 2 {
		res, err := KMeans(points, withK(cfg, 1))
		if err != nil {
			return ElbowResult{}, err
		}
		return ElbowResult{K: 1, SSEs: []float64{res.SSE}, Result: res}, nil
	}
	results, err := sweep(points, 2, maxK, cfg)
	if err != nil {
		return ElbowResult{}, err
	}
	// Silhouette scoring is O(n²) per k; score the candidate clusterings in
	// parallel, then pick the winner in k order (ties keep the smallest k,
	// like the sequential loop).
	scores := make([]float64, len(results))
	_ = parallel.ForEach(len(results), func(i int) error {
		scores[i] = Silhouette(points, results[i].Assignments)
		return nil
	})
	best := ElbowResult{K: 2}
	bestScore := -2.0
	sses := make([]float64, len(results))
	for i, res := range results {
		sses[i] = res.SSE
		if scores[i] > bestScore {
			bestScore = scores[i]
			best = ElbowResult{K: i + 2, Result: res}
		}
	}
	best.SSEs = sses
	return best, nil
}

func withK(cfg Config, k int) Config {
	cfg.K = k
	return cfg
}
