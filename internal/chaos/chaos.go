// Package chaos is the network-fault injector for resilience testing: a
// deterministic http.RoundTripper wrapper (and an equivalent server-side
// middleware) that perturbs traffic with latency spikes, dropped
// connections, synthesized 5xx/429 bursts, and truncated response bodies,
// per-route and reproducibly seeded.
//
// It mirrors the injectable-seam style of internal/wal's FaultFS: the
// production code path is untouched, the seams are explicit, and every
// fault a flaky mobile network can produce has a switch a test can flip.
// Injected failures never reach the origin server (drops and synthesized
// statuses fail before the request is sent), so a test can account for
// acknowledged writes exactly; only truncation corrupts a response the
// server really produced — the ack-was-lost case retry logic must absorb.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the transport error a dropped connection surfaces.
// It reaches http.Client callers wrapped in a *url.Error, exactly like a
// real connection reset.
var ErrInjectedDrop = errors.New("chaos: injected connection drop")

// ErrInjectedTruncation is returned by a truncated response body after
// its byte budget is spent — an abrupt mid-body failure, like a peer
// closing the socket halfway through the payload.
var ErrInjectedTruncation = errors.New("chaos: injected body truncation")

// Fault is the per-route fault profile. Probabilities are in [0, 1] and
// drawn independently per request in the order drop, 5xx, 429 — at most
// one of the three fires; latency and truncation compose with any
// outcome.
type Fault struct {
	// Latency is added to every request before anything else happens.
	Latency time.Duration
	// Jitter adds a uniform random extra in [0, Jitter).
	Jitter time.Duration
	// DropProb drops the connection before the request is sent: the
	// caller sees a transport error and the origin never sees the
	// request.
	DropProb float64
	// Error5xxProb synthesizes an HTTP 503 without contacting the origin.
	Error5xxProb float64
	// Error429Prob synthesizes an HTTP 429 with a Retry-After header
	// without contacting the origin.
	Error429Prob float64
	// RetryAfter is advertised on injected 429s, rounded up to whole
	// seconds (the header's granularity). Zero advertises "0".
	RetryAfter time.Duration
	// TruncateProb cuts the (real) response body short after a small
	// random prefix, simulating a connection torn mid-transfer. The
	// origin has already processed the request.
	TruncateProb float64
}

// Plan is a deterministic fault schedule: a default profile plus per-route
// overrides keyed "METHOD /path" (exact match on method and URL path).
type Plan struct {
	// Seed makes the whole fault sequence reproducible.
	Seed int64
	// Default applies to routes without an override.
	Default Fault
	// Routes maps "METHOD /path" to an override profile.
	Routes map[string]Fault
}

func (p Plan) fault(method, path string) Fault {
	if f, ok := p.Routes[method+" "+path]; ok {
		return f
	}
	return p.Default
}

// Stats counts the faults a Transport or Middleware has injected.
type Stats struct {
	Requests    int64 // requests seen
	Delays      int64 // requests that had latency added
	Drops       int64 // injected connection drops
	Injected5xx int64 // synthesized 503s
	Injected429 int64 // synthesized 429s
	Truncations int64 // truncated response bodies
}

// counters is the shared atomic backing for Stats.
type counters struct {
	requests, delays, drops, err5xx, err429, truncations atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Requests:    c.requests.Load(),
		Delays:      c.delays.Load(),
		Drops:       c.drops.Load(),
		Injected5xx: c.err5xx.Load(),
		Injected429: c.err429.Load(),
		Truncations: c.truncations.Load(),
	}
}

// Transport is the client-side fault injector: an http.RoundTripper that
// perturbs requests according to a Plan before (or instead of) handing
// them to the inner transport. Safe for concurrent use; the random
// sequence is deterministic for a fixed seed and request order.
type Transport struct {
	inner http.RoundTripper

	mu   sync.Mutex
	plan Plan
	rng  *rand.Rand

	stats counters
}

// NewTransport wraps inner (nil means http.DefaultTransport) with plan.
func NewTransport(inner http.RoundTripper, plan Plan) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// SetPlan swaps the fault plan at runtime (e.g. to stage an outage and
// then heal it). The random stream continues; only the profile changes.
func (t *Transport) SetPlan(plan Plan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.plan = plan
}

// Stats returns a snapshot of the injected-fault counters.
func (t *Transport) Stats() Stats { return t.stats.snapshot() }

// draw samples the request's fate under the current plan in one locked
// pass, so concurrent requests cannot interleave the random stream
// mid-decision.
func (t *Transport) draw(method, path string) (f Fault, delay time.Duration, verdict int, truncateAt int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f = t.plan.fault(method, path)
	delay = f.Latency
	if f.Jitter > 0 {
		delay += time.Duration(t.rng.Int63n(int64(f.Jitter)))
	}
	switch {
	case f.DropProb > 0 && t.rng.Float64() < f.DropProb:
		verdict = verdictDrop
	case f.Error5xxProb > 0 && t.rng.Float64() < f.Error5xxProb:
		verdict = verdict5xx
	case f.Error429Prob > 0 && t.rng.Float64() < f.Error429Prob:
		verdict = verdict429
	case f.TruncateProb > 0 && t.rng.Float64() < f.TruncateProb:
		verdict = verdictTruncate
		truncateAt = t.rng.Int63n(24) // keep at most a useless prefix
	}
	return f, delay, verdict, truncateAt
}

const (
	verdictPass = iota
	verdictDrop
	verdict5xx
	verdict429
	verdictTruncate
)

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.stats.requests.Add(1)
	f, delay, verdict, truncateAt := t.draw(req.Method, req.URL.Path)
	if delay > 0 {
		t.stats.delays.Add(1)
		if err := sleepCtx(req.Context(), delay); err != nil {
			return nil, err
		}
	}
	switch verdict {
	case verdictDrop:
		t.stats.drops.Add(1)
		return nil, ErrInjectedDrop
	case verdict5xx:
		t.stats.err5xx.Add(1)
		return synthesized(req, http.StatusServiceUnavailable, nil), nil
	case verdict429:
		t.stats.err429.Add(1)
		h := http.Header{}
		h.Set("Retry-After", retryAfterSeconds(f.RetryAfter))
		return synthesized(req, http.StatusTooManyRequests, h), nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if verdict == verdictTruncate {
		t.stats.truncations.Add(1)
		resp.Body = &truncatedBody{inner: resp.Body, remaining: truncateAt}
		resp.ContentLength = -1
	}
	return resp, nil
}

// Middleware is the server-side twin of Transport: it wraps a handler and
// applies the plan before the request reaches it. Drops abort the
// connection via http.ErrAbortHandler (the client sees EOF); truncation
// is not available server-side — inject it at the transport.
func (p Plan) Middleware(next http.Handler) http.Handler {
	t := &Transport{plan: p, rng: rand.New(rand.NewSource(p.Seed))}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.stats.requests.Add(1)
		f, delay, verdict, _ := t.draw(r.Method, r.URL.Path)
		if delay > 0 {
			t.stats.delays.Add(1)
			if err := sleepCtx(r.Context(), delay); err != nil {
				return
			}
		}
		switch verdict {
		case verdictDrop:
			t.stats.drops.Add(1)
			panic(http.ErrAbortHandler)
		case verdict5xx:
			t.stats.err5xx.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, chaosBody(http.StatusServiceUnavailable))
			return
		case verdict429:
			t.stats.err429.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", retryAfterSeconds(f.RetryAfter))
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, chaosBody(http.StatusTooManyRequests))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// sleepCtx blocks for d or until ctx is done, returning the ctx error in
// the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterSeconds renders d as the Retry-After header's whole-second
// format, rounding up so the advertised wait is never shorter than the
// intended one.
func retryAfterSeconds(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	return strconv.Itoa(int(math.Ceil(d.Seconds())))
}

// chaosBody is the JSON error body carried by synthesized statuses. The
// code is deliberately not a platform wire code: an injected fault must
// be distinguishable from a real platform rejection.
func chaosBody(status int) string {
	return fmt.Sprintf(`{"code":"chaos_injected","error":"chaos: injected HTTP %d"}`, status)
}

// synthesized builds a response that never touched the origin server.
func synthesized(req *http.Request, status int, h http.Header) *http.Response {
	if h == nil {
		h = http.Header{}
	}
	h.Set("Content-Type", "application/json")
	body := chaosBody(status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields at most remaining bytes of the real body, then
// fails with ErrInjectedTruncation — not io.EOF, because a clean EOF
// would look like a complete (if short) message rather than a torn one.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, ErrInjectedTruncation
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended inside the budget: pass the EOF through so
		// short responses are occasionally delivered intact.
		return n, io.EOF
	}
	if b.remaining <= 0 && err == nil {
		err = ErrInjectedTruncation
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
