package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newOrigin is a counting origin server: *calls says how many requests
// really got through the injector.
func newOrigin(t *testing.T, body string) (*httptest.Server, *int) {
	t.Helper()
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	return resp, body, readErr
}

func TestTransportPassThrough(t *testing.T) {
	srv, calls := newOrigin(t, `{"ok":true}`)
	c := &http.Client{Transport: NewTransport(srv.Client().Transport, Plan{})}
	resp, body, err := get(t, c, srv.URL+"/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(body) != `{"ok":true}` {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
	if *calls != 1 {
		t.Fatalf("origin saw %d calls, want 1", *calls)
	}
}

func TestTransportDropNeverReachesOrigin(t *testing.T) {
	srv, calls := newOrigin(t, "x")
	tr := NewTransport(srv.Client().Transport, Plan{Default: Fault{DropProb: 1}})
	c := &http.Client{Transport: tr}
	_, _, err := get(t, c, srv.URL+"/")
	if !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	if *calls != 0 {
		t.Fatalf("origin saw %d calls, want 0 — drops must fail before send", *calls)
	}
	if s := tr.Stats(); s.Drops != 1 || s.Requests != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTransportSynthesized5xxAnd429(t *testing.T) {
	srv, calls := newOrigin(t, "x")
	tr := NewTransport(srv.Client().Transport, Plan{Default: Fault{Error5xxProb: 1}})
	c := &http.Client{Transport: tr}
	resp, body, err := get(t, c, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos_injected") {
		t.Fatalf("body = %q, want the chaos_injected code", body)
	}

	tr.SetPlan(Plan{Default: Fault{Error429Prob: 1, RetryAfter: 1500 * time.Millisecond}})
	resp, _, err = get(t, c, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" { // 1.5s rounds up
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if *calls != 0 {
		t.Fatalf("origin saw %d calls, want 0 — synthesized statuses must not reach it", *calls)
	}
}

func TestTransportTruncationTearsBody(t *testing.T) {
	long := strings.Repeat("payload-", 64) // 512 bytes, far past the 24-byte budget
	srv, calls := newOrigin(t, long)
	tr := NewTransport(srv.Client().Transport, Plan{Default: Fault{TruncateProb: 1}})
	c := &http.Client{Transport: tr}
	resp, err := c.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	if !errors.Is(readErr, ErrInjectedTruncation) {
		t.Fatalf("read err = %v, want ErrInjectedTruncation", readErr)
	}
	if len(body) >= len(long) {
		t.Fatalf("body not truncated: %d bytes", len(body))
	}
	// Truncation corrupts a response the origin really produced.
	if *calls != 1 {
		t.Fatalf("origin saw %d calls, want 1", *calls)
	}
}

func TestTransportLatencyRespectsContext(t *testing.T) {
	srv, _ := newOrigin(t, "x")
	tr := NewTransport(srv.Client().Transport, Plan{Default: Fault{Latency: time.Minute}})
	c := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/", nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("injected latency ignored the context: took %v", elapsed)
	}
}

func TestPerRouteOverridesAndDeterminism(t *testing.T) {
	plan := Plan{
		Seed:    42,
		Default: Fault{DropProb: 0.5},
		Routes: map[string]Fault{
			"GET /spared": {}, // no faults on this route
		},
	}
	srv, _ := newOrigin(t, "x")

	// The spared route never faults regardless of the default profile.
	c := &http.Client{Transport: NewTransport(srv.Client().Transport, plan)}
	for i := 0; i < 20; i++ {
		if _, _, err := get(t, c, srv.URL+"/spared"); err != nil {
			t.Fatalf("spared route faulted: %v", err)
		}
	}

	// Identical seeds produce the identical fault sequence.
	run := func() []bool {
		tr := NewTransport(srv.Client().Transport, plan)
		cl := &http.Client{Transport: tr}
		var dropped []bool
		for i := 0; i < 50; i++ {
			_, _, err := get(t, cl, srv.URL+"/flaky")
			dropped = append(dropped, errors.Is(err, ErrInjectedDrop))
		}
		return dropped
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at request %d despite identical seed", i)
		}
	}
}

func TestMiddlewareInjectsServerSide(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "real")
	})
	srv := httptest.NewServer(Plan{Default: Fault{Error429Prob: 1, RetryAfter: time.Second}}.Middleware(inner))
	t.Cleanup(srv.Close)
	resp, body, err := get(t, srv.Client(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if strings.Contains(string(body), "real") {
		t.Fatal("injected 429 leaked the real handler's body")
	}

	// A server-side drop aborts the connection: the client sees a
	// transport error, not a status.
	srv2 := httptest.NewServer(Plan{Default: Fault{DropProb: 1}}.Middleware(inner))
	t.Cleanup(srv2.Close)
	if _, err := srv2.Client().Get(srv2.URL + "/"); err == nil {
		t.Fatal("server-side drop must surface as a connection error")
	}
}

func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{2500 * time.Millisecond, "3"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
