package mobility

import (
	"math/rand"
	"testing"
	"time"
)

func TestLayoutPOIs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pois := LayoutPOIs(10, 400, 300, 30, rng)
	if len(pois) != 10 {
		t.Fatalf("got %d POIs, want 10", len(pois))
	}
	for i, p := range pois {
		if p.X < 0 || p.X > 400 || p.Y < 0 || p.Y > 300 {
			t.Errorf("POI %d out of bounds: %+v", i, p)
		}
	}
	// Pairwise gaps should mostly respect the minimum (allowing the
	// relaxation path).
	for i := 0; i < len(pois); i++ {
		for j := i + 1; j < len(pois); j++ {
			if d := pois[i].Dist(pois[j]); d < 5 {
				t.Errorf("POIs %d,%d only %.1f m apart", i, j, d)
			}
		}
	}
}

func TestLayoutPOIsDenseStillTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pois := LayoutPOIs(50, 10, 10, 30, rng) // impossible gap; must relax
	if len(pois) != 50 {
		t.Fatalf("got %d POIs, want 50", len(pois))
	}
}

func TestWalkTimestampsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pois := LayoutPOIs(6, 400, 300, 30, rng)
	route := []int{0, 3, 5, 1}
	start := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	trace, err := Walk(pois, route, WalkSpec{Start: start}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Visits) != 4 {
		t.Fatalf("visits = %d, want 4", len(trace.Visits))
	}
	prev := start
	for i, v := range trace.Visits {
		if v.POI != route[i] {
			t.Errorf("visit %d POI = %d, want %d", i, v.POI, route[i])
		}
		if !v.Arrive.After(prev) && i > 0 {
			t.Errorf("visit %d time %v not after %v", i, v.Arrive, prev)
		}
		prev = v.Arrive
	}
	if got := trace.TaskOrder(); len(got) != 4 || got[1] != 3 {
		t.Errorf("TaskOrder = %v", got)
	}
	if trace.Duration() <= 0 {
		t.Error("multi-visit trace should have positive duration")
	}
}

func TestWalkTravelTimeMatchesSpeed(t *testing.T) {
	pois := []Point{{X: 0, Y: 0}, {X: 130, Y: 0}}
	rng := rand.New(rand.NewSource(4))
	start := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	trace, err := Walk(pois, []int{0, 1}, WalkSpec{
		Start:           start,
		SpeedMPS:        1.3,
		Dwell:           time.Nanosecond, // negligible
		DwellJitterFrac: 1e-9,
		Origin:          Point{X: 0, Y: 0},
		HasOrigin:       true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 130 m at 1.3 m/s = 100 s between visits.
	gap := trace.Visits[1].Arrive.Sub(trace.Visits[0].Arrive)
	if gap < 99*time.Second || gap > 101*time.Second {
		t.Errorf("gap = %v, want ~100 s", gap)
	}
}

func TestWalkErrors(t *testing.T) {
	pois := []Point{{X: 0, Y: 0}}
	rng := rand.New(rand.NewSource(5))
	if _, err := Walk(pois, nil, WalkSpec{}, rng); err == nil {
		t.Error("empty route should error")
	}
	if _, err := Walk(pois, []int{5}, WalkSpec{}, rng); err == nil {
		t.Error("out-of-range POI should error")
	}
}

func TestNearestNeighborRoute(t *testing.T) {
	pois := []Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 10, Y: 0}, {X: 50, Y: 0}}
	route := NearestNeighborRoute(pois, []int{0, 1, 2, 3}, Point{X: -1, Y: 0})
	want := []int{0, 2, 3, 1}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
	if r := NearestNeighborRoute(pois, nil, Point{}); r != nil {
		t.Errorf("empty subset route = %v, want nil", r)
	}
	// Route covers exactly the subset.
	route = NearestNeighborRoute(pois, []int{3, 1}, Point{})
	if len(route) != 2 {
		t.Errorf("route = %v", route)
	}
}

func TestChooseSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := ChooseSubset(10, 0.5, 2, rng)
	if len(s) != 5 {
		t.Errorf("α=0.5 over 10 tasks -> %d, want 5", len(s))
	}
	// Minimum enforced.
	s = ChooseSubset(10, 0.05, 2, rng)
	if len(s) != 2 {
		t.Errorf("min subset = %d, want 2", len(s))
	}
	// Ceiling: α=0.21 -> ceil(2.1)=3.
	s = ChooseSubset(10, 0.21, 2, rng)
	if len(s) != 3 {
		t.Errorf("α=0.21 -> %d, want 3", len(s))
	}
	// Capped at numPOIs, distinct members.
	s = ChooseSubset(4, 2.0, 2, rng)
	if len(s) != 4 {
		t.Errorf("capped subset = %d, want 4", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Error("duplicate POI in subset")
		}
		seen[v] = true
	}
	if got := ChooseSubset(0, 0.5, 2, rng); got != nil {
		t.Errorf("no POIs -> %v, want nil", got)
	}
}

func TestTraceDurationSingleVisit(t *testing.T) {
	tr := Trace{Visits: []Visit{{POI: 0, Arrive: time.Now()}}}
	if tr.Duration() != 0 {
		t.Error("single-visit duration should be 0")
	}
}
