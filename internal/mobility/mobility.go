// Package mobility simulates how crowdsensing participants move: POI
// layouts and per-user walking traces over a chosen task subset, with
// realistic walking speeds and dwell times. Traces supply the timestamps
// that the AG-TR grouping method consumes, and reproduce the structure of
// the paper's 54 collected walking traces.
package mobility

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Point is a location in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// LayoutPOIs places n POIs uniformly at random in [0,width]x[0,height],
// rejecting placements closer than minGap to keep tasks geographically
// distinct (POIs in the paper are distinct campus locations).
func LayoutPOIs(n int, width, height, minGap float64, rng *rand.Rand) []Point {
	pois := make([]Point, 0, n)
	for len(pois) < n {
		candidate := Point{X: rng.Float64() * width, Y: rng.Float64() * height}
		ok := true
		for _, p := range pois {
			if p.Dist(candidate) < minGap {
				ok = false
				break
			}
		}
		if ok {
			pois = append(pois, candidate)
			continue
		}
		// Relax the gap gradually so dense requests still terminate.
		minGap *= 0.99
	}
	return pois
}

// Visit is one POI visit in a trace.
type Visit struct {
	// POI indexes the layout (equivalently the task).
	POI int
	// Arrive is when the user reaches the POI and performs the task.
	Arrive time.Time
}

// Trace is one user's walking trace: an ordered sequence of POI visits.
type Trace struct {
	Visits []Visit
}

// TaskOrder returns the visited POI indices in order.
func (t Trace) TaskOrder() []int {
	order := make([]int, len(t.Visits))
	for i, v := range t.Visits {
		order[i] = v.POI
	}
	return order
}

// Duration returns the time from first to last visit.
func (t Trace) Duration() time.Duration {
	if len(t.Visits) < 2 {
		return 0
	}
	return t.Visits[len(t.Visits)-1].Arrive.Sub(t.Visits[0].Arrive)
}

// WalkSpec parameterizes a walking trace.
type WalkSpec struct {
	// Start is when the user begins walking toward the first POI.
	Start time.Time
	// SpeedMPS is walking speed in m/s; zero means 1.3 (average human).
	SpeedMPS float64
	// Dwell is the time spent performing the task at each POI; zero means
	// 30 s.
	Dwell time.Duration
	// DwellJitterFrac randomizes each dwell by ±frac; zero means 0.2.
	DwellJitterFrac float64
	// Origin is where the user starts; zero value means the first POI.
	Origin Point
	// HasOrigin marks Origin as explicitly set.
	HasOrigin bool
}

func (s WalkSpec) withDefaults() WalkSpec {
	if s.SpeedMPS == 0 {
		s.SpeedMPS = 1.3
	}
	if s.Dwell == 0 {
		s.Dwell = 30 * time.Second
	}
	if s.DwellJitterFrac == 0 {
		s.DwellJitterFrac = 0.2
	}
	return s
}

// ErrEmptyRoute is returned when a walk visits no POIs.
var ErrEmptyRoute = errors.New("mobility: empty route")

// Walk simulates walking the given POI route (indices into pois) and
// returns the resulting trace. Travel time between consecutive POIs is
// distance over speed; each visit adds a jittered dwell.
func Walk(pois []Point, route []int, spec WalkSpec, rng *rand.Rand) (Trace, error) {
	if len(route) == 0 {
		return Trace{}, ErrEmptyRoute
	}
	spec = spec.withDefaults()
	for _, p := range route {
		if p < 0 || p >= len(pois) {
			return Trace{}, fmt.Errorf("mobility: route POI %d out of range [0,%d)", p, len(pois))
		}
	}
	cur := spec.Origin
	if !spec.HasOrigin {
		cur = pois[route[0]]
	}
	now := spec.Start
	visits := make([]Visit, 0, len(route))
	for _, p := range route {
		target := pois[p]
		travel := cur.Dist(target) / spec.SpeedMPS
		now = now.Add(time.Duration(travel * float64(time.Second)))
		visits = append(visits, Visit{POI: p, Arrive: now})
		jitter := 1 + (rng.Float64()*2-1)*spec.DwellJitterFrac
		now = now.Add(time.Duration(float64(spec.Dwell) * jitter))
		cur = target
	}
	return Trace{Visits: visits}, nil
}

// NearestNeighborRoute orders the given POI subset as a greedy
// nearest-neighbor tour starting from the subset member closest to start.
// This is how a human volunteer plausibly strings POIs together.
func NearestNeighborRoute(pois []Point, subset []int, start Point) []int {
	if len(subset) == 0 {
		return nil
	}
	remaining := make([]int, len(subset))
	copy(remaining, subset)
	route := make([]int, 0, len(subset))
	cur := start
	for len(remaining) > 0 {
		best, bestD := 0, math.Inf(1)
		for i, p := range remaining {
			if d := cur.Dist(pois[p]); d < bestD {
				best, bestD = i, d
			}
		}
		next := remaining[best]
		route = append(route, next)
		cur = pois[next]
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return route
}

// ChooseSubset picks ceil(activeness*len(pois)) distinct POI indices
// uniformly at random (at least min, at most all). The paper requires each
// account to perform at least two tasks, so callers pass min=2.
func ChooseSubset(numPOIs int, activeness float64, min int, rng *rand.Rand) []int {
	if numPOIs == 0 {
		return nil
	}
	k := int(math.Ceil(activeness * float64(numPOIs)))
	if k < min {
		k = min
	}
	if k > numPOIs {
		k = numPOIs
	}
	perm := rng.Perm(numPOIs)
	subset := make([]int, k)
	copy(subset, perm[:k])
	return subset
}
