package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func complexAlmostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// naiveDFT is the O(n^2) reference implementation used to validate FFT.
func naiveDFT(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += xs[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return xs
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Mix of power-of-two and awkward lengths (exercises Bluestein).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 50, 64, 100} {
		xs := randComplex(n, rng)
		got := FFT(xs)
		want := naiveDFT(xs)
		for k := range want {
			if !complexAlmostEqual(got[k], want[k], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: FFT=%v naive=%v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	xs := []complex128{1, 2, 3, 4, 5}
	orig := make([]complex128, len(xs))
	copy(orig, xs)
	FFT(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("FFT mutated input at %d", i)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 6, 9, 16, 27, 64, 100} {
		xs := randComplex(n, rng)
		back := IFFT(FFT(xs))
		for i := range xs {
			if !complexAlmostEqual(back[i], xs[i], 1e-8*float64(n+1)) {
				t.Fatalf("n=%d idx %d: round-trip %v != %v", n, i, back[i], xs[i])
			}
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of an impulse is flat.
	got := FFT([]complex128{1, 0, 0, 0})
	for k, v := range got {
		if !complexAlmostEqual(v, 1, 1e-12) {
			t.Errorf("impulse bin %d = %v, want 1", k, v)
		}
	}
	// DFT of a constant concentrates at DC.
	got = FFT([]complex128{1, 1, 1, 1})
	if !complexAlmostEqual(got[0], 4, 1e-12) {
		t.Errorf("DC bin = %v, want 4", got[0])
	}
	for k := 1; k < 4; k++ {
		if !complexAlmostEqual(got[k], 0, 1e-12) {
			t.Errorf("bin %d = %v, want 0", k, got[k])
		}
	}
}

func TestFFTRealSinusoid(t *testing.T) {
	// A pure sinusoid at bin 5 of a 64-sample frame must put (almost) all
	// its energy in bin 5.
	const n, bin = 64, 5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * bin * float64(i) / n)
	}
	spec := FFTReal(xs)
	peak := 0
	for k := 1; k <= n/2; k++ {
		if cmplx.Abs(spec[k]) > cmplx.Abs(spec[peak]) {
			peak = k
		}
	}
	if peak != bin {
		t.Errorf("peak at bin %d, want %d", peak, bin)
	}
}

// Property: Parseval's theorem — energy in time equals energy in frequency
// divided by n.
func TestFFTParsevalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 || len(xs) > 256 {
			return true
		}
		var timeEnergy float64
		for _, x := range xs {
			timeEnergy += x * x
		}
		spec := FFTReal(xs)
		var freqEnergy float64
		for _, c := range spec {
			freqEnergy += real(c)*real(c) + imag(c)*imag(c)
		}
		freqEnergy /= float64(len(xs))
		tol := 1e-6 * (timeEnergy + 1)
		return math.Abs(timeEnergy-freqEnergy) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		a := randComplex(n, rng)
		b := randComplex(n, rng)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for k := 0; k < n; k++ {
			if !complexAlmostEqual(fs[k], fa[k]+fb[k], 1e-7*float64(n)) {
				t.Fatalf("linearity violated at n=%d bin %d", n, k)
			}
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128}, {128, 128},
	}
	for _, tt := range tests {
		if got := nextPowerOfTwo(tt.in); got != tt.want {
			t.Errorf("nextPowerOfTwo(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func BenchmarkFFTPow2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := randComplex(1024, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(xs)
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := randComplex(1000, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(xs)
	}
}
