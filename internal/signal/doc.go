// Package signal provides the digital-signal-processing substrate used by
// the device-fingerprinting pipeline: descriptive statistics over sampled
// sensor streams, discrete Fourier transforms (radix-2 Cooley-Tukey with a
// Bluestein fallback for arbitrary lengths), window functions, and power
// spectra.
//
// The package is intentionally dependency-free (stdlib only) and allocates
// predictably: every transform has an _Into variant planned via Plan for
// hot paths such as per-account fingerprint extraction.
package signal
