package signal

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"symmetric", []float64{-1, 0, 1}, 0},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, -4}, -3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, eps) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, eps) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, eps) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3, 3, 3}); got != 0 {
		t.Errorf("Variance of constant = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestSkewness(t *testing.T) {
	if got := Skewness([]float64{-1, 0, 1}); !almostEqual(got, 0, eps) {
		t.Errorf("Skewness symmetric = %v, want 0", got)
	}
	// Right-skewed data should have positive skewness.
	if got := Skewness([]float64{1, 1, 1, 1, 10}); got <= 0 {
		t.Errorf("Skewness right-tail = %v, want > 0", got)
	}
	// Left-skewed data should have negative skewness.
	if got := Skewness([]float64{-10, 1, 1, 1, 1}); got >= 0 {
		t.Errorf("Skewness left-tail = %v, want < 0", got)
	}
	if got := Skewness([]float64{5, 5, 5}); got != 0 {
		t.Errorf("Skewness of constant = %v, want 0", got)
	}
}

func TestKurtosis(t *testing.T) {
	// Uniform two-point distribution {-1, 1} has kurtosis 1.
	if got := Kurtosis([]float64{-1, 1, -1, 1}); !almostEqual(got, 1, eps) {
		t.Errorf("Kurtosis two-point = %v, want 1", got)
	}
	if got := Kurtosis([]float64{2, 2}); got != 0 {
		t.Errorf("Kurtosis of constant = %v, want 0", got)
	}
	// A spiky distribution has higher kurtosis than a flat one.
	spiky := Kurtosis([]float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 100})
	flat := Kurtosis([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if spiky <= flat {
		t.Errorf("Kurtosis spiky=%v should exceed flat=%v", spiky, flat)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4, 0, 0}); !almostEqual(got, 2.5, eps) {
		t.Errorf("RMS = %v, want 2.5", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -7, 2, 9, 0}
	mx, err := Max(xs)
	if err != nil || mx != 9 {
		t.Errorf("Max = %v, %v; want 9, nil", mx, err)
	}
	mn, err := Min(xs)
	if err != nil || mn != -7 {
		t.Errorf("Min = %v, %v; want -7, nil", mn, err)
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
}

func TestZeroCrossingRate(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"alternating", []float64{1, -1, 1, -1}, 1},
		{"constant positive", []float64{1, 1, 1}, 0},
		{"one crossing", []float64{1, 1, -1}, 0.5},
		{"too short", []float64{1}, 0},
		{"zero treated non-negative", []float64{0, 1, 0, -1}, 1.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ZeroCrossingRate(tt.in); !almostEqual(got, tt.want, eps) {
				t.Errorf("ZCR(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestNonNegativeCount(t *testing.T) {
	if got := NonNegativeCount([]float64{-1, 0, 1, 2, -3}); got != 3 {
		t.Errorf("NonNegativeCount = %d, want 3", got)
	}
}

func TestMedian(t *testing.T) {
	if got, err := Median([]float64{3, 1, 2}); err != nil || got != 2 {
		t.Errorf("Median odd = %v, %v; want 2", got, err)
	}
	if got, err := Median([]float64{4, 1, 3, 2}); err != nil || got != 2.5 {
		t.Errorf("Median even = %v, %v; want 2.5", got, err)
	}
	if _, err := Median(nil); err == nil {
		t.Error("Median(nil) should error")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if err != nil || !almostEqual(got, 2, eps) {
		t.Errorf("WeightedMean equal weights = %v, %v; want 2", got, err)
	}
	got, err = WeightedMean([]float64{1, 3}, []float64{3, 1})
	if err != nil || !almostEqual(got, 1.5, eps) {
		t.Errorf("WeightedMean = %v, %v; want 1.5", got, err)
	}
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Error("WeightedMean(nil) should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("WeightedMean length mismatch should error")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("WeightedMean zero weight should error")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], eps) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Constant input maps to zeros.
	for _, v := range Normalize([]float64{7, 7}) {
		if v != 0 {
			t.Errorf("Normalize constant produced %v, want 0", v)
		}
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Errorf("Normalize(nil) len = %d, want 0", len(got))
	}
}

func TestZScore(t *testing.T) {
	got := ZScore([]float64{1, 2, 3, 4, 5})
	if !almostEqual(Mean(got), 0, eps) {
		t.Errorf("ZScore mean = %v, want 0", Mean(got))
	}
	if !almostEqual(StdDev(got), 1, eps) {
		t.Errorf("ZScore std = %v, want 1", StdDev(got))
	}
	for _, v := range ZScore([]float64{4, 4, 4}) {
		if v != 0 {
			t.Errorf("ZScore constant produced %v, want 0", v)
		}
	}
}

func TestMagnitude3(t *testing.T) {
	got := Magnitude3([]float64{3, 0}, []float64{4, 0}, []float64{0, 5})
	if !almostEqual(got[0], 5, eps) || !almostEqual(got[1], 5, eps) {
		t.Errorf("Magnitude3 = %v, want [5 5]", got)
	}
	// Truncates to shortest.
	if got := Magnitude3([]float64{1, 2, 3}, []float64{1}, []float64{1, 2}); len(got) != 1 {
		t.Errorf("Magnitude3 truncation len = %d, want 1", len(got))
	}
}

// Property: mean of z-scored data is always ~0 and std ~1 (for non-constant
// input), and normalization always lands in [0,1].
func TestStatsProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		norm := Normalize(xs)
		for _, v := range norm {
			if v < -eps || v > 1+eps {
				return false
			}
		}
		z := ZScore(xs)
		if !almostEqual(Mean(z), 0, 1e-6) {
			return false
		}
		if StdDev(xs) > 0 && !almostEqual(StdDev(z), 1, 1e-6) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: min <= mean <= max, and RMS >= |mean|.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		mu := Mean(xs)
		if mu < mn-eps || mu > mx+eps {
			return false
		}
		return RMS(xs)+1e-6 >= math.Abs(mu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize clamps quick-generated values into a sane finite range so that
// floating-point overflow does not dominate the property checks.
func sanitize(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v > 1e6 {
			v = 1e6
		}
		if v < -1e6 {
			v = -1e6
		}
		xs = append(xs, v)
	}
	return xs
}
