package signal

import (
	"math"
	"testing"
)

func TestHannWindow(t *testing.T) {
	w := Hann(8)
	if len(w) != 8 {
		t.Fatalf("len = %d, want 8", len(w))
	}
	if !almostEqual(w[0], 0, eps) || !almostEqual(w[7], 0, eps) {
		t.Errorf("Hann endpoints = %v, %v; want 0", w[0], w[7])
	}
	// Symmetry.
	for i := 0; i < 4; i++ {
		if !almostEqual(w[i], w[7-i], eps) {
			t.Errorf("Hann not symmetric at %d: %v vs %v", i, w[i], w[7-i])
		}
	}
	if got := Hann(1); got[0] != 1 {
		t.Errorf("Hann(1) = %v, want [1]", got)
	}
}

func TestHammingWindow(t *testing.T) {
	w := Hamming(8)
	if !almostEqual(w[0], 0.08, 1e-12) {
		t.Errorf("Hamming[0] = %v, want 0.08", w[0])
	}
	for i := 0; i < 4; i++ {
		if !almostEqual(w[i], w[7-i], eps) {
			t.Errorf("Hamming not symmetric at %d", i)
		}
	}
	if got := Hamming(1); got[0] != 1 {
		t.Errorf("Hamming(1) = %v, want [1]", got)
	}
}

func TestRectangularWindow(t *testing.T) {
	for _, v := range Rectangular(5) {
		if v != 1 {
			t.Errorf("Rectangular produced %v, want 1", v)
		}
	}
}

func TestPowerSpectrumPeak(t *testing.T) {
	// 10 Hz sinusoid sampled at 100 Hz for 1 s must peak at the 10 Hz bin.
	const sampleRate = 100.0
	const freq = 10.0
	n := 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 3 * math.Sin(2*math.Pi*freq*float64(i)/sampleRate)
	}
	sp := PowerSpectrum(xs, sampleRate, Hann)
	if len(sp.Freqs) != n/2+1 {
		t.Fatalf("bins = %d, want %d", len(sp.Freqs), n/2+1)
	}
	peak := 0
	for i := range sp.Mags {
		if sp.Mags[i] > sp.Mags[peak] {
			peak = i
		}
	}
	if !almostEqual(sp.Freqs[peak], freq, 1e-9) {
		t.Errorf("peak at %v Hz, want %v", sp.Freqs[peak], freq)
	}
}

func TestPowerSpectrumRemovesDC(t *testing.T) {
	// Constant signal: after mean removal the spectrum is all zeros.
	xs := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	sp := PowerSpectrum(xs, 8, nil)
	for i, m := range sp.Mags {
		if m > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want ~0", i, m)
		}
	}
}

func TestPowerSpectrumEmpty(t *testing.T) {
	sp := PowerSpectrum(nil, 100, Hann)
	if len(sp.Freqs) != 0 || len(sp.Mags) != 0 {
		t.Errorf("empty spectrum should be empty, got %d bins", len(sp.Freqs))
	}
	if sp.TotalEnergy() != 0 || sp.TotalMagnitude() != 0 {
		t.Error("empty spectrum energy should be 0")
	}
}

func TestSpectrumTotals(t *testing.T) {
	sp := Spectrum{Mags: []float64{3, 4}}
	if got := sp.TotalEnergy(); !almostEqual(got, 25, eps) {
		t.Errorf("TotalEnergy = %v, want 25", got)
	}
	if got := sp.TotalMagnitude(); !almostEqual(got, 7, eps) {
		t.Errorf("TotalMagnitude = %v, want 7", got)
	}
}
