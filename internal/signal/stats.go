package signal

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("signal: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (second central moment).
// It returns 0 for inputs with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Skewness returns the standardized third central moment of xs, a measure of
// asymmetry about the mean. It returns 0 when the variance vanishes.
func Skewness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - mu
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the standardized fourth central moment of xs, a measure
// of the flatness or spikiness of the distribution. A normal distribution
// has kurtosis 3. It returns 0 when the variance vanishes.
func Kurtosis(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - mu
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4 / (m2 * m2)
}

// RMS returns the root mean square of xs: the square root of the arithmetic
// mean of the squared samples.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Max returns the maximum of xs. It returns an error on empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the minimum of xs. It returns an error on empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// ZeroCrossingRate returns the rate at which the signal changes sign
// (positive to negative or back), normalized by the number of adjacent
// sample pairs. Zero samples are treated as non-negative.
func ZeroCrossingRate(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var crossings int
	prevNonNeg := xs[0] >= 0
	for _, x := range xs[1:] {
		nonNeg := x >= 0
		if nonNeg != prevNonNeg {
			crossings++
		}
		prevNonNeg = nonNeg
	}
	return float64(crossings) / float64(len(xs)-1)
}

// NonNegativeCount returns the number of samples that are >= 0.
func NonNegativeCount(xs []float64) int {
	var count int
	for _, x := range xs {
		if x >= 0 {
			count++
		}
	}
	return count
}

// Median returns the median of xs without mutating it.
// It returns an error on empty input.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2], nil
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2, nil
}

// WeightedMean returns the weighted mean of xs with weights ws.
// It returns an error if the lengths differ, the input is empty, or the
// total weight is zero.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, errors.New("signal: length mismatch between values and weights")
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("signal: zero total weight")
	}
	return num / den, nil
}

// Normalize returns a copy of xs linearly rescaled to [0, 1].
// A constant signal maps to all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if hi == lo {
		return out
	}
	scale := 1 / (hi - lo)
	for i, x := range xs {
		out[i] = (x - lo) * scale
	}
	return out
}

// ZScore returns a copy of xs standardized to zero mean and unit standard
// deviation. A constant signal maps to all zeros.
func ZScore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	mu := Mean(xs)
	sigma := StdDev(xs)
	if sigma == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mu) / sigma
	}
	return out
}

// Magnitude3 returns the per-sample Euclidean magnitude of a 3-axis stream.
// All three slices must have equal length; extra samples in longer slices
// are ignored by truncating to the shortest.
func Magnitude3(x, y, z []float64) []float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if len(z) < n {
		n = len(z)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Sqrt(x[i]*x[i] + y[i]*y[i] + z[i]*z[i])
	}
	return out
}
