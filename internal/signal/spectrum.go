package signal

import "math"

// Window is a window function applied to a frame before transforming it.
type Window func(n int) []float64

// Hann returns the Hann (raised-cosine) window of length n. For n <= 1 the
// window is all ones.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns the Hamming window of length n.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Rectangular returns the all-ones window of length n.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Spectrum holds the one-sided magnitude spectrum of a real signal:
// Freqs[i] is the frequency (Hz) of bin i and Mags[i] its magnitude.
// The DC bin is included; bins above the Nyquist frequency are not.
type Spectrum struct {
	Freqs []float64
	Mags  []float64
}

// PowerSpectrum computes the one-sided magnitude spectrum of xs sampled at
// sampleRate Hz, after removing the mean and applying window (nil means
// rectangular).
func PowerSpectrum(xs []float64, sampleRate float64, window Window) Spectrum {
	n := len(xs)
	if n == 0 {
		return Spectrum{}
	}
	mu := Mean(xs)
	frame := make([]float64, n)
	for i, x := range xs {
		frame[i] = x - mu
	}
	if window != nil {
		w := window(n)
		for i := range frame {
			frame[i] *= w[i]
		}
	}
	bins := FFTReal(frame)
	half := n/2 + 1
	sp := Spectrum{
		Freqs: make([]float64, half),
		Mags:  make([]float64, half),
	}
	for i := 0; i < half; i++ {
		sp.Freqs[i] = float64(i) * sampleRate / float64(n)
		re := real(bins[i])
		im := imag(bins[i])
		sp.Mags[i] = math.Hypot(re, im)
	}
	return sp
}

// TotalEnergy returns the sum of squared magnitudes of the spectrum.
func (s Spectrum) TotalEnergy() float64 {
	var e float64
	for _, m := range s.Mags {
		e += m * m
	}
	return e
}

// TotalMagnitude returns the sum of magnitudes of the spectrum.
func (s Spectrum) TotalMagnitude() float64 {
	var t float64
	for _, m := range s.Mags {
		t += m
	}
	return t
}
