package signal

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of xs. The input is not
// modified. Arbitrary lengths are supported: power-of-two inputs use an
// iterative radix-2 Cooley-Tukey transform; other lengths fall back to
// Bluestein's chirp-z algorithm, which reduces the problem to a
// power-of-two convolution.
func FFT(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	copy(out, xs)
	if n <= 1 {
		return out
	}
	if isPowerOfTwo(n) {
		radix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT computes the inverse discrete Fourier transform of xs, including the
// 1/n normalization, so that IFFT(FFT(x)) == x up to floating-point error.
func IFFT(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	copy(out, xs)
	if n <= 1 {
		return out
	}
	if isPowerOfTwo(n) {
		radix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal computes the DFT of a real-valued signal.
func FFTReal(xs []float64) []complex128 {
	cs := make([]complex128, len(xs))
	for i, x := range xs {
		cs[i] = complex(x, 0)
	}
	return FFT(cs)
}

func isPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// nextPowerOfTwo returns the smallest power of two >= n.
func nextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// radix2 performs an in-place iterative radix-2 FFT. len(a) must be a power
// of two. If inverse is true the conjugate transform is applied (without
// normalization).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		angle := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes the DFT of a (any length) via the chirp-z transform.
// It returns a new slice; the input is clobbered as scratch.
func bluestein(a []complex128, inverse bool) []complex128 {
	n := len(a)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors: w[k] = exp(sign * i * pi * k^2 / n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for astronomically large n; reduce mod 2n first
		// since the chirp is periodic with period 2n in k^2.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}
	m := nextPowerOfTwo(2*n - 1)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for k := 0; k < n; k++ {
		fa[k] = a[k] * chirp[k]
	}
	fb[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		fb[k] = c
		fb[m-k] = c
	}
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = fa[k] * invM * chirp[k]
	}
	return out
}
