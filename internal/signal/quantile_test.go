package signal

import (
	"math"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.025, -1.959963985},
		{0.84134474606, 1}, // Phi(1)
		{0.999, 3.090232306},
		{0.001, -3.090232306},
		{1e-10, -6.361340902}, // deep tail
	}
	for _, tt := range tests {
		got, err := NormalQuantile(tt.p)
		if err != nil {
			t.Fatalf("p=%v: %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestNormalQuantileErrors(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("p=%v should error", p)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.013 {
		x, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		cdf := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(cdf-p) > 1e-9 {
			t.Errorf("CDF(quantile(%v)) = %v", p, cdf)
		}
	}
}

func TestChiSquaredQuantileKnownValues(t *testing.T) {
	// Reference values from standard chi-squared tables.
	tests := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.95, 1, 3.841, 0.08},
		{0.95, 5, 11.070, 0.05},
		{0.95, 10, 18.307, 0.05},
		{0.975, 10, 20.483, 0.05},
		{0.05, 10, 3.940, 0.05},
		{0.5, 10, 9.342, 0.05},
	}
	for _, tt := range tests {
		got, err := ChiSquaredQuantile(tt.p, tt.df)
		if err != nil {
			t.Fatalf("p=%v df=%d: %v", tt.p, tt.df, err)
		}
		if math.Abs(got-tt.want)/tt.want > tt.tol {
			t.Errorf("ChiSquaredQuantile(%v, %d) = %v, want ~%v", tt.p, tt.df, got, tt.want)
		}
	}
}

func TestChiSquaredQuantileErrors(t *testing.T) {
	if _, err := ChiSquaredQuantile(0.95, 0); err == nil {
		t.Error("df=0 should error")
	}
	if _, err := ChiSquaredQuantile(0, 3); err == nil {
		t.Error("p=0 should error")
	}
}

func TestChiSquaredQuantileMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.995} {
		q, err := ChiSquaredQuantile(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if q <= prev {
			t.Errorf("quantile not monotone at p=%v: %v <= %v", p, q, prev)
		}
		prev = q
	}
	// Monotone in df as well for fixed upper-tail p.
	prev = 0
	for df := 1; df <= 30; df += 3 {
		q, err := ChiSquaredQuantile(0.95, df)
		if err != nil {
			t.Fatal(err)
		}
		if q <= prev {
			t.Errorf("quantile not monotone in df at %d", df)
		}
		prev = q
	}
}
