package dtw

import (
	"math/rand"
	"testing"
)

// TestCalculatorMatchesFreeFunctions checks bit-exact equality between a
// reused Calculator and the allocating free functions across many series of
// varying (and shrinking, then growing) lengths, so buffer reuse across
// calls of different sizes is exercised.
func TestCalculatorMatchesFreeFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	calc := NewCalculator()
	lengths := []int{0, 1, 3, 64, 7, 2, 33, 1, 16}
	series := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64() * 10
		}
		return s
	}
	for _, la := range lengths {
		for _, lb := range lengths {
			a, b := series(la), series(lb)
			for _, window := range []int{0, 1, 3, la + lb} {
				want := WindowedDistance(a, b, window)
				got := calc.WindowedDistance(a, b, window)
				if got != want && !(got != got && want != want) {
					t.Fatalf("WindowedDistance(len %d, len %d, w=%d): calculator %v != free %v", la, lb, window, got, want)
				}
			}
			if got, want := calc.Distance(a, b), Distance(a, b); got != want {
				t.Fatalf("Distance(len %d, len %d): calculator %v != free %v", la, lb, got, want)
			}
			if got, want := calc.AbsoluteCost(a, b), AbsoluteCost(a, b); got != want {
				t.Fatalf("AbsoluteCost(len %d, len %d): calculator %v != free %v", la, lb, got, want)
			}
		}
	}
}

// TestCalculatorFuzzCorpusInputs replays the fuzz seed corpus through a
// shared Calculator, mirroring FuzzDistance's derivation of series from
// bytes, and demands exact agreement with the free functions.
func TestCalculatorFuzzCorpusInputs(t *testing.T) {
	corpus := [][2][]byte{
		{{1, 2, 3}, {3, 2, 1}},
		{{}, {5}},
		{{128}, {128}},
		{{0, 255, 0, 255}, {255, 0}},
		{{7}, {}},
	}
	calc := NewCalculator()
	for _, pair := range corpus {
		a := bytesToSeries(pair[0])
		b := bytesToSeries(pair[1])
		if got, want := calc.Distance(a, b), Distance(a, b); got != want {
			t.Errorf("corpus %v/%v: Distance calculator %v != free %v", pair[0], pair[1], got, want)
		}
		if got, want := calc.AbsoluteCost(a, b), AbsoluteCost(a, b); got != want {
			t.Errorf("corpus %v/%v: AbsoluteCost calculator %v != free %v", pair[0], pair[1], got, want)
		}
	}
}

func BenchmarkCalculatorVsFreeDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 48)
	c := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	b.Run("free", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Distance(a, c)
		}
	})
	b.Run("calculator", func(b *testing.B) {
		calc := NewCalculator()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			calc.Distance(a, c)
		}
	})
}
