package dtw

// AbsoluteCost returns the classic unnormalized DTW cost with absolute
// pointwise distance: the minimum over warping paths of Σ |a_i − b_j|.
//
// The paper's Eq. (7) defines the normalized squared-distance form
// (Distance), but the worked example of Fig. 4 tabulates unnormalized
// absolute costs (e.g. DTW(X_1, X_2) = 2 for task series (1,2,3,4) vs
// (2,3)); this function reproduces those numbers for the walkthrough
// experiment. Empty-series conventions match Distance.
//
// The DP lives in Calculator.AbsoluteCost; this wrapper allocates a fresh
// Calculator per call. Hot pairwise loops should hold a per-worker
// Calculator instead.
func AbsoluteCost(a, b []float64) float64 {
	var c Calculator
	return c.AbsoluteCost(a, b)
}
