package dtw

import "math"

// AbsoluteCost returns the classic unnormalized DTW cost with absolute
// pointwise distance: the minimum over warping paths of Σ |a_i − b_j|.
//
// The paper's Eq. (7) defines the normalized squared-distance form
// (Distance), but the worked example of Fig. 4 tabulates unnormalized
// absolute costs (e.g. DTW(X_1, X_2) = 2 for task series (1,2,3,4) vs
// (2,3)); this function reproduces those numbers for the walkthrough
// experiment. Empty-series conventions match Distance.
func AbsoluteCost(a, b []float64) float64 {
	m, n := len(a), len(b)
	switch {
	case m == 0 && n == 0:
		return 0
	case m == 0 || n == 0:
		return math.Inf(1)
	}
	inf := math.Inf(1)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= n; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
		// After the first row, r(0,0) is no longer reachable as a path
		// start, so the left border stays infinite.
		prev[0] = inf
	}
	return prev[n]
}
