package dtw

import (
	"math"
	"testing"
)

// bytesToSeries turns fuzz bytes into a bounded float series.
func bytesToSeries(bs []byte) []float64 {
	out := make([]float64, 0, len(bs))
	for _, b := range bs {
		out = append(out, float64(int(b)-128)/8)
	}
	return out
}

// FuzzDistance checks DTW's metric-ish axioms on arbitrary series: no
// panics, non-negativity, symmetry, identity, and agreement between the
// windowed and unconstrained variants when the band covers everything.
func FuzzDistance(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{}, []byte{5})
	f.Add([]byte{128}, []byte{128})

	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		if len(rawA) > 64 {
			rawA = rawA[:64]
		}
		if len(rawB) > 64 {
			rawB = rawB[:64]
		}
		a := bytesToSeries(rawA)
		b := bytesToSeries(rawB)

		d := Distance(a, b)
		switch {
		case len(a) == 0 && len(b) == 0:
			if d != 0 {
				t.Fatalf("both-empty distance = %v", d)
			}
			return
		case len(a) == 0 || len(b) == 0:
			if !math.IsInf(d, 1) {
				t.Fatalf("one-empty distance = %v", d)
			}
			return
		}
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("distance = %v", d)
		}
		if rd := Distance(b, a); math.Abs(d-rd) > 1e-9*(1+d) {
			t.Fatalf("asymmetric: %v vs %v", d, rd)
		}
		if self := Distance(a, a); self != 0 {
			t.Fatalf("Distance(a,a) = %v", self)
		}
		wide := WindowedDistance(a, b, len(a)+len(b))
		if math.Abs(wide-d) > 1e-9*(1+d) {
			t.Fatalf("wide window %v != unconstrained %v", wide, d)
		}
		if abs := AbsoluteCost(a, b); abs < 0 || math.IsNaN(abs) {
			t.Fatalf("AbsoluteCost = %v", abs)
		}
		// A reused Calculator must agree bit-for-bit with the free
		// functions on every input (buffer reuse across the three calls
		// exercises stale-state handling).
		var calc Calculator
		if cd := calc.Distance(a, b); cd != d {
			t.Fatalf("Calculator.Distance = %v, free = %v", cd, d)
		}
		if cw, w := calc.WindowedDistance(a, b, 2), WindowedDistance(a, b, 2); cw != w {
			t.Fatalf("Calculator.WindowedDistance = %v, free = %v", cw, w)
		}
		if ca, ab := calc.AbsoluteCost(a, b), AbsoluteCost(a, b); ca != ab {
			t.Fatalf("Calculator.AbsoluteCost = %v, free = %v", ca, ab)
		}
	})
}
