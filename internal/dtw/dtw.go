// Package dtw implements Dynamic Time Warping, the elastic distance used by
// the AG-TR account grouping method to compare account trajectories (task
// series and timestamp series) of unequal length.
//
// The distance follows Eq. (7) of the paper (after Ratanamahatana & Keogh
// 2004): each warping-path element carries the squared pointwise distance,
// and the reported distance is sqrt(total path cost / path length), i.e. a
// length-normalized root-mean-square alignment cost. Length normalization
// matters here because account trajectories differ in length with account
// activeness, and an unnormalized cost would conflate "long trajectory"
// with "dissimilar trajectory".
package dtw

import (
	"math"
)

// Distance returns the normalized DTW distance between series a and b with
// an unconstrained warping window. Empty series follow the convention:
// both empty -> 0; exactly one empty -> +Inf (nothing can align).
func Distance(a, b []float64) float64 {
	return WindowedDistance(a, b, 0)
}

// WindowedDistance is Distance with a Sakoe-Chiba band of half-width
// window: cell (i, j) is admissible only when |i-j| <= window. window <= 0
// (or wider than the length difference requires) means unconstrained.
// The band is automatically widened to |len(a)-len(b)| so that a path
// always exists.
func WindowedDistance(a, b []float64, window int) float64 {
	m, n := len(a), len(b)
	switch {
	case m == 0 && n == 0:
		return 0
	case m == 0 || n == 0:
		return math.Inf(1)
	}
	if window <= 0 || window >= m+n {
		window = m + n // effectively unconstrained
	}
	if d := m - n; d < 0 {
		d = -d
		if window < d {
			window = d
		}
	} else if window < d {
		window = d
	}

	// Rolling two-row DP over cumulative cost r(i,j) =
	// dist(a_i, b_j) + min(r(i-1,j-1), r(i-1,j), r(i,j-1)).
	// pathLen tracks K, the number of cells on the optimal path, needed for
	// the length normalization of Eq. (7). Ties in cost prefer the diagonal
	// (shortest path), matching the common DTW implementation.
	inf := math.Inf(1)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	prevLen := make([]int, n+1)
	curLen := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0

	for i := 1; i <= m; i++ {
		for j := 0; j <= n; j++ {
			cur[j] = inf
			curLen[j] = 0
		}
		lo, hi := i-window, i+window
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			// Candidates: diagonal, up (from prev row), left (same row).
			// Minimize (cost, pathLen) lexicographically: among equal-cost
			// paths the shortest is kept, which makes the normalized
			// distance independent of argument order even under ties.
			bestCost := prev[j-1]
			bestLen := prevLen[j-1]
			if prev[j] < bestCost || (prev[j] == bestCost && prevLen[j] < bestLen) {
				bestCost = prev[j]
				bestLen = prevLen[j]
			}
			if cur[j-1] < bestCost || (cur[j-1] == bestCost && curLen[j-1] < bestLen) {
				bestCost = cur[j-1]
				bestLen = curLen[j-1]
			}
			if math.IsInf(bestCost, 1) {
				continue
			}
			cur[j] = bestCost + cost
			curLen[j] = bestLen + 1
		}
		// Special case: cell (1, j) can start from r(0,0) only via the
		// diagonal when j==1; the loop above already handles it because
		// prev[0] = 0 for i == 1. For i > 1, prev[0] must be inf.
		prev, cur = cur, prev
		prevLen, curLen = curLen, prevLen
		prev[0] = inf
	}
	total := prev[n]
	k := prevLen[n]
	if math.IsInf(total, 1) || k == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(total / float64(k))
}

// Path computes the optimal warping path between a and b (unconstrained)
// and returns it as index pairs, along with the normalized distance. It
// uses O(mn) memory and is intended for diagnostics and tests rather than
// the hot grouping loop.
func Path(a, b []float64) (pairs [][2]int, distance float64) {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		if m == 0 && n == 0 {
			return nil, 0
		}
		return nil, math.Inf(1)
	}
	inf := math.Inf(1)
	r := make([][]float64, m+1)
	for i := range r {
		r[i] = make([]float64, n+1)
		for j := range r[i] {
			r[i][j] = inf
		}
	}
	r[0][0] = 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d := a[i-1] - b[j-1]
			best := math.Min(r[i-1][j-1], math.Min(r[i-1][j], r[i][j-1]))
			r[i][j] = d*d + best
		}
	}
	// Backtrack preferring the diagonal on ties.
	i, j := m, n
	for i >= 1 && j >= 1 {
		pairs = append(pairs, [2]int{i - 1, j - 1})
		diag, up, left := r[i-1][j-1], r[i-1][j], r[i][j-1]
		switch {
		case diag <= up && diag <= left:
			i--
			j--
		case up <= left:
			i--
		default:
			j--
		}
	}
	// Reverse into path order.
	for l, rIdx := 0, len(pairs)-1; l < rIdx; l, rIdx = l+1, rIdx-1 {
		pairs[l], pairs[rIdx] = pairs[rIdx], pairs[l]
	}
	return pairs, math.Sqrt(r[m][n] / float64(len(pairs)))
}
