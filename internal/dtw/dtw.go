// Package dtw implements Dynamic Time Warping, the elastic distance used by
// the AG-TR account grouping method to compare account trajectories (task
// series and timestamp series) of unequal length.
//
// The distance follows Eq. (7) of the paper (after Ratanamahatana & Keogh
// 2004): each warping-path element carries the squared pointwise distance,
// and the reported distance is sqrt(total path cost / path length), i.e. a
// length-normalized root-mean-square alignment cost. Length normalization
// matters here because account trajectories differ in length with account
// activeness, and an unnormalized cost would conflate "long trajectory"
// with "dissimilar trajectory".
package dtw

import (
	"math"
)

// Distance returns the normalized DTW distance between series a and b with
// an unconstrained warping window. Empty series follow the convention:
// both empty -> 0; exactly one empty -> +Inf (nothing can align).
func Distance(a, b []float64) float64 {
	return WindowedDistance(a, b, 0)
}

// WindowedDistance is Distance with a Sakoe-Chiba band of half-width
// window: cell (i, j) is admissible only when |i-j| <= window. window <= 0
// (or wider than the length difference requires) means unconstrained.
// The band is automatically widened to |len(a)-len(b)| so that a path
// always exists.
//
// The DP lives in Calculator.WindowedDistance; this wrapper allocates a
// fresh Calculator per call. Hot pairwise loops should hold a per-worker
// Calculator instead.
func WindowedDistance(a, b []float64, window int) float64 {
	var c Calculator
	return c.WindowedDistance(a, b, window)
}

// Path computes the optimal warping path between a and b (unconstrained)
// and returns it as index pairs, along with the normalized distance. It
// uses O(mn) memory and is intended for diagnostics and tests rather than
// the hot grouping loop.
func Path(a, b []float64) (pairs [][2]int, distance float64) {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		if m == 0 && n == 0 {
			return nil, 0
		}
		return nil, math.Inf(1)
	}
	inf := math.Inf(1)
	r := make([][]float64, m+1)
	for i := range r {
		r[i] = make([]float64, n+1)
		for j := range r[i] {
			r[i][j] = inf
		}
	}
	r[0][0] = 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d := a[i-1] - b[j-1]
			best := math.Min(r[i-1][j-1], math.Min(r[i-1][j], r[i][j-1]))
			r[i][j] = d*d + best
		}
	}
	// Backtrack preferring the diagonal on ties.
	i, j := m, n
	for i >= 1 && j >= 1 {
		pairs = append(pairs, [2]int{i - 1, j - 1})
		diag, up, left := r[i-1][j-1], r[i-1][j], r[i][j-1]
		switch {
		case diag <= up && diag <= left:
			i--
			j--
		case up <= left:
			i--
		default:
			j--
		}
	}
	// Reverse into path order.
	for l, rIdx := 0, len(pairs)-1; l < rIdx; l, rIdx = l+1, rIdx-1 {
		pairs[l], pairs[rIdx] = pairs[rIdx], pairs[l]
	}
	return pairs, math.Sqrt(r[m][n] / float64(len(pairs)))
}
