package dtw

import (
	"math"
	"testing"
)

func TestAbsoluteCostPaperFig4TaskSeries(t *testing.T) {
	// Task series of Table III ordered by timestamp (task numbers 1-4):
	x1 := []float64{1, 2, 3, 4}
	x2 := []float64{2, 3}
	x3 := []float64{1, 2, 4}
	x4p := []float64{1, 3, 4} // 4', 4'', 4''' all share this series
	// Fig. 4(a) matrix values.
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"1 vs 2", x1, x2, 2},
		{"1 vs 3", x1, x3, 1},
		{"1 vs 4'", x1, x4p, 1},
		{"2 vs 3", x2, x3, 2},
		{"2 vs 4'", x2, x4p, 2},
		{"3 vs 4'", x3, x4p, 1},
		{"4' vs 4''", x4p, x4p, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AbsoluteCost(tt.a, tt.b); got != tt.want {
				t.Errorf("AbsoluteCost = %v, want %v (Fig. 4a)", got, tt.want)
			}
			if got := AbsoluteCost(tt.b, tt.a); got != tt.want {
				t.Errorf("AbsoluteCost transposed = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAbsoluteCostEdgeCases(t *testing.T) {
	if got := AbsoluteCost(nil, nil); got != 0 {
		t.Errorf("both empty = %v, want 0", got)
	}
	if got := AbsoluteCost([]float64{1}, nil); !math.IsInf(got, 1) {
		t.Errorf("one empty = %v, want +Inf", got)
	}
	if got := AbsoluteCost([]float64{2}, []float64{5}); got != 3 {
		t.Errorf("singletons = %v, want 3", got)
	}
	a := []float64{1, 2, 3}
	if got := AbsoluteCost(a, a); got != 0 {
		t.Errorf("identical = %v, want 0", got)
	}
}

func TestAbsoluteCostShiftInvariance(t *testing.T) {
	// Shifted ramps align cheaply, like the normalized variant.
	a := []float64{0, 0, 1, 2, 3}
	b := []float64{0, 1, 2, 3, 3}
	if got := AbsoluteCost(a, b); got != 0 {
		t.Errorf("shifted ramps cost = %v, want 0 (perfect elastic alignment)", got)
	}
}
