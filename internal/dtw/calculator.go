package dtw

import "math"

// Calculator computes DTW distances with owned, reusable DP rows. The free
// functions Distance, WindowedDistance and AbsoluteCost allocate four
// slices per call, which dominates the allocation profile of the O(n²)
// pairwise loops in account grouping; a Calculator amortizes that to
// (roughly) one allocation per worker for a whole grouping run.
//
// A Calculator is not safe for concurrent use: give each worker goroutine
// its own (see parallel.PairwiseWorkers). The zero value is ready to use.
// Results are bit-identical to the free functions.
type Calculator struct {
	prev, cur       []float64
	prevLen, curLen []int
}

// NewCalculator returns a Calculator with empty buffers; they grow on first
// use and are reused afterwards.
func NewCalculator() *Calculator { return &Calculator{} }

// grow ensures the DP rows hold at least size entries.
func (c *Calculator) grow(size int) {
	if cap(c.prev) < size {
		c.prev = make([]float64, size)
		c.cur = make([]float64, size)
		c.prevLen = make([]int, size)
		c.curLen = make([]int, size)
	}
	c.prev = c.prev[:size]
	c.cur = c.cur[:size]
	c.prevLen = c.prevLen[:size]
	c.curLen = c.curLen[:size]
}

// Distance is the reusable-buffer equivalent of the package-level Distance.
func (c *Calculator) Distance(a, b []float64) float64 {
	return c.WindowedDistance(a, b, 0)
}

// WindowedDistance is the reusable-buffer equivalent of the package-level
// WindowedDistance; see that function for the algorithm and conventions.
func (c *Calculator) WindowedDistance(a, b []float64, window int) float64 {
	m, n := len(a), len(b)
	switch {
	case m == 0 && n == 0:
		return 0
	case m == 0 || n == 0:
		return math.Inf(1)
	}
	if window <= 0 || window >= m+n {
		window = m + n // effectively unconstrained
	}
	if d := m - n; d < 0 {
		d = -d
		if window < d {
			window = d
		}
	} else if window < d {
		window = d
	}

	// Rolling two-row DP over cumulative cost r(i,j) =
	// dist(a_i, b_j) + min(r(i-1,j-1), r(i-1,j), r(i,j-1)).
	// pathLen tracks K, the number of cells on the optimal path, needed for
	// the length normalization of Eq. (7). Ties in cost prefer the diagonal
	// (shortest path), matching the common DTW implementation.
	inf := math.Inf(1)
	c.grow(n + 1)
	prev, cur, prevLen, curLen := c.prev, c.cur, c.prevLen, c.curLen
	for j := 0; j <= n; j++ {
		prev[j] = inf
		prevLen[j] = 0
	}
	prev[0] = 0

	for i := 1; i <= m; i++ {
		for j := 0; j <= n; j++ {
			cur[j] = inf
			curLen[j] = 0
		}
		lo, hi := i-window, i+window
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			// Candidates: diagonal, up (from prev row), left (same row).
			// Minimize (cost, pathLen) lexicographically: among equal-cost
			// paths the shortest is kept, which makes the normalized
			// distance independent of argument order even under ties.
			bestCost := prev[j-1]
			bestLen := prevLen[j-1]
			if prev[j] < bestCost || (prev[j] == bestCost && prevLen[j] < bestLen) {
				bestCost = prev[j]
				bestLen = prevLen[j]
			}
			if cur[j-1] < bestCost || (cur[j-1] == bestCost && curLen[j-1] < bestLen) {
				bestCost = cur[j-1]
				bestLen = curLen[j-1]
			}
			if math.IsInf(bestCost, 1) {
				continue
			}
			cur[j] = bestCost + cost
			curLen[j] = bestLen + 1
		}
		// Special case: cell (1, j) can start from r(0,0) only via the
		// diagonal when j==1; the loop above already handles it because
		// prev[0] = 0 for i == 1. For i > 1, prev[0] must be inf.
		prev, cur = cur, prev
		prevLen, curLen = curLen, prevLen
		prev[0] = inf
	}
	total := prev[n]
	k := prevLen[n]
	if math.IsInf(total, 1) || k == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(total / float64(k))
}

// AbsoluteCost is the reusable-buffer equivalent of the package-level
// AbsoluteCost; see that function for the algorithm and conventions.
func (c *Calculator) AbsoluteCost(a, b []float64) float64 {
	m, n := len(a), len(b)
	switch {
	case m == 0 && n == 0:
		return 0
	case m == 0 || n == 0:
		return math.Inf(1)
	}
	inf := math.Inf(1)
	c.grow(n + 1)
	prev, cur := c.prev, c.cur
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= n; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
		// After the first row, r(0,0) is no longer reachable as a path
		// start, so the left border stays infinite.
		prev[0] = inf
	}
	return prev[n]
}
