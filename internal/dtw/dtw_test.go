package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdenticalSeriesZero(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := Distance(a, a); d != 0 {
		t.Errorf("Distance(a, a) = %v, want 0", d)
	}
}

func TestEmptySeries(t *testing.T) {
	if d := Distance(nil, nil); d != 0 {
		t.Errorf("Distance(nil, nil) = %v, want 0", d)
	}
	if d := Distance([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Errorf("Distance(a, nil) = %v, want +Inf", d)
	}
	if d := Distance(nil, []float64{1}); !math.IsInf(d, 1) {
		t.Errorf("Distance(nil, b) = %v, want +Inf", d)
	}
}

func TestSingleElements(t *testing.T) {
	// For single elements the distance is |a-b| (one path cell, squared
	// distance, sqrt of cost/1).
	if d := Distance([]float64{3}, []float64{7}); math.Abs(d-4) > 1e-12 {
		t.Errorf("Distance([3],[7]) = %v, want 4", d)
	}
}

func TestTimeShiftedSeriesAlign(t *testing.T) {
	// A shifted copy of a ramp aligns almost perfectly under DTW while the
	// pointwise (Euclidean-style) distance is large.
	a := []float64{0, 0, 1, 2, 3, 4, 5, 5}
	b := []float64{0, 1, 2, 3, 4, 5, 5, 5}
	d := Distance(a, b)
	var euclid float64
	for i := range a {
		diff := a[i] - b[i]
		euclid += diff * diff
	}
	euclid = math.Sqrt(euclid / float64(len(a)))
	if d >= euclid {
		t.Errorf("DTW %v should beat pointwise RMS %v on shifted series", d, euclid)
	}
	if d > 0.3 {
		t.Errorf("DTW of shifted ramp = %v, want near 0", d)
	}
}

func TestUnequalLengths(t *testing.T) {
	// Same shape sampled at different rates: small distance.
	a := []float64{0, 1, 2, 3, 4}
	b := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	d := Distance(a, b)
	if math.IsInf(d, 0) || d > 0.5 {
		t.Errorf("Distance across lengths = %v, want small finite", d)
	}
}

func TestSymmetryProperty(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		a := clampAll(rawA)
		b := clampAll(rawB)
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		if math.IsInf(d1, 1) && math.IsInf(d2, 1) {
			return true
		}
		return math.Abs(d1-d2) <= 1e-9*(1+math.Abs(d1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNonNegativityAndIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		a := clampAll(raw)
		if Distance(a, a) != 0 {
			return false
		}
		shifted := make([]float64, len(a))
		for i, v := range a {
			shifted[i] = v + 1
		}
		return Distance(a, shifted) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWindowedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	unconstrained := Distance(a, b)
	// A tighter band restricts the admissible paths, so the cost cannot
	// decrease.
	prev := unconstrained
	for _, w := range []int{20, 10, 5, 2, 1} {
		d := WindowedDistance(a, b, w)
		if d+1e-9 < prev {
			// Not strictly guaranteed for the *normalized* distance (the
			// normalizer K also changes), but the fully constrained band
			// w=0-equivalent must equal the pointwise RMS; sanity-check
			// monotonic trend loosely.
			t.Logf("window %d: %v (prev %v) — normalized distance dipped", w, d, prev)
		}
		prev = d
	}
	// Band width 0 request on equal lengths collapses to the diagonal:
	// pointwise RMS. (window <= 0 means unconstrained per contract, so use
	// window 1 shrunk by equal lengths... use explicit tiny window.)
	dBand := WindowedDistance(a, b, 1)
	if math.IsInf(dBand, 0) {
		t.Error("narrow band on equal-length series must stay finite")
	}
}

func TestWindowWidensForLengthGap(t *testing.T) {
	// window narrower than the length difference would make the path
	// infeasible; the implementation must widen it.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{1, 8}
	if d := WindowedDistance(a, b, 1); math.IsInf(d, 0) {
		t.Error("band must widen to keep a feasible path")
	}
}

func TestPathProperties(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 2, 3}
	pairs, d := Path(a, b)
	if len(pairs) == 0 {
		t.Fatal("empty path")
	}
	// Path endpoints.
	if pairs[0] != [2]int{0, 0} {
		t.Errorf("path start = %v, want (0,0)", pairs[0])
	}
	if last := pairs[len(pairs)-1]; last != [2]int{3, 2} {
		t.Errorf("path end = %v, want (3,2)", last)
	}
	// Monotone, contiguous steps.
	for i := 1; i < len(pairs); i++ {
		di := pairs[i][0] - pairs[i-1][0]
		dj := pairs[i][1] - pairs[i-1][1]
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			t.Errorf("illegal step %v -> %v", pairs[i-1], pairs[i])
		}
	}
	// Path length bound: max(m,n) <= K <= m+n-1.
	if k := len(pairs); k < 4 || k > 6 {
		t.Errorf("path length %d outside [4, 6]", k)
	}
	if d < 0 {
		t.Errorf("distance = %v, want >= 0", d)
	}
	if _, d := Path(nil, nil); d != 0 {
		t.Error("Path(nil,nil) distance should be 0")
	}
	if _, d := Path([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Error("Path with one empty side should be +Inf")
	}
}

func TestDistanceMatchesPathOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		a := make([]float64, m)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		d1 := Distance(a, b)
		_, d2 := Path(a, b)
		// Both normalize by the optimal path length; random data has no
		// exact ties, so they must agree.
		if math.Abs(d1-d2) > 1e-9*(1+d1) {
			t.Fatalf("trial %d: Distance=%v Path=%v", trial, d1, d2)
		}
	}
}

func clampAll(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v > 1e3 {
			v = 1e3
		}
		if v < -1e3 {
			v = -1e3
		}
		out = append(out, v)
	}
	return out
}

func BenchmarkDistance100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkWindowedDistance100x100W10(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WindowedDistance(x, y, 10)
	}
}
