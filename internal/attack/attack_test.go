package attack

import (
	"math"
	"math/rand"
	"testing"
)

func TestKindString(t *testing.T) {
	if AttackI.String() != "Attack-I" || AttackII.String() != "Attack-II" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestFabricateStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := Fabricate{Target: -50}
	for s := 0; s < 5; s++ {
		if got := f.Fabricate(-80, -79, s, rng); got != -50 {
			t.Errorf("fabricate without jitter = %v, want -50", got)
		}
	}
	fj := Fabricate{Target: -50, JitterSigma: 1}
	var far int
	for s := 0; s < 100; s++ {
		v := fj.Fabricate(-80, -79, s, rng)
		if math.Abs(v-(-50)) > 5 {
			far++
		}
	}
	if far > 2 {
		t.Errorf("jittered fabrications stray too far: %d/100 beyond 5 dB", far)
	}
	if f.Name() != "fabricate" {
		t.Error("name")
	}
}

func TestDuplicateStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Duplicate{}
	if got := d.Fabricate(-80, -78.5, 0, rng); got != -78.5 {
		t.Errorf("first account should resubmit the measurement verbatim, got %v", got)
	}
	v := d.Fabricate(-80, -78.5, 1, rng)
	if math.Abs(v-(-78.5)) > 1 {
		t.Errorf("duplicate with default jitter = %v, want near -78.5", v)
	}
	if d.Name() != "duplicate" {
		t.Error("name")
	}
}

func TestOffsetStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := Offset{Delta: 10}
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		sum += o.Fabricate(-80, -79, i, rng)
	}
	if mean := sum / n; math.Abs(mean-(-69)) > 0.2 {
		t.Errorf("offset mean = %v, want ~-69", mean)
	}
	if o.Name() != "offset" {
		t.Error("name")
	}
}

func TestProfileNormalize(t *testing.T) {
	p := Profile{}.Normalize()
	if p.Kind != AttackI || p.NumDevices != 1 || p.NumAccounts != 5 {
		t.Errorf("zero profile normalized to %+v", p)
	}
	if p.Strategy == nil {
		t.Fatal("default strategy missing")
	}
	if p.Activeness != 0.5 {
		t.Errorf("default activeness = %v", p.Activeness)
	}

	p = Profile{Kind: AttackII, NumAccounts: 3}.Normalize()
	if p.NumDevices != 2 {
		t.Errorf("Attack-II devices = %d, want 2", p.NumDevices)
	}
	p = Profile{Kind: AttackII, NumAccounts: 2, NumDevices: 7}.Normalize()
	if p.NumDevices != 2 {
		t.Errorf("devices capped = %d, want 2 (<= accounts)", p.NumDevices)
	}
	p = Profile{Kind: AttackI, NumDevices: 4}.Normalize()
	if p.NumDevices != 1 {
		t.Errorf("Attack-I devices = %d, want 1", p.NumDevices)
	}
	p = Profile{Activeness: 5}.Normalize()
	if p.Activeness != 1 {
		t.Errorf("activeness clamp = %v, want 1", p.Activeness)
	}
}
