// Package attack implements the paper's adversary models (§III-C):
// Attack-I (one device, many accounts) and Attack-II (many devices, many
// accounts), together with the data-fabrication strategies a Sybil
// attacker uses. The scenario generator (internal/simulate) consumes these
// to inject attackers into synthetic campaigns.
package attack

import (
	"fmt"
	"math/rand"
)

// Kind is the attack type of §III-C.
type Kind int

const (
	// AttackI uses a single device with multiple accounts; all accounts
	// share one device fingerprint.
	AttackI Kind = iota + 1
	// AttackII spreads accounts across multiple devices; fingerprints
	// differ across the attacker's devices.
	AttackII
)

// String returns "Attack-I" or "Attack-II".
func (k Kind) String() string {
	switch k {
	case AttackI:
		return "Attack-I"
	case AttackII:
		return "Attack-II"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Strategy decides the value a Sybil account submits for a task.
type Strategy interface {
	// Name returns a short identifier.
	Name() string
	// Fabricate returns the value account accountIdx (0-based within the
	// attacker) submits for a task whose true value is truth and for which
	// the attacker's own (single) measurement was measured.
	Fabricate(truth, measured float64, accountIdx int, rng *rand.Rand) float64
}

// Fabricate is the paper's malicious strategy: every account reports the
// same fixed target value (e.g. -50 dBm to fake a strong signal), with
// optional per-account jitter to evade trivial duplicate detection.
type Fabricate struct {
	// Target is the value the attacker wants the platform to adopt.
	Target float64
	// JitterSigma adds N(0, sigma) per account so submissions are not
	// byte-identical. Zero means no jitter.
	JitterSigma float64
}

// Name implements Strategy.
func (Fabricate) Name() string { return "fabricate" }

// Fabricate implements Strategy.
func (f Fabricate) Fabricate(_, _ float64, _ int, rng *rand.Rand) float64 {
	return f.Target + rng.NormFloat64()*f.JitterSigma
}

// Duplicate is the rapacious strategy: the attacker performs the task once
// and re-submits its own measurement from every account, possibly after
// "simple modification" (the paper's wording) modeled as small jitter.
type Duplicate struct {
	// JitterSigma is the modification noise; zero means 0.1.
	JitterSigma float64
}

// Name implements Strategy.
func (Duplicate) Name() string { return "duplicate" }

// Fabricate implements Strategy.
func (d Duplicate) Fabricate(_, measured float64, accountIdx int, rng *rand.Rand) float64 {
	if accountIdx == 0 {
		return measured
	}
	sigma := d.JitterSigma
	if sigma == 0 {
		sigma = 0.1
	}
	return measured + rng.NormFloat64()*sigma
}

// Offset biases the attacker's real measurement by a constant, dragging
// the aggregate without an implausible absolute value.
type Offset struct {
	// Delta is added to the true measurement.
	Delta float64
	// JitterSigma adds per-account noise; zero means 0.2.
	JitterSigma float64
}

// Name implements Strategy.
func (Offset) Name() string { return "offset" }

// Fabricate implements Strategy.
func (o Offset) Fabricate(_, measured float64, _ int, rng *rand.Rand) float64 {
	sigma := o.JitterSigma
	if sigma == 0 {
		sigma = 0.2
	}
	return measured + o.Delta + rng.NormFloat64()*sigma
}

// Profile describes one Sybil attacker in a scenario.
type Profile struct {
	// Kind is Attack-I or Attack-II.
	Kind Kind
	// NumAccounts is how many accounts the attacker controls (the paper's
	// attackers have 5 each).
	NumAccounts int
	// NumDevices is how many physical devices the attacker owns: forced to
	// 1 for Attack-I; the paper's Attack-II attacker has 2.
	NumDevices int
	// Strategy decides submitted values; nil means Fabricate{Target: -50}.
	Strategy Strategy
	// Activeness is the attacker's per-account activeness α (Eq. 9).
	Activeness float64
}

// Normalize fills defaults and enforces kind constraints.
func (p Profile) Normalize() Profile {
	if p.NumAccounts <= 0 {
		p.NumAccounts = 5
	}
	switch p.Kind {
	case AttackII:
		if p.NumDevices < 2 {
			p.NumDevices = 2
		}
		if p.NumDevices > p.NumAccounts {
			p.NumDevices = p.NumAccounts
		}
	default:
		p.Kind = AttackI
		p.NumDevices = 1
	}
	if p.Strategy == nil {
		p.Strategy = Fabricate{Target: -50}
	}
	if p.Activeness <= 0 {
		p.Activeness = 0.5
	}
	if p.Activeness > 1 {
		p.Activeness = 1
	}
	return p
}

var (
	_ Strategy = Fabricate{}
	_ Strategy = Duplicate{}
	_ Strategy = Offset{}
)
