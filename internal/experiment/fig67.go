package experiment

import (
	"fmt"
	"math"

	"sybiltd/internal/core"
	"sybiltd/internal/grouping"
	"sybiltd/internal/metrics"
	"sybiltd/internal/simulate"
	"sybiltd/internal/truth"
)

// SweepConfig parameterizes the Fig. 6 / Fig. 7 activeness sweeps.
type SweepConfig struct {
	// LegitActiveness values index the subfigures; nil means the paper's
	// {0.2, 0.5, 1.0} (Figs. 6-7 a/b/c).
	LegitActiveness []float64
	// SybilActiveness values form the x-axis; nil means 0.2..1.0 step 0.2.
	SybilActiveness []float64
	// Trials per point; zero means 10. Results are trial averages.
	Trials int
	// Seed bases the per-trial seeds.
	Seed int64
	// AGTRPhi is the Eq. (7) dissimilarity threshold used by AG-TR on the
	// synthetic campaign; zero means 0.3 (calibrated in EXPERIMENTS.md).
	AGTRPhi float64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.LegitActiveness == nil {
		c.LegitActiveness = []float64{0.2, 0.5, 1.0}
	}
	if c.SybilActiveness == nil {
		c.SybilActiveness = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.AGTRPhi == 0 {
		c.AGTRPhi = 0.3
	}
	return c
}

// groupersUnderTest returns the three paper groupers with the sweep's
// thresholds.
func (c SweepConfig) groupersUnderTest() []grouping.Grouper {
	return []grouping.Grouper{
		grouping.AGFP{},
		grouping.AGTS{},
		grouping.AGTR{Phi: c.AGTRPhi},
	}
}

// SweepPoint is one (legit α, Sybil α) cell of a sweep, holding one value
// per method.
type SweepPoint struct {
	LegitActiveness float64
	SybilActiveness float64
	// Values maps method name (AG-FP/AG-TS/AG-TR for Fig. 6; CRH/TD-FP/
	// TD-TS/TD-TR for Fig. 7) to the trial-averaged metric.
	Values map[string]float64
}

// SweepResult is a full Fig. 6 or Fig. 7 sweep.
type SweepResult struct {
	// Metric is "ARI" or "MAE".
	Metric  string
	Methods []string
	Points  []SweepPoint
}

// Fig6 reproduces the ARI comparison of the three grouping methods
// (Fig. 6 a-c).
func Fig6(cfg SweepConfig) (SweepResult, error) {
	cfg = cfg.withDefaults()
	res := SweepResult{Metric: "ARI"}
	for _, g := range cfg.groupersUnderTest() {
		res.Methods = append(res.Methods, g.Name())
	}
	for _, la := range cfg.LegitActiveness {
		for _, sa := range cfg.SybilActiveness {
			la, sa := la, sa
			point := SweepPoint{LegitActiveness: la, SybilActiveness: sa, Values: map[string]float64{}}
			// One result map per trial; trials run in parallel and are
			// reduced in trial order so sums stay deterministic.
			perTrial := make([]map[string]float64, cfg.Trials)
			err := forEachTrial(cfg.Trials, func(trial int) error {
				sc, err := simulate.Build(simulate.Config{
					Seed:            cfg.Seed + int64(trial)*1009,
					LegitActiveness: la,
					SybilActiveness: sa,
				})
				if err != nil {
					return fmt.Errorf("experiment: fig6 build: %w", err)
				}
				want := sc.TrueGrouping()
				vals := map[string]float64{}
				for _, g := range cfg.groupersUnderTest() {
					got, err := g.Group(sc.Dataset)
					if err != nil {
						return fmt.Errorf("experiment: fig6 %s: %w", g.Name(), err)
					}
					ari, err := metrics.AdjustedRandIndex(want, got.Labels(sc.Dataset.NumAccounts()))
					if err != nil {
						return fmt.Errorf("experiment: fig6 ari: %w", err)
					}
					vals[g.Name()] = ari
				}
				perTrial[trial] = vals
				return nil
			})
			if err != nil {
				return SweepResult{}, err
			}
			for _, vals := range perTrial {
				for k, v := range vals {
					point.Values[k] += v
				}
			}
			for k := range point.Values {
				point.Values[k] /= float64(cfg.Trials)
			}
			res.Points = append(res.Points, point)
		}
	}
	return res, nil
}

// Fig7 reproduces the MAE comparison of CRH against the framework with the
// three grouping methods (Fig. 7 a-c).
func Fig7(cfg SweepConfig) (SweepResult, error) {
	cfg = cfg.withDefaults()
	res := SweepResult{Metric: "MAE", Methods: []string{"CRH"}}
	groupers := cfg.groupersUnderTest()
	for _, g := range groupers {
		res.Methods = append(res.Methods, (core.Framework{Grouper: g}).Name())
	}
	for _, la := range cfg.LegitActiveness {
		for _, sa := range cfg.SybilActiveness {
			la, sa := la, sa
			point := SweepPoint{LegitActiveness: la, SybilActiveness: sa, Values: map[string]float64{}}
			perTrial := make([]map[string]float64, cfg.Trials)
			err := forEachTrial(cfg.Trials, func(trial int) error {
				sc, err := simulate.Build(simulate.Config{
					Seed:            cfg.Seed + int64(trial)*1009,
					LegitActiveness: la,
					SybilActiveness: sa,
				})
				if err != nil {
					return fmt.Errorf("experiment: fig7 build: %w", err)
				}
				vals := map[string]float64{}
				crhRes, err := truth.CRH{}.Run(sc.Dataset)
				if err != nil {
					return fmt.Errorf("experiment: fig7 CRH: %w", err)
				}
				mae, err := MAEAgainstTruth(crhRes.Truths, sc.GroundTruth)
				if err != nil {
					return fmt.Errorf("experiment: fig7 CRH mae: %w", err)
				}
				vals["CRH"] = mae
				for _, g := range groupers {
					fw := core.Framework{Grouper: g}
					fwRes, err := fw.Run(sc.Dataset)
					if err != nil {
						return fmt.Errorf("experiment: fig7 %s: %w", fw.Name(), err)
					}
					mae, err := MAEAgainstTruth(fwRes.Truths, sc.GroundTruth)
					if err != nil {
						return fmt.Errorf("experiment: fig7 %s mae: %w", fw.Name(), err)
					}
					vals[fw.Name()] = mae
				}
				perTrial[trial] = vals
				return nil
			})
			if err != nil {
				return SweepResult{}, err
			}
			for _, vals := range perTrial {
				for k, v := range vals {
					point.Values[k] += v
				}
			}
			for k := range point.Values {
				point.Values[k] /= float64(cfg.Trials)
			}
			res.Points = append(res.Points, point)
		}
	}
	return res, nil
}

// MAEAgainstTruth computes the MAE over tasks that received data (NaN
// estimates are skipped, as tasks nobody reported on cannot be scored).
func MAEAgainstTruth(estimates, groundTruth []float64) (float64, error) {
	if len(estimates) != len(groundTruth) {
		return 0, fmt.Errorf("experiment: %d estimates vs %d truths", len(estimates), len(groundTruth))
	}
	var est, gt []float64
	for j := range estimates {
		if math.IsNaN(estimates[j]) {
			continue
		}
		est = append(est, estimates[j])
		gt = append(gt, groundTruth[j])
	}
	if len(est) == 0 {
		return 0, fmt.Errorf("experiment: no scorable tasks")
	}
	return metrics.MAE(est, gt)
}

// Tables renders one table per legit-activeness subfigure.
func (r SweepResult) Tables() []*Table {
	byLA := map[float64][]SweepPoint{}
	var las []float64
	for _, p := range r.Points {
		if _, ok := byLA[p.LegitActiveness]; !ok {
			las = append(las, p.LegitActiveness)
		}
		byLA[p.LegitActiveness] = append(byLA[p.LegitActiveness], p)
	}
	var tables []*Table
	fig := "Fig. 6"
	if r.Metric == "MAE" {
		fig = "Fig. 7"
	}
	for _, la := range las {
		t := &Table{
			Title:   fmt.Sprintf("%s — %s vs Sybil activeness (legitimate α = %.1f)", fig, r.Metric, la),
			Headers: append([]string{"sybil α"}, r.Methods...),
		}
		for _, p := range byLA[la] {
			row := []string{F(p.SybilActiveness)}
			for _, m := range r.Methods {
				row = append(row, F(p.Values[m]))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// ariLabels is a thin wrapper so extension experiments can share the
// metric without importing it everywhere.
func ariLabels(truthLabels, predicted []int) (float64, error) {
	return metrics.AdjustedRandIndex(truthLabels, predicted)
}
