package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"sybiltd/internal/core"
	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/truth"
)

// ExtEvolvingResult extends the evaluation to an evolving phenomenon (the
// setting of the paper's reference [11]): one task whose true value drifts
// across hourly phases while a Sybil burst hits one phase. The windowed
// framework must both follow the drift and contain the burst.
type ExtEvolvingResult struct {
	// Hours indexes the windows; TrueValues the drifting ground truth.
	Hours      []int
	TrueValues []float64
	// WindowMean / WindowFramework are the per-window estimates.
	WindowMean      []float64
	WindowFramework []float64
	// BurstHour is the window the attacker targets.
	BurstHour int
}

// ExtEvolving runs the experiment (deterministic given seed).
func ExtEvolving(seed int64) (ExtEvolvingResult, error) {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2026, 7, 4, 6, 0, 0, 0, time.UTC)
	profile := []float64{52, 58, 71, 74, 66, 60}
	const burstHour = 2

	ds := mcs.NewDataset(1)
	for hour, truthVal := range profile {
		for u := 0; u < 5; u++ {
			ds.AddAccount(mcs.Account{
				ID: fmt.Sprintf("u%d-h%d", u, hour),
				Observations: []mcs.Observation{{
					Task:  0,
					Value: truthVal + rng.NormFloat64()*1.2,
					Time:  base.Add(time.Duration(hour)*time.Hour + time.Duration(u*11)*time.Minute),
				}},
			})
		}
	}
	for s := 0; s < 6; s++ {
		ds.AddAccount(mcs.Account{
			ID: fmt.Sprintf("burst-%d", s),
			Observations: []mcs.Observation{{
				Task:  0,
				Value: 45,
				Time:  base.Add(burstHour*time.Hour + 35*time.Minute + time.Duration(s*40)*time.Second),
			}},
		})
	}

	runSeries := func(alg truth.Algorithm) ([]float64, error) {
		w := core.Windowed{Algorithm: alg, Window: time.Hour}
		series, err := w.Run(ds)
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, len(series))
		for _, p := range series {
			out = append(out, p.Truths[0])
		}
		return out, nil
	}
	meanSeries, err := runSeries(truth.Mean{})
	if err != nil {
		return ExtEvolvingResult{}, fmt.Errorf("experiment: ext-evolving mean: %w", err)
	}
	fwSeries, err := runSeries(core.Framework{
		Grouper: grouping.AGTR{Phi: 0.05, TimeUnit: time.Hour},
	})
	if err != nil {
		return ExtEvolvingResult{}, fmt.Errorf("experiment: ext-evolving framework: %w", err)
	}

	res := ExtEvolvingResult{BurstHour: burstHour}
	for hour := range profile {
		res.Hours = append(res.Hours, hour)
		res.TrueValues = append(res.TrueValues, profile[hour])
	}
	res.WindowMean = meanSeries[:len(profile)]
	res.WindowFramework = fwSeries[:len(profile)]
	return res, nil
}

// Tables renders the time series.
func (r ExtEvolvingResult) Tables() []*Table {
	t := &Table{
		Title:   "Extension — evolving truth with a mid-stream Sybil burst (hourly windows)",
		Headers: []string{"hour", "true", "windowed mean", "windowed TD-TR", ""},
	}
	for i, hour := range r.Hours {
		marker := ""
		if hour == r.BurstHour {
			marker = "<- Sybil burst"
		}
		t.AddRow(fmt.Sprintf("%d", hour), F(r.TrueValues[i]), F(r.WindowMean[i]), F(r.WindowFramework[i]), marker)
	}
	return []*Table{t}
}
