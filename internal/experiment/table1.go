package experiment

import (
	"fmt"

	"sybiltd/internal/truth"
)

// Table1Result reproduces Table I: the vulnerability of plain truth
// discovery (CRH) to the Sybil attack on the paper's 4-task example.
type Table1Result struct {
	// Honest[j] is CRH's estimate without the attacker; Attacked[j] with
	// the attacker's three -50 dBm accounts.
	Honest   []float64
	Attacked []float64
	// PaperHonest/PaperAttacked are the values printed in Table I.
	PaperHonest   []float64
	PaperAttacked []float64
}

// Table1 runs the experiment.
func Table1() (Table1Result, error) {
	honest, err := truth.CRH{}.Run(truth.PaperExampleHonest())
	if err != nil {
		return Table1Result{}, fmt.Errorf("experiment: table1 honest: %w", err)
	}
	attacked, err := truth.CRH{}.Run(truth.PaperExampleWithSybil())
	if err != nil {
		return Table1Result{}, fmt.Errorf("experiment: table1 attacked: %w", err)
	}
	return Table1Result{
		Honest:        honest.Truths,
		Attacked:      attacked.Truths,
		PaperHonest:   []float64{-84.23, -82.01, -75.22, -72.72},
		PaperAttacked: []float64{-56.06, -86.17, -53.29, -55.35},
	}, nil
}

// Tables renders the result.
func (r Table1Result) Tables() []*Table {
	ds := truth.PaperExampleWithSybil()
	data := &Table{
		Title:   "Table I — example showing the Sybil attack in MCS (Wi-Fi dBm)",
		Headers: []string{"account", "T1", "T2", "T3", "T4"},
	}
	for ai := range ds.Accounts {
		row := []string{ds.Accounts[ai].ID}
		for j := 0; j < 4; j++ {
			if v, ok := ds.Value(ai, j); ok {
				row = append(row, F(v))
			} else {
				row = append(row, "x")
			}
		}
		data.AddRow(row...)
	}

	result := &Table{
		Title:   "CRH aggregation with and without the attacker (ours vs paper)",
		Headers: []string{"row", "T1", "T2", "T3", "T4"},
	}
	addRow := func(name string, vals []float64) {
		row := []string{name}
		for _, v := range vals {
			row = append(row, F(v))
		}
		result.AddRow(row...)
	}
	addRow("TD without Sybil (ours)", r.Honest)
	addRow("TD without Sybil (paper)", r.PaperHonest)
	addRow("TD with Sybil (ours)", r.Attacked)
	addRow("TD with Sybil (paper)", r.PaperAttacked)
	return []*Table{data, result}
}
