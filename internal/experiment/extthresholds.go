package experiment

import (
	"fmt"

	"sybiltd/internal/grouping"
	"sybiltd/internal/metrics"
	"sybiltd/internal/simulate"
)

// ExtThresholdsResult maps out the sensitivity of AG-TS's ρ (Eq. 6) and
// AG-TR's φ (Eq. 8), which the paper's Remarks call campaign-dependent but
// does not quantify: ARI plus pairwise precision/recall of the grouping
// decisions at each threshold.
type ExtThresholdsResult struct {
	Rhos []float64
	Phis []float64
	// TS[k] / TR[k] are the trial-averaged scores at Rhos[k] / Phis[k].
	TS []ThresholdScores
	TR []ThresholdScores
}

// ThresholdScores aggregates grouping quality at one threshold.
type ThresholdScores struct {
	ARI       float64
	Precision float64
	Recall    float64
}

// ExtThresholds runs the sweep on the default campaign (sybil α = 0.8).
func ExtThresholds(seed int64, trials int) (ExtThresholdsResult, error) {
	if trials <= 0 {
		trials = 5
	}
	res := ExtThresholdsResult{
		Rhos: []float64{0.25, 0.5, 1, 2, 4, 8},
		Phis: []float64{0.02, 0.05, 0.1, 0.3, 0.6, 1.2},
	}
	res.TS = make([]ThresholdScores, len(res.Rhos))
	res.TR = make([]ThresholdScores, len(res.Phis))

	for trial := 0; trial < trials; trial++ {
		sc, err := simulate.Build(simulate.Config{Seed: seed + int64(trial)*449, SybilActiveness: 0.8})
		if err != nil {
			return ExtThresholdsResult{}, fmt.Errorf("experiment: ext-thresholds: %w", err)
		}
		want := sc.TrueGrouping()
		n := sc.Dataset.NumAccounts()
		score := func(g grouping.Grouper) (ThresholdScores, error) {
			got, err := g.Group(sc.Dataset)
			if err != nil {
				return ThresholdScores{}, err
			}
			labels := got.Labels(n)
			ari, err := metrics.AdjustedRandIndex(want, labels)
			if err != nil {
				return ThresholdScores{}, err
			}
			pw, err := metrics.PairwiseGrouping(want, labels)
			if err != nil {
				return ThresholdScores{}, err
			}
			return ThresholdScores{ARI: ari, Precision: pw.Precision, Recall: pw.Recall}, nil
		}
		for k, rho := range res.Rhos {
			s, err := score(grouping.AGTS{Rho: rho})
			if err != nil {
				return ExtThresholdsResult{}, fmt.Errorf("experiment: ext-thresholds AG-TS ρ=%v: %w", rho, err)
			}
			res.TS[k].ARI += s.ARI / float64(trials)
			res.TS[k].Precision += s.Precision / float64(trials)
			res.TS[k].Recall += s.Recall / float64(trials)
		}
		for k, phi := range res.Phis {
			s, err := score(grouping.AGTR{Phi: phi})
			if err != nil {
				return ExtThresholdsResult{}, fmt.Errorf("experiment: ext-thresholds AG-TR φ=%v: %w", phi, err)
			}
			res.TR[k].ARI += s.ARI / float64(trials)
			res.TR[k].Precision += s.Precision / float64(trials)
			res.TR[k].Recall += s.Recall / float64(trials)
		}
	}
	return res, nil
}

// Tables renders one table per method.
func (r ExtThresholdsResult) Tables() []*Table {
	ts := &Table{
		Title:   "Extension — AG-TS threshold ρ sensitivity (sybil α = 0.8)",
		Headers: []string{"rho", "ARI", "precision", "recall"},
	}
	for k, rho := range r.Rhos {
		ts.AddRow(F(rho), F(r.TS[k].ARI), F(r.TS[k].Precision), F(r.TS[k].Recall))
	}
	tr := &Table{
		Title:   "Extension — AG-TR threshold φ sensitivity (sybil α = 0.8)",
		Headers: []string{"phi", "ARI", "precision", "recall"},
	}
	for k, phi := range r.Phis {
		tr.AddRow(F(phi), F(r.TR[k].ARI), F(r.TR[k].Precision), F(r.TR[k].Recall))
	}
	return []*Table{ts, tr}
}
