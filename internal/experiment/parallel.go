package experiment

import (
	"sybiltd/internal/parallel"
)

// forEachTrial runs fn(trial) for trial = 0..n-1 on up to GOMAXPROCS
// workers and returns the first error; after a failure no further trials
// are dispatched. Results must be written into per-trial slots by fn so
// that the caller can reduce them in trial order, keeping floating-point
// sums deterministic regardless of scheduling. Kept as a thin alias over
// the shared substrate so experiment code reads in terms of trials.
func forEachTrial(n int, fn func(trial int) error) error {
	return parallel.ForEach(n, fn)
}
