package experiment

import (
	"runtime"
	"sync"
)

// forEachTrial runs fn(trial) for trial = 0..n-1 on up to GOMAXPROCS
// workers and returns the first error. Results must be written into
// per-trial slots by fn so that the caller can reduce them in trial order,
// keeping floating-point sums deterministic regardless of scheduling.
func forEachTrial(n int, fn func(trial int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for trial := 0; trial < n; trial++ {
			if err := fn(trial); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	trials := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trials {
				if err := fn(trial); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for trial := 0; trial < n; trial++ {
		trials <- trial
	}
	close(trials)
	wg.Wait()
	return firstErr
}
