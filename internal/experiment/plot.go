package experiment

import (
	"fmt"
	"math"
	"strings"
)

// scatterPlot renders labeled 2-D points as an ASCII scatter chart, the
// terminal stand-in for the paper's Fig. 2 / Fig. 8 PC-space plots. Each
// point is drawn with its label rune; colliding points show the later one.
func scatterPlot(xs, ys []float64, marks []rune, width, height int) string {
	if len(xs) == 0 || len(xs) != len(ys) || len(xs) != len(marks) {
		return ""
	}
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int(math.Round((xs[i] - minX) / (maxX - minX) * float64(width-1)))
		r := int(math.Round((ys[i] - minY) / (maxY - minY) * float64(height-1)))
		// Flip vertically: larger y at the top.
		r = height - 1 - r
		grid[r][c] = marks[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PC2 %.2f\n", maxY)
	for _, row := range grid {
		b.WriteString("    |")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%.2f +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "     PC1: %.2f .. %.2f\n", minX, maxX)
	return b.String()
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Plot renders the Fig. 2 scatter (marks = true device index 1-3).
func (r Fig2Result) Plot() string {
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	marks := make([]rune, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p[0]
		ys[i] = p[1]
		marks[i] = rune('1' + r.TrueDevice[i])
	}
	return scatterPlot(xs, ys, marks, 60, 18)
}

// Plot renders the Fig. 8 device-center scatter. Centers of the same
// model share a mark letter, making same-model proximity visible.
func (r Fig8Result) Plot() string {
	xs := make([]float64, len(r.Centers))
	ys := make([]float64, len(r.Centers))
	marks := make([]rune, len(r.Centers))
	modelMark := map[string]rune{}
	next := 'A'
	for i, c := range r.Centers {
		xs[i] = c[0]
		ys[i] = c[1]
		m, ok := modelMark[r.Models[i]]
		if !ok {
			m = next
			modelMark[r.Models[i]] = m
			next++
		}
		marks[i] = m
	}
	var legend strings.Builder
	for i, model := range r.Models {
		if i == 0 || r.Models[i-1] != model {
			fmt.Fprintf(&legend, "  %c = %s\n", modelMark[model], model)
		}
	}
	return scatterPlot(xs, ys, marks, 60, 18) + legend.String()
}
