package experiment

import (
	"fmt"
	"math/rand"

	"sybiltd/internal/metrics"
	"sybiltd/internal/simulate"
)

// ExtSelectionResult quantifies the paper's Remarks claim: running an
// incentive-mechanism user selection before aggregation suppresses a Sybil
// attacker's redundant accounts (their task sets add no marginal
// coverage), which both shrinks the attack and removes the grouping
// methods' false-positive pressure. It compares three settings: no
// selection, the plain MSensing coverage auction (which strips the
// measurement redundancy truth discovery relies on), and the
// redundancy-aware depth auction (diminishing per-depth task values).
type ExtSelectionResult struct {
	// Rows: "no selection" vs "with selection".
	Labels []string
	// SybilAccounts participating in aggregation.
	SybilAccounts []float64
	// MAE of CRH and TD-TR.
	MAECRH  []float64
	MAETDTR []float64
	// AGTSARI is AG-TS's grouping ARI (the method most helped by
	// selection).
	AGTSARI []float64
}

// ExtSelection runs the comparison.
func ExtSelection(seed int64, trials int) (ExtSelectionResult, error) {
	if trials <= 0 {
		trials = 5
	}
	res := ExtSelectionResult{
		Labels:        []string{"no selection", "coverage auction", "depth-aware auction"},
		SybilAccounts: make([]float64, 3),
		MAECRH:        make([]float64, 3),
		MAETDTR:       make([]float64, 3),
		AGTSARI:       make([]float64, 3),
	}
	for trial := 0; trial < trials; trial++ {
		base, err := simulate.Build(simulate.Config{Seed: seed + int64(trial)*331, SybilActiveness: 0.8})
		if err != nil {
			return ExtSelectionResult{}, fmt.Errorf("experiment: ext-selection: %w", err)
		}
		sel, err := simulate.ApplySelection(base, simulate.SelectionConfig{}, rand.New(rand.NewSource(seed+int64(trial))))
		if err != nil {
			return ExtSelectionResult{}, fmt.Errorf("experiment: ext-selection: %w", err)
		}
		deep, err := simulate.ApplySelection(base, simulate.SelectionConfig{
			DepthValues: []float64{10, 6, 3},
		}, rand.New(rand.NewSource(seed+int64(trial))))
		if err != nil {
			return ExtSelectionResult{}, fmt.Errorf("experiment: ext-selection depth: %w", err)
		}
		for row, sc := range []*simulate.Scenario{base, sel.Scenario, deep.Scenario} {
			crhOut, err := crhAlg.Run(sc.Dataset)
			if err != nil {
				return ExtSelectionResult{}, err
			}
			fwOut, err := tdtrAlg.Run(sc.Dataset)
			if err != nil {
				return ExtSelectionResult{}, err
			}
			maeCRH, err := MAEAgainstTruth(crhOut.Truths, sc.GroundTruth)
			if err != nil {
				return ExtSelectionResult{}, err
			}
			maeFW, err := MAEAgainstTruth(fwOut.Truths, sc.GroundTruth)
			if err != nil {
				return ExtSelectionResult{}, err
			}
			g, err := agtsGrouper.Group(sc.Dataset)
			if err != nil {
				return ExtSelectionResult{}, err
			}
			ari, err := metrics.AdjustedRandIndex(sc.TrueGrouping(), g.Labels(sc.Dataset.NumAccounts()))
			if err != nil {
				return ExtSelectionResult{}, err
			}
			res.SybilAccounts[row] += float64(len(sc.SybilAccounts)) / float64(trials)
			res.MAECRH[row] += maeCRH / float64(trials)
			res.MAETDTR[row] += maeFW / float64(trials)
			res.AGTSARI[row] += ari / float64(trials)
		}
	}
	return res, nil
}

// Tables renders the result.
func (r ExtSelectionResult) Tables() []*Table {
	t := &Table{
		Title:   "Extension — incentive-mechanism user selection before aggregation (sybil α = 0.8)",
		Headers: []string{"setting", "sybil accounts", "CRH MAE", "TD-TR MAE", "AG-TS ARI"},
	}
	for row, label := range r.Labels {
		t.AddRow(label, F(r.SybilAccounts[row]), F(r.MAECRH[row]), F(r.MAETDTR[row]), F(r.AGTSARI[row]))
	}
	return []*Table{t}
}
