package experiment

import (
	"sybiltd/internal/attack"
	"sybiltd/internal/core"
	"sybiltd/internal/grouping"
	"sybiltd/internal/metrics"
	"sybiltd/internal/truth"
)

// Shared method instances used across experiments, so every experiment
// evaluates identical configurations.
var (
	crhAlg      = truth.CRH{}
	tdtrGrouper = grouping.AGTR{Phi: 0.3}
	agtsGrouper = grouping.AGTS{}
	tdtrAlg     = core.Framework{Grouper: tdtrGrouper}
)

// scaleAttackers builds n attackers alternating Attack-I and Attack-II,
// five accounts each, all fabricating -50 dBm.
func scaleAttackers(n int) []attack.Profile {
	profiles := make([]attack.Profile, 0, n)
	for i := 0; i < n; i++ {
		kind := attack.AttackI
		devices := 1
		if i%2 == 1 {
			kind = attack.AttackII
			devices = 2
		}
		profiles = append(profiles, attack.Profile{
			Kind:        kind,
			NumAccounts: 5,
			NumDevices:  devices,
			Activeness:  0.8,
			Strategy:    attack.Fabricate{Target: -50},
		})
	}
	return profiles
}

// pairwiseScores wraps metrics.PairwiseGrouping.
func pairwiseScores(truthLabels, predicted []int) (metrics.PairwiseScores, error) {
	return metrics.PairwiseGrouping(truthLabels, predicted)
}
