package experiment

import (
	"fmt"
	"io"
	"sort"
)

// Options tunes a registry run.
type Options struct {
	// Seed drives stochastic experiments; 0 picks the documented default.
	Seed int64
	// Trials overrides sweep trials (fig6/fig7); 0 keeps the default.
	Trials int
	// Quick shrinks the sweeps for smoke runs (2 trials, short axes).
	Quick bool
	// CSV renders comma-separated output instead of ASCII tables.
	CSV bool
}

// Runner executes one experiment and writes its tables to w.
type Runner struct {
	// ID is the CLI name ("table1", "fig6", ...).
	ID string
	// Description is a one-line summary shown by `sybiltd list`.
	Description string
	// Run executes the experiment.
	Run func(w io.Writer, opts Options) error
}

// Registry returns all experiment runners keyed by ID.
func Registry() map[string]Runner {
	runners := []Runner{
		{
			ID:          "table1",
			Description: "Table I: CRH vulnerability to the Sybil attack (paper example)",
			Run: func(w io.Writer, opts Options) error {
				r, err := Table1()
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "fig2",
			Description: "Fig. 2: AG-FP example — 3 phones x 5 fingerprints, PCA + k-means",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig2(seedOr(opts, 2))
				if err != nil {
					return err
				}
				if err := render(w, opts, r.Tables()); err != nil {
					return err
				}
				if !opts.CSV {
					fmt.Fprintln(w)
					fmt.Fprint(w, r.Plot())
				}
				return nil
			},
		},
		{
			ID:          "fig3",
			Description: "Table III + Fig. 3: AG-TS walkthrough (affinity matrices, components)",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig3()
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "fig4",
			Description: "Fig. 4: AG-TR walkthrough (DTW matrices, components)",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig4()
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "fig5",
			Description: "Fig. 5: POI map of the measurement campaign (synthetic layout + ground truths)",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig5(seedOr(opts, 1))
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "fig6",
			Description: "Fig. 6: ARI of AG-FP/AG-TS/AG-TR vs activeness (synthetic campaign)",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig6(sweepConfig(opts))
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "fig7",
			Description: "Fig. 7: MAE of CRH vs TD-FP/TD-TS/TD-TR vs activeness",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig7(sweepConfig(opts))
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "fig8",
			Description: "Fig. 8: 11 smartphone fingerprint centers in PC space",
			Run: func(w io.Writer, opts Options) error {
				r, err := Fig8(seedOr(opts, 8), 5)
				if err != nil {
					return err
				}
				if err := render(w, opts, r.Tables()); err != nil {
					return err
				}
				if !opts.CSV {
					fmt.Fprintln(w)
					fmt.Fprint(w, r.Plot())
				}
				return nil
			},
		},
		{
			ID:          "ext-algorithms",
			Description: "Extension: MAE of Mean/Median/CRH/CATD/GTM vs the framework under attack",
			Run: func(w io.Writer, opts Options) error {
				trials := opts.Trials
				if opts.Quick {
					trials = 2
				}
				r, err := ExtAlgorithms(seedOr(opts, 13), trials)
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "ext-strategies",
			Description: "Extension: fabricate/duplicate/offset attacker strategies vs CRH and TD-TR",
			Run: func(w io.Writer, opts Options) error {
				trials := opts.Trials
				if opts.Quick {
					trials = 2
				}
				r, err := ExtStrategies(seedOr(opts, 13), trials)
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "ext-scale",
			Description: "Extension: large-scale Sybil attack (growing attacker count)",
			Run: func(w io.Writer, opts Options) error {
				trials := opts.Trials
				if opts.Quick {
					trials = 1
				}
				r, err := ExtScale(seedOr(opts, 13), trials)
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "ext-selection",
			Description: "Extension: incentive-auction user selection suppressing Sybil accounts",
			Run: func(w io.Writer, opts Options) error {
				trials := opts.Trials
				if opts.Quick {
					trials = 2
				}
				r, err := ExtSelection(seedOr(opts, 13), trials)
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "ext-thresholds",
			Description: "Extension: rho/phi threshold sensitivity (ARI, precision, recall)",
			Run: func(w io.Writer, opts Options) error {
				trials := opts.Trials
				if opts.Quick {
					trials = 2
				}
				r, err := ExtThresholds(seedOr(opts, 13), trials)
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "ext-evolving",
			Description: "Extension: drifting truth + mid-stream Sybil burst, windowed framework",
			Run: func(w io.Writer, opts Options) error {
				r, err := ExtEvolving(seedOr(opts, 12))
				if err != nil {
					return err
				}
				return render(w, opts, r.Tables())
			},
		},
		{
			ID:          "table4",
			Description: "Table IV: smartphone inventory",
			Run: func(w io.Writer, opts Options) error {
				return render(w, opts, Table4().Tables())
			},
		},
	}
	m := make(map[string]Runner, len(runners))
	for _, r := range runners {
		m[r.ID] = r
	}
	return m
}

// IDs returns the registry keys sorted.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func seedOr(opts Options, def int64) int64 {
	if opts.Seed != 0 {
		return opts.Seed
	}
	return def
}

func sweepConfig(opts Options) SweepConfig {
	cfg := SweepConfig{Seed: opts.Seed, Trials: opts.Trials}
	if opts.Quick {
		cfg.Trials = 2
		cfg.LegitActiveness = []float64{0.5}
		cfg.SybilActiveness = []float64{0.2, 1.0}
	}
	return cfg
}

func render(w io.Writer, opts Options, tables []*Table) error {
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if opts.CSV {
			if err := t.CSV(w); err != nil {
				return err
			}
			continue
		}
		t.Render(w)
	}
	return nil
}
