package experiment

import (
	"fmt"
	"strings"
	"time"

	"sybiltd/internal/dtw"
	"sybiltd/internal/grouping"
	"sybiltd/internal/truth"
)

// Fig3Result reproduces Table III + Fig. 3: the AG-TS walkthrough on the
// paper's 6-account example. It reports the literal Eq. (6) matrices and
// the resulting components at the paper's threshold ρ = 1 and at ρ = 0.9
// (the paper's own Fig. 3(c) values do not follow Eq. (6); see DESIGN.md).
type Fig3Result struct {
	AccountIDs []string
	// T[i][j] counts tasks both i and j performed; L[i][j] counts tasks
	// exactly one performed; A[i][j] is the Eq. (6) affinity.
	T, L [][]int
	A    [][]float64
	// GroupsRho1 / GroupsRho09 are the components at ρ=1 and ρ=0.9 (account
	// IDs).
	GroupsRho1  [][]string
	GroupsRho09 [][]string
}

// Fig3 runs the walkthrough.
func Fig3() (Fig3Result, error) {
	ds := truth.PaperExampleWithSybil()
	n := ds.NumAccounts()
	r := Fig3Result{
		T: intMatrix(n), L: intMatrix(n),
		A: floatMatrix(n),
	}
	for ai := range ds.Accounts {
		r.AccountIDs = append(r.AccountIDs, ds.Accounts[ai].ID)
	}
	agts := grouping.AGTS{}
	for i := 0; i < n; i++ {
		si := ds.Accounts[i].TaskSet()
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sj := ds.Accounts[j].TaskSet()
			var both, alone int
			for t := range si {
				if sj[t] {
					both++
				} else {
					alone++
				}
			}
			for t := range sj {
				if !si[t] {
					alone++
				}
			}
			r.T[i][j] = both
			r.L[i][j] = alone
			r.A[i][j] = agts.Affinity(ds, i, j)
		}
	}
	g1, err := grouping.AGTS{Rho: 1}.Group(ds)
	if err != nil {
		return Fig3Result{}, fmt.Errorf("experiment: fig3 ρ=1: %w", err)
	}
	g09, err := grouping.AGTS{Rho: 0.9}.Group(ds)
	if err != nil {
		return Fig3Result{}, fmt.Errorf("experiment: fig3 ρ=0.9: %w", err)
	}
	r.GroupsRho1 = namedGroups(g1, r.AccountIDs)
	r.GroupsRho09 = namedGroups(g09, r.AccountIDs)
	return r, nil
}

// Tables renders the matrices and components.
func (r Fig3Result) Tables() []*Table {
	n := len(r.AccountIDs)
	headers := append([]string{""}, r.AccountIDs...)
	tT := &Table{Title: "Fig. 3(a) — T(i,j): tasks both performed", Headers: headers}
	tL := &Table{Title: "Fig. 3(b) — L(i,j): tasks exactly one performed", Headers: headers}
	tA := &Table{Title: "Fig. 3(c) — Eq. (6) affinity A(i,j)", Headers: headers}
	for i := 0; i < n; i++ {
		rowT := []string{r.AccountIDs[i]}
		rowL := []string{r.AccountIDs[i]}
		rowA := []string{r.AccountIDs[i]}
		for j := 0; j < n; j++ {
			if i == j {
				rowT = append(rowT, "-")
				rowL = append(rowL, "-")
				rowA = append(rowA, "-")
				continue
			}
			rowT = append(rowT, fmt.Sprintf("%d", r.T[i][j]))
			rowL = append(rowL, fmt.Sprintf("%d", r.L[i][j]))
			rowA = append(rowA, F(r.A[i][j]))
		}
		tT.AddRow(rowT...)
		tL.AddRow(rowL...)
		tA.AddRow(rowA...)
	}
	comp := &Table{
		Title:   "Fig. 3(d) — connected components",
		Headers: []string{"threshold", "groups"},
	}
	comp.AddRow("rho=1.0", renderGroups(r.GroupsRho1))
	comp.AddRow("rho=0.9", renderGroups(r.GroupsRho09))
	return []*Table{tT, tL, tA, comp}
}

// Fig4Result reproduces Fig. 4: the AG-TR walkthrough with absolute-cost
// DTW (the variant the figure tabulates) at φ = 1.
type Fig4Result struct {
	AccountIDs []string
	// DTWX / DTWY / D are the Fig. 4(a)-(c) matrices: task-series DTW,
	// timestamp-series DTW (day units), and their sum.
	DTWX, DTWY, D [][]float64
	// Groups are the components at φ = 1 (account IDs).
	Groups [][]string
}

// Fig4 runs the walkthrough.
func Fig4() (Fig4Result, error) {
	ds := truth.PaperExampleWithSybil()
	n := ds.NumAccounts()
	r := Fig4Result{
		DTWX: floatMatrix(n), DTWY: floatMatrix(n), D: floatMatrix(n),
	}
	for ai := range ds.Accounts {
		r.AccountIDs = append(r.AccountIDs, ds.Accounts[ai].ID)
	}
	agtr := grouping.AGTR{Mode: grouping.TRAbsolute}
	origin, _, _ := ds.TimeSpan()
	taskSeries := make([][]float64, n)
	timeSeries := make([][]float64, n)
	for i := 0; i < n; i++ {
		taskSeries[i], timeSeries[i] = agtr.Series(ds, i, origin, 24*time.Hour)
	}
	calc := dtw.NewCalculator()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r.DTWX[i][j] = calc.AbsoluteCost(taskSeries[i], taskSeries[j])
			r.DTWY[i][j] = calc.AbsoluteCost(timeSeries[i], timeSeries[j])
			// Eq. (8): the dissimilarity is exactly the sum of the two DTW
			// costs above (same origin, unit, and mode as Dissimilarity).
			r.D[i][j] = r.DTWX[i][j] + r.DTWY[i][j]
		}
	}
	g, err := agtr.Group(ds)
	if err != nil {
		return Fig4Result{}, fmt.Errorf("experiment: fig4: %w", err)
	}
	r.Groups = namedGroups(g, r.AccountIDs)
	return r, nil
}

// Tables renders the matrices and components.
func (r Fig4Result) Tables() []*Table {
	n := len(r.AccountIDs)
	headers := append([]string{""}, r.AccountIDs...)
	mk := func(title string, m [][]float64, digits int) *Table {
		t := &Table{Title: title, Headers: headers}
		for i := 0; i < n; i++ {
			row := []string{r.AccountIDs[i]}
			for j := 0; j < n; j++ {
				if i == j {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.*f", digits, m[i][j]))
			}
			t.AddRow(row...)
		}
		return t
	}
	comp := &Table{
		Title:   "Fig. 4(d) — connected components at phi=1",
		Headers: []string{"groups"},
	}
	comp.AddRow(renderGroups(r.Groups))
	return []*Table{
		mk("Fig. 4(a) — DTW of task series", r.DTWX, 0),
		mk("Fig. 4(b) — DTW of timestamp series (days)", r.DTWY, 3),
		mk("Fig. 4(c) — dissimilarity D(i,j)", r.D, 3),
		comp,
	}
}

func intMatrix(n int) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	return m
}

func floatMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

func namedGroups(g grouping.Grouping, ids []string) [][]string {
	out := make([][]string, 0, len(g.Groups))
	for _, members := range g.Groups {
		named := make([]string, len(members))
		for i, m := range members {
			named[i] = ids[m]
		}
		out = append(out, named)
	}
	return out
}

func renderGroups(groups [][]string) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = "{" + strings.Join(g, ",") + "}"
	}
	return strings.Join(parts, " ")
}
