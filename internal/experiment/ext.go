package experiment

import (
	"fmt"

	"sybiltd/internal/attack"
	"sybiltd/internal/core"
	"sybiltd/internal/grouping"
	"sybiltd/internal/simulate"
	"sybiltd/internal/truth"
)

// The experiments in this file extend the paper's evaluation (they have no
// counterpart table/figure): a broader algorithm comparison showing that
// the whole truth-discovery family is Sybil-vulnerable while the framework
// is not, and a sweep over attacker strategies.

// ExtAlgorithmsResult compares the truth-discovery family (Mean, Median,
// CRH, CATD, GTM) and the framework (TD-TR) under increasing Sybil
// activeness.
type ExtAlgorithmsResult struct {
	SybilActiveness []float64
	// MAE[name][k] is the trial-averaged MAE of algorithm name at
	// SybilActiveness[k].
	MAE     map[string][]float64
	Methods []string
}

// ExtAlgorithms runs the comparison.
func ExtAlgorithms(seed int64, trials int) (ExtAlgorithmsResult, error) {
	if trials <= 0 {
		trials = 5
	}
	algs := []truth.Algorithm{
		truth.Mean{},
		truth.Median{},
		truth.CRH{},
		truth.CATD{},
		truth.GTM{},
		core.Framework{Grouper: grouping.AGTR{Phi: 0.3}},
	}
	res := ExtAlgorithmsResult{
		SybilActiveness: []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		MAE:             map[string][]float64{},
	}
	for _, a := range algs {
		res.Methods = append(res.Methods, a.Name())
		res.MAE[a.Name()] = make([]float64, len(res.SybilActiveness))
	}
	for k, sa := range res.SybilActiveness {
		for trial := 0; trial < trials; trial++ {
			sc, err := simulate.Build(simulate.Config{
				Seed:            seed + int64(trial)*577,
				SybilActiveness: sa,
			})
			if err != nil {
				return ExtAlgorithmsResult{}, fmt.Errorf("experiment: ext-algorithms: %w", err)
			}
			for _, a := range algs {
				out, err := a.Run(sc.Dataset)
				if err != nil {
					return ExtAlgorithmsResult{}, fmt.Errorf("experiment: ext-algorithms %s: %w", a.Name(), err)
				}
				mae, err := MAEAgainstTruth(out.Truths, sc.GroundTruth)
				if err != nil {
					return ExtAlgorithmsResult{}, fmt.Errorf("experiment: ext-algorithms %s mae: %w", a.Name(), err)
				}
				res.MAE[a.Name()][k] += mae / float64(trials)
			}
		}
	}
	return res, nil
}

// Tables renders the result.
func (r ExtAlgorithmsResult) Tables() []*Table {
	t := &Table{
		Title:   "Extension — MAE of the truth-discovery family vs the framework under attack",
		Headers: append([]string{"sybil α"}, r.Methods...),
	}
	for k, sa := range r.SybilActiveness {
		row := []string{F(sa)}
		for _, m := range r.Methods {
			row = append(row, F(r.MAE[m][k]))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// ExtStrategiesResult compares attacker strategies (§III-C motivations):
// the malicious fabricator, the rapacious duplicator, and a stealthy
// offset attacker, against CRH and TD-TR.
type ExtStrategiesResult struct {
	Strategies []string
	// MAECRH/MAETDTR[k] is the trial-averaged MAE under Strategies[k].
	MAECRH  []float64
	MAETDTR []float64
	// GroupARI[k] is AG-TR's grouping ARI under Strategies[k].
	GroupARI []float64
}

// ExtStrategies runs the comparison.
func ExtStrategies(seed int64, trials int) (ExtStrategiesResult, error) {
	if trials <= 0 {
		trials = 5
	}
	cases := []struct {
		name     string
		strategy attack.Strategy
	}{
		{"fabricate(-50)", attack.Fabricate{Target: -50}},
		{"duplicate", attack.Duplicate{}},
		{"offset(+15)", attack.Offset{Delta: 15}},
	}
	res := ExtStrategiesResult{
		MAECRH:   make([]float64, len(cases)),
		MAETDTR:  make([]float64, len(cases)),
		GroupARI: make([]float64, len(cases)),
	}
	grouper := grouping.AGTR{Phi: 0.3}
	fw := core.Framework{Grouper: grouper}
	for k, tc := range cases {
		res.Strategies = append(res.Strategies, tc.name)
		for trial := 0; trial < trials; trial++ {
			sc, err := simulate.Build(simulate.Config{
				Seed:            seed + int64(trial)*577,
				SybilActiveness: 0.8,
				Attackers: []attack.Profile{
					{Kind: attack.AttackI, NumAccounts: 5, Activeness: 0.8, Strategy: tc.strategy},
					{Kind: attack.AttackII, NumAccounts: 5, NumDevices: 2, Activeness: 0.8, Strategy: tc.strategy},
				},
			})
			if err != nil {
				return ExtStrategiesResult{}, fmt.Errorf("experiment: ext-strategies: %w", err)
			}
			crhOut, err := truth.CRH{}.Run(sc.Dataset)
			if err != nil {
				return ExtStrategiesResult{}, err
			}
			fwOut, err := fw.Run(sc.Dataset)
			if err != nil {
				return ExtStrategiesResult{}, err
			}
			maeCRH, err := MAEAgainstTruth(crhOut.Truths, sc.GroundTruth)
			if err != nil {
				return ExtStrategiesResult{}, err
			}
			maeFW, err := MAEAgainstTruth(fwOut.Truths, sc.GroundTruth)
			if err != nil {
				return ExtStrategiesResult{}, err
			}
			g, err := grouper.Group(sc.Dataset)
			if err != nil {
				return ExtStrategiesResult{}, err
			}
			ari, err := ariOf(sc, g)
			if err != nil {
				return ExtStrategiesResult{}, err
			}
			res.MAECRH[k] += maeCRH / float64(trials)
			res.MAETDTR[k] += maeFW / float64(trials)
			res.GroupARI[k] += ari / float64(trials)
		}
	}
	return res, nil
}

func ariOf(sc *simulate.Scenario, g grouping.Grouping) (float64, error) {
	return ariLabels(sc.TrueGrouping(), g.Labels(sc.Dataset.NumAccounts()))
}

// Tables renders the result.
func (r ExtStrategiesResult) Tables() []*Table {
	t := &Table{
		Title:   "Extension — attacker strategies vs CRH and the framework (sybil α = 0.8)",
		Headers: []string{"strategy", "CRH MAE", "TD-TR MAE", "AG-TR ARI"},
	}
	for k, name := range r.Strategies {
		t.AddRow(name, F(r.MAECRH[k]), F(r.MAETDTR[k]), F(r.GroupARI[k]))
	}
	return []*Table{t}
}
