package experiment

import (
	"fmt"
	"math/rand"

	"sybiltd/internal/cluster"
	"sybiltd/internal/fingerprint"
	"sybiltd/internal/mems"
	"sybiltd/internal/metrics"
	"sybiltd/internal/pca"
)

// Fig2Result reproduces Fig. 2: fingerprints of 3 smartphones of different
// models, 5 captures each, plotted in the first two principal components
// and grouped by k-means with k = 3.
type Fig2Result struct {
	// Points[i] is capture i's (PC1, PC2) coordinates.
	Points [][]float64
	// TrueDevice[i] is the device (0-2) that produced capture i.
	TrueDevice []int
	// Assigned[i] is the k-means cluster of capture i.
	Assigned []int
	// ARI scores the clustering against the true devices.
	ARI float64
	// FalsePositives counts captures grouped with a majority from another
	// device (the wrongly-grouped fingerprints the paper points out).
	FalsePositives int
}

// Fig2 runs the experiment with a fixed seed.
func Fig2(seed int64) (Fig2Result, error) {
	rng := rand.New(rand.NewSource(seed))
	models := []mems.Model{mems.ModelIPhone6S, mems.ModelIPhoneX, mems.ModelNexus5}
	const capsPerPhone = 5

	var vecs []fingerprint.Vector
	var labels []int
	for di, m := range models {
		dev := mems.NewDevice(m, 1, rng)
		for c := 0; c < capsPerPhone; c++ {
			vecs = append(vecs, fingerprint.Extract(dev.Capture(mems.DefaultCaptureSpec(), rng)))
			labels = append(labels, di)
		}
	}
	matrix, err := fingerprint.NewMatrix(vecs)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiment: fig2: %w", err)
	}
	std := fingerprint.Standardize(matrix)

	model, err := pca.Fit(std, 2)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiment: fig2 pca: %w", err)
	}
	points, err := model.Transform(std)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiment: fig2 project: %w", err)
	}

	res, err := cluster.KMeans(std, cluster.Config{K: len(models), Restarts: 8, Rand: rng})
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiment: fig2 k-means: %w", err)
	}
	ari, err := metrics.AdjustedRandIndex(labels, res.Assignments)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("experiment: fig2 ari: %w", err)
	}

	return Fig2Result{
		Points:         points,
		TrueDevice:     labels,
		Assigned:       res.Assignments,
		ARI:            ari,
		FalsePositives: countMinority(labels, res.Assignments),
	}, nil
}

// countMinority counts items whose cluster is dominated by a different
// true label (grouping false-positives in the paper's sense).
func countMinority(truth, assigned []int) int {
	// majority true label per cluster
	counts := map[int]map[int]int{}
	for i, c := range assigned {
		if counts[c] == nil {
			counts[c] = map[int]int{}
		}
		counts[c][truth[i]]++
	}
	majority := map[int]int{}
	for c, byLabel := range counts {
		best, bestN := -1, -1
		for l, n := range byLabel {
			if n > bestN {
				best, bestN = l, n
			}
		}
		majority[c] = best
	}
	var fp int
	for i, c := range assigned {
		if truth[i] != majority[c] {
			fp++
		}
	}
	return fp
}

// Tables renders the result.
func (r Fig2Result) Tables() []*Table {
	scatter := &Table{
		Title:   "Fig. 2 — fingerprints of 3 smartphones in PC space, k-means k=3",
		Headers: []string{"capture", "true device", "PC1", "PC2", "cluster"},
	}
	for i := range r.Points {
		scatter.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("phone-%d", r.TrueDevice[i]+1),
			F(r.Points[i][0]), F(r.Points[i][1]),
			fmt.Sprintf("%d", r.Assigned[i]),
		)
	}
	summary := &Table{
		Headers: []string{"metric", "value"},
	}
	summary.AddRow("ARI", F(r.ARI))
	summary.AddRow("false positives", fmt.Sprintf("%d/%d", r.FalsePositives, len(r.Points)))
	return []*Table{scatter, summary}
}
