package experiment

import (
	"fmt"

	"sybiltd/internal/simulate"
)

// Fig5Result reproduces Fig. 5: the POI map of the measurement campaign.
// The paper shows 10 POIs on a campus map; we print the synthetic layout
// together with each POI's ground-truth Wi-Fi signal strength (which the
// paper obtained by repeated physical measurement).
type Fig5Result struct {
	Names       []string
	X, Y        []float64
	GroundTruth []float64
}

// Fig5 builds the default campaign's POI layout.
func Fig5(seed int64) (Fig5Result, error) {
	sc, err := simulate.Build(simulate.Config{Seed: seed})
	if err != nil {
		return Fig5Result{}, fmt.Errorf("experiment: fig5: %w", err)
	}
	r := Fig5Result{}
	for j, task := range sc.Dataset.Tasks {
		r.Names = append(r.Names, task.Name)
		r.X = append(r.X, task.X)
		r.Y = append(r.Y, task.Y)
		r.GroundTruth = append(r.GroundTruth, sc.GroundTruth[j])
	}
	return r, nil
}

// Tables renders the layout.
func (r Fig5Result) Tables() []*Table {
	t := &Table{
		Title:   "Fig. 5 — POIs for Wi-Fi signal strength measurement (synthetic campus)",
		Headers: []string{"POI", "x (m)", "y (m)", "ground truth (dBm)"},
	}
	for i := range r.Names {
		t.AddRow(r.Names[i], F(r.X[i]), F(r.Y[i]), F(r.GroundTruth[i]))
	}
	return []*Table{t}
}

// ExtScaleResult extends the evaluation to large-scale Sybil attacks: the
// number of attackers grows until Sybil accounts outnumber legitimate
// ones several times over (the paper argues its 2-attacker experiment
// already represents this regime because Sybil accounts are the majority;
// here we test the claim directly).
type ExtScaleResult struct {
	NumAttackers []int
	SybilShare   []float64 // fraction of accounts that are Sybil
	MAECRH       []float64
	MAETDTR      []float64
	// Precision/Recall of AG-TR's pairwise grouping decisions.
	Precision []float64
	Recall    []float64
}

// ExtScale runs the sweep.
func ExtScale(seed int64, trials int) (ExtScaleResult, error) {
	if trials <= 0 {
		trials = 5
	}
	res := ExtScaleResult{}
	for _, numAtk := range []int{1, 2, 4, 6, 8} {
		var maeCRH, maeTDTR, prec, rec, share float64
		for trial := 0; trial < trials; trial++ {
			r, err := runScaleTrial(seed+int64(trial)*769, numAtk)
			if err != nil {
				return ExtScaleResult{}, err
			}
			maeCRH += r.maeCRH / float64(trials)
			maeTDTR += r.maeTDTR / float64(trials)
			prec += r.precision / float64(trials)
			rec += r.recall / float64(trials)
			share += r.share / float64(trials)
		}
		res.NumAttackers = append(res.NumAttackers, numAtk)
		res.SybilShare = append(res.SybilShare, share)
		res.MAECRH = append(res.MAECRH, maeCRH)
		res.MAETDTR = append(res.MAETDTR, maeTDTR)
		res.Precision = append(res.Precision, prec)
		res.Recall = append(res.Recall, rec)
	}
	return res, nil
}

type scaleTrial struct {
	maeCRH, maeTDTR, precision, recall, share float64
}

func runScaleTrial(seed int64, numAttackers int) (scaleTrial, error) {
	cfg := simulate.Config{Seed: seed, SybilActiveness: 0.8}
	cfg.Attackers = scaleAttackers(numAttackers)
	sc, err := simulate.Build(cfg)
	if err != nil {
		return scaleTrial{}, fmt.Errorf("experiment: ext-scale: %w", err)
	}
	out := scaleTrial{
		share: float64(len(sc.SybilAccounts)) / float64(sc.Dataset.NumAccounts()),
	}
	crhOut, err := crhAlg.Run(sc.Dataset)
	if err != nil {
		return scaleTrial{}, err
	}
	if out.maeCRH, err = MAEAgainstTruth(crhOut.Truths, sc.GroundTruth); err != nil {
		return scaleTrial{}, err
	}
	fwOut, err := tdtrAlg.Run(sc.Dataset)
	if err != nil {
		return scaleTrial{}, err
	}
	if out.maeTDTR, err = MAEAgainstTruth(fwOut.Truths, sc.GroundTruth); err != nil {
		return scaleTrial{}, err
	}
	g, err := tdtrGrouper.Group(sc.Dataset)
	if err != nil {
		return scaleTrial{}, err
	}
	scores, err := pairwiseScores(sc.TrueGrouping(), g.Labels(sc.Dataset.NumAccounts()))
	if err != nil {
		return scaleTrial{}, err
	}
	out.precision = scores.Precision
	out.recall = scores.Recall
	return out, nil
}

// Tables renders the result.
func (r ExtScaleResult) Tables() []*Table {
	t := &Table{
		Title:   "Extension — large-scale Sybil attack (5 accounts per attacker, sybil α = 0.8)",
		Headers: []string{"attackers", "sybil share", "CRH MAE", "TD-TR MAE", "AG-TR precision", "AG-TR recall"},
	}
	for k := range r.NumAttackers {
		t.AddRow(
			fmt.Sprintf("%d", r.NumAttackers[k]),
			F(r.SybilShare[k]), F(r.MAECRH[k]), F(r.MAETDTR[k]),
			F(r.Precision[k]), F(r.Recall[k]),
		)
	}
	return []*Table{t}
}
