package experiment

import (
	"fmt"
	"math/rand"

	"sybiltd/internal/fingerprint"
	"sybiltd/internal/mems"
	"sybiltd/internal/pca"
)

// Fig8Result reproduces Fig. 8: the fingerprint centers of all 11
// smartphones of Table IV in the first two principal components' space,
// demonstrating that same-model devices sit close together.
type Fig8Result struct {
	// DeviceIDs[i] names device i ("iPhone 6S#1", ...).
	DeviceIDs []string
	// Models[i] is the device's model name.
	Models []string
	// Centers[i] is the mean (PC1, PC2) of device i's captures.
	Centers [][2]float64
	// MeanSameModelDist / MeanCrossModelDist compare center distances
	// within and across models in PC space.
	MeanSameModelDist  float64
	MeanCrossModelDist float64
}

// Fig8 runs the experiment: capsPerDevice captures per device (the paper
// uses 5), PCA over all fingerprints, centers per device.
func Fig8(seed int64, capsPerDevice int) (Fig8Result, error) {
	if capsPerDevice <= 0 {
		capsPerDevice = 5
	}
	rng := rand.New(rand.NewSource(seed))
	devices := mems.BuildInventory(mems.PaperInventory(), rng)

	var vecs []fingerprint.Vector
	var owner []int
	for di, d := range devices {
		for c := 0; c < capsPerDevice; c++ {
			vecs = append(vecs, fingerprint.Extract(d.Capture(mems.DefaultCaptureSpec(), rng)))
			owner = append(owner, di)
		}
	}
	matrix, err := fingerprint.NewMatrix(vecs)
	if err != nil {
		return Fig8Result{}, fmt.Errorf("experiment: fig8: %w", err)
	}
	std := fingerprint.Standardize(matrix)
	model, err := pca.Fit(std, 2)
	if err != nil {
		return Fig8Result{}, fmt.Errorf("experiment: fig8 pca: %w", err)
	}
	points, err := model.Transform(std)
	if err != nil {
		return Fig8Result{}, fmt.Errorf("experiment: fig8 project: %w", err)
	}

	res := Fig8Result{}
	centers := make([][2]float64, len(devices))
	counts := make([]int, len(devices))
	for i, p := range points {
		centers[owner[i]][0] += p[0]
		centers[owner[i]][1] += p[1]
		counts[owner[i]]++
	}
	for di, d := range devices {
		centers[di][0] /= float64(counts[di])
		centers[di][1] /= float64(counts[di])
		res.DeviceIDs = append(res.DeviceIDs, d.ID())
		res.Models = append(res.Models, d.Model().Name)
	}
	res.Centers = centers

	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < len(devices); i++ {
		for j := i + 1; j < len(devices); j++ {
			dx := centers[i][0] - centers[j][0]
			dy := centers[i][1] - centers[j][1]
			d := dx*dx + dy*dy
			if res.Models[i] == res.Models[j] {
				sameSum += d
				sameN++
			} else {
				crossSum += d
				crossN++
			}
		}
	}
	if sameN > 0 {
		res.MeanSameModelDist = sameSum / float64(sameN)
	}
	if crossN > 0 {
		res.MeanCrossModelDist = crossSum / float64(crossN)
	}
	return res, nil
}

// Tables renders the result.
func (r Fig8Result) Tables() []*Table {
	t := &Table{
		Title:   "Fig. 8 — smartphone fingerprint centers in PC1/PC2 space",
		Headers: []string{"device", "model", "PC1", "PC2"},
	}
	for i := range r.DeviceIDs {
		t.AddRow(r.DeviceIDs[i], r.Models[i], F(r.Centers[i][0]), F(r.Centers[i][1]))
	}
	s := &Table{Headers: []string{"metric", "value"}}
	s.AddRow("mean squared center distance (same model)", F(r.MeanSameModelDist))
	s.AddRow("mean squared center distance (cross model)", F(r.MeanCrossModelDist))
	return []*Table{t, s}
}

// Table4Result reproduces Table IV: the smartphone inventory.
type Table4Result struct {
	Entries []mems.InventoryEntry
}

// Table4 returns the inventory.
func Table4() Table4Result {
	return Table4Result{Entries: mems.PaperInventory()}
}

// Tables renders the inventory.
func (r Table4Result) Tables() []*Table {
	t := &Table{
		Title:   "Table IV — models of smartphones used in the experiment",
		Headers: []string{"OS", "model", "quantity"},
	}
	total := 0
	for _, e := range r.Entries {
		t.AddRow(e.Model.OS, e.Model.Name, fmt.Sprintf("%d", e.Quantity))
		total += e.Quantity
	}
	t.AddRow("", "total", fmt.Sprintf("%d", total))
	return []*Table{t}
}
