// Package experiment regenerates every table and figure of the paper's
// evaluation (§III-C Table I, §IV-C Figs. 2-4, §V Figs. 6-8 and Table IV)
// from this repository's implementations. Each experiment returns a
// structured result plus one or more renderable Tables; the cmd/sybiltd
// CLI and the top-level benchmarks drive them.
package experiment

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple renderable result table (ASCII and CSV).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float for table cells with two decimals; NaN renders as "x"
// (the paper's marker for missing submissions).
func F(v float64) string {
	if v != v { // NaN
		return "x"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values (quoting cells that need
// it).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
