package experiment

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Honest estimates near the paper's row.
	for j, want := range r.PaperHonest {
		if math.Abs(r.Honest[j]-want) > 4 {
			t.Errorf("honest T%d = %.2f, paper %.2f", j+1, r.Honest[j], want)
		}
	}
	// Attack pulls T1/T3/T4 at least 15 dB toward -50; T2 moves little.
	for _, j := range []int{0, 2, 3} {
		if r.Honest[j]-r.Attacked[j] > -15 && r.Attacked[j]-r.Honest[j] < 15 {
			t.Errorf("T%d: attack moved estimate only from %.2f to %.2f", j+1, r.Honest[j], r.Attacked[j])
		}
		if r.Attacked[j] < r.Honest[j] {
			t.Errorf("T%d: attack should pull estimate up toward -50", j+1)
		}
	}
	if math.Abs(r.Attacked[1]-r.Honest[1]) > 6 {
		t.Errorf("T2 moved too much: %.2f -> %.2f", r.Honest[1], r.Attacked[1])
	}
	tables := r.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	var buf bytes.Buffer
	tables[0].Render(&buf)
	if !strings.Contains(buf.String(), "4'''") {
		t.Error("data table should list the Sybil accounts")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 15 || len(r.Assigned) != 15 {
		t.Fatalf("points = %d, want 15", len(r.Points))
	}
	// Different-model phones should cluster well: ARI positive and high.
	if r.ARI < 0.5 {
		t.Errorf("Fig2 ARI = %.2f, want >= 0.5 for distinct models", r.ARI)
	}
	if r.FalsePositives > 5 {
		t.Errorf("false positives = %d, want few", r.FalsePositives)
	}
	if len(r.Tables()) != 2 {
		t.Error("expected scatter + summary tables")
	}
}

func TestFig3Walkthrough(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AccountIDs) != 6 {
		t.Fatalf("accounts = %d", len(r.AccountIDs))
	}
	// T(1,2)=2 per the paper's Fig. 3(a) (indices 0,1).
	if r.T[0][1] != 2 {
		t.Errorf("T(1,2) = %d, want 2", r.T[0][1])
	}
	// A(4',4'')=2.25 literal Eq. (6).
	if r.A[3][4] != 2.25 {
		t.Errorf("A(4',4'') = %v, want 2.25", r.A[3][4])
	}
	// Matrices symmetric.
	for i := range r.A {
		for j := range r.A {
			if r.A[i][j] != r.A[j][i] {
				t.Fatalf("A not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// ρ=1 isolates the Sybil trio.
	if got := renderGroups(r.GroupsRho1); got != "{1} {2} {3} {4',4'',4'''}" {
		t.Errorf("ρ=1 groups = %s", got)
	}
	if len(r.Tables()) != 4 {
		t.Error("expected 4 tables")
	}
}

func TestFig4Walkthrough(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4(a) values.
	if r.DTWX[0][1] != 2 {
		t.Errorf("DTWX(1,2) = %v, want 2", r.DTWX[0][1])
	}
	if r.DTWX[3][4] != 0 {
		t.Errorf("DTWX(4',4'') = %v, want 0", r.DTWX[3][4])
	}
	// Timestamp DTW in day units is small (< 0.1 for all pairs).
	for i := range r.DTWY {
		for j := range r.DTWY {
			if i != j && r.DTWY[i][j] > 0.1 {
				t.Errorf("DTWY(%d,%d) = %v, want < 0.1", i, j, r.DTWY[i][j])
			}
		}
	}
	// Components: Sybil trio isolated, as in Fig. 4(d).
	if got := renderGroups(r.Groups); got != "{1} {2} {3} {4',4'',4'''}" {
		t.Errorf("groups = %s", got)
	}
	if len(r.Tables()) != 4 {
		t.Error("expected 4 tables")
	}
}

func quickSweep() SweepConfig {
	return SweepConfig{
		LegitActiveness: []float64{0.5},
		SybilActiveness: []float64{0.2, 1.0},
		Trials:          3,
		Seed:            17,
	}
}

func TestFig6QuickShape(t *testing.T) {
	r, err := Fig6(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric != "ARI" || len(r.Points) != 2 {
		t.Fatalf("result meta = %+v", r)
	}
	for _, p := range r.Points {
		// AG-TR must dominate AG-TS (the paper's central grouping claim).
		if p.Values["AG-TR"] < p.Values["AG-TS"]-0.05 {
			t.Errorf("sa=%.1f: AG-TR %.2f below AG-TS %.2f", p.SybilActiveness, p.Values["AG-TR"], p.Values["AG-TS"])
		}
		for m, v := range p.Values {
			if v < -1-1e-9 || v > 1+1e-9 {
				t.Errorf("%s ARI out of range: %v", m, v)
			}
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("one subfigure expected")
	}
}

func TestFig7QuickShape(t *testing.T) {
	r, err := Fig7(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric != "MAE" || len(r.Points) != 2 {
		t.Fatalf("result meta = %+v", r)
	}
	lo, hi := r.Points[0], r.Points[1]
	// CRH degrades as Sybil activeness grows.
	if hi.Values["CRH"] <= lo.Values["CRH"] {
		t.Errorf("CRH MAE should grow with Sybil activeness: %.2f -> %.2f", lo.Values["CRH"], hi.Values["CRH"])
	}
	// The framework (TD-TR) beats CRH at every point.
	for _, p := range r.Points {
		if p.Values["TD-TR"] >= p.Values["CRH"] {
			t.Errorf("sa=%.1f: TD-TR %.2f not below CRH %.2f", p.SybilActiveness, p.Values["TD-TR"], p.Values["CRH"])
		}
		for m, v := range p.Values {
			if v < 0 || math.IsNaN(v) {
				t.Errorf("%s MAE = %v", m, v)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DeviceIDs) != 11 {
		t.Fatalf("devices = %d, want 11 (Table IV)", len(r.DeviceIDs))
	}
	// Same-model centers sit closer than cross-model centers.
	if r.MeanSameModelDist >= r.MeanCrossModelDist {
		t.Errorf("same-model %.2f should be < cross-model %.2f", r.MeanSameModelDist, r.MeanCrossModelDist)
	}
	if len(r.Tables()) != 2 {
		t.Error("expected center + summary tables")
	}
}

func TestTable4(t *testing.T) {
	r := Table4()
	total := 0
	for _, e := range r.Entries {
		total += e.Quantity
	}
	if total != 11 {
		t.Errorf("inventory total = %d, want 11", total)
	}
	var buf bytes.Buffer
	r.Tables()[0].Render(&buf)
	if !strings.Contains(buf.String(), "Nexus 6P") {
		t.Error("table should list the Nexus 6P")
	}
}

func TestMAEAgainstTruth(t *testing.T) {
	mae, err := MAEAgainstTruth([]float64{1, math.NaN(), 3}, []float64{2, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if mae != 1.5 {
		t.Errorf("MAE = %v, want 1.5 (NaN skipped)", mae)
	}
	if _, err := MAEAgainstTruth([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MAEAgainstTruth([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("all-NaN should error")
	}
}

func TestRegistryRunsEverythingQuick(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Fatalf("registry size = %d, want 15", len(reg))
	}
	for _, id := range IDs() {
		r := reg[id]
		var buf bytes.Buffer
		if err := r.Run(&buf, Options{Quick: true}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: produced no output", id)
		}
	}
}

func TestRegistryCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := Registry()["table4"].Run(&buf, Options{CSV: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iOS,iPhone SE,1") {
		t.Errorf("CSV output missing expected row:\n%s", buf.String())
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"a", "long-header"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("yy", "2")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "long-header") {
		t.Error("missing header")
	}
	// CSV quoting.
	q := &Table{Headers: []string{"v"}}
	q.AddRow(`has,comma "quoted"`)
	buf.Reset()
	if err := q.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"has,comma ""quoted"""`) {
		t.Errorf("CSV quoting wrong: %s", buf.String())
	}
}

func TestFHelper(t *testing.T) {
	if F(math.NaN()) != "x" {
		t.Error("NaN should render as x")
	}
	if F(1.005) != "1.00" && F(1.005) != "1.01" {
		t.Errorf("F(1.005) = %s", F(1.005))
	}
}

func TestExtAlgorithms(t *testing.T) {
	r, err := ExtAlgorithms(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 6 {
		t.Fatalf("methods = %v", r.Methods)
	}
	// The framework must beat every plain algorithm at high Sybil
	// activeness; every plain algorithm should degrade substantially.
	last := len(r.SybilActiveness) - 1
	fw := r.MAE["TD-TR"][last]
	for _, m := range []string{"Mean", "Median", "CRH", "CATD", "GTM"} {
		if r.MAE[m][last] <= fw {
			t.Errorf("%s MAE %.2f not above TD-TR %.2f at full Sybil activeness", m, r.MAE[m][last], fw)
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("expected one table")
	}
}

func TestExtStrategies(t *testing.T) {
	r, err := ExtStrategies(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 3 {
		t.Fatalf("strategies = %v", r.Strategies)
	}
	for k, name := range r.Strategies {
		if r.MAETDTR[k] >= r.MAECRH[k] && r.MAECRH[k] > 1 {
			t.Errorf("%s: TD-TR %.2f not below CRH %.2f", name, r.MAETDTR[k], r.MAECRH[k])
		}
		if r.GroupARI[k] < 0.5 {
			t.Errorf("%s: AG-TR ARI %.2f unexpectedly low", name, r.GroupARI[k])
		}
	}
	// The fabricate strategy must hurt CRH the most; duplicate the least
	// (it resubmits a real measurement).
	if r.MAECRH[0] <= r.MAECRH[1] {
		t.Errorf("fabricate CRH MAE %.2f should exceed duplicate %.2f", r.MAECRH[0], r.MAECRH[1])
	}
	if len(r.Tables()) != 1 {
		t.Error("expected one table")
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 10 {
		t.Fatalf("POIs = %d, want 10", len(r.Names))
	}
	for i := range r.Names {
		if r.X[i] < 0 || r.X[i] > 400 || r.Y[i] < 0 || r.Y[i] > 300 {
			t.Errorf("POI %d out of bounds: (%v, %v)", i, r.X[i], r.Y[i])
		}
		if r.GroundTruth[i] > -10 || r.GroundTruth[i] < -95 {
			t.Errorf("POI %d ground truth %v outside dBm range", i, r.GroundTruth[i])
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("expected one table")
	}
}

func TestExtScale(t *testing.T) {
	r, err := ExtScale(13, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NumAttackers) != 5 {
		t.Fatalf("points = %d", len(r.NumAttackers))
	}
	// Sybil share grows with attacker count; CRH degrades; TD-TR stays far
	// below CRH even when Sybil accounts dominate.
	for k := 1; k < len(r.NumAttackers); k++ {
		if r.SybilShare[k] <= r.SybilShare[k-1] {
			t.Errorf("sybil share not increasing at %d attackers", r.NumAttackers[k])
		}
	}
	last := len(r.NumAttackers) - 1
	if r.SybilShare[last] < 0.7 {
		t.Errorf("final sybil share = %.2f, want > 0.7 (dominating attack)", r.SybilShare[last])
	}
	if r.MAETDTR[last] >= r.MAECRH[last] {
		t.Errorf("TD-TR %.2f not below CRH %.2f under the largest attack", r.MAETDTR[last], r.MAECRH[last])
	}
	for k := range r.NumAttackers {
		if r.Precision[k] < 0 || r.Precision[k] > 1 || r.Recall[k] < 0 || r.Recall[k] > 1 {
			t.Errorf("scores out of range at %d attackers", r.NumAttackers[k])
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("expected one table")
	}
}

func TestExtSelection(t *testing.T) {
	r, err := ExtSelection(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 3 {
		t.Fatalf("labels = %v", r.Labels)
	}
	// Both auctions must cut the participating Sybil accounts sharply
	// (each attacker's fully-redundant siblings add no marginal coverage).
	for _, row := range []int{1, 2} {
		if r.SybilAccounts[row] >= r.SybilAccounts[0]/2 {
			t.Errorf("%s kept %.1f of %.1f sybil accounts", r.Labels[row], r.SybilAccounts[row], r.SybilAccounts[0])
		}
	}
	// Plain CRH gets more accurate with the coverage auction in front.
	if r.MAECRH[1] >= r.MAECRH[0] {
		t.Errorf("CRH with coverage auction %.2f not below without %.2f", r.MAECRH[1], r.MAECRH[0])
	}
	// The headline negative result: selection strips the redundancy truth
	// discovery needs, so the framework WITHOUT selection beats every
	// selected setting — selection alone is no substitute for the
	// Sybil-resistant framework.
	for _, row := range []int{1, 2} {
		if r.MAETDTR[0] >= r.MAETDTR[row] {
			t.Errorf("TD-TR without selection %.2f should beat %s %.2f", r.MAETDTR[0], r.Labels[row], r.MAETDTR[row])
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("expected one table")
	}
}

func TestScatterPlots(t *testing.T) {
	r2, err := Fig2(2)
	if err != nil {
		t.Fatal(err)
	}
	plot := r2.Plot()
	if !strings.Contains(plot, "1") || !strings.Contains(plot, "3") {
		t.Error("Fig2 plot should mark devices 1 and 3")
	}
	if !strings.Contains(plot, "PC1") {
		t.Error("plot missing axis labels")
	}
	r8, err := Fig8(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	plot = r8.Plot()
	if !strings.Contains(plot, "= Nexus 6P") {
		t.Errorf("Fig8 plot legend missing:\n%s", plot)
	}
	// Degenerate inputs return empty rather than panicking.
	if got := scatterPlot(nil, nil, nil, 10, 10); got != "" {
		t.Error("empty scatter should be empty")
	}
	if got := scatterPlot([]float64{1}, []float64{1, 2}, []rune{'x'}, 10, 10); got != "" {
		t.Error("mismatched scatter should be empty")
	}
	// Constant coordinates must not divide by zero.
	if got := scatterPlot([]float64{1, 1}, []float64{2, 2}, []rune{'a', 'b'}, 10, 10); got == "" {
		t.Error("constant scatter should still render")
	}
}

func TestExtThresholds(t *testing.T) {
	r, err := ExtThresholds(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TS) != len(r.Rhos) || len(r.TR) != len(r.Phis) {
		t.Fatal("score lengths wrong")
	}
	// All scores in range.
	for k := range r.TS {
		if r.TS[k].Precision < 0 || r.TS[k].Precision > 1 || r.TS[k].Recall < 0 || r.TS[k].Recall > 1 {
			t.Errorf("TS[%d] = %+v", k, r.TS[k])
		}
	}
	// AG-TR recall is non-increasing in φ? No — recall grows as φ loosens.
	// Check the coarse property instead: the loosest φ has recall >= the
	// tightest φ's.
	if r.TR[len(r.TR)-1].Recall < r.TR[0].Recall {
		t.Errorf("loosest φ recall %.2f below tightest %.2f", r.TR[len(r.TR)-1].Recall, r.TR[0].Recall)
	}
	// And precision at the loosest φ should be at most the tightest φ's.
	if r.TR[len(r.TR)-1].Precision > r.TR[0].Precision+1e-9 {
		t.Errorf("loosest φ precision %.2f above tightest %.2f", r.TR[len(r.TR)-1].Precision, r.TR[0].Precision)
	}
	if len(r.Tables()) != 2 {
		t.Error("expected two tables")
	}
}

func TestForEachTrial(t *testing.T) {
	// All trials run exactly once, concurrently or not.
	const n = 20
	hits := make([]int, n)
	var mu sync.Mutex
	err := forEachTrial(n, func(trial int) error {
		mu.Lock()
		hits[trial]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("trial %d ran %d times", i, h)
		}
	}
	// Errors propagate.
	boom := errors.New("boom")
	err = forEachTrial(4, func(trial int) error {
		if trial == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	// n = 1 takes the serial path.
	if err := forEachTrial(1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := forEachTrial(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero trials should be a no-op: %v", err)
	}
}

func TestExtEvolving(t *testing.T) {
	r, err := ExtEvolving(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hours) != 6 {
		t.Fatalf("hours = %d", len(r.Hours))
	}
	for i := range r.Hours {
		trueV := r.TrueValues[i]
		// The windowed framework tracks the drift within 3 units everywhere
		// (including the burst window).
		if d := math.Abs(r.WindowFramework[i] - trueV); d > 3 {
			t.Errorf("hour %d: framework %.1f vs true %.1f", r.Hours[i], r.WindowFramework[i], trueV)
		}
	}
	// The naive mean is captured during the burst window.
	if d := math.Abs(r.WindowMean[r.BurstHour] - r.TrueValues[r.BurstHour]); d < 5 {
		t.Errorf("burst window mean error %.1f — expected captured (>= 5)", d)
	}
	if len(r.Tables()) != 1 {
		t.Error("expected one table")
	}
}
