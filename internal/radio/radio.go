// Package radio simulates the Wi-Fi signal-strength landscape the paper's
// campaign measures: access points placed in a campus-scale area, a
// log-distance path-loss model with per-location shadowing, and noisy
// per-user observations. It supplies the ground truths d*_j that the
// paper obtains by averaging repeated physical measurements at each POI.
package radio

import (
	"errors"
	"math"
	"math/rand"
)

// AccessPoint is one Wi-Fi transmitter.
type AccessPoint struct {
	// X, Y locate the AP in meters.
	X, Y float64
	// TxPowerDBm is the received power at the reference distance (1 m),
	// typically around -30 dBm for consumer APs.
	TxPowerDBm float64
}

// Environment is a static radio environment. Construct with NewEnvironment;
// the shadowing field is frozen at construction so ground truths are
// stable for the lifetime of the environment (as they are in the paper,
// where each POI has one true signal strength).
type Environment struct {
	aps []AccessPoint
	// pathLossExp is the path-loss exponent n (2 free space, 2.7-3.5
	// indoor/urban).
	pathLossExp float64
	// shadowSigma is the standard deviation (dB) of the log-normal
	// shadowing applied per query location via a deterministic hash-like
	// lattice, so that nearby queries see correlated shadowing.
	shadowSigma float64
	shadowSeed  int64
	// floorDBm is the sensitivity floor: weaker signals clamp here.
	floorDBm float64
}

// Config parameterizes an Environment.
type Config struct {
	// NumAPs access points are placed uniformly in [0,Width]x[0,Height].
	NumAPs        int
	Width, Height float64
	// TxPowerDBm is the per-AP reference power; zero means -30.
	TxPowerDBm float64
	// PathLossExponent; zero means 3.0 (typical campus outdoor/indoor mix).
	PathLossExponent float64
	// ShadowSigmaDB; zero means 4 dB.
	ShadowSigmaDB float64
	// FloorDBm clamps weak signals; zero means -95.
	FloorDBm float64
}

func (c Config) withDefaults() Config {
	if c.NumAPs == 0 {
		c.NumAPs = 6
	}
	if c.Width == 0 {
		c.Width = 400
	}
	if c.Height == 0 {
		c.Height = 300
	}
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = -30
	}
	if c.PathLossExponent == 0 {
		c.PathLossExponent = 3.0
	}
	if c.ShadowSigmaDB == 0 {
		c.ShadowSigmaDB = 4
	}
	if c.FloorDBm == 0 {
		c.FloorDBm = -95
	}
	return c
}

// ErrNoAPs is returned when an environment would contain no transmitters.
var ErrNoAPs = errors.New("radio: environment needs at least one access point")

// NewEnvironment builds a random environment using rng for AP placement
// and the shadowing seed.
func NewEnvironment(cfg Config, rng *rand.Rand) (*Environment, error) {
	cfg = cfg.withDefaults()
	if cfg.NumAPs < 1 {
		return nil, ErrNoAPs
	}
	env := &Environment{
		pathLossExp: cfg.PathLossExponent,
		shadowSigma: cfg.ShadowSigmaDB,
		shadowSeed:  rng.Int63(),
		floorDBm:    cfg.FloorDBm,
		aps:         make([]AccessPoint, cfg.NumAPs),
	}
	for i := range env.aps {
		env.aps[i] = AccessPoint{
			X:          rng.Float64() * cfg.Width,
			Y:          rng.Float64() * cfg.Height,
			TxPowerDBm: cfg.TxPowerDBm + rng.NormFloat64()*2,
		}
	}
	return env, nil
}

// TruthAt returns the true Wi-Fi signal strength (dBm) at (x, y): the
// strongest AP under log-distance path loss plus frozen shadowing, clamped
// to the sensitivity floor. Deterministic in (x, y).
func (e *Environment) TruthAt(x, y float64) float64 {
	best := math.Inf(-1)
	for _, ap := range e.aps {
		d := math.Hypot(x-ap.X, y-ap.Y)
		if d < 1 {
			d = 1
		}
		rssi := ap.TxPowerDBm - 10*e.pathLossExp*math.Log10(d)
		if rssi > best {
			best = rssi
		}
	}
	best += e.shadowAt(x, y)
	if best < e.floorDBm {
		best = e.floorDBm
	}
	return best
}

// Observe returns a noisy measurement of the truth at (x, y) by a device
// with the given measurement noise (dB std dev), using rng.
func (e *Environment) Observe(x, y, noiseSigma float64, rng *rand.Rand) float64 {
	v := e.TruthAt(x, y) + rng.NormFloat64()*noiseSigma
	if v < e.floorDBm {
		v = e.floorDBm
	}
	return v
}

// shadowAt produces deterministic, spatially stable shadowing: the
// location is snapped to a 10 m lattice and the cell index seeds a local
// PRNG. Same cell, same shadowing — repeat measurements at a POI agree.
func (e *Environment) shadowAt(x, y float64) float64 {
	const cell = 10.0
	cx := int64(math.Floor(x / cell))
	cy := int64(math.Floor(y / cell))
	const (
		mixX = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
		mixY = int64(-4417276706812531889) // 0xC2B2AE3D27D4EB4F as int64
	)
	h := e.shadowSeed ^ (cx * mixX) ^ (cy * mixY)
	local := rand.New(rand.NewSource(h))
	return local.NormFloat64() * e.shadowSigma
}

// NumAPs returns the number of access points.
func (e *Environment) NumAPs() int { return len(e.aps) }
