package radio

import (
	"math"
	"math/rand"
	"testing"
)

func newTestEnv(t *testing.T, seed int64) *Environment {
	t.Helper()
	env, err := NewEnvironment(Config{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvironmentDefaults(t *testing.T) {
	env := newTestEnv(t, 1)
	if env.NumAPs() != 6 {
		t.Errorf("NumAPs = %d, want 6", env.NumAPs())
	}
}

func TestNewEnvironmentRejectsNoAPs(t *testing.T) {
	if _, err := NewEnvironment(Config{NumAPs: -1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative AP count should error")
	}
}

func TestTruthDeterministic(t *testing.T) {
	env := newTestEnv(t, 2)
	a := env.TruthAt(100, 50)
	b := env.TruthAt(100, 50)
	if a != b {
		t.Errorf("TruthAt not deterministic: %v vs %v", a, b)
	}
}

func TestTruthRealisticRange(t *testing.T) {
	env := newTestEnv(t, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		v := env.TruthAt(rng.Float64()*400, rng.Float64()*300)
		if v < -95-1e-9 || v > -10 {
			t.Fatalf("truth %v outside plausible dBm range", v)
		}
	}
}

func TestSignalDecaysWithDistance(t *testing.T) {
	// Build a single-AP environment; signal at the AP must beat signal far
	// away (averaging over shadowing cells).
	env, err := NewEnvironment(Config{NumAPs: 1, Width: 1, Height: 1, ShadowSigmaDB: 0.001}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	near := env.TruthAt(0.5, 0.5)
	far := env.TruthAt(300, 300)
	if near <= far {
		t.Errorf("near %v should beat far %v", near, far)
	}
}

func TestObserveNoiseStatistics(t *testing.T) {
	env := newTestEnv(t, 6)
	rng := rand.New(rand.NewSource(7))
	const sigma = 2.0
	// Pick a spot comfortably above the sensitivity floor so clamping does
	// not bias the statistics.
	var x, y, truthVal float64
	found := false
	for ty := 0.0; ty < 300 && !found; ty += 25 {
		for tx := 0.0; tx < 400 && !found; tx += 25 {
			if v := env.TruthAt(tx, ty); v > -80 {
				x, y, truthVal, found = tx, ty, v, true
			}
		}
	}
	if !found {
		t.Fatal("no above-floor location found")
	}
	var sum, sumSq float64
	const n = 4000
	for i := 0; i < n; i++ {
		v := env.Observe(x, y, sigma, rng)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-truthVal) > 0.2 {
		t.Errorf("observation mean %v far from truth %v", mean, truthVal)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.3 {
		t.Errorf("observation std %v, want ~%v", math.Sqrt(variance), sigma)
	}
}

func TestObserveClampsAtFloor(t *testing.T) {
	env, err := NewEnvironment(Config{NumAPs: 1, Width: 1, Height: 1, FloorDBm: -95}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if v := env.Observe(5000, 5000, 10, rng); v < -95 {
			t.Fatalf("observation %v below floor", v)
		}
	}
}

func TestShadowingSpatiallyStable(t *testing.T) {
	env := newTestEnv(t, 10)
	// Points in the same 10 m cell share shadowing; truth varies smoothly
	// only via path loss.
	a := env.TruthAt(101, 101)
	b := env.TruthAt(102, 102)
	if math.Abs(a-b) > 3 {
		t.Errorf("same-cell truths differ too much: %v vs %v", a, b)
	}
}

func TestEnvironmentsDifferBySeed(t *testing.T) {
	e1 := newTestEnv(t, 11)
	e2 := newTestEnv(t, 12)
	same := true
	for _, p := range [][2]float64{{50, 50}, {200, 100}, {350, 250}} {
		if e1.TruthAt(p[0], p[1]) != e2.TruthAt(p[0], p[1]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different environments")
	}
}
