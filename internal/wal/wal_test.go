package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openAppend opens path through fsys and appends each payload, synced.
func openAppend(t *testing.T, fsys FS, path string, payloads ...[]byte) *Writer {
	t.Helper()
	w, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%d-%s", i, strings.Repeat("x", i*3)))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := payloads(5)
	w := openAppend(t, OS(), path, recs...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Corrupt != nil {
		t.Fatalf("clean log reported corrupt: %v", res.Corrupt)
	}
	if res.Truncated() != 0 {
		t.Fatalf("clean log truncated %d bytes", res.Truncated())
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(res.Records), len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(res.Records[i], rec) {
			t.Errorf("record %d = %q, want %q", i, res.Records[i], rec)
		}
	}
	// Appends after recovery must land after the existing records.
	if err := w2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, res, err = Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs)+1 || string(res.Records[len(recs)]) != "after" {
		t.Fatalf("post-recovery append not recovered: %d records", len(res.Records))
	}
}

// TestScanCorruptionTable damages a known-good log in every way the
// recovery path must tolerate and checks the longest valid prefix comes
// back each time.
func TestScanCorruptionTable(t *testing.T) {
	recs := payloads(3)
	var clean []byte
	var offsets []int64
	for _, rec := range recs {
		frame, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, int64(len(clean)))
		clean = append(clean, frame...)
	}
	lastStart := int(offsets[2])

	cases := []struct {
		name        string
		mutate      func([]byte) []byte
		wantRecords int
		wantValid   int64
	}{
		{"clean", func(b []byte) []byte { return b }, 3, int64(len(clean))},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)-3] }, 2, offsets[2]},
		{"truncated mid-header", func(b []byte) []byte { return b[:lastStart+5] }, 2, offsets[2]},
		{"flipped CRC byte", func(b []byte) []byte { b[lastStart+4] ^= 0xFF; return b }, 2, offsets[2]},
		{"flipped payload byte", func(b []byte) []byte { b[lastStart+HeaderSize+1] ^= 0x01; return b }, 2, offsets[2]},
		{"zero-length record", func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD) }, 3, int64(len(clean))},
		{"garbage header", func(b []byte) []byte {
			garbage := make([]byte, 16)
			binary.LittleEndian.PutUint32(garbage, MaxRecordSize+1)
			return append(b, garbage...)
		}, 3, int64(len(clean))},
		{"garbage only", func([]byte) []byte { return []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5} }, 0, 0},
		{"empty log", func([]byte) []byte { return nil }, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), clean...))
			res := Scan(data)
			if len(res.Records) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d (corrupt: %v)", len(res.Records), tc.wantRecords, res.Corrupt)
			}
			if res.Valid != tc.wantValid {
				t.Errorf("valid prefix %d bytes, want %d", res.Valid, tc.wantValid)
			}
			damaged := int64(len(data)) != tc.wantValid
			if damaged && res.Corrupt == nil {
				t.Error("damaged log scanned with nil Corrupt")
			}
			if !damaged && res.Corrupt != nil {
				t.Errorf("clean log reported corrupt: %v", res.Corrupt)
			}
			for i := 0; i < tc.wantRecords; i++ {
				if !bytes.Equal(res.Records[i], recs[i]) {
					t.Errorf("record %d = %q, want %q", i, res.Records[i], recs[i])
				}
			}
		})
	}
}

// TestOpenRepairsDamage checks Open truncates a torn tail in place: a
// second open must see a clean log of the same prefix.
func TestOpenRepairsDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, OS(), path, payloads(3)...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.Truncated() == 0 {
		t.Fatalf("first reopen: %d records, truncated %d", len(res.Records), res.Truncated())
	}
	// Append on top of the repaired log, then verify a fresh scan is clean.
	if err := w2.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err = Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != nil || len(res.Records) != 3 {
		t.Fatalf("second reopen: %d records, corrupt %v", len(res.Records), res.Corrupt)
	}
	if string(res.Records[2]) != "tail" {
		t.Errorf("appended record = %q", res.Records[2])
	}
}

func TestWriterRejectsBadPayloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); !errors.Is(err, ErrEmptyRecord) {
		t.Errorf("empty append: %v", err)
	}
	if err := w.Append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversized append: %v", err)
	}
	if w.Size() != 0 {
		t.Errorf("rejected appends changed size to %d", w.Size())
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, OS(), path, payloads(4)...)
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || string(res.Records[0]) != "fresh" {
		t.Fatalf("after reset: %d records", len(res.Records))
	}
}

// TestShortWriteIsRepaired injects a transient short write: the append
// fails, the partial frame is truncated away, and the writer keeps
// working — the log never contains the torn frame.
func TestShortWriteIsRepaired(t *testing.T) {
	ffs := NewFaultFS(OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, ffs, path, []byte("one"))

	ffs.ShortWriteOnce(5)
	if err := w.Append([]byte("two-that-tears")); err == nil {
		t.Fatal("short write did not surface an error")
	}
	if err := w.Append([]byte("three")); err != nil {
		t.Fatalf("append after repaired short write: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != nil {
		t.Fatalf("repaired log still corrupt: %v", res.Corrupt)
	}
	got := make([]string, len(res.Records))
	for i, r := range res.Records {
		got[i] = string(r)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "three" {
		t.Fatalf("recovered %v, want [one three]", got)
	}
}

// TestCrashLeavesRecoverablePrefix arms a crash mid-frame and checks the
// writer reports the failure, refuses further work, and leaves a log
// whose scan yields exactly the pre-crash records.
func TestCrashLeavesRecoverablePrefix(t *testing.T) {
	ffs := NewFaultFS(OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, ffs, path, []byte("alpha"), []byte("beta"))

	ffs.CrashAfterBytes(6) // tears the third frame mid-header
	if err := w.Append([]byte("gamma")); err == nil {
		t.Fatal("append through a crash succeeded")
	}
	if !ffs.Crashed() {
		t.Fatal("crash did not fire")
	}
	// The repair truncate also fails (machine is dead) → writer broken.
	if err := w.Append([]byte("delta")); !errors.Is(err, ErrBroken) {
		t.Errorf("append after crash: %v, want ErrBroken", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrBroken) {
		t.Errorf("sync after crash: %v, want ErrBroken", err)
	}
	_ = w.Close()

	// "Reboot": recover with a healthy filesystem.
	w2, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(res.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(res.Records))
	}
	if res.Corrupt == nil || res.Truncated() == 0 {
		t.Fatalf("torn tail not reported: truncated=%d corrupt=%v", res.Truncated(), res.Corrupt)
	}
	if string(res.Records[0]) != "alpha" || string(res.Records[1]) != "beta" {
		t.Errorf("recovered %q, %q", res.Records[0], res.Records[1])
	}
}

// TestAppendBatchRoundTrip: a batch lands as ordinary frames — a reader
// cannot tell batched appends from single ones, and singles can follow.
func TestAppendBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	recs := payloads(6)
	if err := w.AppendBatch(recs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[4]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(recs[5:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(nil); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != nil || len(res.Records) != len(recs) {
		t.Fatalf("recovered %d records (corrupt %v), want %d", len(res.Records), res.Corrupt, len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(res.Records[i], rec) {
			t.Errorf("record %d = %q, want %q", i, res.Records[i], rec)
		}
	}
}

// TestAppendBatchValidatesBeforeWriting: one bad payload rejects the whole
// batch before any byte reaches the log.
func TestAppendBatchValidatesBeforeWriting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendBatch([][]byte{[]byte("ok"), nil, []byte("also ok")}); !errors.Is(err, ErrEmptyRecord) {
		t.Errorf("batch with empty payload: %v", err)
	}
	if err := w.AppendBatch([][]byte{[]byte("ok"), make([]byte, MaxRecordSize+1)}); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("batch with oversized payload: %v", err)
	}
	if w.Size() != 0 {
		t.Errorf("rejected batches wrote %d bytes", w.Size())
	}
}

// TestAppendBatchShortWriteIsRepaired: a transient short write tears the
// batch mid-frame; the repair truncates the whole partial batch away and
// the writer keeps working.
func TestAppendBatchShortWriteIsRepaired(t *testing.T) {
	ffs := NewFaultFS(OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, ffs, path, []byte("one"))

	// Keep enough bytes that the first frame of the batch is complete on
	// disk before the tear: the repair must still remove all of it.
	first, err := EncodeFrame([]byte("batch-a"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.ShortWriteOnce(len(first) + 3)
	if err := w.AppendBatch([][]byte{[]byte("batch-a"), []byte("batch-b")}); err == nil {
		t.Fatal("short batch write did not surface an error")
	}
	if err := w.Append([]byte("three")); err != nil {
		t.Fatalf("append after repaired batch: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != nil {
		t.Fatalf("repaired log still corrupt: %v", res.Corrupt)
	}
	got := make([]string, len(res.Records))
	for i, r := range res.Records {
		got[i] = string(r)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "three" {
		t.Fatalf("recovered %v, want [one three]", got)
	}
}

// TestAppendBatchCrashKeepsFramePrefix: a power cut mid-batch leaves the
// completed leading frames on disk; recovery keeps them and truncates the
// torn one. The batch is atomic against process errors (the repair path),
// not against crashes — exactly the contract the platform's group-commit
// ack layer is built on.
func TestAppendBatchCrashKeepsFramePrefix(t *testing.T) {
	ffs := NewFaultFS(OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, ffs, path, []byte("pre"))

	first, err := EncodeFrame([]byte("batch-a"))
	if err != nil {
		t.Fatal(err)
	}
	// Crash inside the second frame of the batch: frame one fully written.
	ffs.CrashAfterBytes(int64(len(first)) + 5)
	if err := w.AppendBatch([][]byte{[]byte("batch-a"), []byte("batch-b"), []byte("batch-c")}); err == nil {
		t.Fatal("batch through a crash succeeded")
	}
	if !ffs.Crashed() {
		t.Fatal("crash did not fire")
	}
	_ = w.Close()

	_, res, err := Open(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(res.Records))
	for i, r := range res.Records {
		got[i] = string(r)
	}
	if len(got) != 2 || got[0] != "pre" || got[1] != "batch-a" {
		t.Fatalf("recovered %v, want [pre batch-a]", got)
	}
	if res.Corrupt == nil || res.Truncated() == 0 {
		t.Fatalf("torn batch tail not reported: truncated=%d corrupt=%v", res.Truncated(), res.Corrupt)
	}
}

func TestFailSyncSurfaces(t *testing.T) {
	ffs := NewFaultFS(OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openAppend(t, ffs, path, []byte("one"))

	injected := errors.New("disk on fire")
	ffs.FailSync(injected)
	if err := w.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, injected) {
		t.Errorf("sync = %v, want injected error", err)
	}
	ffs.FailSync(nil)
	if err := w.Sync(); err != nil {
		t.Errorf("sync after clearing fault: %v", err)
	}
	_ = w.Close()
}
