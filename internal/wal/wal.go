// Package wal implements the platform's write-ahead log: an append-only
// file of length-prefixed, CRC32-checksummed records, plus the recovery
// scanner that reads back the longest valid prefix after a crash.
//
// Frame layout (little-endian):
//
//	offset 0: uint32 payload length (1 .. MaxRecordSize)
//	offset 4: uint32 CRC32 (IEEE) of the payload
//	offset 8: payload bytes
//
// The log makes exactly one durability promise: a record whose Append and
// Sync both returned nil survives a crash. Everything past the last such
// record — a torn frame from a mid-write power cut, a bit-flipped
// checksum, garbage from a misdirected write — is detected by Scan and
// truncated by Open, so a damaged log recovers to a clean prefix instead
// of refusing to open.
//
// All file access goes through the FS seam (fs.go), which is how the
// fault-injection layer (fault.go) drives the crash-recovery torture
// tests without touching a real disk's failure modes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	// HeaderSize is the per-record frame overhead: a 4-byte payload
	// length followed by a 4-byte CRC32 of the payload.
	HeaderSize = 8
	// MaxRecordSize bounds a single record's payload. A header claiming
	// more is treated as corruption, not as an allocation request: a
	// garbage length field must never make recovery swallow the rest of
	// the file (or the heap).
	MaxRecordSize = 16 << 20
)

var (
	// ErrEmptyRecord rejects zero-length payloads: a length-0 frame is
	// indistinguishable from a zeroed (pre-allocated or torn) region, so
	// the scanner treats it as corruption and the writer refuses to
	// produce one.
	ErrEmptyRecord = errors.New("wal: empty record")
	// ErrRecordTooLarge rejects payloads above MaxRecordSize.
	ErrRecordTooLarge = errors.New("wal: record exceeds max size")
	// ErrBroken is returned by a Writer after a failed append could not
	// be repaired (the partial frame could not be truncated away): the
	// tail state is unknown, and appending after garbage would hide the
	// new record from every future recovery.
	ErrBroken = errors.New("wal: writer broken by unrepaired partial write")
)

// EncodeFrame wraps payload in a WAL frame.
func EncodeFrame(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, ErrEmptyRecord
	}
	if len(payload) > MaxRecordSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	frame := make([]byte, HeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[HeaderSize:], payload)
	return frame, nil
}

// ScanResult describes what a recovery scan found.
type ScanResult struct {
	// Records holds the payloads of the valid prefix, in log order.
	Records [][]byte
	// Offsets[i] is the byte offset of Records[i]'s frame.
	Offsets []int64
	// Valid is the byte length of the valid prefix.
	Valid int64
	// Total is the byte length of the scanned input.
	Total int64
	// Corrupt explains why the scan stopped before Total; nil means the
	// log ended cleanly on a record boundary.
	Corrupt error
}

// Truncated is the number of trailing bytes that failed validation.
func (r ScanResult) Truncated() int64 { return r.Total - r.Valid }

// Scan walks the log and returns the longest valid prefix of records. It
// never fails: damage is reported in Corrupt and everything before it is
// returned.
func Scan(data []byte) ScanResult {
	res := ScanResult{Total: int64(len(data))}
	var off int64
	for {
		rest := data[off:]
		if len(rest) == 0 {
			res.Valid = off
			return res
		}
		if len(rest) < HeaderSize {
			res.Valid = off
			res.Corrupt = fmt.Errorf("wal: torn header at offset %d (%d of %d bytes)", off, len(rest), HeaderSize)
			return res
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		if length == 0 {
			res.Valid = off
			res.Corrupt = fmt.Errorf("wal: zero-length record at offset %d", off)
			return res
		}
		if length > MaxRecordSize {
			res.Valid = off
			res.Corrupt = fmt.Errorf("wal: implausible record length %d at offset %d", length, off)
			return res
		}
		end := HeaderSize + int64(length)
		if int64(len(rest)) < end {
			res.Valid = off
			res.Corrupt = fmt.Errorf("wal: torn record at offset %d (%d of %d payload bytes)", off, int64(len(rest))-HeaderSize, length)
			return res
		}
		payload := rest[HeaderSize:end]
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(rest[4:8]); got != want {
			res.Corrupt = fmt.Errorf("wal: checksum mismatch at offset %d (got %08x, want %08x)", off, got, want)
			res.Valid = off
			return res
		}
		res.Records = append(res.Records, append([]byte(nil), payload...))
		res.Offsets = append(res.Offsets, off)
		off += end
	}
}

// Writer appends frames to a log file. Appends and truncations must be
// serialized by the caller (the platform runs them under the store lock,
// which also keeps WAL order identical to in-memory apply order), but
// Sync may run concurrently with an Append: the group-commit layer fsyncs
// from outside the store lock while new frames are still being buffered
// behind it. An fsync that overlaps a frame write simply persists a
// prefix of that frame, which recovery already treats as a torn record.
type Writer struct {
	f File

	// mu guards size and broken so the concurrent Sync path can read the
	// broken flag without racing an in-flight append or repair.
	mu     sync.Mutex
	size   int64
	broken bool
}

// NewWriter wraps an open file whose valid length is size, positioned at
// that offset.
func NewWriter(f File, size int64) *Writer {
	return &Writer{f: f, size: size}
}

// Append writes one framed record. It does not sync; call Sync before
// acknowledging the record as durable. A short write is repaired by
// truncating the partial frame back off the log; if even that fails the
// writer declares itself broken and refuses further appends.
func (w *Writer) Append(payload []byte) error {
	frame, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeLocked(frame)
}

// AppendBatch writes n framed records as one buffered write — one syscall
// for the whole batch, and (with the single Sync that follows) one fsync
// for n records instead of n. The batch is validated in full before any
// byte is written, so one oversized or empty payload rejects the batch
// without disturbing the log. A failed or short write is repaired exactly
// like Append: the partial batch is truncated back off the log in one
// piece (a crash mid-batch instead leaves a frame prefix on disk, which
// recovery keeps — the batch write is not atomic across a power cut, only
// across process-level errors).
func (w *Writer) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	total := 0
	for _, p := range payloads {
		if len(p) == 0 {
			return ErrEmptyRecord
		}
		if len(p) > MaxRecordSize {
			return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(p))
		}
		total += HeaderSize + len(p)
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		frame, err := EncodeFrame(p)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeLocked(buf)
}

// writeLocked appends buf (one or more complete frames) and repairs a
// short write by truncating back to the pre-write size. Caller holds mu.
func (w *Writer) writeLocked(buf []byte) error {
	if w.broken {
		return ErrBroken
	}
	n, werr := w.f.Write(buf)
	if werr == nil && n < len(buf) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		if n > 0 {
			if terr := w.truncateTo(w.size); terr != nil {
				w.broken = true
				return fmt.Errorf("wal: append failed (%v); repair failed: %w", werr, terr)
			}
		}
		return fmt.Errorf("wal: append: %w", werr)
	}
	w.size += int64(len(buf))
	return nil
}

// Sync flushes appended records to stable storage. It is safe to call
// concurrently with Append: the fsync runs outside the writer lock (an
// fsync overlapping a buffered frame write persists at worst a torn frame,
// which recovery truncates).
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.broken {
		w.mu.Unlock()
		return ErrBroken
	}
	f := w.f
	w.mu.Unlock()
	return f.Sync()
}

// Size is the current byte length of the log's valid content.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Reset empties the log (after its contents have been compacted into a
// snapshot) and syncs the truncation.
func (w *Writer) Reset() error { return w.TruncateTo(0) }

// TruncateTo cuts the log back to size bytes (a record boundary chosen by
// the caller) and syncs. Used by recovery to drop a CRC-valid but
// semantically undecodable tail.
func (w *Writer) TruncateTo(size int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return ErrBroken
	}
	if size < 0 || size > w.size {
		return fmt.Errorf("wal: truncate to %d outside [0, %d]", size, w.size)
	}
	if err := w.truncateTo(size); err != nil {
		w.broken = true
		return err
	}
	return w.f.Sync()
}

// truncateTo shrinks the file and repositions the write offset without
// syncing or touching the broken flag.
func (w *Writer) truncateTo(size int64) error {
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	if _, err := w.f.Seek(size, io.SeekStart); err != nil {
		return err
	}
	w.size = size
	return nil
}

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// ReadFrom re-opens the log at path read-only and scans it from byte
// offset off to the end of the file. Offsets in the result are absolute
// (off is added back), so ReadFrom(fs, p, 0) matches a full Scan. The
// replication layer uses this to export committed frames by byte range
// while a Writer holds the same file open for appends: the caller must
// serialize against appends (the platform reads under the store lock) —
// a concurrent fsync is harmless, it does not move bytes.
//
// Reading past the end of the file yields an empty result, not an error;
// a torn or corrupt region after off is reported in Corrupt exactly like
// Scan.
func ReadFrom(fsys FS, path string, off int64) (ScanResult, error) {
	if off < 0 {
		return ScanResult{}, fmt.Errorf("wal: read from negative offset %d", off)
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return ScanResult{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return ScanResult{}, fmt.Errorf("wal: seek %s to %d: %w", path, off, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return ScanResult{}, fmt.Errorf("wal: read %s: %w", path, err)
	}
	res := Scan(data)
	res.Valid += off
	res.Total += off
	for i := range res.Offsets {
		res.Offsets[i] += off
	}
	return res, nil
}

// ReadRange is ReadFrom bounded to the byte range [off, end): it scans
// only the complete frames inside the range. The replication layer uses
// it to export one batch of committed frames without holding the store
// lock across the file read — the caller captures the byte bounds under
// its lock (appends only ever extend the file past end) and revalidates
// after the read. A file shorter than end — e.g. reset by a concurrent
// compaction — yields however many valid frames the remaining bytes
// hold, not an error; the caller's revalidation discards the result.
func ReadRange(fsys FS, path string, off, end int64) (ScanResult, error) {
	if off < 0 || end < off {
		return ScanResult{}, fmt.Errorf("wal: invalid read range [%d, %d)", off, end)
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return ScanResult{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return ScanResult{}, fmt.Errorf("wal: seek %s to %d: %w", path, off, err)
	}
	data, err := io.ReadAll(io.LimitReader(f, end-off))
	if err != nil {
		return ScanResult{}, fmt.Errorf("wal: read %s: %w", path, err)
	}
	res := Scan(data)
	res.Valid += off
	res.Total += off
	for i := range res.Offsets {
		res.Offsets[i] += off
	}
	return res, nil
}

// Open opens (creating if absent) the log at path, scans it, truncates
// any torn/corrupt tail in place, and returns a Writer positioned at the
// end of the valid prefix together with the scan result.
func Open(fsys FS, path string) (*Writer, ScanResult, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ScanResult{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, ScanResult{}, fmt.Errorf("wal: read %s: %w", path, err)
	}
	res := Scan(data)
	w := NewWriter(f, res.Valid)
	if res.Truncated() > 0 {
		// Cut the damage now, while nothing references it: recovery must
		// leave a log that a second crash-free restart reads identically.
		w.size = res.Total // let truncateTo shrink from the real file size
		if err := w.TruncateTo(res.Valid); err != nil {
			_ = f.Close()
			return nil, res, fmt.Errorf("wal: repair %s: %w", path, err)
		}
	} else if _, err := f.Seek(res.Valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, res, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return w, res, nil
}
