package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFrames appends payloads through a Writer and returns the per-frame
// byte offsets as a full Scan would report them.
func writeFrames(t *testing.T, fsys FS, path string, payloads [][]byte) []int64 {
	t.Helper()
	w, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int64, len(payloads))
	for i, p := range payloads {
		offsets[i] = w.Size()
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return offsets
}

func TestReadFromExportsSuffixWithAbsoluteOffsets(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("c"), []byte("delta")}
	offsets := writeFrames(t, fsys, path, payloads)

	// From zero: identical to a full scan.
	full, err := ReadFrom(fsys, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != len(payloads) || full.Corrupt != nil {
		t.Fatalf("full read = %d records (corrupt %v), want %d", len(full.Records), full.Corrupt, len(payloads))
	}

	// From each frame boundary: the tail, with absolute offsets.
	for start := range payloads {
		res, err := ReadFrom(fsys, path, offsets[start])
		if err != nil {
			t.Fatal(err)
		}
		if res.Corrupt != nil {
			t.Fatalf("read from %d: corrupt %v", offsets[start], res.Corrupt)
		}
		if got, want := len(res.Records), len(payloads)-start; got != want {
			t.Fatalf("read from frame %d: %d records, want %d", start, got, want)
		}
		for j, rec := range res.Records {
			if string(rec) != string(payloads[start+j]) {
				t.Errorf("frame %d payload = %q, want %q", start+j, rec, payloads[start+j])
			}
			if res.Offsets[j] != offsets[start+j] {
				t.Errorf("frame %d offset = %d, want absolute %d", start+j, res.Offsets[j], offsets[start+j])
			}
		}
	}
}

func TestReadFromPastEndIsEmpty(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	writeFrames(t, fsys, path, [][]byte{[]byte("only")})
	res, err := ReadFrom(fsys, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Corrupt != nil {
		t.Fatalf("read past end = %d records, corrupt %v; want empty clean", len(res.Records), res.Corrupt)
	}
	if _, err := ReadFrom(fsys, path, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestReadRangeExportsBoundedBatch(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("c"), []byte("delta")}
	offsets := writeFrames(t, fsys, path, payloads)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// The middle two frames, exactly: [offset of 1, offset of 3).
	res, err := ReadRange(fsys, path, offsets[1], offsets[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.Corrupt != nil {
		t.Fatalf("range read = %d records (corrupt %v), want 2 clean", len(res.Records), res.Corrupt)
	}
	for j, rec := range res.Records {
		if string(rec) != string(payloads[1+j]) {
			t.Errorf("frame %d payload = %q, want %q", 1+j, rec, payloads[1+j])
		}
		if res.Offsets[j] != offsets[1+j] {
			t.Errorf("frame %d offset = %d, want absolute %d", 1+j, res.Offsets[j], offsets[1+j])
		}
	}

	// A full range matches a full scan; an end past EOF is tolerated (the
	// file may have been truncated by a concurrent compaction — the caller
	// revalidates), yielding whatever complete frames remain.
	full, err := ReadRange(fsys, path, 0, info.Size())
	if err != nil || len(full.Records) != len(payloads) {
		t.Fatalf("full range = %d records, err=%v; want %d", len(full.Records), err, len(payloads))
	}
	over, err := ReadRange(fsys, path, offsets[2], info.Size()+1<<20)
	if err != nil || len(over.Records) != 2 {
		t.Fatalf("over-long range = %d records, err=%v; want the 2 remaining", len(over.Records), err)
	}

	// An empty range is empty, not an error; inverted or negative ranges
	// are refused.
	empty, err := ReadRange(fsys, path, offsets[1], offsets[1])
	if err != nil || len(empty.Records) != 0 {
		t.Fatalf("empty range = %d records, err=%v; want none", len(empty.Records), err)
	}
	if _, err := ReadRange(fsys, path, offsets[1], offsets[0]); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := ReadRange(fsys, path, -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}

	// A range ending mid-frame yields only the complete frames before it
	// (the partial tail is reported corrupt, exactly like a torn file).
	cut, err := ReadRange(fsys, path, 0, offsets[1]+3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Records) != 1 || string(cut.Records[0]) != "alpha" {
		t.Fatalf("mid-frame cut = %d records, want just alpha", len(cut.Records))
	}
}

func TestReadFromReportsTornTail(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	offsets := writeFrames(t, fsys, path,
		[][]byte{[]byte("keep-me"), []byte("also-keep"), []byte("gets-torn-off")})

	// Tear the final frame: cut its last 4 bytes off the file.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-4); err != nil {
		t.Fatal(err)
	}

	res, err := ReadFrom(fsys, path, offsets[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || string(res.Records[0]) != "also-keep" || res.Corrupt == nil {
		t.Fatalf("torn tail read = %d records, corrupt %v; want [also-keep] + corrupt", len(res.Records), res.Corrupt)
	}
	if res.Valid != offsets[2] {
		t.Errorf("valid prefix ends at %d, want %d (absolute)", res.Valid, offsets[2])
	}
}
