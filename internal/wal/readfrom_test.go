package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFrames appends payloads through a Writer and returns the per-frame
// byte offsets as a full Scan would report them.
func writeFrames(t *testing.T, fsys FS, path string, payloads [][]byte) []int64 {
	t.Helper()
	w, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int64, len(payloads))
	for i, p := range payloads {
		offsets[i] = w.Size()
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return offsets
}

func TestReadFromExportsSuffixWithAbsoluteOffsets(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("c"), []byte("delta")}
	offsets := writeFrames(t, fsys, path, payloads)

	// From zero: identical to a full scan.
	full, err := ReadFrom(fsys, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != len(payloads) || full.Corrupt != nil {
		t.Fatalf("full read = %d records (corrupt %v), want %d", len(full.Records), full.Corrupt, len(payloads))
	}

	// From each frame boundary: the tail, with absolute offsets.
	for start := range payloads {
		res, err := ReadFrom(fsys, path, offsets[start])
		if err != nil {
			t.Fatal(err)
		}
		if res.Corrupt != nil {
			t.Fatalf("read from %d: corrupt %v", offsets[start], res.Corrupt)
		}
		if got, want := len(res.Records), len(payloads)-start; got != want {
			t.Fatalf("read from frame %d: %d records, want %d", start, got, want)
		}
		for j, rec := range res.Records {
			if string(rec) != string(payloads[start+j]) {
				t.Errorf("frame %d payload = %q, want %q", start+j, rec, payloads[start+j])
			}
			if res.Offsets[j] != offsets[start+j] {
				t.Errorf("frame %d offset = %d, want absolute %d", start+j, res.Offsets[j], offsets[start+j])
			}
		}
	}
}

func TestReadFromPastEndIsEmpty(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	writeFrames(t, fsys, path, [][]byte{[]byte("only")})
	res, err := ReadFrom(fsys, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Corrupt != nil {
		t.Fatalf("read past end = %d records, corrupt %v; want empty clean", len(res.Records), res.Corrupt)
	}
	if _, err := ReadFrom(fsys, path, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestReadFromReportsTornTail(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	offsets := writeFrames(t, fsys, path,
		[][]byte{[]byte("keep-me"), []byte("also-keep"), []byte("gets-torn-off")})

	// Tear the final frame: cut its last 4 bytes off the file.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-4); err != nil {
		t.Fatal(err)
	}

	res, err := ReadFrom(fsys, path, offsets[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || string(res.Records[0]) != "also-keep" || res.Corrupt == nil {
		t.Fatalf("torn tail read = %d records, corrupt %v; want [also-keep] + corrupt", len(res.Records), res.Corrupt)
	}
	if res.Valid != offsets[2] {
		t.Errorf("valid prefix ends at %d, want %d (absolute)", res.Valid, offsets[2])
	}
}
