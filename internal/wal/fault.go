package wal

import (
	"errors"
	iofs "io/fs"
	"sync"
)

// ErrInjectedCrash is the error every operation returns once a FaultFS
// has crashed: the simulated machine is dead, so nothing succeeds until
// the test "reboots" by reopening the directory with a healthy FS.
var ErrInjectedCrash = errors.New("wal: injected crash")

// FaultFS wraps another FS and injects failures for recovery testing:
//
//   - CrashAfterBytes(n): the next n written bytes succeed, then the
//     write in flight is cut short (a torn frame on disk, exactly what a
//     power cut mid-write leaves) and every subsequent operation fails.
//   - ShortWriteOnce(n): one write persists only its first n bytes and
//     reports an error, but the filesystem stays alive — the transient-
//     error path, where the Writer's truncate-repair must run.
//   - FailSync / FailRename: sticky error injection on those calls.
//
// It is safe for concurrent use; the byte budget is global across all
// files opened through it (the WAL is the only file written during
// appends, which is what the crash tests exercise).
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	budget     int64 // remaining writable bytes; -1 = unlimited
	crashed    bool
	shortWrite int // next write keeps only this many bytes; -1 = off
	syncErr    error
	renameErr  error
	written    int64
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1, shortWrite: -1}
}

// CrashAfterBytes arms the crash: n more bytes may be written, then the
// filesystem dies mid-write.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
	f.crashed = false
}

// ShortWriteOnce makes the next write persist only its first n bytes and
// return an error, without crashing the filesystem.
func (f *FaultFS) ShortWriteOnce(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWrite = n
}

// FailSync makes Sync return err until cleared with FailSync(nil).
func (f *FaultFS) FailSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// FailRename makes Rename return err until cleared with FailRename(nil).
func (f *FaultFS) FailRename(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameErr = err
}

// Crashed reports whether the armed crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// WrittenBytes is the total number of bytes written through this FS.
func (f *FaultFS) WrittenBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FaultFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f.mu.Lock()
	dead := f.crashed
	f.mu.Unlock()
	if dead {
		return nil, ErrInjectedCrash
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	dead, rerr := f.crashed, f.renameErr
	f.mu.Unlock()
	if dead {
		return ErrInjectedCrash
	}
	if rerr != nil {
		return rerr
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if f.Crashed() {
		return ErrInjectedCrash
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (iofs.FileInfo, error) {
	if f.Crashed() {
		return nil, ErrInjectedCrash
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) MkdirAll(path string, perm iofs.FileMode) error {
	if f.Crashed() {
		return ErrInjectedCrash
	}
	return f.inner.MkdirAll(path, perm)
}

// faultFile routes a file's operations through the parent's fault state.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	if n := ff.fs.shortWrite; n >= 0 && n < len(p) {
		ff.fs.shortWrite = -1
		ff.fs.mu.Unlock()
		written, _ := ff.f.Write(p[:n])
		ff.fs.mu.Lock()
		ff.fs.written += int64(written)
		ff.fs.mu.Unlock()
		return written, errors.New("wal: injected short write")
	}
	ff.fs.shortWrite = -1
	if ff.fs.budget >= 0 && int64(len(p)) > ff.fs.budget {
		keep := ff.fs.budget
		ff.fs.crashed = true
		ff.fs.mu.Unlock()
		written, _ := ff.f.Write(p[:keep])
		ff.fs.mu.Lock()
		ff.fs.written += int64(written)
		ff.fs.mu.Unlock()
		return written, ErrInjectedCrash
	}
	ff.fs.mu.Unlock()
	written, err := ff.f.Write(p)
	ff.fs.mu.Lock()
	ff.fs.written += int64(written)
	if ff.fs.budget >= 0 {
		ff.fs.budget -= int64(written)
	}
	ff.fs.mu.Unlock()
	return written, err
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	dead, serr := ff.fs.crashed, ff.fs.syncErr
	ff.fs.mu.Unlock()
	if dead {
		return ErrInjectedCrash
	}
	if serr != nil {
		return serr
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if ff.fs.Crashed() {
		return ErrInjectedCrash
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.fs.Crashed() {
		return 0, ErrInjectedCrash
	}
	return ff.f.Read(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.fs.Crashed() {
		return 0, ErrInjectedCrash
	}
	return ff.f.Seek(offset, whence)
}

// Close always reaches the real file: even a crashed test must not leak
// file descriptors.
func (ff *faultFile) Close() error { return ff.f.Close() }
