package wal

import (
	"io"
	iofs "io/fs"
	"os"
)

// File is the slice of *os.File the log and snapshot paths need. Keeping
// it narrow is what makes fault injection tractable: every byte the
// durability layer persists moves through these seven methods.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem seam the durability layer writes through. The
// production implementation is OS(); tests wrap it in a FaultFS to
// inject write/sync/rename failures and crash-at-byte-N truncation.
type FS interface {
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (iofs.FileInfo, error)
	MkdirAll(path string, perm iofs.FileMode) error
}

type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }
