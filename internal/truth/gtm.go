package truth

import (
	"math"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/signal"
)

// GTM implements a Gaussian Truth Model (Zhao & Han's GTM, the standard
// probabilistic baseline for numeric truth discovery): each observation is
// modeled as d_j^i = x_j + ε_i with ε_i ~ N(0, σ_i²), and an EM loop
// alternates estimating the truths (precision-weighted means) and the
// per-source variances (posterior means under an inverse-gamma prior,
// which keeps one-claim sources from collapsing to zero variance).
type GTM struct {
	// PriorAlpha/PriorBeta parameterize the inverse-gamma prior over
	// source variances. Zeros mean (2, 2·initialVariance), a weakly
	// informative prior centered on the crowd's dispersion.
	PriorAlpha float64
	PriorBeta  float64
	// MaxIterations caps the EM loop; zero means 100.
	MaxIterations int
	// Tolerance stops the loop when the largest truth update falls below
	// it; zero means 1e-6.
	Tolerance float64
}

// Name implements Algorithm.
func (GTM) Name() string { return "GTM" }

// Run implements Algorithm.
func (g GTM) Run(ds *mcs.Dataset) (Result, error) {
	if err := validate(ds); err != nil {
		return Result{}, err
	}
	defer obs.Default().Timer("truth.gtm.run_seconds").Start().Stop()
	maxIter := g.MaxIterations
	if maxIter == 0 {
		maxIter = 100
	}
	tol := g.Tolerance
	if tol == 0 {
		tol = 1e-6
	}

	n := ds.NumAccounts()
	m := ds.NumTasks()
	vals := valuesByTask(ds)

	truths := make([]float64, m)
	hasData := make([]bool, m)
	var crowdVar float64
	var varCount int
	for j := range truths {
		if len(vals[j]) == 0 {
			truths[j] = math.NaN()
			continue
		}
		med, err := signal.Median(vals[j])
		if err != nil {
			return Result{}, err
		}
		truths[j] = med
		hasData[j] = true
		if v := signal.Variance(vals[j]); v > 0 {
			crowdVar += v
			varCount++
		}
	}
	if varCount > 0 {
		crowdVar /= float64(varCount)
	}
	if crowdVar < 1e-6 {
		crowdVar = 1e-6
	}

	alpha := g.PriorAlpha
	if alpha == 0 {
		alpha = 2
	}
	beta := g.PriorBeta
	if beta == 0 {
		beta = 2 * crowdVar
	}

	type report struct {
		acct  int
		value float64
	}
	reportsByTask := make([][]report, m)
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			reportsByTask[o.Task] = append(reportsByTask[o.Task], report{acct: ai, value: o.Value})
		}
	}

	variances := make([]float64, n)
	for i := range variances {
		variances[i] = crowdVar
	}
	converged := false
	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		// M-step: per-source variance posterior mean under IG(alpha, beta):
		// (beta + SSR/2) / (alpha + n_i/2 - 1).
		for i := 0; i < n; i++ {
			obs := ds.Accounts[i].Observations
			if len(obs) == 0 {
				variances[i] = crowdVar
				continue
			}
			var ssr float64
			var cnt int
			for _, o := range obs {
				if !hasData[o.Task] {
					continue
				}
				d := o.Value - truths[o.Task]
				ssr += d * d
				cnt++
			}
			den := alpha + float64(cnt)/2 - 1
			if den < 0.5 {
				den = 0.5
			}
			v := (beta + ssr/2) / den
			if v < 1e-9 {
				v = 1e-9
			}
			variances[i] = v
		}

		// E-step: truths as precision-weighted means.
		maxDelta := 0.0
		for j := 0; j < m; j++ {
			if !hasData[j] {
				continue
			}
			var num, den float64
			for _, r := range reportsByTask[j] {
				w := 1 / variances[r.acct]
				num += w * r.value
				den += w
			}
			next := num / den
			if d := math.Abs(next - truths[j]); d > maxDelta {
				maxDelta = d
			}
			truths[j] = next
		}
		if maxDelta < tol {
			converged = true
			break
		}
	}
	if iter > maxIter {
		iter = maxIter
	}
	observeLoop("gtm", iter, converged)

	weights := make([]float64, n)
	for i := range weights {
		if len(ds.Accounts[i].Observations) == 0 {
			continue
		}
		weights[i] = 1 / variances[i]
	}
	return Result{Truths: truths, Weights: weights, Iterations: iter, Converged: converged}, nil
}

var _ Algorithm = GTM{}
