package truth

import (
	"fmt"
	"math"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/signal"
)

// CATD implements the Confidence-Aware Truth Discovery algorithm of Li et
// al. (VLDB 2015), reference [9] of the paper. CATD targets the long-tail
// regime where most sources provide few claims: instead of a point
// estimate of each source's error variance, it uses the upper bound of the
// variance's (1−Alpha) confidence interval, so sources with little data
// are not over-trusted:
//
//	w_i = chi²_{Alpha/2, n_i} / Σ_{j∈T_i} (d_j^i − x_j)²/std_j
//
// where n_i is the number of claims of source i. Like CRH it alternates
// weight and truth estimation until the truths stabilize.
type CATD struct {
	// Alpha is the significance level of the variance confidence interval;
	// zero means 0.05 (the paper's choice).
	Alpha float64
	// MaxIterations caps the loop; zero means 100.
	MaxIterations int
	// Tolerance stops the loop when the largest truth update falls below
	// it; zero means 1e-6.
	Tolerance float64
}

// Name implements Algorithm.
func (CATD) Name() string { return "CATD" }

// Run implements Algorithm.
func (c CATD) Run(ds *mcs.Dataset) (Result, error) {
	if err := validate(ds); err != nil {
		return Result{}, err
	}
	defer obs.Default().Timer("truth.catd.run_seconds").Start().Stop()
	alpha := c.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	maxIter := c.MaxIterations
	if maxIter == 0 {
		maxIter = 100
	}
	tol := c.Tolerance
	if tol == 0 {
		tol = 1e-6
	}

	n := ds.NumAccounts()
	m := ds.NumTasks()
	vals := valuesByTask(ds)

	std := make([]float64, m)
	for j := range std {
		s := signal.StdDev(vals[j])
		if s < 1e-9 {
			s = 1e-9
		}
		std[j] = s
	}

	truths := make([]float64, m)
	hasData := make([]bool, m)
	for j := range truths {
		if len(vals[j]) == 0 {
			truths[j] = math.NaN()
			continue
		}
		med, err := signal.Median(vals[j])
		if err != nil {
			return Result{}, fmt.Errorf("truth: CATD init task %d: %w", j, err)
		}
		truths[j] = med
		hasData[j] = true
	}

	// Per-source chi-squared numerators (depend only on claim counts).
	chi := make([]float64, n)
	for i := 0; i < n; i++ {
		ni := len(ds.Accounts[i].Observations)
		if ni == 0 {
			continue
		}
		q, err := signal.ChiSquaredQuantile(alpha/2, ni)
		if err != nil {
			return Result{}, fmt.Errorf("truth: CATD chi² for source %d: %w", i, err)
		}
		// Guard the df=1 deep-left-tail case where Wilson-Hilferty clamps
		// to zero: fall back to a tiny positive numerator.
		if q <= 0 {
			q = 1e-4
		}
		chi[i] = q
	}

	type report struct {
		acct  int
		value float64
	}
	reportsByTask := make([][]report, m)
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			reportsByTask[o.Task] = append(reportsByTask[o.Task], report{acct: ai, value: o.Value})
		}
	}

	weights := make([]float64, n)
	converged := false
	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		for i := 0; i < n; i++ {
			if len(ds.Accounts[i].Observations) == 0 {
				weights[i] = 0
				continue
			}
			var loss float64
			var cnt int
			for _, o := range ds.Accounts[i].Observations {
				if !hasData[o.Task] {
					continue
				}
				d := o.Value - truths[o.Task]
				loss += d * d / std[o.Task]
				cnt++
			}
			// Floor the loss at a small normalized residual per claim, so
			// a source whose few claims happen to sit exactly on the
			// estimate cannot acquire unbounded weight — the situation the
			// confidence interval exists to prevent.
			if floor := float64(cnt)*1e-3 + 1e-9; loss < floor {
				loss = floor
			}
			weights[i] = chi[i] / loss
		}

		maxDelta := 0.0
		for j := 0; j < m; j++ {
			if !hasData[j] {
				continue
			}
			var num, den float64
			for _, r := range reportsByTask[j] {
				num += weights[r.acct] * r.value
				den += weights[r.acct]
			}
			var next float64
			if den == 0 {
				next = signal.Mean(vals[j])
			} else {
				next = num / den
			}
			if d := math.Abs(next - truths[j]); d > maxDelta {
				maxDelta = d
			}
			truths[j] = next
		}
		if maxDelta < tol {
			converged = true
			break
		}
	}
	if iter > maxIter {
		iter = maxIter
	}
	observeLoop("catd", iter, converged)
	return Result{Truths: truths, Weights: weights, Iterations: iter, Converged: converged}, nil
}

var _ Algorithm = CATD{}
