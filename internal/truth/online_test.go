package truth

import (
	"fmt"
	"math"
	"testing"
)

// TestOnlineResubmitReplacesStaleReport pins the one-report rule in the
// streaming estimator: an account re-reporting a task in a later round
// must fully supersede its old value, not blend with it. With a single
// reporter the estimate equals that reporter's value exactly, so any
// blending with the stale report would pull it off the new value.
func TestOnlineResubmitReplacesStaleReport(t *testing.T) {
	o, err := NewOnline(1, OnlineConfig{Decay: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("ana", 0, 10); err != nil {
		t.Fatal(err)
	}
	o.Tick()
	o.Tick()
	if err := o.Observe("ana", 0, 20); err != nil {
		t.Fatal(err)
	}
	got := o.Estimate()[0]
	if got != 20 {
		t.Errorf("estimate after resubmission = %v, want exactly 20 (stale report must be replaced, not blended)", got)
	}

	// Same-round resubmission too: last write wins.
	if err := o.Observe("ana", 0, 30); err != nil {
		t.Fatal(err)
	}
	if got := o.Estimate()[0]; got != 30 {
		t.Errorf("estimate after same-round resubmission = %v, want exactly 30", got)
	}
}

// TestOnlineResubmitOutweighsDecayedPeers: replacement must also hold when
// other accounts report — the resubmitting account contributes one report
// (the fresh one), never two.
func TestOnlineResubmitOutweighsDecayedPeers(t *testing.T) {
	o, err := NewOnline(1, OnlineConfig{Decay: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("ana", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("bo", 0, 100); err != nil {
		t.Fatal(err)
	}
	o.Tick()
	if err := o.Observe("ana", 0, 100); err != nil {
		t.Fatal(err)
	}
	got := o.Estimate()[0]
	// Both effective reports say 100, so the weighted mean is 100 up to
	// float rounding; if ana's stale 0 still participated it would drag
	// the estimate down by whole units, far outside this epsilon.
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("estimate = %v, want 100 (ana's stale report must not participate)", got)
	}
}

// TestOnlineFullyDecayedAccountNoNaN: once every report of an account has
// decayed below tolerance it stops contributing, and the estimator must
// keep producing finite estimates — not NaN weights — both for tasks that
// still have fresh reporters and for tasks whose only reporter faded.
func TestOnlineFullyDecayedAccountNoNaN(t *testing.T) {
	o, err := NewOnline(2, OnlineConfig{Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("old", 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("old", 1, 40); err != nil {
		t.Fatal(err)
	}
	if est := o.Estimate(); math.IsNaN(est[0]) || math.IsNaN(est[1]) {
		t.Fatalf("estimates NaN while reports fresh: %v", est)
	}
	// 0.5^21 ≈ 4.8e-7 < the 1e-6 recency floor: "old" is fully faded.
	for i := 0; i < 21; i++ {
		o.Tick()
	}
	if err := o.Observe("fresh", 0, 50); err != nil {
		t.Fatal(err)
	}
	est := o.Estimate()
	if est[0] != 50 {
		t.Errorf("task 0 estimate = %v, want exactly 50 (faded account must not blend in)", est[0])
	}
	// Task 1's only reporter faded: the last finite estimate must persist
	// rather than collapse to NaN.
	if math.IsNaN(est[1]) || math.IsInf(est[1], 0) {
		t.Errorf("task 1 estimate became non-finite after its reporter fully decayed: %v", est[1])
	}
	// Repeated estimation stays finite and stable.
	est2 := o.Estimate()
	if math.IsNaN(est2[0]) || math.IsNaN(est2[1]) {
		t.Errorf("second estimate produced NaN: %v", est2)
	}
}

// TestOnlinePruneBoundsSteadyStateSize pins the memory bound for a
// long-lived estimator: with Decay = 0.5 an observation's influence falls
// below the 1e-6 recency floor after 20 rounds, so after many rounds of
// churning accounts (one fresh account per round) the live state must
// stay pinned at the fade window — not grow with every account that ever
// reported. Before the prune fix, faded observations were skipped by
// Estimate but never deleted and NumAccounts reported every account ever
// seen, an unbounded leak in any long-running stream.
func TestOnlinePruneBoundsSteadyStateSize(t *testing.T) {
	const rounds = 1000
	o, err := NewOnline(4, OnlineConfig{Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// 0.5^20 ≈ 9.5e-7 < 1e-6: anything older than 20 rounds is faded.
	const fadeWindow = 20
	for r := 0; r < rounds; r++ {
		if err := o.Observe(fmt.Sprintf("acct-%04d", r), r%4, float64(r%17)); err != nil {
			t.Fatal(err)
		}
		o.Tick()
		if r%100 == 0 {
			o.Estimate() // interleave estimates: both paths must prune
		}
	}
	// One account per round, one observation each: steady state is at most
	// the fade window (+1 for the boundary round).
	if n := o.NumAccounts(); n > fadeWindow+1 {
		t.Errorf("NumAccounts = %d after %d rounds, want <= %d (faded accounts must be pruned)", n, rounds, fadeWindow+1)
	}
	if n := o.NumObservations(); n > fadeWindow+1 {
		t.Errorf("NumObservations = %d after %d rounds, want <= %d (faded observations must be pruned)", n, rounds, fadeWindow+1)
	}
	// Sanity: the estimator still works and recent data still counts.
	if est := o.Estimate(); math.IsNaN(est[(rounds-1)%4]) {
		t.Errorf("estimate for the most recently observed task is NaN")
	}
	if o.NumAccounts() == 0 {
		t.Error("NumAccounts = 0, recent accounts must remain live")
	}
}
