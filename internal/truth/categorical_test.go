package truth

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sybiltd/internal/mcs"
)

func labelObs(task, label int) mcs.Observation {
	o := obsAt(task, float64(label))
	return o
}

func TestMajorityVote(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{labelObs(0, 1), labelObs(1, 0)}})
	ds.AddAccount(mcs.Account{ID: "b", Observations: []mcs.Observation{labelObs(0, 1)}})
	ds.AddAccount(mcs.Account{ID: "c", Observations: []mcs.Observation{labelObs(0, 2)}})
	res, err := MajorityVote{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 1 {
		t.Errorf("T1 = %v, want 1", res.Truths[0])
	}
	if res.Truths[1] != 0 {
		t.Errorf("T2 = %v, want 0", res.Truths[1])
	}
	if (MajorityVote{}).Name() != "MajorityVote" {
		t.Error("name")
	}
}

func TestMajorityVoteTieBreaksLow(t *testing.T) {
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{labelObs(0, 3)}})
	ds.AddAccount(mcs.Account{ID: "b", Observations: []mcs.Observation{labelObs(0, 1)}})
	res, err := MajorityVote{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 1 {
		t.Errorf("tie broke to %v, want 1", res.Truths[0])
	}
}

func TestCategoricalValidation(t *testing.T) {
	bad := mcs.NewDataset(1)
	bad.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 1.5)}})
	for _, alg := range []Algorithm{MajorityVote{}, CategoricalCRH{}} {
		if _, err := alg.Run(bad); err == nil {
			t.Errorf("%s: fractional label should error", alg.Name())
		}
		if _, err := alg.Run(nil); err == nil {
			t.Errorf("%s: nil dataset should error", alg.Name())
		}
	}
	neg := mcs.NewDataset(1)
	neg.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, -1)}})
	if _, err := (CategoricalCRH{}).Run(neg); err == nil {
		t.Error("negative label should error")
	}
}

func TestCategoricalCRHOutvotesUnreliableMajority(t *testing.T) {
	// 3 reliable accounts agree on many tasks; 4 unreliable accounts give
	// random labels but happen to collude on task 0. Weighted voting must
	// recover the truth on task 0 even though the raw majority is wrong.
	const m = 12
	rng := rand.New(rand.NewSource(1))
	ds := mcs.NewDataset(m)
	truthLabels := make([]int, m)
	for j := range truthLabels {
		truthLabels[j] = rng.Intn(3)
	}
	for u := 0; u < 3; u++ {
		obs := make([]mcs.Observation, m)
		for j := 0; j < m; j++ {
			obs[j] = labelObs(j, truthLabels[j])
		}
		ds.AddAccount(mcs.Account{ID: "good" + string(rune('a'+u)), Observations: obs})
	}
	wrong := (truthLabels[0] + 1) % 3
	for u := 0; u < 4; u++ {
		obs := make([]mcs.Observation, m)
		obs[0] = labelObs(0, wrong)
		for j := 1; j < m; j++ {
			obs[j] = labelObs(j, rng.Intn(3))
		}
		ds.AddAccount(mcs.Account{ID: "bad" + string(rune('a'+u)), Observations: obs})
	}

	naive, err := MajorityVote{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Truths[0] != float64(wrong) {
		t.Fatalf("test premise broken: raw majority on T1 = %v, want %d", naive.Truths[0], wrong)
	}
	res, err := CategoricalCRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	if res.Truths[0] != float64(truthLabels[0]) {
		t.Errorf("weighted T1 = %v, want %d", res.Truths[0], truthLabels[0])
	}
	// Overall accuracy high.
	var correct int
	for j := 0; j < m; j++ {
		if res.Truths[j] == float64(truthLabels[j]) {
			correct++
		}
	}
	if correct < m-1 {
		t.Errorf("accuracy = %d/%d", correct, m)
	}
	// Reliable accounts out-weigh unreliable ones.
	for u := 0; u < 3; u++ {
		if res.Weights[u] <= res.Weights[3] {
			t.Errorf("good weight %v <= bad %v", res.Weights[u], res.Weights[3])
		}
	}
}

func TestCategoricalCRHEdgeCases(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{labelObs(0, 4)}})
	ds.AddAccount(mcs.Account{ID: "idle"})
	res, err := CategoricalCRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 4 {
		t.Errorf("single-report label = %v", res.Truths[0])
	}
	if !math.IsNaN(res.Truths[1]) {
		t.Errorf("empty task = %v, want NaN", res.Truths[1])
	}
	if res.Weights[1] != 0 {
		t.Errorf("idle weight = %v", res.Weights[1])
	}
}

func TestCategoricalFrameworkWithSybilAttack(t *testing.T) {
	// Pothole reporting: label 1 = pothole. Honest users report the true
	// labels; a Sybil attacker's five accounts flip task 0. With median
	// group aggregation the framework restores the honest answer because
	// the attacker's accounts collapse into one voice.
	ds := mcs.NewDataset(3)
	truthLabels := []int{1, 0, 1}
	for u := 0; u < 3; u++ {
		var obs []mcs.Observation
		for j, l := range truthLabels {
			o := labelObs(j, l)
			o.Time = o.Time.Add(time.Duration(u*13+j) * time.Minute)
			obs = append(obs, o)
		}
		ds.AddAccount(mcs.Account{ID: "good" + string(rune('a'+u)), Observations: obs})
	}
	for s := 0; s < 5; s++ {
		var obs []mcs.Observation
		for j := range truthLabels {
			label := truthLabels[j]
			if j == 0 {
				label = 0 // deny the pothole
			}
			o := labelObs(j, label)
			o.Time = o.Time.Add(time.Duration(100+s) * time.Minute)
			obs = append(obs, o)
		}
		ds.AddAccount(mcs.Account{ID: "syb" + string(rune('0'+s)), Observations: obs})
	}

	naive, err := CategoricalCRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Truths[0] != 0 {
		t.Fatalf("premise broken: plain categorical CRH T1 = %v, want captured (0)", naive.Truths[0])
	}
	// Oracle grouping (the grouping methods are value-agnostic and tested
	// elsewhere); median group aggregation preserves labels.
	// Importing core here would cycle; emulate the framework's collapse by
	// replacing the five Sybil accounts with their majority voice.
	collapsed := mcs.NewDataset(3)
	for u := 0; u < 3; u++ {
		collapsed.AddAccount(ds.Accounts[u])
	}
	var sybObs []mcs.Observation
	for j := range truthLabels {
		o := ds.Accounts[3].Observations[j]
		sybObs = append(sybObs, o)
	}
	collapsed.AddAccount(mcs.Account{ID: "syb-group", Observations: sybObs})
	defended, err := CategoricalCRH{}.Run(collapsed)
	if err != nil {
		t.Fatal(err)
	}
	if defended.Truths[0] != 1 {
		t.Errorf("collapsed T1 = %v, want honest 1", defended.Truths[0])
	}
}
