package truth

import (
	"time"

	"sybiltd/internal/mcs"
)

// Table I / Table III of the paper: a 4-task, 4-user example in which user
// 4 is an Attack-I Sybil attacker with accounts 4', 4'', 4''' submitting
// fabricated -50 dBm readings for tasks 1, 3, and 4. These fixtures drive
// the vulnerability demonstration (Table I) and the AG-TS / AG-TR
// walkthroughs (Figs. 3-4).

// paperTime builds the timestamps of Table III (10:MM:SS a.m.).
func paperTime(min, sec int) time.Time {
	return time.Date(2019, 3, 1, 10, min, sec, 0, time.UTC)
}

// PaperExampleHonest returns the Table I dataset without the Sybil
// attacker: users 1-3 only.
func PaperExampleHonest() *mcs.Dataset {
	ds := mcs.NewDataset(4)
	ds.AddAccount(mcs.Account{ID: "1", Observations: []mcs.Observation{
		{Task: 0, Value: -84.48, Time: paperTime(0, 35)},
		{Task: 1, Value: -82.11, Time: paperTime(2, 42)},
		{Task: 2, Value: -75.16, Time: paperTime(10, 22)},
		{Task: 3, Value: -72.71, Time: paperTime(13, 41)},
	}})
	ds.AddAccount(mcs.Account{ID: "2", Observations: []mcs.Observation{
		{Task: 1, Value: -72.27, Time: paperTime(4, 15)},
		{Task: 2, Value: -77.21, Time: paperTime(6, 1)},
	}})
	ds.AddAccount(mcs.Account{ID: "3", Observations: []mcs.Observation{
		{Task: 0, Value: -72.41, Time: paperTime(1, 21)},
		{Task: 1, Value: -91.49, Time: paperTime(4, 5)},
		{Task: 3, Value: -73.55, Time: paperTime(8, 28)},
	}})
	return ds
}

// PaperExampleWithSybil returns the Table I dataset including the Attack-I
// attacker's three accounts (4', 4”, 4”') with their Table III
// timestamps.
func PaperExampleWithSybil() *mcs.Dataset {
	ds := PaperExampleHonest()
	ds.AddAccount(mcs.Account{ID: "4'", Observations: []mcs.Observation{
		{Task: 0, Value: -50, Time: paperTime(1, 10)},
		{Task: 2, Value: -50, Time: paperTime(15, 24)},
		{Task: 3, Value: -50, Time: paperTime(20, 6)},
	}})
	ds.AddAccount(mcs.Account{ID: "4''", Observations: []mcs.Observation{
		{Task: 0, Value: -50, Time: paperTime(1, 34)},
		{Task: 2, Value: -50, Time: paperTime(16, 8)},
		{Task: 3, Value: -50, Time: paperTime(21, 25)},
	}})
	ds.AddAccount(mcs.Account{ID: "4'''", Observations: []mcs.Observation{
		{Task: 0, Value: -50, Time: paperTime(2, 35)},
		{Task: 2, Value: -50, Time: paperTime(17, 35)},
		{Task: 3, Value: -50, Time: paperTime(22, 2)},
	}})
	return ds
}

// PaperSybilAccountIndices returns the dataset indices of the attacker's
// accounts in PaperExampleWithSybil.
func PaperSybilAccountIndices() []int { return []int{3, 4, 5} }
