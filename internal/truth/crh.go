package truth

import (
	"fmt"
	"math"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/signal"
)

// CRHConfig tunes the CRH iteration.
type CRHConfig struct {
	// MaxIterations caps the estimation loop. Zero means 100, the paper's
	// convergence criterion style ("maximum number of iterations in [10]").
	MaxIterations int
	// Tolerance stops the loop when the largest truth update falls below
	// it. Zero means 1e-6.
	Tolerance float64
	// LossFloor is the minimum per-account loss, preventing an account that
	// matches the estimated truth exactly from receiving infinite weight.
	// Zero means 1e-9.
	LossFloor float64
}

func (c CRHConfig) withDefaults() CRHConfig {
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	if c.LossFloor == 0 {
		c.LossFloor = 1e-9
	}
	return c
}

// CRH implements the Conflict Resolution on Heterogeneous data algorithm
// (Li et al., SIGMOD 2014) for continuous data, the truth-discovery
// algorithm the paper uses to represent the family (§III-C, §V):
//
//	weight estimation:  w_i = log( Σ_i' loss_i' / loss_i ),
//	                    loss_i = Σ_{j∈T_i} (d_j^i − x_j)² / std_j
//	truth estimation:   x_j = Σ_{i∈U_j} w_i d_j^i / Σ_{i∈U_j} w_i
//
// where std_j normalizes task scales. Truths are initialized to per-task
// medians (the CRH reference implementation's choice; Algorithm 1 permits
// any initialization).
type CRH struct {
	Config CRHConfig
}

// Name implements Algorithm.
func (CRH) Name() string { return "CRH" }

// Run implements Algorithm.
func (c CRH) Run(ds *mcs.Dataset) (Result, error) {
	if err := validate(ds); err != nil {
		return Result{}, err
	}
	defer obs.Default().Timer("truth.crh.run_seconds").Start().Stop()
	cfg := c.Config.withDefaults()

	n := ds.NumAccounts()
	m := ds.NumTasks()
	vals := valuesByTask(ds)

	// Per-task scale normalizer: population std of reported values,
	// floored so single-report and zero-variance tasks stay usable.
	std := make([]float64, m)
	for j := range std {
		s := signal.StdDev(vals[j])
		if s < 1e-9 {
			s = 1e-9
		}
		std[j] = s
	}

	truths := make([]float64, m)
	hasData := make([]bool, m)
	for j := range truths {
		if len(vals[j]) == 0 {
			truths[j] = math.NaN()
			continue
		}
		med, err := signal.Median(vals[j])
		if err != nil {
			return Result{}, fmt.Errorf("truth: init task %d: %w", j, err)
		}
		truths[j] = med
		hasData[j] = true
	}

	// Index observations by task once; the loop below is the hot path.
	type report struct {
		acct  int
		value float64
	}
	reportsByTask := make([][]report, m)
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			reportsByTask[o.Task] = append(reportsByTask[o.Task], report{acct: ai, value: o.Value})
		}
	}

	weights := uniformWeights(n)
	losses := make([]float64, n)
	var iter int
	converged := false

	for iter = 1; iter <= cfg.MaxIterations; iter++ {
		// Weight estimation (Eq. 1 with CRH's W and D).
		var totalLoss float64
		for i := 0; i < n; i++ {
			var loss float64
			for _, o := range ds.Accounts[i].Observations {
				if !hasData[o.Task] {
					continue
				}
				d := o.Value - truths[o.Task]
				loss += d * d / std[o.Task]
			}
			if loss < cfg.LossFloor {
				loss = cfg.LossFloor
			}
			losses[i] = loss
			totalLoss += loss
		}
		for i := 0; i < n; i++ {
			if len(ds.Accounts[i].Observations) == 0 {
				weights[i] = 0
				continue
			}
			w := math.Log(totalLoss / losses[i])
			if w < 0 {
				// An account worse than the whole crowd combined still
				// participates with negligible weight rather than a
				// negative one, which would corrupt the weighted mean.
				w = 0
			}
			weights[i] = w
		}

		// Truth estimation (Eq. 2).
		maxDelta := 0.0
		for j := 0; j < m; j++ {
			if !hasData[j] {
				continue
			}
			var num, den float64
			for _, r := range reportsByTask[j] {
				num += weights[r.acct] * r.value
				den += weights[r.acct]
			}
			var next float64
			if den == 0 {
				next = signal.Mean(vals[j]) // all weights zero: fall back
			} else {
				next = num / den
			}
			if d := math.Abs(next - truths[j]); d > maxDelta {
				maxDelta = d
			}
			truths[j] = next
		}
		if maxDelta < cfg.Tolerance {
			converged = true
			break
		}
	}
	if iter > cfg.MaxIterations {
		iter = cfg.MaxIterations
	}
	observeLoop("crh", iter, converged)
	return Result{Truths: truths, Weights: weights, Iterations: iter, Converged: converged}, nil
}

var _ Algorithm = CRH{}
