package truth

import (
	"fmt"
	"math"

	"sybiltd/internal/mcs"
)

// Categorical truth discovery for tasks whose answers are discrete labels
// (is there a pothole? which of K states is the signal in?). Labels are
// encoded as non-negative integers carried in Observation.Value; the
// estimators never interpolate between labels. This extends the library
// beyond the paper's numeric focus to the other half of the truth
// discovery literature (TruthFinder-style categorical data, the paper's
// reference [34]).

// MajorityVote is the unweighted baseline: each task's truth is the label
// most accounts reported (ties break toward the smaller label).
type MajorityVote struct{}

// Name implements Algorithm.
func (MajorityVote) Name() string { return "MajorityVote" }

// Run implements Algorithm.
func (MajorityVote) Run(ds *mcs.Dataset) (Result, error) {
	if err := validateCategorical(ds); err != nil {
		return Result{}, err
	}
	truths := make([]float64, ds.NumTasks())
	counts := make([]map[int]float64, ds.NumTasks())
	for j := range counts {
		counts[j] = map[int]float64{}
	}
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			counts[o.Task][int(o.Value)]++
		}
	}
	for j := range truths {
		truths[j] = argmaxLabel(counts[j])
	}
	return Result{Truths: truths, Weights: uniformWeights(ds.NumAccounts()), Iterations: 1, Converged: true}, nil
}

// CategoricalCRH is the CRH-style iterative estimator for labels: the loss
// of an account is the weighted fraction of its reports that disagree with
// the current truth estimates (0/1 distance), weights follow the CRH
// log-ratio rule, and truths are the weighted plurality labels.
type CategoricalCRH struct {
	// MaxIterations caps the loop; zero means 100.
	MaxIterations int
}

// Name implements Algorithm.
func (CategoricalCRH) Name() string { return "CategoricalCRH" }

// Run implements Algorithm.
func (c CategoricalCRH) Run(ds *mcs.Dataset) (Result, error) {
	if err := validateCategorical(ds); err != nil {
		return Result{}, err
	}
	maxIter := c.MaxIterations
	if maxIter == 0 {
		maxIter = 100
	}
	n := ds.NumAccounts()
	m := ds.NumTasks()

	// Initialize with the unweighted majority.
	init, err := MajorityVote{}.Run(ds)
	if err != nil {
		return Result{}, err
	}
	truths := init.Truths

	type report struct {
		acct  int
		label int
	}
	reportsByTask := make([][]report, m)
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			reportsByTask[o.Task] = append(reportsByTask[o.Task], report{acct: ai, label: int(o.Value)})
		}
	}

	weights := uniformWeights(n)
	converged := false
	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		// Weight estimation: loss = #disagreements + smoothing.
		var total float64
		losses := make([]float64, n)
		for ai := range ds.Accounts {
			obs := ds.Accounts[ai].Observations
			if len(obs) == 0 {
				continue
			}
			loss := 0.5 // Laplace-style smoothing keeps perfect agreers finite
			for _, o := range obs {
				if math.IsNaN(truths[o.Task]) {
					continue
				}
				if int(o.Value) != int(truths[o.Task]) {
					loss++
				}
			}
			losses[ai] = loss
			total += loss
		}
		for ai := range ds.Accounts {
			if len(ds.Accounts[ai].Observations) == 0 {
				weights[ai] = 0
				continue
			}
			w := math.Log(total / losses[ai])
			if w < 0 {
				w = 0
			}
			weights[ai] = w
		}

		// Truth estimation: weighted plurality.
		changed := false
		for j := 0; j < m; j++ {
			if len(reportsByTask[j]) == 0 {
				continue
			}
			votes := map[int]float64{}
			for _, r := range reportsByTask[j] {
				w := weights[r.acct]
				if w == 0 {
					w = 1e-9 // keep all-zero-weight tasks decidable
				}
				votes[r.label] += w
			}
			next := argmaxLabel(votes)
			if next != truths[j] {
				truths[j] = next
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if iter > maxIter {
		iter = maxIter
	}
	return Result{Truths: truths, Weights: weights, Iterations: iter, Converged: converged}, nil
}

// validateCategorical extends the shared validation with label checks:
// every value must be a non-negative integer.
func validateCategorical(ds *mcs.Dataset) error {
	if err := validate(ds); err != nil {
		return err
	}
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			if o.Value < 0 || o.Value != math.Trunc(o.Value) {
				return fmt.Errorf("truth: account %q task %d: %v is not a categorical label",
					ds.Accounts[ai].ID, o.Task, o.Value)
			}
		}
	}
	return nil
}

// argmaxLabel returns the label with the highest vote mass, breaking ties
// toward the smaller label; NaN when votes is empty.
func argmaxLabel(votes map[int]float64) float64 {
	best := -1
	bestMass := math.Inf(-1)
	for label, mass := range votes {
		if mass > bestMass || (mass == bestMass && label < best) {
			best = label
			bestMass = mass
		}
	}
	if best < 0 {
		return math.NaN()
	}
	return float64(best)
}

var (
	_ Algorithm = MajorityVote{}
	_ Algorithm = CategoricalCRH{}
)
