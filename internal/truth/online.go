package truth

import (
	"errors"
	"fmt"
	"math"

	"sybiltd/internal/signal"
)

// Online is an evolving-truth estimator in the spirit of "On the discovery
// of evolving truth" (Li et al., KDD 2015 — reference [11] of the paper):
// a streaming CRH whose observations decay with age, so the estimated
// truths track phenomena that drift over time (rush-hour noise levels,
// moving Wi-Fi interference) while source weights accumulate across
// rounds.
//
// Usage: Observe values during a round, call Tick to close the round, and
// read Estimate at any time. The zero value is not usable; call NewOnline.
type Online struct {
	numTasks int
	decay    float64
	maxIter  int
	tol      float64

	round int
	// latest[account][task] = the newest report (older reports of the same
	// account/task pair are superseded, per the one-report rule).
	latest map[string]map[int]onlineObs
	truths []float64
}

type onlineObs struct {
	value float64
	round int
}

// recencyFloor is the influence below which an observation is treated as
// fully faded: Estimate skips it and prune deletes it. Shared by both so
// the skip rule and the retention rule can never drift apart.
const recencyFloor = 1e-6

// OnlineConfig tunes an Online estimator.
type OnlineConfig struct {
	// Decay in (0, 1] is the per-round forgetting factor applied to each
	// observation's influence; 1 never forgets. Zero means 0.9.
	Decay float64
	// MaxIterations caps each Estimate's refinement loop; zero means 50.
	MaxIterations int
	// Tolerance stops the refinement early; zero means 1e-6.
	Tolerance float64
}

// NewOnline creates an evolving-truth estimator over numTasks tasks.
func NewOnline(numTasks int, cfg OnlineConfig) (*Online, error) {
	if numTasks < 1 {
		return nil, errors.New("truth: online estimator needs at least one task")
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.9
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		return nil, fmt.Errorf("truth: decay %v outside (0, 1]", cfg.Decay)
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 50
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 1e-6
	}
	truths := make([]float64, numTasks)
	for j := range truths {
		truths[j] = math.NaN()
	}
	return &Online{
		numTasks: numTasks,
		decay:    cfg.Decay,
		maxIter:  cfg.MaxIterations,
		tol:      cfg.Tolerance,
		latest:   make(map[string]map[int]onlineObs),
		truths:   truths,
	}, nil
}

// Observe ingests one report in the current round. A newer report from the
// same account for the same task supersedes the older one.
func (o *Online) Observe(account string, task int, value float64) error {
	if account == "" {
		return errors.New("truth: empty account")
	}
	if task < 0 || task >= o.numTasks {
		return fmt.Errorf("truth: task %d out of range [0,%d)", task, o.numTasks)
	}
	byTask, ok := o.latest[account]
	if !ok {
		byTask = make(map[int]onlineObs)
		o.latest[account] = byTask
	}
	byTask[task] = onlineObs{value: value, round: o.round}
	return nil
}

// Tick closes the current round: subsequent observations belong to the
// next round and all existing observations age by one decay step.
// Observations that have fully faded (recency below recencyFloor) are
// pruned here, so a long-running estimator's memory is bounded by the
// live window — decay^window >= recencyFloor — instead of growing with
// every account that ever reported.
func (o *Online) Tick() {
	o.round++
	o.prune()
}

// recency returns an observation's current influence in [0, 1].
func (o *Online) recency(ob onlineObs) float64 {
	return math.Pow(o.decay, float64(o.round-ob.round))
}

// prune deletes observations whose influence fell below recencyFloor and
// accounts left with no live observations. With Decay == 1 nothing ever
// fades and prune is a no-op by design.
func (o *Online) prune() {
	if o.decay >= 1 {
		return
	}
	for account, byTask := range o.latest {
		for task, ob := range byTask {
			if o.recency(ob) < recencyFloor {
				delete(byTask, task)
			}
		}
		if len(byTask) == 0 {
			delete(o.latest, account)
		}
	}
}

// Has reports whether the estimator currently holds a report from
// account for task (presence, regardless of how far it has faded).
func (o *Online) Has(account string, task int) bool {
	_, ok := o.latest[account][task]
	return ok
}

// Round returns the current round number (starting at 0).
func (o *Online) Round() int { return o.round }

// Estimate refines and returns the current truth estimates. Tasks that
// have never been observed stay NaN. The returned slice is a copy.
func (o *Online) Estimate() []float64 {
	type rep struct {
		account string
		value   float64
		recency float64
	}
	byTask := make([][]rep, o.numTasks)
	for account, obs := range o.latest {
		for task, ob := range obs {
			recency := o.recency(ob)
			if recency < recencyFloor {
				// Fully faded: prune in place — this scan already visits
				// every observation, so deletion here is free and keeps
				// the maps bounded even if Tick is never called directly.
				delete(obs, task)
				continue
			}
			byTask[task] = append(byTask[task], rep{account: account, value: ob.value, recency: recency})
		}
		if len(obs) == 0 {
			delete(o.latest, account)
		}
	}

	// Warm-start truths; initialize fresh tasks from their recency-weighted
	// median-ish mean.
	std := make([]float64, o.numTasks)
	for j := range byTask {
		if len(byTask[j]) == 0 {
			continue
		}
		vals := make([]float64, len(byTask[j]))
		for k, r := range byTask[j] {
			vals[k] = r.value
		}
		s := signal.StdDev(vals)
		if s < 1e-9 {
			s = 1e-9
		}
		std[j] = s
		if math.IsNaN(o.truths[j]) {
			med, err := signal.Median(vals)
			if err == nil {
				o.truths[j] = med
			}
		}
	}

	losses := make(map[string]float64, len(o.latest))
	for iter := 0; iter < o.maxIter; iter++ {
		// Weight estimation with recency-discounted losses.
		var total float64
		for account := range o.latest {
			losses[account] = 0
		}
		counted := make(map[string]bool, len(o.latest))
		for j, reps := range byTask {
			if math.IsNaN(o.truths[j]) {
				continue
			}
			for _, r := range reps {
				d := r.value - o.truths[j]
				losses[r.account] += r.recency * d * d / std[j]
				counted[r.account] = true
			}
		}
		for account := range counted {
			if losses[account] < 1e-9 {
				losses[account] = 1e-9
			}
			total += losses[account]
		}

		weight := func(account string) float64 {
			if !counted[account] {
				return 0
			}
			w := math.Log(total / losses[account])
			if w < 0 {
				w = 0
			}
			return w
		}

		// Truth estimation.
		maxDelta := 0.0
		for j, reps := range byTask {
			if len(reps) == 0 {
				continue
			}
			var num, den, sum float64
			for _, r := range reps {
				w := weight(r.account) * r.recency
				num += w * r.value
				den += w
				sum += r.value
			}
			var next float64
			if den == 0 {
				next = sum / float64(len(reps))
			} else {
				next = num / den
			}
			if !math.IsNaN(o.truths[j]) {
				if d := math.Abs(next - o.truths[j]); d > maxDelta {
					maxDelta = d
				}
			}
			o.truths[j] = next
		}
		if maxDelta < o.tol {
			break
		}
	}

	out := make([]float64, o.numTasks)
	copy(out, o.truths)
	return out
}

// NumAccounts returns the number of live accounts: accounts with at least
// one observation whose influence is still above the recency floor.
// Accounts whose every report has fully faded no longer participate in
// Estimate and are not counted (they are pruned).
func (o *Online) NumAccounts() int {
	o.prune()
	return len(o.latest)
}

// NumObservations returns the number of live (non-faded) observations
// currently retained. Exposed so long-running deployments (and the
// steady-state regression test) can pin the estimator's memory footprint.
func (o *Online) NumObservations() int {
	o.prune()
	n := 0
	for _, byTask := range o.latest {
		n += len(byTask)
	}
	return n
}
