// Package truth implements the truth-discovery substrate of the paper's
// §III-B: the general iterative weight-estimation / truth-estimation loop
// of Algorithm 1, with CRH (Li et al., SIGMOD 2014) as the representative
// instance, plus naive mean and median aggregation baselines.
//
// All algorithms consume an mcs.Dataset and produce a Result with one
// estimated truth per task. Tasks nobody reported on get NaN truths; the
// caller decides what that means (the experiment harness excludes them
// from MAE).
package truth

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/signal"
)

// Result is the output of a truth-discovery run.
type Result struct {
	// Truths[j] is the estimated truth for task j; NaN when no account
	// reported on the task.
	Truths []float64
	// Weights[i] is the final reliability weight of account i. Baselines
	// that do not estimate weights return uniform weights.
	Weights []float64
	// Iterations is the number of estimation rounds performed.
	Iterations int
	// Converged reports whether the loop met its tolerance before hitting
	// the iteration cap.
	Converged bool
	// Degraded reports that the algorithm could not run at full fidelity
	// and fell back to a weaker mode — e.g. the Sybil-resistant framework
	// ran per-account (ungrouped) truth discovery because account grouping
	// was cancelled by a deadline. The estimates are still usable; they
	// just lack the degraded stage's protection.
	Degraded bool
	// DegradedReason is a short machine-readable reason ("grouping_timeout",
	// "grouping_failed", "truth_loop_cancelled"); empty when !Degraded.
	DegradedReason string
}

// Algorithm is a data aggregation algorithm for MCS campaigns.
type Algorithm interface {
	// Name returns a short identifier such as "CRH".
	Name() string
	// Run aggregates the dataset into per-task truth estimates.
	Run(ds *mcs.Dataset) (Result, error)
}

// ContextAlgorithm is an Algorithm that honors a cancellation context:
// long stages stop early and, where the algorithm defines one, a graceful
// degradation path produces estimates instead of an error (see
// Result.Degraded).
type ContextAlgorithm interface {
	Algorithm
	// RunContext is Run under a cancellation context.
	RunContext(ctx context.Context, ds *mcs.Dataset) (Result, error)
}

// RunWithContext runs alg under ctx when it supports cancellation, and
// falls back to the plain blocking Run otherwise (checking ctx once up
// front so an already-expired deadline still refuses promptly).
func RunWithContext(ctx context.Context, alg Algorithm, ds *mcs.Dataset) (Result, error) {
	if ca, ok := alg.(ContextAlgorithm); ok {
		return ca.RunContext(ctx, ds)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return alg.Run(ds)
}

// ErrNilDataset is returned when Run receives a nil dataset.
var ErrNilDataset = errors.New("truth: nil dataset")

// validate performs the checks shared by all algorithms.
func validate(ds *mcs.Dataset) error {
	if ds == nil {
		return ErrNilDataset
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("truth: %w", err)
	}
	return nil
}

// Mean is the unweighted-average baseline: the truth of each task is the
// arithmetic mean of the values reported for it.
type Mean struct{}

// Name implements Algorithm.
func (Mean) Name() string { return "Mean" }

// Run implements Algorithm.
func (Mean) Run(ds *mcs.Dataset) (Result, error) {
	if err := validate(ds); err != nil {
		return Result{}, err
	}
	truths := make([]float64, ds.NumTasks())
	for j, vals := range valuesByTask(ds) {
		if len(vals) == 0 {
			truths[j] = math.NaN()
			continue
		}
		truths[j] = signal.Mean(vals)
	}
	return Result{Truths: truths, Weights: uniformWeights(ds.NumAccounts()), Iterations: 1, Converged: true}, nil
}

// Median is the robust baseline: the truth of each task is the median of
// the values reported for it.
type Median struct{}

// Name implements Algorithm.
func (Median) Name() string { return "Median" }

// Run implements Algorithm.
func (Median) Run(ds *mcs.Dataset) (Result, error) {
	if err := validate(ds); err != nil {
		return Result{}, err
	}
	truths := make([]float64, ds.NumTasks())
	for j, vals := range valuesByTask(ds) {
		if len(vals) == 0 {
			truths[j] = math.NaN()
			continue
		}
		med, err := signal.Median(vals)
		if err != nil {
			return Result{}, fmt.Errorf("truth: median of task %d: %w", j, err)
		}
		truths[j] = med
	}
	return Result{Truths: truths, Weights: uniformWeights(ds.NumAccounts()), Iterations: 1, Converged: true}, nil
}

// observeLoop records one iterative algorithm run into the process
// metrics registry: run count, iteration-count histogram, and how often
// the loop converged before its cap. alg is a short lowercase label
// ("crh", "catd", "gtm").
func observeLoop(alg string, iterations int, converged bool) {
	reg := obs.Default()
	reg.Counter("truth." + alg + ".runs").Inc()
	reg.Histogram("truth." + alg + ".iterations").Observe(float64(iterations))
	if converged {
		reg.Counter("truth." + alg + ".converged").Inc()
	}
}

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// valuesByTask collects the reported values per task index.
func valuesByTask(ds *mcs.Dataset) [][]float64 {
	vals := make([][]float64, ds.NumTasks())
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			vals[o.Task] = append(vals[o.Task], o.Value)
		}
	}
	return vals
}

var (
	_ Algorithm = Mean{}
	_ Algorithm = Median{}
)
