package truth

import (
	"math"
	"testing"

	"sybiltd/internal/mcs"
)

func TestUncertaintyValidation(t *testing.T) {
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 1)}})
	if _, err := Uncertainty(nil, Result{}); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := Uncertainty(ds, Result{Truths: []float64{1, 2}, Weights: []float64{1}}); err == nil {
		t.Error("task-count mismatch should error")
	}
	if _, err := Uncertainty(ds, Result{Truths: []float64{1}, Weights: nil}); err == nil {
		t.Error("weight-count mismatch should error")
	}
}

func TestUncertaintyEdgeCases(t *testing.T) {
	ds := mcs.NewDataset(3)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 5)}})
	// Task 1: no data. Task 2: no data either.
	res, err := CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	unc, err := Uncertainty(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(unc[0], 1) {
		t.Errorf("single-report uncertainty = %v, want +Inf", unc[0])
	}
	if !math.IsNaN(unc[1]) || !math.IsNaN(unc[2]) {
		t.Errorf("no-data uncertainty = %v, %v, want NaN", unc[1], unc[2])
	}
}

func TestUncertaintyShrinksWithAgreement(t *testing.T) {
	// Many agreeing reporters -> small uncertainty; few conflicting ones
	// -> large.
	agree := mcs.NewDataset(1)
	for i := 0; i < 10; i++ {
		agree.AddAccount(mcs.Account{ID: string(rune('a' + i)), Observations: []mcs.Observation{
			obsAt(0, 50+0.1*float64(i%3)),
		}})
	}
	conflict := mcs.NewDataset(1)
	for i, v := range []float64{20, 50, 80} {
		conflict.AddAccount(mcs.Account{ID: string(rune('a' + i)), Observations: []mcs.Observation{obsAt(0, v)}})
	}
	uncOf := func(ds *mcs.Dataset) float64 {
		t.Helper()
		res, err := CRH{}.Run(ds)
		if err != nil {
			t.Fatal(err)
		}
		unc, err := Uncertainty(ds, res)
		if err != nil {
			t.Fatal(err)
		}
		return unc[0]
	}
	a, c := uncOf(agree), uncOf(conflict)
	if a >= c {
		t.Errorf("agreement uncertainty %v should be below conflict %v", a, c)
	}
	if a > 0.2 {
		t.Errorf("tight agreement uncertainty = %v, want small", a)
	}
}

func TestUncertaintyOnPaperExample(t *testing.T) {
	// Every multi-report task yields a finite positive standard error, and
	// a task whose reports agree closely (honest T4: -72.71 vs -73.55)
	// scores far below a task with an internal conflict (honest T2:
	// -82.11 vs -72.27 vs -91.49).
	ds := PaperExampleHonest()
	res, err := CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	unc, err := Uncertainty(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	for j, u := range unc {
		if math.IsNaN(u) || u <= 0 {
			t.Errorf("T%d uncertainty = %v, want positive", j+1, u)
		}
	}
	if !(unc[3] < unc[1]) {
		t.Errorf("agreeing T4 uncertainty %v should be below conflicted T2 %v", unc[3], unc[1])
	}
	// The attacked dataset still yields finite uncertainties everywhere.
	atk := PaperExampleWithSybil()
	resAtk, err := CRH{}.Run(atk)
	if err != nil {
		t.Fatal(err)
	}
	uncAtk, err := Uncertainty(atk, resAtk)
	if err != nil {
		t.Fatal(err)
	}
	for j, u := range uncAtk {
		if math.IsNaN(u) || math.IsInf(u, 0) || u <= 0 {
			t.Errorf("attacked T%d uncertainty = %v", j+1, u)
		}
	}
}
