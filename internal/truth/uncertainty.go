package truth

import (
	"errors"
	"math"

	"sybiltd/internal/mcs"
)

// Uncertainty quantifies how much to trust each per-task estimate: the
// weighted standard error of the values around the estimated truth,
//
//	se_j = sqrt( Σ_i w_i (d_j^i − x_j)² / Σ_i w_i ) / sqrt(n_j^eff),
//
// where n_j^eff = (Σ w_i)² / Σ w_i² is Kish's effective sample size of the
// task's contributors. A platform uses it to flag tasks whose estimate
// rests on few or conflicting reports. Tasks without data get NaN;
// single-report tasks get +Inf (one observation carries no internal
// evidence about its own error).
func Uncertainty(ds *mcs.Dataset, res Result) ([]float64, error) {
	if ds == nil {
		return nil, ErrNilDataset
	}
	if len(res.Truths) != ds.NumTasks() {
		return nil, errors.New("truth: result does not match dataset task count")
	}
	if len(res.Weights) != ds.NumAccounts() {
		return nil, errors.New("truth: result does not match dataset account count")
	}

	type stats struct {
		wSum, w2Sum, wrSum float64
		count              int
	}
	perTask := make([]stats, ds.NumTasks())
	for ai := range ds.Accounts {
		w := res.Weights[ai]
		if w <= 0 {
			// Zero-weight contributors carry no evidence; still count the
			// observation so a single unweighted report yields +Inf, not
			// NaN.
			w = 0
		}
		for _, o := range ds.Accounts[ai].Observations {
			t := &perTask[o.Task]
			t.count++
			if w == 0 || math.IsNaN(res.Truths[o.Task]) {
				continue
			}
			r := o.Value - res.Truths[o.Task]
			t.wSum += w
			t.w2Sum += w * w
			t.wrSum += w * r * r
		}
	}

	out := make([]float64, ds.NumTasks())
	for j := range out {
		t := perTask[j]
		switch {
		case t.count == 0:
			out[j] = math.NaN()
		case t.count == 1 || t.wSum == 0:
			out[j] = math.Inf(1)
		default:
			variance := t.wrSum / t.wSum
			nEff := t.wSum * t.wSum / t.w2Sum
			if nEff <= 1 {
				out[j] = math.Inf(1)
				continue
			}
			out[j] = math.Sqrt(variance / nEff)
		}
	}
	return out, nil
}
