package truth

import (
	"math"
	"math/rand"
	"testing"

	"sybiltd/internal/mcs"
)

// buildCrowd creates m tasks with known truths and a crowd of reliable
// users plus optional unreliable ones.
func buildCrowd(t *testing.T, m, reliable, unreliable int, seed int64) (*mcs.Dataset, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := mcs.NewDataset(m)
	truthVals := make([]float64, m)
	for j := range truthVals {
		truthVals[j] = -80 + rng.Float64()*30
	}
	add := func(id string, noise, bias float64) {
		obs := make([]mcs.Observation, m)
		for j := 0; j < m; j++ {
			obs[j] = obsAt(j, truthVals[j]+bias+rng.NormFloat64()*noise)
		}
		ds.AddAccount(mcs.Account{ID: id, Observations: obs})
	}
	for u := 0; u < reliable; u++ {
		add("good"+string(rune('a'+u)), 0.5, 0)
	}
	for u := 0; u < unreliable; u++ {
		add("bad"+string(rune('a'+u)), 6, 10)
	}
	return ds, truthVals
}

func TestCATDRecoversTruths(t *testing.T) {
	ds, truthVals := buildCrowd(t, 10, 5, 2, 1)
	res, err := CATD{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("CATD did not converge")
	}
	for j, want := range truthVals {
		if math.Abs(res.Truths[j]-want) > 2 {
			t.Errorf("T%d = %.2f, want ~%.2f", j, res.Truths[j], want)
		}
	}
	// Reliable sources out-weigh unreliable ones.
	for u := 0; u < 5; u++ {
		if res.Weights[u] <= res.Weights[5] {
			t.Errorf("reliable weight %v <= unreliable %v", res.Weights[u], res.Weights[5])
		}
	}
}

func TestCATDLongTailBehavior(t *testing.T) {
	// CATD's point: a source with ONE perfectly-agreeing claim should not
	// dominate sources with many good claims, because its variance bound
	// is loose. Build 3 many-claim reliable sources and 1 single-claim
	// source; the single-claim source's weight must not exceed theirs.
	ds, _ := buildCrowd(t, 12, 3, 0, 2)
	oneShot := mcs.Account{ID: "oneshot", Observations: []mcs.Observation{obsAt(0, ds.Accounts[0].Observations[0].Value)}}
	ds.AddAccount(oneShot)
	res, err := CATD{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		if res.Weights[3] > res.Weights[u] {
			t.Errorf("single-claim source weight %v exceeds many-claim source %v", res.Weights[3], res.Weights[u])
		}
	}
}

func TestGTMRecoversTruths(t *testing.T) {
	ds, truthVals := buildCrowd(t, 10, 5, 2, 3)
	res, err := GTM{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("GTM did not converge")
	}
	for j, want := range truthVals {
		if math.Abs(res.Truths[j]-want) > 2 {
			t.Errorf("T%d = %.2f, want ~%.2f", j, res.Truths[j], want)
		}
	}
	for u := 0; u < 5; u++ {
		if res.Weights[u] <= res.Weights[5] {
			t.Errorf("reliable precision %v <= unreliable %v", res.Weights[u], res.Weights[5])
		}
	}
}

func TestNewAlgorithmsHandleEdgeCases(t *testing.T) {
	for _, alg := range []Algorithm{CATD{}, GTM{}} {
		if _, err := alg.Run(nil); err == nil {
			t.Errorf("%s: nil dataset should error", alg.Name())
		}
		// Empty task -> NaN; idle account -> zero weight.
		ds := mcs.NewDataset(2)
		ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 5)}})
		ds.AddAccount(mcs.Account{ID: "idle"})
		res, err := alg.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !math.IsNaN(res.Truths[1]) {
			t.Errorf("%s: empty task = %v, want NaN", alg.Name(), res.Truths[1])
		}
		if res.Weights[1] != 0 {
			t.Errorf("%s: idle weight = %v, want 0", alg.Name(), res.Weights[1])
		}
	}
}

func TestAllAlgorithmsVulnerableToSybil(t *testing.T) {
	// §III-C's claim generalizes: every truth-discovery algorithm of the
	// family caves to the Table I attack, not just CRH.
	honestRef, err := CRH{}.Run(PaperExampleHonest())
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{CRH{}, CATD{}, GTM{}, Mean{}} {
		res, err := alg.Run(PaperExampleWithSybil())
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		// Attacked task T1 must be dragged at least 10 dB toward -50.
		if res.Truths[0] < honestRef.Truths[0]+10 {
			t.Errorf("%s: T1 = %.2f — unexpectedly resistant (honest %.2f); the vulnerability demo fails",
				alg.Name(), res.Truths[0], honestRef.Truths[0])
		}
	}
}

func TestOnlineTracksDriftingTruth(t *testing.T) {
	o, err := NewOnline(1, OnlineConfig{Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Phase 1: truth is 10.
	for round := 0; round < 5; round++ {
		for u := 0; u < 4; u++ {
			if err := o.Observe("u"+string(rune('a'+u)), 0, 10+rng.NormFloat64()*0.2); err != nil {
				t.Fatal(err)
			}
		}
		o.Tick()
	}
	if est := o.Estimate()[0]; math.Abs(est-10) > 0.5 {
		t.Fatalf("phase-1 estimate = %v, want ~10", est)
	}
	// Phase 2: the phenomenon drifts to 20. With decay 0.5 the estimate
	// must follow within a few rounds.
	for round := 0; round < 6; round++ {
		for u := 0; u < 4; u++ {
			if err := o.Observe("u"+string(rune('a'+u)), 0, 20+rng.NormFloat64()*0.2); err != nil {
				t.Fatal(err)
			}
		}
		o.Tick()
	}
	if est := o.Estimate()[0]; math.Abs(est-20) > 0.5 {
		t.Errorf("post-drift estimate = %v, want ~20", est)
	}
	if o.Round() != 11 {
		t.Errorf("round = %d, want 11", o.Round())
	}
	if o.NumAccounts() != 4 {
		t.Errorf("accounts = %d, want 4", o.NumAccounts())
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := NewOnline(0, OnlineConfig{}); err == nil {
		t.Error("zero tasks should error")
	}
	if _, err := NewOnline(1, OnlineConfig{Decay: 1.5}); err == nil {
		t.Error("decay > 1 should error")
	}
	o, err := NewOnline(2, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("", 0, 1); err == nil {
		t.Error("empty account should error")
	}
	if err := o.Observe("a", 7, 1); err == nil {
		t.Error("out-of-range task should error")
	}
	// Unobserved tasks stay NaN.
	if err := o.Observe("a", 0, 5); err != nil {
		t.Fatal(err)
	}
	est := o.Estimate()
	if est[0] != 5 || !math.IsNaN(est[1]) {
		t.Errorf("estimate = %v", est)
	}
}

func TestOnlineSupersedesReports(t *testing.T) {
	o, err := NewOnline(1, OnlineConfig{Decay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("a", 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("a", 0, 7); err != nil {
		t.Fatal(err)
	}
	if est := o.Estimate()[0]; est != 7 {
		t.Errorf("estimate = %v, want 7 (newest report wins)", est)
	}
}

func TestOnlineFullDecayDropsHistory(t *testing.T) {
	o, err := NewOnline(1, OnlineConfig{Decay: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe("old", 0, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		o.Tick()
	}
	if err := o.Observe("new", 0, 5); err != nil {
		t.Fatal(err)
	}
	if est := o.Estimate()[0]; math.Abs(est-5) > 0.01 {
		t.Errorf("estimate = %v, want 5 (history fully decayed)", est)
	}
}
