package truth

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sybiltd/internal/mcs"
)

func obsAt(task int, value float64) mcs.Observation {
	return mcs.Observation{Task: task, Value: value, Time: time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)}
}

func TestMeanBaseline(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 10), obsAt(1, 4)}})
	ds.AddAccount(mcs.Account{ID: "b", Observations: []mcs.Observation{obsAt(0, 20)}})
	res, err := Mean{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 15 || res.Truths[1] != 4 {
		t.Errorf("truths = %v, want [15 4]", res.Truths)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("meta = %+v", res)
	}
	if (Mean{}).Name() != "Mean" {
		t.Error("name")
	}
}

func TestMedianBaseline(t *testing.T) {
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 1)}})
	ds.AddAccount(mcs.Account{ID: "b", Observations: []mcs.Observation{obsAt(0, 2)}})
	ds.AddAccount(mcs.Account{ID: "c", Observations: []mcs.Observation{obsAt(0, 100)}})
	res, err := Median{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 2 {
		t.Errorf("median truth = %v, want 2", res.Truths[0])
	}
	if (Median{}).Name() != "Median" {
		t.Error("name")
	}
}

func TestEmptyTaskGivesNaN(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{obsAt(0, 5)}})
	for _, alg := range []Algorithm{Mean{}, Median{}, CRH{}} {
		res, err := alg.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !math.IsNaN(res.Truths[1]) {
			t.Errorf("%s: empty task truth = %v, want NaN", alg.Name(), res.Truths[1])
		}
		if math.IsNaN(res.Truths[0]) {
			t.Errorf("%s: non-empty task is NaN", alg.Name())
		}
	}
}

func TestNilAndInvalidDataset(t *testing.T) {
	for _, alg := range []Algorithm{Mean{}, Median{}, CRH{}} {
		if _, err := alg.Run(nil); err == nil {
			t.Errorf("%s: nil dataset should error", alg.Name())
		}
		bad := mcs.NewDataset(1)
		bad.AddAccount(mcs.Account{ID: ""})
		if _, err := alg.Run(bad); err == nil {
			t.Errorf("%s: invalid dataset should error", alg.Name())
		}
	}
}

func TestCRHDownweightsUnreliableUser(t *testing.T) {
	// Three reliable users agreeing and one wildly off across many tasks:
	// CRH must assign the outlier a lower weight and land near the
	// consensus.
	const m = 8
	ds := mcs.NewDataset(m)
	rng := rand.New(rand.NewSource(1))
	truthVals := make([]float64, m)
	for j := range truthVals {
		truthVals[j] = -80 + rng.Float64()*20
	}
	for u := 0; u < 3; u++ {
		obs := make([]mcs.Observation, m)
		for j := 0; j < m; j++ {
			obs[j] = obsAt(j, truthVals[j]+rng.NormFloat64()*0.5)
		}
		ds.AddAccount(mcs.Account{ID: string(rune('a' + u)), Observations: obs})
	}
	obs := make([]mcs.Observation, m)
	for j := 0; j < m; j++ {
		obs[j] = obsAt(j, truthVals[j]+25+rng.NormFloat64()*5)
	}
	ds.AddAccount(mcs.Account{ID: "outlier", Observations: obs})

	res, err := CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("CRH did not converge")
	}
	for u := 0; u < 3; u++ {
		if res.Weights[u] <= res.Weights[3] {
			t.Errorf("reliable user %d weight %v should exceed outlier %v", u, res.Weights[u], res.Weights[3])
		}
	}
	for j := 0; j < m; j++ {
		if math.Abs(res.Truths[j]-truthVals[j]) > 3 {
			t.Errorf("task %d truth %v too far from %v", j, res.Truths[j], truthVals[j])
		}
	}
}

func TestCRHReproducesTableI(t *testing.T) {
	// Without the attacker, CRH should land near the paper's "TD without
	// the Sybil attack" row: -84.23, -82.01, -75.22, -72.72.
	res, err := CRH{}.Run(PaperExampleHonest())
	if err != nil {
		t.Fatal(err)
	}
	wantHonest := []float64{-84.23, -82.01, -75.22, -72.72}
	for j, want := range wantHonest {
		// Tolerance generous: exact values depend on CRH variant details;
		// the shape requirement is "close to user 1 and 3's readings".
		if math.Abs(res.Truths[j]-want) > 4 {
			t.Errorf("honest T%d = %.2f, paper %.2f", j+1, res.Truths[j], want)
		}
	}

	// With the attacker, T1, T3, T4 must swing sharply toward -50 (paper:
	// -56.06, -53.29, -55.35) while T2 stays put.
	resAtk, err := CRH{}.Run(PaperExampleWithSybil())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2, 3} {
		if resAtk.Truths[j] > -50-1e-9 && resAtk.Truths[j] < -65 {
			t.Errorf("attacked T%d = %.2f, want pulled toward -50", j+1, resAtk.Truths[j])
		}
		pull := math.Abs(resAtk.Truths[j] - res.Truths[j])
		if pull < 10 {
			t.Errorf("attack moved T%d by only %.2f dBm; paper shows ~20+", j+1, pull)
		}
	}
	if d := math.Abs(resAtk.Truths[1] - res.Truths[1]); d > 6 {
		t.Errorf("T2 moved by %.2f, want small (attacker did not target T2)", d)
	}
}

func TestCRHSingleAccount(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "solo", Observations: []mcs.Observation{obsAt(0, 7), obsAt(1, -3)}})
	res, err := CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 7 || res.Truths[1] != -3 {
		t.Errorf("single-account truths = %v", res.Truths)
	}
}

func TestCRHAccountWithNoObservations(t *testing.T) {
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "active", Observations: []mcs.Observation{obsAt(0, 5)}})
	ds.AddAccount(mcs.Account{ID: "idle"})
	res, err := CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[1] != 0 {
		t.Errorf("idle account weight = %v, want 0", res.Weights[1])
	}
	if res.Truths[0] != 5 {
		t.Errorf("truth = %v, want 5", res.Truths[0])
	}
}

func TestCRHRespectsMaxIterations(t *testing.T) {
	ds := PaperExampleWithSybil()
	res, err := CRH{Config: CRHConfig{MaxIterations: 1, Tolerance: 1e-15}}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestCRHWeightsNonNegative(t *testing.T) {
	res, err := CRH{}.Run(PaperExampleWithSybil())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range res.Weights {
		if w < 0 || math.IsNaN(w) {
			t.Errorf("weight[%d] = %v", i, w)
		}
	}
}

func TestCRHDeterministic(t *testing.T) {
	a, err := CRH{}.Run(PaperExampleWithSybil())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CRH{}.Run(PaperExampleWithSybil())
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Truths {
		if a.Truths[j] != b.Truths[j] {
			t.Fatal("CRH is not deterministic")
		}
	}
}

func TestPaperSybilAccountIndices(t *testing.T) {
	ds := PaperExampleWithSybil()
	for _, i := range PaperSybilAccountIndices() {
		id := ds.Accounts[i].ID
		if id != "4'" && id != "4''" && id != "4'''" {
			t.Errorf("index %d is %q, not a Sybil account", i, id)
		}
	}
}

func BenchmarkCRHPaperExample(b *testing.B) {
	ds := PaperExampleWithSybil()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CRH{}).Run(ds); err != nil {
			b.Fatal(err)
		}
	}
}
