// Package simulate builds complete synthetic crowdsensing campaigns: a
// radio environment with ground truths, a POI layout, legitimate users
// walking traces and submitting noisy measurements, and Sybil attackers
// executing Attack-I / Attack-II with configurable strategies. It stands
// in for the paper's real-world experiment (§V-A: 10 volunteers, 11
// smartphones, 10 Wi-Fi POIs, 54 walking traces) and produces everything
// the evaluation needs: the dataset, the per-task ground truth, and the
// true account-to-user and account-to-device labels.
package simulate

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sybiltd/internal/attack"
	"sybiltd/internal/fingerprint"
	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/mobility"
	"sybiltd/internal/radio"
)

// Config parameterizes a synthetic campaign. The zero value plus a Seed
// reproduces the paper's setup: 10 tasks, 8 legitimate users, one Attack-I
// attacker and one Attack-II attacker with 5 accounts each.
type Config struct {
	// NumTasks is the number of POIs/tasks; zero means 10.
	NumTasks int
	// NumLegit is the number of legitimate users (one account, one device
	// each); zero means 8.
	NumLegit int
	// LegitActiveness is every legitimate account's activeness α (Eq. 9);
	// zero means 0.5.
	LegitActiveness float64
	// Attackers describes the Sybil attackers; nil means the paper's pair
	// (one Attack-I, one Attack-II, 5 accounts each, fabricating -50 dBm)
	// with SybilActiveness.
	Attackers []attack.Profile
	// SybilActiveness sets the default attackers' activeness when
	// Attackers is nil; zero means 0.5.
	SybilActiveness float64
	// Seed drives all randomness; campaigns with equal configs are
	// identical.
	Seed int64
	// CampaignStart anchors all timestamps; zero means 2019-03-01 09:00 UTC.
	CampaignStart time.Time
	// StartSpread is the window over which users begin their walks; zero
	// means 90 minutes. Larger spreads make legitimate trajectories more
	// distinguishable.
	StartSpread time.Duration
	// AccountSwitchDelay is the time a Sybil attacker needs to switch
	// accounts and resubmit; zero means 45 s.
	AccountSwitchDelay time.Duration
	// LegitNoiseMin/Max bound the per-user measurement noise sigma (dB);
	// zero means [0.5, 2.5].
	LegitNoiseMin, LegitNoiseMax float64
	// TremorActivenessScale couples fingerprint-capture tremor to the
	// owner's activeness: capture tremor amplitude is multiplied by
	// (1 + scale*activeness). The paper observes AG-FP's ARI decreasing in
	// activeness because busier participants produce noisier sign-in
	// captures (and more same-model collisions); this knob reproduces that
	// coupling. Zero means 2; negative disables (exact factor 1).
	TremorActivenessScale float64
	// Radio overrides the radio environment; zero value uses defaults.
	Radio radio.Config
}

func (c Config) withDefaults() Config {
	if c.NumTasks == 0 {
		c.NumTasks = 10
	}
	if c.NumLegit == 0 {
		c.NumLegit = 8
	}
	if c.LegitActiveness == 0 {
		c.LegitActiveness = 0.5
	}
	if c.SybilActiveness == 0 {
		c.SybilActiveness = 0.5
	}
	if c.Attackers == nil {
		c.Attackers = []attack.Profile{
			{Kind: attack.AttackI, NumAccounts: 5, Activeness: c.SybilActiveness},
			{Kind: attack.AttackII, NumAccounts: 5, NumDevices: 2, Activeness: c.SybilActiveness},
		}
	}
	if c.CampaignStart.IsZero() {
		c.CampaignStart = time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	}
	if c.StartSpread == 0 {
		c.StartSpread = 90 * time.Minute
	}
	if c.AccountSwitchDelay == 0 {
		c.AccountSwitchDelay = 45 * time.Second
	}
	if c.LegitNoiseMin == 0 {
		c.LegitNoiseMin = 0.5
	}
	if c.LegitNoiseMax == 0 {
		c.LegitNoiseMax = 2.5
	}
	if c.TremorActivenessScale == 0 {
		c.TremorActivenessScale = 2
	}
	if c.TremorActivenessScale < 0 {
		c.TremorActivenessScale = 0
	}
	return c
}

// Scenario is a fully built campaign.
type Scenario struct {
	// Dataset is the platform's view: accounts, observations, fingerprints.
	Dataset *mcs.Dataset
	// GroundTruth[j] is the true value of task j.
	GroundTruth []float64
	// OwnerLabels[i] is the true user behind account i (legit users first,
	// then one label per attacker). This is the reference partition for
	// ARI.
	OwnerLabels []int
	// DeviceLabels[i] indexes Devices for account i's device.
	DeviceLabels []int
	// Devices is the physical inventory in use.
	Devices []*mems.Device
	// POIs are the task locations.
	POIs []mobility.Point
	// Env is the radio environment.
	Env *radio.Environment
	// NumLegit is the number of legitimate users.
	NumLegit int
	// SybilAccounts lists the dataset indices of all Sybil accounts.
	SybilAccounts []int
}

// Build constructs the campaign described by cfg.
func Build(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	if cfg.NumTasks < 2 {
		return nil, errors.New("simulate: need at least 2 tasks")
	}
	if cfg.NumLegit < 1 {
		return nil, errors.New("simulate: need at least 1 legitimate user")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	env, err := radio.NewEnvironment(cfg.Radio, rng)
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	pois := mobility.LayoutPOIs(cfg.NumTasks, 400, 300, 30, rng)

	ds := mcs.NewDataset(cfg.NumTasks)
	truthVals := make([]float64, cfg.NumTasks)
	for j := range ds.Tasks {
		ds.Tasks[j].Name = fmt.Sprintf("POI-%d", j+1)
		ds.Tasks[j].X = pois[j].X
		ds.Tasks[j].Y = pois[j].Y
		truthVals[j] = env.TruthAt(pois[j].X, pois[j].Y)
	}

	// Device pool: the paper's Table IV inventory, extended by cycling
	// models when a scenario needs more hardware.
	devices := buildDevicePool(cfg, rng)

	sc := &Scenario{
		Dataset:     ds,
		GroundTruth: truthVals,
		Devices:     devices,
		POIs:        pois,
		Env:         env,
		NumLegit:    cfg.NumLegit,
	}

	deviceCursor := 0
	nextDevice := func() *mems.Device {
		d := devices[deviceCursor%len(devices)]
		deviceCursor++
		return d
	}
	deviceIndex := func(d *mems.Device) int {
		for i, dev := range devices {
			if dev == d {
				return i
			}
		}
		return -1
	}

	captureFingerprint := func(d *mems.Device, activeness float64) []float64 {
		spec := mems.DefaultCaptureSpec()
		spec.TremorAmp = 0.015 * (1 + cfg.TremorActivenessScale*activeness)
		rec := d.Capture(spec, rng)
		return fingerprint.Extract(rec)
	}

	// Legitimate users.
	for u := 0; u < cfg.NumLegit; u++ {
		dev := nextDevice()
		noise := cfg.LegitNoiseMin + rng.Float64()*(cfg.LegitNoiseMax-cfg.LegitNoiseMin)
		subset := mobility.ChooseSubset(cfg.NumTasks, cfg.LegitActiveness, 2, rng)
		origin := mobility.Point{X: rng.Float64() * 400, Y: rng.Float64() * 300}
		route := mobility.NearestNeighborRoute(pois, subset, origin)
		spec := mobility.WalkSpec{
			Start:     cfg.CampaignStart.Add(time.Duration(rng.Float64() * float64(cfg.StartSpread))),
			SpeedMPS:  1.3 + rng.NormFloat64()*0.15,
			Origin:    origin,
			HasOrigin: true,
		}
		trace, err := mobility.Walk(pois, route, spec, rng)
		if err != nil {
			return nil, fmt.Errorf("simulate: user %d walk: %w", u, err)
		}
		obs := make([]mcs.Observation, 0, len(trace.Visits))
		for _, v := range trace.Visits {
			obs = append(obs, mcs.Observation{
				Task:  v.POI,
				Value: env.Observe(pois[v.POI].X, pois[v.POI].Y, noise, rng),
				Time:  v.Arrive,
			})
		}
		idx := ds.AddAccount(mcs.Account{
			ID:           fmt.Sprintf("user%02d", u+1),
			Observations: obs,
			Fingerprint:  captureFingerprint(dev, cfg.LegitActiveness),
		})
		sc.OwnerLabels = append(sc.OwnerLabels, u)
		sc.DeviceLabels = append(sc.DeviceLabels, deviceIndex(dev))
		_ = idx
	}

	// Sybil attackers.
	for aIdx, profRaw := range cfg.Attackers {
		prof := profRaw.Normalize()
		attDevices := make([]*mems.Device, prof.NumDevices)
		for d := range attDevices {
			attDevices[d] = nextDevice()
		}
		subset := mobility.ChooseSubset(cfg.NumTasks, prof.Activeness, 2, rng)
		origin := mobility.Point{X: rng.Float64() * 400, Y: rng.Float64() * 300}
		route := mobility.NearestNeighborRoute(pois, subset, origin)
		spec := mobility.WalkSpec{
			Start:     cfg.CampaignStart.Add(time.Duration(rng.Float64() * float64(cfg.StartSpread))),
			SpeedMPS:  1.3 + rng.NormFloat64()*0.15,
			Origin:    origin,
			HasOrigin: true,
		}
		trace, err := mobility.Walk(pois, route, spec, rng)
		if err != nil {
			return nil, fmt.Errorf("simulate: attacker %d walk: %w", aIdx, err)
		}
		// The attacker physically measures each POI once; Duplicate-style
		// strategies resubmit this measurement.
		measured := make(map[int]float64, len(trace.Visits))
		attNoise := cfg.LegitNoiseMin + rng.Float64()*(cfg.LegitNoiseMax-cfg.LegitNoiseMin)
		for _, v := range trace.Visits {
			measured[v.POI] = env.Observe(pois[v.POI].X, pois[v.POI].Y, attNoise, rng)
		}

		ownerLabel := cfg.NumLegit + aIdx
		for s := 0; s < prof.NumAccounts; s++ {
			dev := attDevices[s%len(attDevices)]
			obs := make([]mcs.Observation, 0, len(trace.Visits))
			for _, v := range trace.Visits {
				lag := time.Duration(s)*cfg.AccountSwitchDelay +
					time.Duration(rng.Float64()*5*float64(time.Second))
				obs = append(obs, mcs.Observation{
					Task:  v.POI,
					Value: prof.Strategy.Fabricate(truthVals[v.POI], measured[v.POI], s, rng),
					Time:  v.Arrive.Add(lag),
				})
			}
			idx := ds.AddAccount(mcs.Account{
				ID:           fmt.Sprintf("sybil%02d-%d", aIdx+1, s+1),
				Observations: obs,
				Fingerprint:  captureFingerprint(dev, prof.Activeness),
			})
			sc.OwnerLabels = append(sc.OwnerLabels, ownerLabel)
			sc.DeviceLabels = append(sc.DeviceLabels, deviceIndex(dev))
			sc.SybilAccounts = append(sc.SybilAccounts, idx)
		}
	}

	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("simulate: generated invalid dataset: %w", err)
	}
	return sc, nil
}

// buildDevicePool manufactures enough devices for the scenario, starting
// from the paper's Table IV inventory and cycling models beyond it.
func buildDevicePool(cfg Config, rng *rand.Rand) []*mems.Device {
	needed := cfg.NumLegit
	for _, p := range cfg.Attackers {
		needed += p.Normalize().NumDevices
	}
	devices := mems.BuildInventory(mems.PaperInventory(), rng)
	models := []mems.Model{
		mems.ModelIPhoneSE, mems.ModelIPhone6, mems.ModelIPhone6S,
		mems.ModelIPhone7, mems.ModelIPhoneX, mems.ModelNexus6P,
		mems.ModelLGG5, mems.ModelNexus5,
	}
	serial := 100
	for len(devices) < needed {
		m := models[len(devices)%len(models)]
		devices = append(devices, mems.NewDevice(m, serial, rng))
		serial++
	}
	return devices
}

// TrueGrouping returns the reference partition (accounts grouped by true
// owner) as label slice — the ARI ground truth of Fig. 6.
func (s *Scenario) TrueGrouping() []int {
	labels := make([]int, len(s.OwnerLabels))
	copy(labels, s.OwnerLabels)
	return labels
}

// DeviceGrouping returns the partition of accounts by physical device —
// the best any fingerprint-only method could achieve.
func (s *Scenario) DeviceGrouping() []int {
	labels := make([]int, len(s.DeviceLabels))
	copy(labels, s.DeviceLabels)
	return labels
}
