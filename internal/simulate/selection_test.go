package simulate

import (
	"math/rand"
	"testing"
)

func TestApplySelectionSuppressesSybilSiblings(t *testing.T) {
	sc, err := Build(Config{Seed: 5, SybilActiveness: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApplySelection(sc, SelectionConfig{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSybil != 10 {
		t.Fatalf("total sybil = %d, want 10", res.TotalSybil)
	}
	// Each attacker's accounts share one task set, so at most one account
	// per attacker can carry positive marginal value — at most 2 selected.
	if res.SelectedSybil > 2 {
		t.Errorf("selected sybil accounts = %d, want <= 2", res.SelectedSybil)
	}
	if res.SelectedSybil >= res.TotalSybil {
		t.Error("selection removed no Sybil accounts")
	}
	// The filtered scenario is structurally sound.
	if err := res.Scenario.Dataset.Validate(); err != nil {
		t.Fatalf("filtered dataset invalid: %v", err)
	}
	if got := res.Scenario.Dataset.NumAccounts(); got != res.Scenario.NumLegit+len(res.Scenario.SybilAccounts) {
		t.Errorf("account bookkeeping: %d accounts vs %d legit + %d sybil",
			got, res.Scenario.NumLegit, len(res.Scenario.SybilAccounts))
	}
	if len(res.Scenario.OwnerLabels) != res.Scenario.Dataset.NumAccounts() {
		t.Error("owner labels out of sync")
	}
	// Original scenario untouched.
	if sc.Dataset.NumAccounts() != 18 {
		t.Error("ApplySelection mutated the input scenario")
	}
}

func TestApplySelectionKeepsHonestCoverage(t *testing.T) {
	sc, err := Build(Config{Seed: 7, LegitActiveness: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApplySelection(sc, SelectionConfig{}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario.NumLegit < 2 {
		t.Errorf("selection kept only %d honest users", res.Scenario.NumLegit)
	}
	// Every task someone reported on in the filtered set is in range.
	for _, a := range res.Scenario.Dataset.Accounts {
		for _, o := range a.Observations {
			if o.Task < 0 || o.Task >= res.Scenario.Dataset.NumTasks() {
				t.Fatalf("bad task %d after filtering", o.Task)
			}
		}
	}
}

func TestApplySelectionDeterministicGivenRng(t *testing.T) {
	sc, err := Build(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ApplySelection(sc, SelectionConfig{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApplySelection(sc, SelectionConfig{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenario.Dataset.NumAccounts() != b.Scenario.Dataset.NumAccounts() {
		t.Error("selection not deterministic")
	}
}
