package simulate

import (
	"math"
	"strings"
	"testing"

	"sybiltd/internal/attack"
	"sybiltd/internal/fingerprint"
)

func TestBuildDefaultScenario(t *testing.T) {
	sc, err := Build(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := sc.Dataset
	// 8 legit + 2 attackers x 5 accounts = 18 accounts.
	if ds.NumAccounts() != 18 {
		t.Fatalf("accounts = %d, want 18", ds.NumAccounts())
	}
	if ds.NumTasks() != 10 {
		t.Fatalf("tasks = %d, want 10", ds.NumTasks())
	}
	if len(sc.GroundTruth) != 10 {
		t.Fatalf("ground truths = %d", len(sc.GroundTruth))
	}
	if len(sc.SybilAccounts) != 10 {
		t.Fatalf("sybil accounts = %d, want 10", len(sc.SybilAccounts))
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	// Owner labels: 8 distinct legit + 2 attacker labels.
	if len(sc.OwnerLabels) != 18 {
		t.Fatalf("owner labels = %d", len(sc.OwnerLabels))
	}
	distinct := map[int]bool{}
	for _, l := range sc.OwnerLabels {
		distinct[l] = true
	}
	if len(distinct) != 10 {
		t.Errorf("distinct owners = %d, want 10", len(distinct))
	}
	// Sybil accounts share owner labels in blocks of 5.
	for i := 1; i < 5; i++ {
		if sc.OwnerLabels[8+i] != sc.OwnerLabels[8] {
			t.Error("first attacker's accounts should share an owner label")
		}
		if sc.OwnerLabels[13+i] != sc.OwnerLabels[13] {
			t.Error("second attacker's accounts should share an owner label")
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.GroundTruth {
		if a.GroundTruth[j] != b.GroundTruth[j] {
			t.Fatal("ground truths differ across identical builds")
		}
	}
	for i := range a.Dataset.Accounts {
		ao := a.Dataset.Accounts[i].Observations
		bo := b.Dataset.Accounts[i].Observations
		if len(ao) != len(bo) {
			t.Fatal("observation counts differ")
		}
		for k := range ao {
			if ao[k] != bo[k] {
				t.Fatal("observations differ across identical builds")
			}
		}
	}
	c, err := Build(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.GroundTruth[0] == a.GroundTruth[0] && c.GroundTruth[1] == a.GroundTruth[1] {
		t.Error("different seeds should differ")
	}
}

func TestActivenessRespected(t *testing.T) {
	sc, err := Build(Config{Seed: 2, LegitActiveness: 0.3, SybilActiveness: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	ds := sc.Dataset
	for i := 0; i < 8; i++ {
		// ceil(0.3*10)=3 tasks.
		if got := len(ds.Accounts[i].Observations); got != 3 {
			t.Errorf("legit account %d has %d observations, want 3", i, got)
		}
	}
	for _, i := range sc.SybilAccounts {
		if got := len(ds.Accounts[i].Observations); got != 8 {
			t.Errorf("sybil account %d has %d observations, want 8", i, got)
		}
	}
}

func TestAttackIAccountsShareDevice(t *testing.T) {
	sc, err := Build(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// First attacker (accounts 8-12) is Attack-I: one device for all.
	dev := sc.DeviceLabels[8]
	for i := 9; i < 13; i++ {
		if sc.DeviceLabels[i] != dev {
			t.Errorf("Attack-I account %d on device %d, want %d", i, sc.DeviceLabels[i], dev)
		}
	}
	// Second attacker (accounts 13-17) is Attack-II: exactly two devices.
	devs := map[int]bool{}
	for i := 13; i < 18; i++ {
		devs[sc.DeviceLabels[i]] = true
	}
	if len(devs) != 2 {
		t.Errorf("Attack-II devices = %d, want 2", len(devs))
	}
	// Legit users each have their own device.
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		if seen[sc.DeviceLabels[i]] {
			t.Error("legit users should not share devices")
		}
		seen[sc.DeviceLabels[i]] = true
	}
}

func TestFingerprintsPresentAndSized(t *testing.T) {
	sc, err := Build(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range sc.Dataset.Accounts {
		if len(a.Fingerprint) != fingerprint.VectorLen {
			t.Fatalf("account %d fingerprint len = %d, want %d", i, len(a.Fingerprint), fingerprint.VectorLen)
		}
	}
}

func TestSybilValuesFabricated(t *testing.T) {
	sc, err := Build(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Default strategy fabricates -50 dBm exactly.
	for _, i := range sc.SybilAccounts {
		for _, o := range sc.Dataset.Accounts[i].Observations {
			if o.Value != -50 {
				t.Fatalf("sybil observation value = %v, want -50", o.Value)
			}
		}
	}
	// Legit observations track ground truth within noise.
	for i := 0; i < sc.NumLegit; i++ {
		for _, o := range sc.Dataset.Accounts[i].Observations {
			if math.Abs(o.Value-sc.GroundTruth[o.Task]) > 12 {
				t.Errorf("legit observation %v too far from truth %v", o.Value, sc.GroundTruth[o.Task])
			}
		}
	}
}

func TestSybilTimestampsLagged(t *testing.T) {
	sc, err := Build(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ds := sc.Dataset
	// Accounts of one attacker visit the same tasks in the same order with
	// increasing lags.
	first := ds.Accounts[8].SortedObservations()
	second := ds.Accounts[9].SortedObservations()
	if len(first) != len(second) {
		t.Fatal("attacker accounts should share the task set")
	}
	for k := range first {
		if first[k].Task != second[k].Task {
			t.Fatal("attacker accounts should share the task order")
		}
		if !second[k].Time.After(first[k].Time.Add(-6 * 1e9)) { // allow jitter overlap
			t.Errorf("account lag wrong: %v vs %v", second[k].Time, first[k].Time)
		}
	}
}

func TestCustomAttackers(t *testing.T) {
	sc, err := Build(Config{
		Seed:     7,
		NumLegit: 3,
		Attackers: []attack.Profile{
			{Kind: attack.AttackI, NumAccounts: 2, Strategy: attack.Duplicate{}, Activeness: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Dataset.NumAccounts() != 5 {
		t.Fatalf("accounts = %d, want 5", sc.Dataset.NumAccounts())
	}
	// Duplicate strategy: account 0 of the attacker resubmits its real
	// measurement, which should be near ground truth, not -50.
	sybil := sc.SybilAccounts[0]
	for _, o := range sc.Dataset.Accounts[sybil].Observations {
		if math.Abs(o.Value-sc.GroundTruth[o.Task]) > 12 {
			t.Errorf("duplicate-strategy value %v far from truth %v", o.Value, sc.GroundTruth[o.Task])
		}
	}
}

func TestNoAttackers(t *testing.T) {
	sc, err := Build(Config{Seed: 8, Attackers: []attack.Profile{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SybilAccounts) != 0 {
		t.Errorf("sybil accounts = %v, want none", sc.SybilAccounts)
	}
	if sc.Dataset.NumAccounts() != 8 {
		t.Errorf("accounts = %d, want 8", sc.Dataset.NumAccounts())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Seed: 9, NumTasks: 1}); err == nil {
		t.Error("1 task should error")
	}
	if _, err := Build(Config{Seed: 9, NumLegit: -1}); err == nil {
		t.Error("negative legit count should error")
	}
}

func TestAccountIDsUnique(t *testing.T) {
	sc, err := Build(Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range sc.Dataset.Accounts {
		if seen[a.ID] {
			t.Fatalf("duplicate ID %q", a.ID)
		}
		seen[a.ID] = true
	}
	if !strings.HasPrefix(sc.Dataset.Accounts[8].ID, "sybil") {
		t.Errorf("account 8 ID = %q, want sybil prefix", sc.Dataset.Accounts[8].ID)
	}
}

func TestGroupingLabelHelpers(t *testing.T) {
	sc, err := Build(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tg := sc.TrueGrouping()
	dg := sc.DeviceGrouping()
	if len(tg) != 18 || len(dg) != 18 {
		t.Fatal("label lengths wrong")
	}
	// Mutating the copies must not affect the scenario.
	tg[0] = 999
	if sc.OwnerLabels[0] == 999 {
		t.Error("TrueGrouping should copy")
	}
}

func TestLargeCampaignScales(t *testing.T) {
	if testing.Short() {
		t.Skip("large campaign skipped in -short mode")
	}
	// A city-scale campaign: 200 honest users, 40 tasks, 6 attackers.
	var attackers []attack.Profile
	for i := 0; i < 6; i++ {
		kind := attack.AttackI
		if i%2 == 1 {
			kind = attack.AttackII
		}
		attackers = append(attackers, attack.Profile{Kind: kind, NumAccounts: 5, Activeness: 0.6})
	}
	sc, err := Build(Config{
		Seed:      77,
		NumTasks:  40,
		NumLegit:  200,
		Attackers: attackers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Dataset.NumAccounts() != 230 {
		t.Fatalf("accounts = %d, want 230", sc.Dataset.NumAccounts())
	}
	if err := sc.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	// Devices were extended beyond the Table IV inventory.
	if len(sc.Devices) < 200 {
		t.Errorf("devices = %d, want >= 200", len(sc.Devices))
	}
	// Every account's fingerprint is present and the scenario stays
	// internally consistent at scale.
	for i, a := range sc.Dataset.Accounts {
		if len(a.Fingerprint) == 0 {
			t.Fatalf("account %d missing fingerprint", i)
		}
	}
}
