package simulate

import (
	"fmt"
	"math/rand"

	"sybiltd/internal/incentive"
	"sybiltd/internal/mcs"
)

// SelectionConfig parameterizes pre-aggregation user selection via the
// incentive auction (the paper's Remarks: incentive mechanisms suppress
// redundant Sybil accounts because siblings add no marginal coverage).
type SelectionConfig struct {
	// TaskValue is the platform's value per covered task; zero means 10.
	TaskValue float64
	// BaseCost and PerTaskCost shape honest users' bids:
	// bid = BaseCost + PerTaskCost·|tasks| · (1 ± 20%). Zeros mean 1 and 2.
	BaseCost    float64
	PerTaskCost float64
	// SybilDiscount scales Sybil accounts' bids (an attacker eager to be
	// selected underbids); zero means 0.7.
	SybilDiscount float64
	// DepthValues, when non-empty, makes the auction redundancy-aware
	// (see incentive.Auction.DepthValues): the k-th coverer of a task is
	// worth DepthValues[k-1]. Empty keeps the plain MSensing coverage
	// auction.
	DepthValues []float64
}

func (c SelectionConfig) withDefaults() SelectionConfig {
	if c.TaskValue == 0 {
		c.TaskValue = 10
	}
	if c.BaseCost == 0 {
		c.BaseCost = 1
	}
	if c.PerTaskCost == 0 {
		c.PerTaskCost = 2
	}
	if c.SybilDiscount == 0 {
		c.SybilDiscount = 0.7
	}
	return c
}

// SelectionResult reports what the auction did to a scenario.
type SelectionResult struct {
	// Scenario is the filtered campaign containing only selected accounts.
	Scenario *Scenario
	// Outcome is the raw auction outcome over the original accounts.
	Outcome incentive.Outcome
	// SelectedSybil / TotalSybil count Sybil accounts before and after.
	SelectedSybil int
	TotalSybil    int
}

// ApplySelection runs the incentive auction over a built scenario's
// accounts and returns a filtered scenario containing only the selected
// ones. rng perturbs the bids; the original scenario is not modified.
func ApplySelection(sc *Scenario, cfg SelectionConfig, rng *rand.Rand) (SelectionResult, error) {
	cfg = cfg.withDefaults()
	sybil := make(map[int]bool, len(sc.SybilAccounts))
	for _, i := range sc.SybilAccounts {
		sybil[i] = true
	}

	offers := make([]incentive.Offer, sc.Dataset.NumAccounts())
	for i := range sc.Dataset.Accounts {
		a := &sc.Dataset.Accounts[i]
		var tasks []int
		for t := range a.TaskSet() {
			tasks = append(tasks, t)
		}
		bid := (cfg.BaseCost + cfg.PerTaskCost*float64(len(tasks))) * (0.8 + rng.Float64()*0.4)
		if sybil[i] {
			bid *= cfg.SybilDiscount
		}
		offers[i] = incentive.Offer{User: a.ID, Tasks: tasks, Bid: bid}
	}
	auction := incentive.Auction{
		TaskValue:   cfg.TaskValue,
		NumTasks:    sc.Dataset.NumTasks(),
		DepthValues: cfg.DepthValues,
	}
	out, err := auction.Run(offers)
	if err != nil {
		return SelectionResult{}, fmt.Errorf("simulate: selection auction: %w", err)
	}

	selected := make(map[int]bool, len(out.Winners))
	for _, w := range out.Winners {
		selected[w] = true
	}

	filtered := &Scenario{
		Dataset:     &mcs.Dataset{Tasks: append([]mcs.Task(nil), sc.Dataset.Tasks...)},
		GroundTruth: append([]float64(nil), sc.GroundTruth...),
		Devices:     sc.Devices,
		POIs:        sc.POIs,
		Env:         sc.Env,
		NumLegit:    0,
	}
	res := SelectionResult{Outcome: out, TotalSybil: len(sc.SybilAccounts)}
	for i := range sc.Dataset.Accounts {
		if !selected[i] {
			continue
		}
		idx := filtered.Dataset.AddAccount(cloneAccount(&sc.Dataset.Accounts[i]))
		filtered.OwnerLabels = append(filtered.OwnerLabels, sc.OwnerLabels[i])
		filtered.DeviceLabels = append(filtered.DeviceLabels, sc.DeviceLabels[i])
		if sybil[i] {
			filtered.SybilAccounts = append(filtered.SybilAccounts, idx)
			res.SelectedSybil++
		} else {
			filtered.NumLegit++
		}
	}
	res.Scenario = filtered
	return res, nil
}

func cloneAccount(a *mcs.Account) mcs.Account {
	out := mcs.Account{ID: a.ID}
	out.Observations = append([]mcs.Observation(nil), a.Observations...)
	out.Fingerprint = append([]float64(nil), a.Fingerprint...)
	return out
}
