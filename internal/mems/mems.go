// Package mems simulates MEMS motion sensors (accelerometer and gyroscope)
// with per-device manufacturing imperfections, standing in for the physical
// smartphones of the paper's experiment (Table IV).
//
// The fingerprinting attack of Das et al. (NDSS 2016), which the paper's
// AG-FP method builds on, relies on two physical facts that this simulator
// reproduces as explicit parameters:
//
//  1. Each sensor unit has stable gain and offset errors caused by
//     electrode-gap imperfections introduced at manufacturing time, so the
//     same device always produces the same systematic distortion.
//  2. Units of the same model come off the same production line, so their
//     imperfections are drawn from a tighter distribution than units of
//     different models — which is exactly why the paper observes that
//     "smartphones of the same model are usually grouped together".
//
// A Device is created from a Model via NewDevice; Capture produces the
// stationary handheld recording (gravity plus physiological hand tremor
// plus thermal noise, all distorted by the unit's imperfections) that the
// platform records for T seconds when an account signs in.
package mems

import (
	"fmt"
	"math"
	"math/rand"
)

// Gravity is the standard gravitational acceleration in m/s^2 seen by a
// stationary accelerometer.
const Gravity = 9.80665

// Model describes a smartphone model: the center and spread of the
// manufacturing-imperfection distribution its units are drawn from, plus
// the noise characteristics of its sensor chips.
type Model struct {
	// Name is the marketing name, e.g. "iPhone 6S".
	Name string
	// OS is the operating-system family, e.g. "iOS" or "Android".
	OS string

	// AccelGainCenter is the model-typical multiplicative gain error of the
	// accelerometer (1.0 = perfect). AccelGainSpread is the unit-to-unit
	// standard deviation around that center.
	AccelGainCenter float64
	AccelGainSpread float64
	// AccelOffsetCenter/Spread describe the additive bias (m/s^2) per axis.
	AccelOffsetCenter float64
	AccelOffsetSpread float64
	// AccelNoise is the model-typical standard deviation of the white
	// measurement noise (m/s^2) of the accelerometer chip.
	AccelNoise float64
	// AccelNoiseSpreadFrac is the unit-to-unit fractional spread of the
	// noise floor: a unit's actual noise sigma is drawn as
	// AccelNoise * (1 + N(0, spread)). Chip noise floors genuinely differ
	// per unit (they depend on the same electrode geometry that causes
	// gain/offset errors), and this is what makes the variance- and
	// spectrum-derived Table II features device-discriminative.
	AccelNoiseSpreadFrac float64

	// GyroGainCenter/Spread and GyroBiasCenter/Spread describe the
	// gyroscope's multiplicative and additive (rad/s) errors.
	GyroGainCenter float64
	GyroGainSpread float64
	GyroBiasCenter float64
	GyroBiasSpread float64
	// GyroNoise is the model-typical white-noise standard deviation (rad/s)
	// of the gyroscope chip.
	GyroNoise float64
	// GyroNoiseSpreadFrac is the unit-to-unit fractional spread of the
	// gyroscope noise floor (see AccelNoiseSpreadFrac).
	GyroNoiseSpreadFrac float64

	// AccelFilterRho is the model-typical first-order autocorrelation of
	// the accelerometer's noise, produced by the chip's analog low-pass /
	// anti-alias filtering. It shapes the noise spectrum, which is what the
	// spectral Table II features (centroid, rolloff, brightness, ...) pick
	// up. 0 = white noise; values toward 1 tilt energy to low frequencies.
	AccelFilterRho float64
	// AccelFilterRhoSpread is the unit-to-unit spread of AccelFilterRho.
	AccelFilterRhoSpread float64
	// GyroFilterRho / GyroFilterRhoSpread: same for the gyroscope.
	GyroFilterRho       float64
	GyroFilterRhoSpread float64
}

// axisError is the realized imperfection of one sensor axis of one unit.
type axisError struct {
	gain   float64
	offset float64
}

// Device is a single physical unit of a Model with its manufacturing
// imperfections fixed at construction time. A Device is immutable after
// NewDevice; captures from the same Device therefore share the same
// systematic distortion, which is what makes fingerprinting possible.
type Device struct {
	model  Model
	serial int

	accel [3]axisError
	gyro  [3]axisError
	// Per-unit realized noise floors and noise-filter coefficients.
	accelNoise float64
	gyroNoise  float64
	accelRho   float64
	gyroRho    float64
}

// NewDevice manufactures unit serial of model. The unit's per-axis gains
// and offsets are drawn deterministically from the model's imperfection
// distribution using rng, so rebuilding the same inventory from the same
// seed yields identical hardware.
func NewDevice(model Model, serial int, rng *rand.Rand) *Device {
	d := &Device{model: model, serial: serial}
	for axis := 0; axis < 3; axis++ {
		d.accel[axis] = axisError{
			gain:   model.AccelGainCenter + rng.NormFloat64()*model.AccelGainSpread,
			offset: model.AccelOffsetCenter + rng.NormFloat64()*model.AccelOffsetSpread,
		}
		d.gyro[axis] = axisError{
			gain:   model.GyroGainCenter + rng.NormFloat64()*model.GyroGainSpread,
			offset: model.GyroBiasCenter + rng.NormFloat64()*model.GyroBiasSpread,
		}
	}
	d.accelNoise = model.AccelNoise * (1 + rng.NormFloat64()*model.AccelNoiseSpreadFrac)
	if d.accelNoise < model.AccelNoise*0.25 {
		d.accelNoise = model.AccelNoise * 0.25
	}
	d.gyroNoise = model.GyroNoise * (1 + rng.NormFloat64()*model.GyroNoiseSpreadFrac)
	if d.gyroNoise < model.GyroNoise*0.25 {
		d.gyroNoise = model.GyroNoise * 0.25
	}
	d.accelRho = clampRho(model.AccelFilterRho + rng.NormFloat64()*model.AccelFilterRhoSpread)
	d.gyroRho = clampRho(model.GyroFilterRho + rng.NormFloat64()*model.GyroFilterRhoSpread)
	return d
}

// clampRho keeps an AR(1) coefficient stable and non-negative.
func clampRho(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho > 0.95 {
		return 0.95
	}
	return rho
}

// Model returns the device's model description.
func (d *Device) Model() Model { return d.model }

// ID returns a human-readable identifier such as "iPhone 6S#1".
func (d *Device) ID() string { return fmt.Sprintf("%s#%d", d.model.Name, d.serial) }

// Recording is a raw stationary capture from a device: three accelerometer
// axes and three gyroscope axes sampled at SampleRate Hz.
type Recording struct {
	SampleRate float64
	AccelX     []float64
	AccelY     []float64
	AccelZ     []float64
	GyroX      []float64
	GyroY      []float64
	GyroZ      []float64
}

// Len returns the number of samples per stream.
func (r Recording) Len() int { return len(r.AccelX) }

// CaptureSpec configures a stationary handheld capture.
type CaptureSpec struct {
	// Duration is the capture length in seconds (the paper uses 6 s).
	Duration float64
	// SampleRate is the sampling frequency in Hz (browser sensor APIs
	// typically deliver 50-100 Hz; we default to 100).
	SampleRate float64
	// TremorFreq is the dominant physiological hand-tremor frequency in Hz
	// (human postural tremor is 8-12 Hz). Zero selects the default 10 Hz.
	TremorFreq float64
	// TremorAmp is the tremor acceleration amplitude in m/s^2.
	// Zero selects a small default.
	TremorAmp float64
}

// withDefaults fills zero fields with sensible defaults.
func (s CaptureSpec) withDefaults() CaptureSpec {
	if s.Duration == 0 {
		s.Duration = 6
	}
	if s.SampleRate == 0 {
		s.SampleRate = 100
	}
	if s.TremorFreq == 0 {
		s.TremorFreq = 10
	}
	if s.TremorAmp == 0 {
		s.TremorAmp = 0.015
	}
	return s
}

// DefaultCaptureSpec returns the capture used throughout the experiments:
// 6 seconds at 100 Hz, matching the paper's sign-in procedure ("hold the
// smartphones in hand for 6 seconds").
func DefaultCaptureSpec() CaptureSpec {
	return CaptureSpec{}.withDefaults()
}

// Capture simulates holding the device stationary in hand and recording
// both motion sensors. rng drives the stochastic part (tremor phase, hand
// orientation, thermal noise); the device's systematic imperfections are
// applied on top. Each call represents one sign-in capture, so repeated
// captures from the same device share gains/offsets but differ in noise.
func (d *Device) Capture(spec CaptureSpec, rng *rand.Rand) Recording {
	spec = spec.withDefaults()
	n := int(spec.Duration * spec.SampleRate)
	if n < 1 {
		n = 1
	}
	rec := Recording{
		SampleRate: spec.SampleRate,
		AccelX:     make([]float64, n),
		AccelY:     make([]float64, n),
		AccelZ:     make([]float64, n),
		GyroX:      make([]float64, n),
		GyroY:      make([]float64, n),
		GyroZ:      make([]float64, n),
	}

	// Random but fixed hand orientation for this capture: gravity is
	// distributed across the three axes.
	theta := rng.Float64() * math.Pi / 6 // tilt from vertical, up to 30 deg
	phi := rng.Float64() * 2 * math.Pi
	gx := Gravity * math.Sin(theta) * math.Cos(phi)
	gy := Gravity * math.Sin(theta) * math.Sin(phi)
	gz := Gravity * math.Cos(theta)

	// Tremor: a dominant oscillation with a weaker second harmonic and a
	// random phase per axis. Holding a phone still, the tremor appears in
	// both linear acceleration and angular velocity.
	tremorPhase := [3]float64{rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi}
	dt := 1 / spec.SampleRate
	omega := 2 * math.Pi * spec.TremorFreq

	// AR(1) colored measurement noise with the unit's filter coefficient;
	// innovations are scaled so the stationary variance equals the unit's
	// noise floor squared.
	var accelState, gyroState [3]float64
	accelInno := d.accelNoise * math.Sqrt(1-d.accelRho*d.accelRho)
	gyroInno := d.gyroNoise * math.Sqrt(1-d.gyroRho*d.gyroRho)

	for i := 0; i < n; i++ {
		t := float64(i) * dt
		tremor := func(axis int) float64 {
			base := math.Sin(omega*t + tremorPhase[axis])
			harm := 0.3 * math.Sin(2*omega*t+2*tremorPhase[axis])
			return spec.TremorAmp * (base + harm)
		}
		trueAccel := [3]float64{gx + tremor(0), gy + tremor(1), gz + tremor(2)}
		// Angular tremor is the derivative of a small rocking motion; model
		// it as a cosine at the tremor frequency whose amplitude tracks the
		// linear tremor (a shakier hand also rotates more).
		gyroAmp := 0.25 * spec.TremorAmp
		trueGyro := [3]float64{
			gyroAmp * math.Cos(omega*t+tremorPhase[0]),
			gyroAmp * math.Cos(omega*t+tremorPhase[1]),
			0.75 * gyroAmp * math.Cos(omega*t+tremorPhase[2]),
		}
		a := [3]*[]float64{&rec.AccelX, &rec.AccelY, &rec.AccelZ}
		g := [3]*[]float64{&rec.GyroX, &rec.GyroY, &rec.GyroZ}
		for axis := 0; axis < 3; axis++ {
			ae := d.accel[axis]
			ge := d.gyro[axis]
			accelState[axis] = d.accelRho*accelState[axis] + rng.NormFloat64()*accelInno
			gyroState[axis] = d.gyroRho*gyroState[axis] + rng.NormFloat64()*gyroInno
			(*a[axis])[i] = ae.gain*trueAccel[axis] + ae.offset + accelState[axis]
			(*g[axis])[i] = ge.gain*trueGyro[axis] + ge.offset + gyroState[axis]
		}
	}
	return rec
}
