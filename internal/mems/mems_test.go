package mems

import (
	"math"
	"math/rand"
	"testing"

	"sybiltd/internal/signal"
)

func TestNewDeviceDeterministic(t *testing.T) {
	a := NewDevice(ModelIPhone6S, 1, rand.New(rand.NewSource(9)))
	b := NewDevice(ModelIPhone6S, 1, rand.New(rand.NewSource(9)))
	if *a != *b {
		t.Error("same seed should manufacture identical devices")
	}
	c := NewDevice(ModelIPhone6S, 1, rand.New(rand.NewSource(10)))
	if *a == *c {
		t.Error("different seeds should manufacture different devices")
	}
}

func TestDeviceID(t *testing.T) {
	d := NewDevice(ModelNexus5, 2, rand.New(rand.NewSource(1)))
	if got, want := d.ID(), "Nexus 5#2"; got != want {
		t.Errorf("ID = %q, want %q", got, want)
	}
	if d.Model().OS != "Android" {
		t.Errorf("Model().OS = %q, want Android", d.Model().OS)
	}
}

func TestCaptureShape(t *testing.T) {
	d := NewDevice(ModelIPhone7, 1, rand.New(rand.NewSource(2)))
	rec := d.Capture(CaptureSpec{Duration: 6, SampleRate: 100}, rand.New(rand.NewSource(3)))
	if rec.Len() != 600 {
		t.Fatalf("Len = %d, want 600", rec.Len())
	}
	for name, s := range map[string][]float64{
		"AccelX": rec.AccelX, "AccelY": rec.AccelY, "AccelZ": rec.AccelZ,
		"GyroX": rec.GyroX, "GyroY": rec.GyroY, "GyroZ": rec.GyroZ,
	} {
		if len(s) != 600 {
			t.Errorf("%s len = %d, want 600", name, len(s))
		}
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s[%d] = %v", name, i, v)
			}
		}
	}
	if rec.SampleRate != 100 {
		t.Errorf("SampleRate = %v, want 100", rec.SampleRate)
	}
}

func TestCaptureDefaults(t *testing.T) {
	d := NewDevice(ModelIPhoneX, 1, rand.New(rand.NewSource(4)))
	rec := d.Capture(CaptureSpec{}, rand.New(rand.NewSource(5)))
	if rec.Len() != 600 { // 6 s * 100 Hz defaults
		t.Errorf("default capture Len = %d, want 600", rec.Len())
	}
	spec := DefaultCaptureSpec()
	if spec.Duration != 6 || spec.SampleRate != 100 {
		t.Errorf("DefaultCaptureSpec = %+v", spec)
	}
}

func TestCaptureMeasuresGravity(t *testing.T) {
	d := NewDevice(ModelIPhone6, 1, rand.New(rand.NewSource(6)))
	rec := d.Capture(DefaultCaptureSpec(), rand.New(rand.NewSource(7)))
	mag := signal.Magnitude3(rec.AccelX, rec.AccelY, rec.AccelZ)
	mu := signal.Mean(mag)
	if math.Abs(mu-Gravity) > 0.5 {
		t.Errorf("mean |a| = %v, want ~%v", mu, Gravity)
	}
	// Gyro of a stationary device stays near its bias: small magnitude.
	gmag := signal.Magnitude3(rec.GyroX, rec.GyroY, rec.GyroZ)
	if gm := signal.Mean(gmag); gm > 0.3 {
		t.Errorf("mean |w| = %v, want < 0.3 rad/s for stationary device", gm)
	}
}

func TestSameDeviceStableAcrossCaptures(t *testing.T) {
	// The systematic part (mean of each stream) must be far more stable
	// across captures of one device than across two different devices of
	// different models.
	rng := rand.New(rand.NewSource(8))
	d1 := NewDevice(ModelNexus6P, 1, rng)
	d2 := NewDevice(ModelLGG5, 1, rng)
	capRng := rand.New(rand.NewSource(99))
	biasOf := func(d *Device) float64 {
		rec := d.Capture(DefaultCaptureSpec(), capRng)
		return signal.Mean(rec.GyroX) + signal.Mean(rec.GyroY) + signal.Mean(rec.GyroZ)
	}
	a1, a2 := biasOf(d1), biasOf(d1)
	b1 := biasOf(d2)
	within := math.Abs(a1 - a2)
	between := math.Abs(a1 - b1)
	if within >= between {
		t.Errorf("within-device bias drift %v should be < between-device %v", within, between)
	}
}

func TestPaperInventory(t *testing.T) {
	inv := PaperInventory()
	var total int
	for _, e := range inv {
		total += e.Quantity
	}
	if total != 11 {
		t.Errorf("inventory total = %d, want 11 (Table IV)", total)
	}
	devices := BuildInventory(inv, rand.New(rand.NewSource(11)))
	if len(devices) != 11 {
		t.Fatalf("BuildInventory produced %d devices, want 11", len(devices))
	}
	// Two iPhone 6S and three Nexus 6P units.
	counts := map[string]int{}
	for _, d := range devices {
		counts[d.Model().Name]++
	}
	if counts["iPhone 6S"] != 2 {
		t.Errorf("iPhone 6S count = %d, want 2", counts["iPhone 6S"])
	}
	if counts["Nexus 6P"] != 3 {
		t.Errorf("Nexus 6P count = %d, want 3", counts["Nexus 6P"])
	}
	// Unique IDs.
	seen := map[string]bool{}
	for _, d := range devices {
		if seen[d.ID()] {
			t.Errorf("duplicate device ID %q", d.ID())
		}
		seen[d.ID()] = true
	}
}

func TestCaptureMinimumOneSample(t *testing.T) {
	d := NewDevice(ModelIPhoneSE, 1, rand.New(rand.NewSource(12)))
	rec := d.Capture(CaptureSpec{Duration: 0.001, SampleRate: 100}, rand.New(rand.NewSource(13)))
	if rec.Len() < 1 {
		t.Errorf("capture should contain at least one sample, got %d", rec.Len())
	}
}
