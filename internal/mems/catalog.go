package mems

import "math/rand"

// The model parameters below are synthetic but chosen so that (a) units of
// the same model sit close together in fingerprint-feature space and (b)
// different models are separable — the two properties the paper observes
// in Figs. 2 and 8. Gain errors are a fraction of a percent and offsets a
// few hundredths of m/s^2 (rad/s for gyro bias), in line with the MEMS
// datasheet tolerances discussed by Das et al.

// Models used in the paper's experiment (Table IV).
var (
	ModelIPhoneSE = Model{
		Name: "iPhone SE", OS: "iOS",
		AccelFilterRho: 0.15, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.55, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 1.0031, AccelGainSpread: 0.0004,
		AccelOffsetCenter: 0.052, AccelOffsetSpread: 0.006,
		AccelNoise: 0.012, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 1.0018, GyroGainSpread: 0.0003,
		GyroBiasCenter: 0.011, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0026, GyroNoiseSpreadFrac: 0.05,
	}
	ModelIPhone6 = Model{
		Name: "iPhone 6", OS: "iOS",
		AccelFilterRho: 0.35, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.25, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 0.9952, AccelGainSpread: 0.0004,
		AccelOffsetCenter: -0.038, AccelOffsetSpread: 0.006,
		AccelNoise: 0.016, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 0.9978, GyroGainSpread: 0.0003,
		GyroBiasCenter: -0.009, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0031, GyroNoiseSpreadFrac: 0.05,
	}
	ModelIPhone6S = Model{
		Name: "iPhone 6S", OS: "iOS",
		AccelFilterRho: 0.25, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.4, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 1.0014, AccelGainSpread: 0.0004,
		AccelOffsetCenter: 0.021, AccelOffsetSpread: 0.006,
		AccelNoise: 0.013, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 1.0042, GyroGainSpread: 0.0003,
		GyroBiasCenter: 0.006, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0024, GyroNoiseSpreadFrac: 0.05,
	}
	ModelIPhone7 = Model{
		Name: "iPhone 7", OS: "iOS",
		AccelFilterRho: 0.1, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.65, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 0.9985, AccelGainSpread: 0.0004,
		AccelOffsetCenter: -0.064, AccelOffsetSpread: 0.006,
		AccelNoise: 0.011, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 0.9991, GyroGainSpread: 0.0003,
		GyroBiasCenter: -0.014, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0022, GyroNoiseSpreadFrac: 0.05,
	}
	ModelIPhoneX = Model{
		Name: "iPhone X", OS: "iOS",
		AccelFilterRho: 0.45, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.15, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 1.0058, AccelGainSpread: 0.0004,
		AccelOffsetCenter: 0.083, AccelOffsetSpread: 0.006,
		AccelNoise: 0.010, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 1.0009, GyroGainSpread: 0.0003,
		GyroBiasCenter: 0.018, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0019, GyroNoiseSpreadFrac: 0.05,
	}
	ModelNexus6P = Model{
		Name: "Nexus 6P", OS: "Android",
		AccelFilterRho: 0.6, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.5, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 0.9921, AccelGainSpread: 0.0004,
		AccelOffsetCenter: 0.107, AccelOffsetSpread: 0.006,
		AccelNoise: 0.021, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 1.0071, GyroGainSpread: 0.0003,
		GyroBiasCenter: -0.021, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0038, GyroNoiseSpreadFrac: 0.05,
	}
	ModelLGG5 = Model{
		Name: "LG G5", OS: "Android",
		AccelFilterRho: 0.05, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.3, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 1.0089, AccelGainSpread: 0.0004,
		AccelOffsetCenter: -0.095, AccelOffsetSpread: 0.006,
		AccelNoise: 0.024, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 0.9942, GyroGainSpread: 0.0003,
		GyroBiasCenter: 0.024, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0041, GyroNoiseSpreadFrac: 0.05,
	}
	ModelNexus5 = Model{
		Name: "Nexus 5", OS: "Android",
		AccelFilterRho: 0.5, AccelFilterRhoSpread: 0.02,
		GyroFilterRho: 0.7, GyroFilterRhoSpread: 0.02,
		AccelGainCenter: 0.9896, AccelGainSpread: 0.0004,
		AccelOffsetCenter: 0.031, AccelOffsetSpread: 0.006,
		AccelNoise: 0.028, AccelNoiseSpreadFrac: 0.05,
		GyroGainCenter: 0.9913, GyroGainSpread: 0.0003,
		GyroBiasCenter: -0.027, GyroBiasSpread: 0.0015,
		GyroNoise: 0.0046, GyroNoiseSpreadFrac: 0.05,
	}
)

// InventoryEntry is one row of the Table IV device inventory.
type InventoryEntry struct {
	Model    Model
	Quantity int
}

// PaperInventory returns the 11-smartphone inventory of Table IV:
// 1 iPhone SE, 1 iPhone 6, 2 iPhone 6S, 1 iPhone 7, 1 iPhone X,
// 3 Nexus 6P, 1 LG G5, 1 Nexus 5.
func PaperInventory() []InventoryEntry {
	return []InventoryEntry{
		{Model: ModelIPhoneSE, Quantity: 1},
		{Model: ModelIPhone6, Quantity: 1},
		{Model: ModelIPhone6S, Quantity: 2},
		{Model: ModelIPhone7, Quantity: 1},
		{Model: ModelIPhoneX, Quantity: 1},
		{Model: ModelNexus6P, Quantity: 3},
		{Model: ModelLGG5, Quantity: 1},
		{Model: ModelNexus5, Quantity: 1},
	}
}

// BuildInventory manufactures one Device per unit of the inventory using
// rng for the per-unit imperfections. Devices are returned in inventory
// order with serial numbers starting at 1 within each model.
func BuildInventory(entries []InventoryEntry, rng *rand.Rand) []*Device {
	var devices []*Device
	for _, e := range entries {
		for serial := 1; serial <= e.Quantity; serial++ {
			devices = append(devices, NewDevice(e.Model, serial, rng))
		}
	}
	return devices
}
