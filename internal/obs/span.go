package obs

import "time"

// Observer receives stage and iteration callbacks from instrumented code.
// It is the library-user-facing half of the observability layer: a caller
// that sets FrameworkConfig.Observer sees every pipeline stage and every
// convergence step of the truth loop as it happens, without polling a
// registry. Implementations must be safe for concurrent use when the
// instrumented code runs concurrently.
type Observer interface {
	// SpanStart fires when a named stage begins.
	SpanStart(name string)
	// SpanEnd fires when the stage ends, with its wall-clock duration.
	SpanEnd(name string, d time.Duration)
	// Iteration fires once per iteration of a named estimation loop with
	// the largest truth update of that iteration (the convergence delta).
	Iteration(loop string, iter int, delta float64)
}

// Tracer emits spans into a Registry (as "<Prefix><name>_seconds" timers)
// and/or an Observer. Either field may be nil; the zero Tracer is a valid
// no-op whose spans cost nothing beyond a nil check.
type Tracer struct {
	// Registry receives a timer observation per completed span; nil skips
	// registry recording.
	Registry *Registry
	// Observer receives SpanStart/SpanEnd/Iteration callbacks; nil skips.
	Observer Observer
	// Prefix is prepended to span names for registry timer names
	// (e.g. "framework.").
	Prefix string
}

// enabled reports whether spans need timestamps at all.
func (t Tracer) enabled() bool { return t.Registry != nil || t.Observer != nil }

// Span starts a named stage. End the returned span to record it.
func (t Tracer) Span(name string) Span {
	s := Span{tracer: t, name: name}
	if t.enabled() {
		s.begin = time.Now()
		if t.Observer != nil {
			t.Observer.SpanStart(name)
		}
	}
	return s
}

// Iteration forwards one loop iteration to the observer, if any.
func (t Tracer) Iteration(loop string, iter int, delta float64) {
	if t.Observer != nil {
		t.Observer.Iteration(loop, iter, delta)
	}
}

// Span is one in-flight stage started by Tracer.Span.
type Span struct {
	tracer Tracer
	name   string
	begin  time.Time
}

// End records the span: a "<Prefix><name>_seconds" timer observation in
// the tracer's registry and a SpanEnd callback on its observer. End on a
// span from a disabled tracer is a no-op. It returns the duration.
func (s Span) End() time.Duration {
	if !s.tracer.enabled() {
		return 0
	}
	d := time.Since(s.begin)
	if s.tracer.Registry != nil {
		s.tracer.Registry.Timer(s.tracer.Prefix + s.name + "_seconds").Observe(d)
	}
	if s.tracer.Observer != nil {
		s.tracer.Observer.SpanEnd(s.name, d)
	}
	return d
}
