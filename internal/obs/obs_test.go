package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter not idempotent by name")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Sum != 5050 {
		t.Errorf("sum = %v, want 5050", s.Sum)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("quantiles = %v/%v/%v, want 50/95/99", s.P50, s.P95, s.P99)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
}

func TestHistogramEmptyAndNaN(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("NaN observed: %+v", s)
	}
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty quantiles = %+v, want zeros (JSON-safe)", s)
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("Quantile on empty histogram should be NaN")
	}
	// The snapshot of an empty histogram must survive JSON encoding (idle
	// routes pre-create latency timers).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal empty snapshot: %v", err)
	}
}

func TestHistogramBoundedWindow(t *testing.T) {
	var h Histogram
	// Overflow the ring: quantiles should reflect only the newest samples,
	// while count/sum/min/max stay exact over everything.
	for i := 0; i < HistogramCapacity; i++ {
		h.Observe(1)
	}
	for i := 0; i < HistogramCapacity; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if s.Count != 2*HistogramCapacity {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 1000 {
		t.Errorf("p50 = %v, want 1000 (window holds only recent samples)", s.P50)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Gauge("shared.gauge").Add(-1)
				r.Histogram("shared.hist").Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("shared.gauge").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

type recordingObserver struct {
	mu         sync.Mutex
	starts     []string
	ends       []string
	iterations []int
}

func (o *recordingObserver) SpanStart(name string) {
	o.mu.Lock()
	o.starts = append(o.starts, name)
	o.mu.Unlock()
}

func (o *recordingObserver) SpanEnd(name string, d time.Duration) {
	o.mu.Lock()
	o.ends = append(o.ends, name)
	o.mu.Unlock()
}

func (o *recordingObserver) Iteration(loop string, iter int, delta float64) {
	o.mu.Lock()
	o.iterations = append(o.iterations, iter)
	o.mu.Unlock()
}

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	var o recordingObserver
	tr := Tracer{Registry: r, Observer: &o, Prefix: "stage."}

	sp := tr.Span("work")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("span duration = %v", d)
	}
	tr.Iteration("loop", 1, 0.5)

	if len(o.starts) != 1 || o.starts[0] != "work" {
		t.Errorf("starts = %v", o.starts)
	}
	if len(o.ends) != 1 || o.ends[0] != "work" {
		t.Errorf("ends = %v", o.ends)
	}
	if len(o.iterations) != 1 {
		t.Errorf("iterations = %v", o.iterations)
	}
	if n := r.Timer("stage.work_seconds").Histogram().Count(); n != 1 {
		t.Errorf("timer count = %d, want 1", n)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	r := NewRegistry()
	var o recordingObserver
	tr := Tracer{Registry: r, Observer: &o}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("s").End()
			}
		}()
	}
	wg.Wait()
	if n := r.Timer("s_seconds").Histogram().Count(); n != 800 {
		t.Errorf("timer count = %d, want 800", n)
	}
}

func TestZeroTracerIsNoOp(t *testing.T) {
	var tr Tracer
	sp := tr.Span("anything")
	if d := sp.End(); d != 0 {
		t.Errorf("no-op span duration = %v", d)
	}
	tr.Iteration("loop", 1, 0) // must not panic
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(3)
	r.Gauge("g").Set(-4)
	r.Timer("t_seconds").Observe(2 * time.Second)
	s := r.Snapshot()
	if s.Counters["a.b"] != 3 || s.Gauges["g"] != -4 {
		t.Errorf("snapshot = %+v", s)
	}
	if h := s.Histograms["t_seconds"]; h.Count != 1 || h.Sum != 2 {
		t.Errorf("timer snapshot = %+v", h)
	}
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.requests.get_v1_tasks").Add(2)
	r.Gauge("http.in_flight").Set(1)
	r.Histogram("framework.iterations").Observe(12)
	r.Timer("empty_seconds") // registered but never observed

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_requests_get_v1_tasks counter",
		"http_requests_get_v1_tasks 2",
		"# TYPE http_in_flight gauge",
		"http_in_flight 1",
		"# TYPE framework_iterations summary",
		`framework_iterations{quantile="0.5"} 12`,
		"framework_iterations_sum 12",
		"framework_iterations_count 1",
		"empty_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// An unobserved summary must not emit quantile samples.
	if strings.Contains(out, `empty_seconds{quantile`) {
		t.Errorf("empty summary emitted quantiles:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"http.requests":    "http_requests",
		"a-b c/d":          "a_b_c_d",
		"9lives":           "_9lives",
		"already_ok:total": "already_ok:total",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	name := "obs.test.default_shared"
	before := Default().Counter(name).Value()
	Default().Counter(name).Inc()
	if got := Default().Counter(name).Value(); got != before+1 {
		t.Errorf("default counter = %d, want %d", got, before+1)
	}
}
