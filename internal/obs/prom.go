package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with p50/p95/p99 quantile labels plus _sum and
// _count series. Metric names are sanitized to the Prometheus charset
// (dots and other separators become underscores). Output is sorted by
// name so scrapes are deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		if h.Count > 0 {
			for _, q := range [...]struct {
				label string
				value float64
			}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
				if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", pn, q.label, q.value); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus identifier
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
