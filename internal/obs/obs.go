// Package obs is the framework's dependency-free observability core:
// atomic counters and gauges, bounded histograms with quantile estimates,
// named timers, and a span-style stage tracer with an optional Observer
// callback. Every instrumented package records into a Registry — by
// default the process-wide one returned by Default() — and the platform
// HTTP layer exposes its contents as JSON (/v1/metrics) and
// Prometheus-style text (/metrics).
//
// The package deliberately uses only the standard library and keeps the
// hot-path cost to an atomic add (counters, gauges) or a short mutexed
// ring-buffer write (histograms), so instrumenting a loop that runs per
// aggregation — not per account pair — is free at the scale of the
// framework's O(n²) grouping work.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HistogramCapacity is the number of most-recent samples a Histogram
// retains for quantile estimation. Count, Sum, Min, and Max always cover
// every observation ever made; only the quantiles are computed over this
// sliding window, which bounds memory for long-running services.
const HistogramCapacity = 512

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only
// move forward).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight
// requests, busy workers).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records float64 observations. Count/Sum/Min/Max are exact
// over all observations; quantiles are estimated over the most recent
// HistogramCapacity samples. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	count  int64
	sum    float64
	min    float64
	max    float64
	ring   []float64
	next   int
	filled bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if h.ring == nil {
		h.ring = make([]float64, HistogramCapacity)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.ring[h.next] = v
	h.next++
	if h.next == len(h.ring) {
		h.next = 0
		h.filled = true
	}
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the p-quantile (0 <= p <= 1) over the retained window,
// or NaN when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Snapshot().quantile(p)
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`

	sorted []float64
}

// Snapshot copies the histogram state and computes p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	n := h.next
	if h.filled {
		n = len(h.ring)
	}
	if n > 0 {
		s.sorted = make([]float64, n)
		copy(s.sorted, h.ring[:n])
	}
	h.mu.Unlock()

	sort.Float64s(s.sorted)
	// Zero, not NaN, for the empty snapshot: NaN is not representable in
	// JSON and an idle route's latency histogram must not break /v1/metrics.
	if len(s.sorted) > 0 {
		s.P50 = s.quantile(0.50)
		s.P95 = s.quantile(0.95)
		s.P99 = s.quantile(0.99)
	}
	return s
}

// quantile reads the p-quantile from the sorted sample window using the
// nearest-rank method.
func (s HistogramSnapshot) quantile(p float64) float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 1 {
		return s.sorted[len(s.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(s.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.sorted[idx]
}

// Timer is a histogram view that records durations in seconds. By
// convention timer names end in "_seconds".
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Start begins a stopwatch; call its Stop to record the elapsed time.
func (t Timer) Start() Stopwatch { return Stopwatch{t: t, begin: time.Now()} }

// Histogram exposes the underlying histogram (for reading quantiles in
// tests and dashboards).
func (t Timer) Histogram() *Histogram { return t.h }

// Stopwatch is one in-flight timing started by Timer.Start.
type Stopwatch struct {
	t     Timer
	begin time.Time
}

// Stop records the elapsed duration and returns it.
func (s Stopwatch) Stop() time.Duration {
	d := time.Since(s.begin)
	s.t.Observe(d)
	return d
}

// Registry holds named metrics. Metric accessors create on first use, so
// instrumented code never registers up front; names are dot-separated
// ("http.post_v1_aggregate.latency_seconds") and sanitized to the
// Prometheus charset only on export. Safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that instrumented library
// code records into. The platform serves it at /metrics and /v1/metrics.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// Timer returns the named timer (a seconds histogram), creating it on
// first use.
func (r *Registry) Timer(name string) Timer {
	return Timer{h: r.Histogram(name)}
}

// Reset drops every metric. Intended for tests that need a clean slate on
// the default registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// Snapshot is a point-in-time copy of a Registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
