// Package parallel is the shared worker-pool substrate for the framework's
// embarrassingly parallel loops: independent experiment trials, k-means
// restarts and k-sweeps, and the O(n²) pairwise dissimilarity/affinity
// matrices of the account grouping methods.
//
// Every helper here preserves determinism by construction: callers write
// results into preassigned per-index slots and reduce them in index order,
// so the output is bit-identical regardless of GOMAXPROCS or goroutine
// scheduling. The helpers themselves never reorder, sum, or otherwise
// combine caller data.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"sybiltd/internal/obs"
)

// Pool telemetry: one counter/gauge/histogram update per ForEach or
// Pairwise call (plus two gauge moves per worker goroutine), never per
// item — the pools sit under per-pair DTW loops where per-item accounting
// would be measurable.
func observePool(kind string, items, workers int) {
	reg := obs.Default()
	reg.Counter("parallel." + kind + ".calls").Inc()
	reg.Counter("parallel." + kind + ".items").Add(int64(items))
	reg.Histogram("parallel." + kind + ".workers").Observe(float64(workers))
}

// busyWorkers tracks how many pool worker goroutines are currently
// running across all helpers — the live utilization gauge.
func busyWorkers() *obs.Gauge {
	return obs.Default().Gauge("parallel.workers_busy")
}

// ForEach runs fn(i) for i = 0..n-1 on up to GOMAXPROCS workers and returns
// the first error recorded. Once any invocation fails, no further indices
// are handed out; invocations already in flight run to completion. Results
// must be written into per-index slots by fn so that the caller can reduce
// them in index order, keeping floating-point reductions deterministic
// regardless of scheduling.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	observePool("foreach", n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	busy := busyWorkers()
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			busy.Add(1)
			defer busy.Add(-1)
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// no further indices are handed out (invocations already in flight run to
// completion) and the context's error is returned. fn errors still win
// over the context error when they were recorded first.
func ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := ForEach(n, func(i int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fn(i)
	})
	return err
}

// Pairwise invokes f(i, j, k) for every unordered pair 0 <= i < j < n,
// where k = PairIndex(n, i, j) is the pair's row-major rank in the strict
// upper triangle. The triangle is sharded across up to GOMAXPROCS workers
// in contiguous k-ranges, so each pair is visited exactly once; f typically
// writes its result into slot k of a preallocated packed matrix, which
// keeps the output bit-identical to the sequential double loop.
func Pairwise(n int, f func(i, j, k int)) {
	PairwiseWorkers(n, func() func(i, j, k int) { return f })
}

// PairwiseWorkers is Pairwise with per-worker state: setup runs once in
// each worker goroutine and returns the pair function applied to that
// worker's share of the triangle. Use it when f needs scratch buffers that
// are expensive to allocate per pair and unsafe to share across workers
// (e.g. a dtw.Calculator).
func PairwiseWorkers(n int, setup func() func(i, j, k int)) {
	total := n * (n - 1) / 2
	if total <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	observePool("pairwise", total, workers)
	if workers <= 1 {
		f := setup()
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				f(i, j, k)
				k++
			}
		}
		return
	}
	chunk := (total + workers - 1) / workers
	busy := busyWorkers()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			busy.Add(1)
			defer busy.Add(-1)
			f := setup()
			i, j := PairAt(n, lo)
			for k := lo; k < hi; k++ {
				f(i, j, k)
				j++
				if j == n {
					i++
					j = i + 1
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// PairwiseCtx is Pairwise with cooperative cancellation: workers stop
// picking up pairs shortly after ctx is done and the context's error is
// returned. Pairs already visited keep their written results, so a caller
// that sees a nil error has the complete, bit-identical matrix.
func PairwiseCtx(ctx context.Context, n int, f func(i, j, k int)) error {
	return PairwiseWorkersCtx(ctx, n, func() func(i, j, k int) { return f })
}

// PairwiseWorkersCtx is PairwiseWorkers with cooperative cancellation.
// Cancellation is observed between pairs (a single f invocation is never
// interrupted); the check is a shared atomic flag refreshed from ctx at a
// small stride, so the per-pair overhead stays negligible under the DTW
// inner loops.
func PairwiseWorkersCtx(ctx context.Context, n int, setup func() func(i, j, k int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var stopped atomic.Bool
	const stride = 16 // pairs between ctx.Err() refreshes per worker
	PairwiseWorkers(n, func() func(i, j, k int) {
		f := setup()
		sinceCheck := 0
		return func(i, j, k int) {
			if stopped.Load() {
				return
			}
			if sinceCheck++; sinceCheck >= stride {
				sinceCheck = 0
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
			}
			f(i, j, k)
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if stopped.Load() {
		return context.Canceled
	}
	return nil
}

// NumPairs returns the number of unordered pairs over n items, i.e. the
// length of a packed strict-upper-triangle matrix.
func NumPairs(n int) int {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

// PairIndex returns the row-major rank of the pair (i, j), i < j, in the
// strict upper triangle of an n×n matrix: (0,1), (0,2), ..., (n-2,n-1).
func PairIndex(n, i, j int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// PairAt inverts PairIndex: it returns the k-th pair in row-major order.
func PairAt(n, k int) (i, j int) {
	for rowLen := n - 1; k >= rowLen && rowLen > 0; rowLen-- {
		k -= rowLen
		i++
	}
	return i, i + 1 + k
}
