package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCtxCompletesWithoutCancellation(t *testing.T) {
	var sum atomic.Int64
	if err := ForEachCtx(context.Background(), 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
}

func TestForEachCtxStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 10_000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("cancellation did not stop the loop early")
	}
}

func TestForEachCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d items", ran.Load())
	}
}

func TestForEachCtxFnErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEachCtx(context.Background(), 50, func(i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the fn error", err)
	}
}

func TestPairwiseCtxCompleteMatrixOnNilError(t *testing.T) {
	const n = 40
	visited := make([]atomic.Int32, NumPairs(n))
	if err := PairwiseCtx(context.Background(), n, func(i, j, k int) {
		visited[k].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for k := range visited {
		if got := visited[k].Load(); got != 1 {
			t.Fatalf("pair %d visited %d times, want exactly 1", k, got)
		}
	}
}

func TestPairwiseCtxStopsOnCancel(t *testing.T) {
	// A large triangle with a slow pair function: cancellation mid-run
	// must stop the workers well before all pairs are visited, and the
	// call must return the context error rather than blocking.
	const n = 256 // 32640 pairs
	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- PairwiseCtx(ctx, n, func(i, j, k int) {
			visited.Add(1)
			time.Sleep(50 * time.Microsecond)
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PairwiseCtx did not return after cancellation — stranded workers")
	}
	if got := visited.Load(); got >= int64(NumPairs(n)) {
		t.Fatalf("all %d pairs visited despite cancellation", got)
	}
}

func TestPairwiseWorkersCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var visited atomic.Int64
	err := PairwiseWorkersCtx(ctx, 100, func() func(i, j, k int) {
		return func(i, j, k int) { visited.Add(1) }
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if visited.Load() != 0 {
		t.Fatalf("pre-cancelled context still visited %d pairs", visited.Load())
	}
}

func TestPairwiseCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	err := PairwiseCtx(ctx, 512, func(i, j, k int) {
		time.Sleep(20 * time.Microsecond)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
