package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withProcs runs fn under the given GOMAXPROCS setting and restores the
// previous value. Goroutines multiplex fine onto fewer cores, so the
// parallel paths are exercised even on single-CPU machines.
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, func() {
			const n = 50
			hits := make([]int32, n)
			err := ForEach(n, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Errorf("procs=%d: index %d ran %d times", procs, i, h)
				}
			}
		})
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, func() {
			err := ForEach(8, func(i int) error {
				if i == 3 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Errorf("procs=%d: error not propagated: %v", procs, err)
			}
		})
	}
	if err := ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero indices should be a no-op: %v", err)
	}
}

// TestForEachStopsDispatchAfterError asserts early termination: once an
// invocation fails, no further work is handed out, so the number of calls
// stays near the worker count instead of reaching n.
func TestForEachStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")

	// Sequential path: exactly one call past the failing index, i.e. the
	// failing call itself is the last.
	withProcs(t, 1, func() {
		var calls int32
		err := ForEach(1000, func(i int) error {
			atomic.AddInt32(&calls, 1)
			if i == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("error not propagated: %v", err)
		}
		if calls != 3 {
			t.Errorf("sequential calls = %d, want 3", calls)
		}
	})

	// Parallel path: the first dispatched index fails immediately while
	// every other invocation stalls, so by the time the stalled workers
	// finish their single in-flight item the failure flag is long set and
	// the call count stays bounded by a few multiples of the worker count.
	const procs = 4
	withProcs(t, procs, func() {
		const n = 10000
		var calls int32
		err := ForEach(n, func(i int) error {
			atomic.AddInt32(&calls, 1)
			if i == 0 {
				return boom
			}
			time.Sleep(10 * time.Millisecond)
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("error not propagated: %v", err)
		}
		if c := atomic.LoadInt32(&calls); c >= n/10 {
			t.Errorf("calls after error = %d, dispatch did not stop early (n=%d)", c, n)
		}
	})
}

func TestPairwiseCoversTriangleOnce(t *testing.T) {
	for _, procs := range []int{1, 4} {
		for _, n := range []int{0, 1, 2, 3, 7, 20} {
			withProcs(t, procs, func() {
				hits := make([]int32, NumPairs(n))
				Pairwise(n, func(i, j, k int) {
					if i < 0 || i >= j || j >= n {
						t.Errorf("bad pair (%d,%d)", i, j)
					}
					if want := PairIndex(n, i, j); k != want {
						t.Errorf("pair (%d,%d) got k=%d, want %d", i, j, k, want)
					}
					atomic.AddInt32(&hits[k], 1)
				})
				for k, h := range hits {
					if h != 1 {
						t.Errorf("procs=%d n=%d: pair %d visited %d times", procs, n, k, h)
					}
				}
			})
		}
	}
}

func TestPairwiseWorkersSetupPerWorker(t *testing.T) {
	withProcs(t, 4, func() {
		var setups int32
		var mu sync.Mutex
		seen := map[int]bool{}
		PairwiseWorkers(100, func() func(i, j, k int) {
			atomic.AddInt32(&setups, 1)
			return func(i, j, k int) {
				mu.Lock()
				seen[k] = true
				mu.Unlock()
			}
		})
		if s := atomic.LoadInt32(&setups); s < 1 || s > 4 {
			t.Errorf("setup ran %d times, want 1..4", s)
		}
		if len(seen) != NumPairs(100) {
			t.Errorf("visited %d pairs, want %d", len(seen), NumPairs(100))
		}
	})
}

func TestPairIndexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5, 11} {
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got := PairIndex(n, i, j); got != k {
					t.Fatalf("PairIndex(%d,%d,%d) = %d, want %d", n, i, j, got, k)
				}
				gi, gj := PairAt(n, k)
				if gi != i || gj != j {
					t.Fatalf("PairAt(%d,%d) = (%d,%d), want (%d,%d)", n, k, gi, gj, i, j)
				}
				k++
			}
		}
		if NumPairs(n) != k {
			t.Fatalf("NumPairs(%d) = %d, want %d", n, NumPairs(n), k)
		}
	}
}
