package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/truth"
)

// slowGrouper blocks until its context is cancelled — a stand-in for an
// O(n²) grouping pass that cannot finish inside the deadline.
type slowGrouper struct{}

func (slowGrouper) Name() string { return "AG-Slow" }
func (g slowGrouper) Group(ds *mcs.Dataset) (grouping.Grouping, error) {
	return g.GroupContext(context.Background(), ds)
}
func (slowGrouper) GroupContext(ctx context.Context, ds *mcs.Dataset) (grouping.Grouping, error) {
	<-ctx.Done()
	return grouping.Grouping{}, ctx.Err()
}

// failingGrouper errors immediately without touching the context.
type failingGrouper struct{}

func (failingGrouper) Name() string { return "AG-Fail" }
func (failingGrouper) Group(*mcs.Dataset) (grouping.Grouping, error) {
	return grouping.Grouping{}, errors.New("grouping exploded")
}

func TestGroupTimeoutDegradesToPerAccount(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	fw := Framework{
		Grouper: slowGrouper{},
		Config:  Config{GroupTimeout: 10 * time.Millisecond},
	}
	start := time.Now()
	res, g, err := fw.RunDetailedContext(context.Background(), ds)
	if err != nil {
		t.Fatalf("degradation must answer, not error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("GroupTimeout not enforced: took %v", elapsed)
	}
	if !res.Degraded || res.DegradedReason != "grouping_timeout" {
		t.Fatalf("Degraded=%v reason=%q, want degraded with grouping_timeout", res.Degraded, res.DegradedReason)
	}
	// The fallback partition is per-account: truth discovery still ran.
	if g.NumGroups() != ds.NumAccounts() {
		t.Fatalf("fallback groups = %d, want one per account (%d)", g.NumGroups(), ds.NumAccounts())
	}
	if len(res.Truths) != ds.NumTasks() {
		t.Fatalf("truths = %d, want %d", len(res.Truths), ds.NumTasks())
	}
	for j, v := range res.Truths {
		if v != v {
			t.Fatalf("task %d has no estimate despite data", j)
		}
	}
}

func TestCallerCancellationDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fw := Framework{Grouper: slowGrouper{}}
	res, err := fw.RunContext(ctx, truth.PaperExampleHonest())
	if err != nil {
		t.Fatalf("cancelled grouping must degrade, not error: %v", err)
	}
	if !res.Degraded || res.DegradedReason != "grouping_cancelled" {
		t.Fatalf("Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
}

func TestGroupingFailureDegradesOnlyWhenOptedIn(t *testing.T) {
	ds := truth.PaperExampleHonest()

	// Default: fail loud, exactly as before this feature existed.
	fw := Framework{Grouper: failingGrouper{}}
	if _, err := fw.RunContext(context.Background(), ds); err == nil {
		t.Fatal("grouping failure without opt-in must propagate")
	}

	// Opted in (the serving platform's posture): degrade instead.
	fw.Config.DegradeOnGroupingFailure = true
	res, err := fw.RunContext(context.Background(), ds)
	if err != nil {
		t.Fatalf("opted-in degradation must answer: %v", err)
	}
	if !res.Degraded || res.DegradedReason != "grouping_failed" {
		t.Fatalf("Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
}

func TestHealthyRunIsNotDegraded(t *testing.T) {
	fw := Framework{Grouper: grouping.AGTS{}}
	res, err := fw.RunContext(context.Background(), truth.PaperExampleWithSybil())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.DegradedReason != "" {
		t.Fatalf("healthy run flagged degraded: %+v", res)
	}
}

func TestDegradedResultMatchesSingletonFramework(t *testing.T) {
	// The degraded answer must be exactly what the framework produces with
	// an explicit per-account partition — not some third behavior.
	ds := truth.PaperExampleWithSybil()
	degraded, err := Framework{
		Grouper: slowGrouper{},
		Config:  Config{GroupTimeout: 5 * time.Millisecond},
	}.RunContext(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Framework{Grouper: singletonGrouper{n: ds.NumAccounts()}}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for j := range explicit.Truths {
		if degraded.Truths[j] != explicit.Truths[j] {
			t.Fatalf("task %d: degraded %v != singleton %v", j, degraded.Truths[j], explicit.Truths[j])
		}
	}
}

// singletonGrouper is the explicit per-account partition.
type singletonGrouper struct{ n int }

func (singletonGrouper) Name() string { return "AG-Singleton" }
func (g singletonGrouper) Group(*mcs.Dataset) (grouping.Grouping, error) {
	return grouping.Singletons(g.n), nil
}
