package core

import (
	"math"
	"testing"
	"time"

	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/truth"
)

// driftingCampaign builds a 1-task campaign whose truth moves from 10 to
// 40 across three hour-long phases, with an Attack-I Sybil burst (five
// accounts fabricating 100) in the middle phase only.
func driftingCampaign() *mcs.Dataset {
	ds := mcs.NewDataset(1)
	base := time.Date(2026, 7, 3, 8, 0, 0, 0, time.UTC)
	phaseTruths := []float64{10, 25, 40}
	for u := 0; u < 4; u++ {
		var obs []mcs.Observation
		for phase := 0; phase < 3; phase++ {
			obs = append(obs, mcs.Observation{
				Task:  0,
				Value: phaseTruths[phase] + float64(u)*0.1,
				Time:  base.Add(time.Duration(phase)*time.Hour + time.Duration(u)*10*time.Minute),
			})
		}
		// One observation per (account, task) is the batch rule; for the
		// windowed test we need repeated observations, so give each phase
		// its own account per user (distinct sessions).
		for phase, o := range obs {
			ds.AddAccount(mcs.Account{
				ID:           string(rune('a'+u)) + string(rune('0'+phase)),
				Observations: []mcs.Observation{o},
			})
		}
	}
	// Sybil burst in phase 1 (the middle hour): five accounts, value 100,
	// seconds apart, offset from the honest reporting slots so that
	// trajectory evidence can separate them.
	for s := 0; s < 5; s++ {
		ds.AddAccount(mcs.Account{
			ID: "syb" + string(rune('0'+s)),
			Observations: []mcs.Observation{{
				Task:  0,
				Value: 100,
				Time:  base.Add(time.Hour + 35*time.Minute + time.Duration(s*50)*time.Second),
			}},
		})
	}
	return ds
}

func TestWindowedValidation(t *testing.T) {
	if _, err := (Windowed{}).Run(mcs.NewDataset(1)); err == nil {
		t.Error("missing algorithm should error")
	}
	w := Windowed{Algorithm: truth.Mean{}}
	if _, err := w.Run(mcs.NewDataset(1)); err == nil {
		t.Error("missing window should error")
	}
	w.Window = time.Hour
	if _, err := w.Run(nil); err == nil {
		t.Error("nil dataset should error")
	}
	series, err := w.Run(mcs.NewDataset(1))
	if err != nil {
		t.Fatal(err)
	}
	if series != nil {
		t.Errorf("empty dataset series = %v", series)
	}
}

func TestWindowedTracksDrift(t *testing.T) {
	ds := driftingCampaign()
	w := Windowed{Algorithm: truth.Median{}, Window: time.Hour}
	series, err := w.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("series = %d windows, want >= 3", len(series))
	}
	// First window near 10, last near 40.
	if got := series[0].Truths[0]; math.Abs(got-10) > 1 {
		t.Errorf("first window = %v, want ~10", got)
	}
	last := series[len(series)-1]
	if got := last.Truths[0]; math.Abs(got-40) > 1 {
		t.Errorf("last window = %v, want ~40", got)
	}
}

func TestWindowedSybilBurstContained(t *testing.T) {
	// Plain mean in the middle window is captured by the burst; the
	// framework with AG-TR regroups the burst inside the window and stays
	// near the honest 25.
	ds := driftingCampaign()
	mid := func(alg truth.Algorithm) float64 {
		t.Helper()
		w := Windowed{Algorithm: alg, Window: time.Hour}
		series, err := w.Run(ds)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) < 2 {
			t.Fatal("too few windows")
		}
		return series[1].Truths[0]
	}
	naive := mid(truth.Mean{})
	// Within a single-task window the only trajectory evidence is the
	// timestamp, so the threshold must sit between the attacker's
	// account-switch gap (~1 min) and the honest inter-report gap
	// (>= 10 min): 0.05 h = 3 min.
	defended := mid(Framework{Grouper: grouping.AGTR{Phi: 0.05, TimeUnit: time.Hour}})
	if naive < 50 {
		t.Errorf("mean mid-window = %v, expected captured (> 50)", naive)
	}
	if math.Abs(defended-25) > 5 {
		t.Errorf("framework mid-window = %v, want ~25", defended)
	}
}

func TestWindowedStepAndAccountCounts(t *testing.T) {
	ds := driftingCampaign()
	w := Windowed{Algorithm: truth.Mean{}, Window: time.Hour, Step: 30 * time.Minute}
	series, err := w.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	overlapping := len(series)
	w.Step = 0 // tumbling
	tumbling, err := w.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if overlapping <= len(tumbling) {
		t.Errorf("half-step series (%d) should have more windows than tumbling (%d)", overlapping, len(tumbling))
	}
	for _, p := range series {
		if p.Accounts < 0 {
			t.Errorf("negative account count")
		}
		if !p.End.After(p.Start) {
			t.Errorf("window [%v, %v) malformed", p.Start, p.End)
		}
	}
	// The middle hour holds 4 honest session accounts + 5 sybil accounts.
	var sawBurst bool
	for _, p := range series {
		if p.Accounts == 9 {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Error("no window saw the 9-account burst")
	}
}
