package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/grouping"
	"sybiltd/internal/obs"
	"sybiltd/internal/truth"
)

// stageObserver records the observability callbacks the framework emits.
type stageObserver struct {
	mu     sync.Mutex
	starts []string
	ends   []string
	iters  []int
	deltas []float64
}

func (o *stageObserver) SpanStart(name string) {
	o.mu.Lock()
	o.starts = append(o.starts, name)
	o.mu.Unlock()
}

func (o *stageObserver) SpanEnd(name string, d time.Duration) {
	o.mu.Lock()
	o.ends = append(o.ends, name)
	o.mu.Unlock()
}

func (o *stageObserver) Iteration(loop string, iter int, delta float64) {
	o.mu.Lock()
	o.iters = append(o.iters, iter)
	o.deltas = append(o.deltas, delta)
	o.mu.Unlock()
}

func TestFrameworkObserverSeesStagesAndIterations(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	var o stageObserver
	fw := Framework{
		Grouper: grouping.AGTR{Mode: grouping.TRAbsolute, Phi: 1},
		Config:  Config{Observer: &o},
	}
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}

	wantStages := []string{"grouping", "group_aggregation", "truth_loop"}
	if len(o.starts) != len(wantStages) || len(o.ends) != len(wantStages) {
		t.Fatalf("spans: starts=%v ends=%v", o.starts, o.ends)
	}
	for i, want := range wantStages {
		if o.starts[i] != want {
			t.Errorf("start[%d] = %q, want %q", i, o.starts[i], want)
		}
		if o.ends[i] != want {
			t.Errorf("end[%d] = %q, want %q", i, o.ends[i], want)
		}
	}

	if len(o.iters) != res.Iterations {
		t.Fatalf("iteration callbacks = %d, want %d", len(o.iters), res.Iterations)
	}
	for i, iter := range o.iters {
		if iter != i+1 {
			t.Errorf("iteration %d reported as %d", i+1, iter)
		}
	}
	// Deltas must be finite and, for a converging run, the final delta
	// must be below tolerance.
	for i, d := range o.deltas {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("delta[%d] = %v", i, d)
		}
	}
	if res.Converged && o.deltas[len(o.deltas)-1] >= 1e-6 {
		t.Errorf("final delta = %v, want < tolerance", o.deltas[len(o.deltas)-1])
	}
}

func TestFrameworkRecordsStageMetrics(t *testing.T) {
	reg := obs.Default()
	runsBefore := reg.Counter("framework.runs").Value()
	iterObsBefore := reg.Histogram("framework.iterations").Count()
	stageBefore := reg.Timer("framework.truth_loop_seconds").Histogram().Count()

	fw := Framework{Grouper: grouping.AGTS{}}
	if _, err := fw.Run(truth.PaperExampleHonest()); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("framework.runs").Value(); got != runsBefore+1 {
		t.Errorf("framework.runs = %d, want %d", got, runsBefore+1)
	}
	if got := reg.Histogram("framework.iterations").Count(); got != iterObsBefore+1 {
		t.Errorf("framework.iterations count = %d, want %d", got, iterObsBefore+1)
	}
	if got := reg.Timer("framework.truth_loop_seconds").Histogram().Count(); got != stageBefore+1 {
		t.Errorf("framework.truth_loop_seconds count = %d, want %d", got, stageBefore+1)
	}
}
