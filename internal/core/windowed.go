package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/truth"
)

// Windowed evaluates a truth-discovery algorithm (typically the
// Sybil-resistant Framework) over a sliding time window, producing a time
// series of estimates. It extends the framework to campaigns whose ground
// truth evolves — the "evolving truth" setting of the paper's reference
// [11] — while keeping the Sybil resistance: grouping and aggregation are
// re-run on each window, so an attacker is re-detected from the
// observations inside the window alone.
type Windowed struct {
	// Algorithm aggregates each window. Required.
	Algorithm truth.Algorithm
	// Window is the time span of observations each estimate sees.
	// Required, > 0.
	Window time.Duration
	// Step is the stride between estimates; zero means Window (tumbling
	// windows).
	Step time.Duration
}

// WindowPoint is one estimate of the time series.
type WindowPoint struct {
	// Start/End bound the window (End exclusive).
	Start, End time.Time
	// Truths are the per-task estimates from this window (NaN where the
	// window holds no data).
	Truths []float64
	// Accounts is the number of accounts with observations in the window.
	Accounts int
}

// Run slices the dataset's time span into windows and aggregates each.
// Datasets without observations produce an empty series.
func (w Windowed) Run(ds *mcs.Dataset) ([]WindowPoint, error) {
	if w.Algorithm == nil {
		return nil, errors.New("core: Windowed requires an Algorithm")
	}
	if w.Window <= 0 {
		return nil, errors.New("core: Windowed requires a positive Window")
	}
	if ds == nil {
		return nil, truth.ErrNilDataset
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	step := w.Step
	if step <= 0 {
		step = w.Window
	}
	first, last, ok := ds.TimeSpan()
	if !ok {
		return nil, nil
	}

	var series []WindowPoint
	for start := first; start.Before(last.Add(time.Nanosecond)); start = start.Add(step) {
		end := start.Add(w.Window)
		sub := sliceWindow(ds, start, end)
		point := WindowPoint{Start: start, End: end, Accounts: sub.NumAccounts()}
		if sub.NumAccounts() == 0 {
			point.Truths = nanTruths(ds.NumTasks())
		} else {
			res, err := w.Algorithm.Run(sub)
			if err != nil {
				return nil, fmt.Errorf("core: window [%v, %v): %w", start, end, err)
			}
			point.Truths = res.Truths
		}
		series = append(series, point)
		if !end.Before(last.Add(time.Nanosecond)) {
			break
		}
	}
	return series, nil
}

// sliceWindow builds a sub-dataset containing the observations with
// Start <= t < End; accounts without any in-window observation are
// dropped (they carry no evidence for this window).
func sliceWindow(ds *mcs.Dataset, start, end time.Time) *mcs.Dataset {
	sub := &mcs.Dataset{Tasks: append([]mcs.Task(nil), ds.Tasks...)}
	for ai := range ds.Accounts {
		src := &ds.Accounts[ai]
		var obs []mcs.Observation
		for _, o := range src.Observations {
			if !o.Time.Before(start) && o.Time.Before(end) {
				obs = append(obs, o)
			}
		}
		if len(obs) == 0 {
			continue
		}
		sub.AddAccount(mcs.Account{
			ID:           src.ID,
			Observations: obs,
			Fingerprint:  append([]float64(nil), src.Fingerprint...),
		})
	}
	return sub
}

func nanTruths(m int) []float64 {
	out := make([]float64, m)
	for j := range out {
		out[j] = math.NaN()
	}
	return out
}
