// Package core implements the paper's primary contribution: the
// Sybil-resistant truth discovery framework of Algorithm 2. The framework
// first partitions accounts with a pluggable account grouping method
// (internal/grouping), collapses each group's data to a single value per
// task, and then runs the iterative weight/truth estimation loop at the
// granularity of groups, so that a Sybil attacker's many accounts count as
// one voice no matter how many accounts it creates.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/signal"
	"sybiltd/internal/truth"
)

// Aggregator selects how the data submitted by one group for one task is
// collapsed into the group's single value d̃ (the role of Eq. 3).
//
// Eq. (3) as printed is degenerate — its denominator Σ(d−mean) is
// identically zero — so the framework exposes the three defensible
// readings and defaults to the one matching the paper's prose ("the
// aggregated data for the group will be close to the average of the data
// submitted", §V-B). See DESIGN.md for the erratum discussion.
type Aggregator int

const (
	// AggregateMean collapses a group's data to its arithmetic mean
	// (default; matches the paper's prose).
	AggregateMean Aggregator = iota + 1
	// AggregateMedian collapses to the median, trading a little bias for
	// robustness when a group mixes honest and fabricated values.
	AggregateMedian
	// AggregateInverseDeviation weights each value by 1/(|d − mean| + ε),
	// the most plausible literal reading of the printed Eq. (3): values
	// near the group consensus dominate.
	AggregateInverseDeviation
	// AggregateMajority collapses to the most frequent value (ties to the
	// smallest). Use it for categorical campaigns, where interpolating
	// between labels is meaningless.
	AggregateMajority
)

// String returns a short label for benches and tables.
func (a Aggregator) String() string {
	switch a {
	case AggregateMean:
		return "mean"
	case AggregateMedian:
		return "median"
	case AggregateInverseDeviation:
		return "invdev"
	case AggregateMajority:
		return "majority"
	default:
		return fmt.Sprintf("Aggregator(%d)", int(a))
	}
}

// Config tunes the framework's iterative loop.
type Config struct {
	// Aggregator is the Eq. (3) strategy; zero means AggregateMean.
	Aggregator Aggregator
	// MaxIterations caps the group-level estimation loop. Zero means 100.
	MaxIterations int
	// Tolerance stops the loop when the largest truth update falls below
	// it. Zero means 1e-6.
	Tolerance float64
	// LossFloor floors per-group losses in the CRH-style weight update.
	// Zero means 1e-9.
	LossFloor float64
	// Observer, when non-nil, receives per-stage span callbacks
	// (grouping, group_aggregation, truth_loop) and one Iteration
	// callback per truth-loop round with its convergence delta. Stage
	// timings are always recorded into the process metrics registry
	// (obs.Default()) regardless.
	Observer obs.Observer
	// GroupTimeout bounds the account-grouping stage when the framework
	// runs under a context (RunContext): the stage gets a child context
	// with this timeout, so a slow O(n²) grouping pass degrades to
	// per-account truth discovery instead of eating the whole request
	// deadline. Zero means no extra bound beyond the caller's context.
	GroupTimeout time.Duration
	// DegradeOnGroupingFailure extends graceful degradation to *any*
	// grouping error, not just context cancellation: instead of failing
	// the whole aggregation, the framework falls back to per-account
	// (ungrouped) truth discovery and flags the result as degraded. A
	// serving platform wants this (an answer beats an error mid-campaign);
	// offline experiments keep the default fail-loud behavior.
	DegradeOnGroupingFailure bool
}

func (c Config) withDefaults() Config {
	if c.Aggregator == 0 {
		c.Aggregator = AggregateMean
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	if c.LossFloor == 0 {
		c.LossFloor = 1e-9
	}
	return c
}

// Framework is the Sybil-resistant truth discovery framework: an account
// grouping method paired with a group-level truth discovery loop
// (Algorithm 2). It implements truth.Algorithm, so it is interchangeable
// with CRH and the baselines everywhere.
type Framework struct {
	// Grouper is the account grouping method (AG step). Required.
	Grouper grouping.Grouper
	// Config tunes aggregation and iteration.
	Config Config
}

// ErrNoGrouper is returned when Run is called without a Grouper.
var ErrNoGrouper = errors.New("core: framework requires a Grouper")

// Name implements truth.Algorithm: "TD-FP" for the AG-FP grouper, etc.,
// following the paper's naming in §V-C.
func (f Framework) Name() string {
	if f.Grouper == nil {
		return "TD-?"
	}
	name := f.Grouper.Name()
	if len(name) > 3 && name[:3] == "AG-" {
		return "TD-" + name[3:]
	}
	return "TD[" + name + "]"
}

// Run implements truth.Algorithm.
func (f Framework) Run(ds *mcs.Dataset) (truth.Result, error) {
	res, _, err := f.RunDetailed(ds)
	return res, err
}

// RunContext implements truth.ContextAlgorithm: Run under a cancellation
// context, with graceful degradation. When the account-grouping stage is
// cancelled (the caller's deadline, or Config.GroupTimeout) — or fails
// outright and Config.DegradeOnGroupingFailure is set — the framework
// does not error: it falls back to per-account (ungrouped) truth
// discovery and flags the result as Degraded, so an overloaded platform
// still answers every campaign. Cancellation mid truth-loop stops the
// iteration early with the current estimates, likewise flagged.
func (f Framework) RunContext(ctx context.Context, ds *mcs.Dataset) (truth.Result, error) {
	res, _, err := f.RunDetailedContext(ctx, ds)
	return res, err
}

// RunDetailed is Run plus the account grouping it used, for diagnostics
// and the experiment harness.
func (f Framework) RunDetailed(ds *mcs.Dataset) (truth.Result, grouping.Grouping, error) {
	return f.RunDetailedContext(context.Background(), ds)
}

// degradeReason classifies a grouping failure: context errors always
// degrade (the deadline fired), other errors degrade only when the config
// opts in.
func degradeReason(err error, cfg Config) (string, bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "grouping_timeout", true
	case errors.Is(err, context.Canceled):
		return "grouping_cancelled", true
	case cfg.DegradeOnGroupingFailure:
		return "grouping_failed", true
	default:
		return "", false
	}
}

// RunDetailedContext is RunContext plus the account grouping it used.
// When the result is degraded the returned grouping is the per-account
// fallback actually used, not the partition the grouper failed to
// produce.
func (f Framework) RunDetailedContext(ctx context.Context, ds *mcs.Dataset) (truth.Result, grouping.Grouping, error) {
	if f.Grouper == nil {
		return truth.Result{}, grouping.Grouping{}, ErrNoGrouper
	}
	if ds == nil {
		return truth.Result{}, grouping.Grouping{}, truth.ErrNilDataset
	}
	if err := ds.Validate(); err != nil {
		return truth.Result{}, grouping.Grouping{}, fmt.Errorf("core: %w", err)
	}
	cfg := f.Config.withDefaults()
	tr := obs.Tracer{Registry: obs.Default(), Observer: cfg.Observer, Prefix: "framework."}
	obs.Default().Counter("framework.runs").Inc()

	// Account grouping (Algorithm 2 line 1), bounded by the caller's
	// context and optionally by GroupTimeout.
	gctx := ctx
	if cfg.GroupTimeout > 0 {
		var cancel context.CancelFunc
		gctx, cancel = context.WithTimeout(ctx, cfg.GroupTimeout)
		defer cancel()
	}
	degraded := false
	degradedReason := ""
	span := tr.Span("grouping")
	g, err := grouping.GroupWithContext(gctx, f.Grouper, ds)
	span.End()
	if err == nil {
		if verr := g.Validate(ds.NumAccounts()); verr != nil {
			err = fmt.Errorf("grouper %s returned invalid partition: %w", f.Grouper.Name(), verr)
		}
	}
	if err != nil {
		reason, ok := degradeReason(err, cfg)
		if !ok {
			return truth.Result{}, grouping.Grouping{}, fmt.Errorf("core: account grouping: %w", err)
		}
		// Graceful degradation: every account becomes its own group, so
		// the loop below reduces to plain per-account truth discovery.
		// Weaker against Sybils, but the campaign still gets an answer.
		degraded, degradedReason = true, reason
		g = grouping.Singletons(ds.NumAccounts())
		obs.Default().Counter("framework.degraded").Inc()
		obs.Default().Counter("framework.degraded." + reason).Inc()
	}

	m := ds.NumTasks()
	l := g.NumGroups()

	// Data grouping (lines 2-6): for each task, collapse each group's
	// values to one aggregate (Eq. 3 strategy) and compute the initial
	// anti-Sybil weight of Eq. (4).
	span = tr.Span("group_aggregation")
	groupValues, initWeights, err := groupData(ds, g, cfg.Aggregator)
	span.End()
	if err != nil {
		return truth.Result{}, grouping.Grouping{}, err
	}

	// Truth initialization (Eq. 5).
	truths := make([]float64, m)
	hasData := make([]bool, m)
	for j := 0; j < m; j++ {
		var num, den, sum float64
		var count int
		for k := 0; k < l; k++ {
			v, ok := groupValues[k][j]
			if !ok {
				continue
			}
			w := initWeights[k][j]
			num += w * v
			den += w
			sum += v
			count++
		}
		switch {
		case count == 0:
			truths[j] = math.NaN()
		case den == 0:
			// Every group weight clamped to zero (e.g. one group covers
			// all submitters): fall back to the plain average of group
			// aggregates, which is still Sybil-diminished.
			truths[j] = sum / float64(count)
			hasData[j] = true
		default:
			truths[j] = num / den
			hasData[j] = true
		}
	}

	// Per-task scale normalizers over group aggregates, as CRH does over
	// raw values.
	std := make([]float64, m)
	for j := 0; j < m; j++ {
		var vals []float64
		for k := 0; k < l; k++ {
			if v, ok := groupValues[k][j]; ok {
				vals = append(vals, v)
			}
		}
		s := signal.StdDev(vals)
		if s < 1e-9 {
			s = 1e-9
		}
		std[j] = s
	}

	// Iterative group weight / truth estimation (lines 8-15).
	span = tr.Span("truth_loop")
	weights := make([]float64, l)
	losses := make([]float64, l)
	converged := false
	var iter int
	for iter = 1; iter <= cfg.MaxIterations; iter++ {
		// Cooperative cancellation between rounds: hand back the current
		// estimates (flagged degraded) instead of blocking past the
		// caller's deadline.
		if ctx.Err() != nil {
			if !degraded {
				degraded, degradedReason = true, "truth_loop_cancelled"
				obs.Default().Counter("framework.degraded").Inc()
				obs.Default().Counter("framework.degraded.truth_loop_cancelled").Inc()
			}
			iter--
			break
		}
		var totalLoss float64
		for k := 0; k < l; k++ {
			var loss float64
			empty := true
			for j := 0; j < m; j++ {
				v, ok := groupValues[k][j]
				if !ok || !hasData[j] {
					continue
				}
				empty = false
				d := v - truths[j]
				loss += d * d / std[j]
			}
			if empty {
				losses[k] = -1 // marker: group contributed nothing
				continue
			}
			if loss < cfg.LossFloor {
				loss = cfg.LossFloor
			}
			losses[k] = loss
			totalLoss += loss
		}
		for k := 0; k < l; k++ {
			if losses[k] < 0 {
				weights[k] = 0
				continue
			}
			w := math.Log(totalLoss / losses[k])
			if w < 0 {
				w = 0
			}
			weights[k] = w
		}

		maxDelta := 0.0
		for j := 0; j < m; j++ {
			if !hasData[j] {
				continue
			}
			var num, den, sum float64
			var count int
			for k := 0; k < l; k++ {
				v, ok := groupValues[k][j]
				if !ok {
					continue
				}
				num += weights[k] * v
				den += weights[k]
				sum += v
				count++
			}
			var next float64
			if den == 0 {
				next = sum / float64(count)
			} else {
				next = num / den
			}
			if d := math.Abs(next - truths[j]); d > maxDelta {
				maxDelta = d
			}
			truths[j] = next
		}
		tr.Iteration("truth_loop", iter, maxDelta)
		if maxDelta < cfg.Tolerance {
			converged = true
			break
		}
	}
	span.End()
	if iter > cfg.MaxIterations {
		iter = cfg.MaxIterations
	}
	obs.Default().Histogram("framework.iterations").Observe(float64(iter))
	if converged {
		obs.Default().Counter("framework.converged").Inc()
	}

	// Expose per-account weights: each account inherits its group weight.
	acctWeights := make([]float64, ds.NumAccounts())
	for k, members := range g.Groups {
		for _, a := range members {
			acctWeights[a] = weights[k]
		}
	}
	return truth.Result{
		Truths:         truths,
		Weights:        acctWeights,
		Iterations:     iter,
		Converged:      converged,
		Degraded:       degraded,
		DegradedReason: degradedReason,
	}, g, nil
}

// groupData collapses per-account observations into per-group per-task
// aggregates and the Eq. (4) initial weights.
//
// groupValues[k][j] is group k's aggregate for task j (present only when
// some member reported on j); initWeights[k][j] is the Eq. (4) weight
// 1 − |g_k|/|U_j| clamped at 0 (|g_k| is the full group size per the
// paper; a group larger than a task's submitter set is maximally
// suspicious for that task).
func groupData(ds *mcs.Dataset, g grouping.Grouping, agg Aggregator) (groupValues []map[int]float64, initWeights []map[int]float64, err error) {
	m := ds.NumTasks()
	subs := ds.Submitters()

	groupValues = make([]map[int]float64, g.NumGroups())
	initWeights = make([]map[int]float64, g.NumGroups())
	for k, members := range g.Groups {
		groupValues[k] = make(map[int]float64)
		initWeights[k] = make(map[int]float64)
		// Collect members' values per task.
		perTask := make(map[int][]float64)
		for _, a := range members {
			for _, o := range ds.Accounts[a].Observations {
				perTask[o.Task] = append(perTask[o.Task], o.Value)
			}
		}
		for j, vals := range perTask {
			v, aggErr := aggregate(vals, agg)
			if aggErr != nil {
				return nil, nil, fmt.Errorf("core: group %d task %d: %w", k, j, aggErr)
			}
			groupValues[k][j] = v
			if j >= 0 && j < m && len(subs[j]) > 0 {
				w := 1 - float64(len(members))/float64(len(subs[j]))
				if w < 0 {
					w = 0
				}
				initWeights[k][j] = w
			}
		}
	}
	return groupValues, initWeights, nil
}

// aggregate collapses one group's values for one task.
func aggregate(vals []float64, agg Aggregator) (float64, error) {
	if len(vals) == 0 {
		return 0, errors.New("core: empty value set")
	}
	switch agg {
	case AggregateMajority:
		return majorityValue(vals), nil
	case AggregateMedian:
		return signal.Median(vals)
	case AggregateInverseDeviation:
		const eps = 1e-6
		mean := signal.Mean(vals)
		var num, den float64
		for _, v := range vals {
			w := 1 / (math.Abs(v-mean) + eps)
			num += w * v
			den += w
		}
		return num / den, nil
	default: // AggregateMean
		return signal.Mean(vals), nil
	}
}

// majorityValue returns the most frequent value, breaking ties toward the
// smallest.
func majorityValue(vals []float64) float64 {
	counts := make(map[float64]int, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	best := vals[0]
	bestCount := 0
	for v, c := range counts {
		if c > bestCount || (c == bestCount && v < best) {
			best = v
			bestCount = c
		}
	}
	return best
}

var (
	_ truth.Algorithm        = Framework{}
	_ truth.ContextAlgorithm = Framework{}
)
