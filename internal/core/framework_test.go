package core

import (
	"math"
	"testing"
	"time"

	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/truth"
)

// oracleGrouper returns a fixed partition (perfect grouping oracle).
type oracleGrouper struct {
	groups [][]int
}

func (oracleGrouper) Name() string { return "AG-Oracle" }
func (o oracleGrouper) Group(*mcs.Dataset) (grouping.Grouping, error) {
	return grouping.Grouping{Groups: o.groups}, nil
}

func TestFrameworkName(t *testing.T) {
	if got := (Framework{Grouper: grouping.AGFP{}}).Name(); got != "TD-FP" {
		t.Errorf("name = %q, want TD-FP", got)
	}
	if got := (Framework{Grouper: grouping.AGTR{}}).Name(); got != "TD-TR" {
		t.Errorf("name = %q, want TD-TR", got)
	}
	if got := (Framework{Grouper: oracleGrouper{}}).Name(); got != "TD-Oracle" {
		t.Errorf("name = %q", got)
	}
	if got := (Framework{}).Name(); got != "TD-?" {
		t.Errorf("name = %q", got)
	}
}

func TestFrameworkRequiresGrouper(t *testing.T) {
	if _, err := (Framework{}).Run(truth.PaperExampleHonest()); err == nil {
		t.Error("missing grouper should error")
	}
	if _, err := (Framework{Grouper: grouping.AGTS{}}).Run(nil); err == nil {
		t.Error("nil dataset should error")
	}
}

func TestFrameworkDefeatsTableISybilAttack(t *testing.T) {
	// The heart of the paper: under the Table I attack, plain CRH swings
	// T1/T3/T4 toward -50, but the framework with a grouping method that
	// isolates the Sybil accounts stays near the honest estimates.
	ds := truth.PaperExampleWithSybil()
	honest, err := truth.CRH{}.Run(truth.PaperExampleHonest())
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := truth.CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}

	fw := Framework{Grouper: grouping.AGTR{Mode: grouping.TRAbsolute}}
	defended, g, err := fw.RunDetailed(ds)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 4 {
		t.Fatalf("grouping = %v, want Sybils isolated", g.Groups)
	}

	for _, j := range []int{0, 2, 3} {
		crhErr := math.Abs(attacked.Truths[j] - honest.Truths[j])
		fwErr := math.Abs(defended.Truths[j] - honest.Truths[j])
		if fwErr >= crhErr {
			t.Errorf("T%d: framework error %.2f not better than CRH %.2f", j+1, fwErr, crhErr)
		}
		// The framework estimate must stay much closer to the honest value
		// than to the fabricated -50.
		if math.Abs(defended.Truths[j]-(-50)) < math.Abs(defended.Truths[j]-honest.Truths[j]) {
			t.Errorf("T%d = %.2f: closer to the fabrication than to the honest truth", j+1, defended.Truths[j])
		}
	}
}

func TestFrameworkWithSingletonsBehavesLikeTruthDiscovery(t *testing.T) {
	// With every account alone, group aggregates equal raw values and the
	// framework reduces to a CRH-style loop; it should land close to CRH
	// on honest data.
	ds := truth.PaperExampleHonest()
	fw := Framework{Grouper: oracleGrouper{groups: [][]int{{0}, {1}, {2}}}}
	got, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	crh, err := truth.CRH{}.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got.Truths {
		if math.Abs(got.Truths[j]-crh.Truths[j]) > 5 {
			t.Errorf("T%d: framework %.2f vs CRH %.2f", j+1, got.Truths[j], crh.Truths[j])
		}
	}
}

func TestFrameworkOracleGrouping(t *testing.T) {
	// Perfect grouping: the three Sybil accounts form one group; result
	// must be near the honest CRH estimates.
	ds := truth.PaperExampleWithSybil()
	fw := Framework{Grouper: oracleGrouper{groups: [][]int{{0}, {1}, {2}, {3, 4, 5}}}}
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := truth.CRH{}.Run(truth.PaperExampleHonest())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2, 3} {
		if math.Abs(res.Truths[j]-honest.Truths[j]) > 12 {
			t.Errorf("T%d = %.2f, honest %.2f: grouping did not protect", j+1, res.Truths[j], honest.Truths[j])
		}
	}
}

func TestAggregators(t *testing.T) {
	vals := []float64{1, 2, 100}
	mean, err := aggregate(vals, AggregateMean)
	if err != nil || math.Abs(mean-103.0/3) > 1e-9 {
		t.Errorf("mean = %v, %v", mean, err)
	}
	med, err := aggregate(vals, AggregateMedian)
	if err != nil || med != 2 {
		t.Errorf("median = %v, %v", med, err)
	}
	inv, err := aggregate(vals, AggregateInverseDeviation)
	if err != nil {
		t.Fatal(err)
	}
	// Inverse-deviation pulls toward values near the mean; it must be
	// finite and within the value range.
	if inv < 1 || inv > 100 || math.IsNaN(inv) {
		t.Errorf("invdev = %v", inv)
	}
	if _, err := aggregate(nil, AggregateMean); err == nil {
		t.Error("empty values should error")
	}
	// Single value: all aggregators return it.
	for _, a := range []Aggregator{AggregateMean, AggregateMedian, AggregateInverseDeviation} {
		v, err := aggregate([]float64{7}, a)
		if err != nil || v != 7 {
			t.Errorf("%s single = %v, %v", a, v, err)
		}
	}
}

func TestAggregatorString(t *testing.T) {
	if AggregateMean.String() != "mean" || AggregateMedian.String() != "median" || AggregateInverseDeviation.String() != "invdev" {
		t.Error("aggregator strings")
	}
	if Aggregator(42).String() == "" {
		t.Error("unknown aggregator should stringify")
	}
}

func TestFrameworkEmptyTask(t *testing.T) {
	ds := mcs.NewDataset(2)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{
		{Task: 0, Value: 5, Time: time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)},
	}})
	fw := Framework{Grouper: grouping.AGTS{}}
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Truths[1]) {
		t.Errorf("empty task truth = %v, want NaN", res.Truths[1])
	}
	if res.Truths[0] != 5 {
		t.Errorf("task 0 truth = %v, want 5", res.Truths[0])
	}
}

func TestFrameworkSingleGroupCoversAll(t *testing.T) {
	// One group containing every submitter: Eq. (4) weights are all zero;
	// the fallback must still produce the group aggregate, not NaN.
	ds := mcs.NewDataset(1)
	for i, v := range []float64{2, 4, 6} {
		ds.AddAccount(mcs.Account{ID: string(rune('a' + i)), Observations: []mcs.Observation{
			{Task: 0, Value: v, Time: time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)},
		}})
	}
	fw := Framework{Grouper: oracleGrouper{groups: [][]int{{0, 1, 2}}}}
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Truths[0]-4) > 1e-9 {
		t.Errorf("truth = %v, want 4 (group mean)", res.Truths[0])
	}
}

func TestFrameworkInvalidGrouperOutput(t *testing.T) {
	fw := Framework{Grouper: oracleGrouper{groups: [][]int{{0, 0}}}}
	if _, err := fw.Run(truth.PaperExampleHonest()); err == nil {
		t.Error("invalid partition from grouper should error")
	}
}

func TestFrameworkAccountWeightsMirrorGroups(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	fw := Framework{Grouper: oracleGrouper{groups: [][]int{{0}, {1}, {2}, {3, 4, 5}}}}
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[3] != res.Weights[4] || res.Weights[4] != res.Weights[5] {
		t.Error("accounts of one group must share a weight")
	}
	for i, w := range res.Weights {
		if w < 0 || math.IsNaN(w) {
			t.Errorf("weight[%d] = %v", i, w)
		}
	}
}

func TestFrameworkAllAggregatorsRun(t *testing.T) {
	ds := truth.PaperExampleWithSybil()
	for _, a := range []Aggregator{AggregateMean, AggregateMedian, AggregateInverseDeviation} {
		fw := Framework{
			Grouper: grouping.AGTR{Mode: grouping.TRAbsolute},
			Config:  Config{Aggregator: a},
		}
		res, err := fw.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		for j, v := range res.Truths {
			if math.IsNaN(v) {
				t.Errorf("%s: T%d is NaN", a, j+1)
			}
		}
	}
}

func BenchmarkFrameworkPaperExample(b *testing.B) {
	ds := truth.PaperExampleWithSybil()
	fw := Framework{Grouper: grouping.AGTR{Mode: grouping.TRAbsolute}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Run(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAggregateMajority(t *testing.T) {
	v, err := aggregate([]float64{1, 1, 0, 2}, AggregateMajority)
	if err != nil || v != 1 {
		t.Errorf("majority = %v, %v; want 1", v, err)
	}
	// Tie breaks to the smallest value.
	v, err = aggregate([]float64{2, 0}, AggregateMajority)
	if err != nil || v != 0 {
		t.Errorf("majority tie = %v, %v; want 0", v, err)
	}
	if AggregateMajority.String() != "majority" {
		t.Error("string")
	}
}

func TestFrameworkCategoricalCampaign(t *testing.T) {
	// Pothole labels with a Sybil attacker flipping task 0: the framework
	// with oracle grouping and majority aggregation restores the honest
	// label.
	ds := mcs.NewDataset(2)
	mk := func(id string, l0, l1 int, offset time.Duration) {
		base := time.Date(2026, 7, 2, 10, 0, 0, 0, time.UTC).Add(offset)
		ds.AddAccount(mcs.Account{ID: id, Observations: []mcs.Observation{
			{Task: 0, Value: float64(l0), Time: base},
			{Task: 1, Value: float64(l1), Time: base.Add(time.Minute)},
		}})
	}
	mk("a", 1, 0, 0)
	mk("b", 1, 0, 10*time.Minute)
	mk("c", 1, 0, 20*time.Minute)
	for s := 0; s < 5; s++ {
		mk("syb"+string(rune('0'+s)), 0, 0, time.Hour+time.Duration(s)*time.Minute)
	}
	fw := Framework{
		Grouper: oracleGrouper{groups: [][]int{{0}, {1}, {2}, {3, 4, 5, 6, 7}}},
		Config:  Config{Aggregator: AggregateMajority},
	}
	res, err := fw.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] < 0.5 {
		t.Errorf("T1 = %v, want pulled back to label 1", res.Truths[0])
	}
}
