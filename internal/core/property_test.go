package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
)

// randomDataset builds a small random campaign with a random (but valid)
// oracle partition.
func randomDataset(seed int64) (*mcs.Dataset, grouping.Grouping) {
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(6)
	n := 2 + rng.Intn(8)
	ds := mcs.NewDataset(m)
	base := time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		var obs []mcs.Observation
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.4 {
				continue
			}
			obs = append(obs, mcs.Observation{
				Task:  j,
				Value: -90 + rng.Float64()*50,
				Time:  base.Add(time.Duration(rng.Intn(3600)) * time.Second),
			})
		}
		ds.AddAccount(mcs.Account{ID: string(rune('a' + i)), Observations: obs})
	}
	// Random partition into up to 3 groups.
	k := 1 + rng.Intn(3)
	groups := make([][]int, k)
	for i := 0; i < n; i++ {
		g := rng.Intn(k)
		groups[g] = append(groups[g], i)
	}
	var nonEmpty [][]int
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	return ds, grouping.Grouping{Groups: nonEmpty}
}

// Property: for every task with data, the framework's estimate lies within
// the hull [min, max] of the submitted values (it is a weighted mean of
// group aggregates, which are themselves means/medians of values), and all
// account weights are finite and non-negative.
func TestFrameworkEstimateWithinHullProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds, g := randomDataset(seed)
		fw := Framework{Grouper: oracleGrouper{groups: g.Groups}}
		res, err := fw.Run(ds)
		if err != nil {
			return false
		}
		for j := 0; j < ds.NumTasks(); j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			any := false
			for ai := range ds.Accounts {
				if v, ok := ds.Value(ai, j); ok {
					any = true
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			est := res.Truths[j]
			if !any {
				if !math.IsNaN(est) {
					return false
				}
				continue
			}
			if math.IsNaN(est) || est < lo-1e-9 || est > hi+1e-9 {
				return false
			}
		}
		for _, w := range res.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: merging the Sybil accounts into a group never increases the
// attacked tasks' error relative to leaving them separate, on the paper's
// canonical example (averaged check; the framework's entire premise).
func TestGroupingNeverHelpsAttackerProperty(t *testing.T) {
	f := func(rawTarget uint8) bool {
		target := -80 + float64(rawTarget%60) // fabrications in [-80, -20]
		ds := mcs.NewDataset(3)
		base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
		honest := []float64{-85, -75, -70}
		for u := 0; u < 3; u++ {
			var obs []mcs.Observation
			for j := 0; j < 3; j++ {
				obs = append(obs, mcs.Observation{Task: j, Value: honest[j] + float64(u-1), Time: base.Add(time.Duration(u*60+j) * time.Minute)})
			}
			ds.AddAccount(mcs.Account{ID: string(rune('a' + u)), Observations: obs})
		}
		for s := 0; s < 4; s++ {
			var obs []mcs.Observation
			for j := 0; j < 3; j++ {
				obs = append(obs, mcs.Observation{Task: j, Value: target, Time: base.Add(time.Duration(300+s*2+j*10) * time.Minute)})
			}
			ds.AddAccount(mcs.Account{ID: "s" + string(rune('0'+s)), Observations: obs})
		}
		separate := Framework{Grouper: oracleGrouper{groups: [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}}}}
		merged := Framework{Grouper: oracleGrouper{groups: [][]int{{0}, {1}, {2}, {3, 4, 5, 6}}}}
		resSep, err1 := separate.Run(ds)
		resMrg, err2 := merged.Run(ds)
		if err1 != nil || err2 != nil {
			return false
		}
		var errSep, errMrg float64
		for j := 0; j < 3; j++ {
			errSep += math.Abs(resSep.Truths[j] - honest[j])
			errMrg += math.Abs(resMrg.Truths[j] - honest[j])
		}
		return errMrg <= errSep+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
