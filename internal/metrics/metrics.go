// Package metrics implements the evaluation metrics of the paper's §V:
// the Adjusted Rand Index for grouping quality (Hubert & Arabie 1985) and
// the mean absolute error for aggregation accuracy, plus supporting
// precision/recall diagnostics for pairwise grouping decisions.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrLengthMismatch is returned when two parallel slices differ in length.
var ErrLengthMismatch = errors.New("metrics: length mismatch")

// AdjustedRandIndex computes the ARI between two labelings of the same
// items. Labels are arbitrary ints; only co-membership matters. The result
// lies in [-1, 1]: 1 for identical partitions, ~0 for independent random
// ones. Both labelings must be non-empty and of equal length.
//
// ARI = (Index - ExpectedIndex) / (MaxIndex - ExpectedIndex), computed over
// pair counts n_ij of the contingency table between the two partitions.
func AdjustedRandIndex(truth, pred []int) (float64, error) {
	n := len(truth)
	if n == 0 {
		return 0, errors.New("metrics: empty labeling")
	}
	if len(pred) != n {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, n, len(pred))
	}

	// Contingency table.
	table := make(map[[2]int]int)
	rowSums := make(map[int]int)
	colSums := make(map[int]int)
	for i := 0; i < n; i++ {
		table[[2]int{truth[i], pred[i]}]++
		rowSums[truth[i]]++
		colSums[pred[i]]++
	}

	var sumComb, rowComb, colComb float64
	for _, c := range table {
		sumComb += choose2(c)
	}
	for _, c := range rowSums {
		rowComb += choose2(c)
	}
	for _, c := range colSums {
		colComb += choose2(c)
	}
	totalComb := choose2(n)
	if totalComb == 0 {
		// Single item: both partitions are trivially identical.
		return 1, nil
	}
	expected := rowComb * colComb / totalComb
	maxIndex := (rowComb + colComb) / 2
	if maxIndex == expected {
		// Degenerate: both partitions are all-singletons or all-one-cluster
		// in a way that leaves no room for adjustment; identical partitions
		// get 1, anything else 0.
		if sumComb == maxIndex {
			return 1, nil
		}
		return 0, nil
	}
	return (sumComb - expected) / (maxIndex - expected), nil
}

func choose2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}

// MAE returns the mean absolute error between estimated and truth values
// (Eq. in §V: (1/m) Σ |d_j − d*_j|).
func MAE(estimated, truth []float64) (float64, error) {
	if len(estimated) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(estimated), len(truth))
	}
	if len(truth) == 0 {
		return 0, errors.New("metrics: empty input")
	}
	var sum float64
	for i := range truth {
		sum += math.Abs(estimated[i] - truth[i])
	}
	return sum / float64(len(truth)), nil
}

// RMSE returns the root mean squared error between estimated and truth.
func RMSE(estimated, truth []float64) (float64, error) {
	if len(estimated) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(estimated), len(truth))
	}
	if len(truth) == 0 {
		return 0, errors.New("metrics: empty input")
	}
	var sum float64
	for i := range truth {
		d := estimated[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(truth))), nil
}

// PairwiseScores holds precision/recall/F1 of the pairwise co-membership
// decisions implied by a predicted partition against the true partition:
// a true positive is a pair of items grouped together in both.
type PairwiseScores struct {
	Precision float64
	Recall    float64
	F1        float64
	// TP, FP, FN count item pairs.
	TP, FP, FN int
}

// PairwiseGrouping computes PairwiseScores between two labelings.
func PairwiseGrouping(truth, pred []int) (PairwiseScores, error) {
	n := len(truth)
	if len(pred) != n {
		return PairwiseScores{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, n, len(pred))
	}
	var s PairwiseScores
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameTruth := truth[i] == truth[j]
			samePred := pred[i] == pred[j]
			switch {
			case sameTruth && samePred:
				s.TP++
			case !sameTruth && samePred:
				s.FP++
			case sameTruth && !samePred:
				s.FN++
			}
		}
	}
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s, nil
}

// GroupsToLabels converts a partition expressed as index groups into a
// label vector of length n. Items not covered by any group get fresh
// singleton labels. Items listed twice keep the first label.
func GroupsToLabels(groups [][]int, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	for _, g := range groups {
		assigned := false
		for _, v := range g {
			if v >= 0 && v < n && labels[v] == -1 {
				labels[v] = next
				assigned = true
			}
		}
		if assigned {
			next++
		}
	}
	for i := range labels {
		if labels[i] == -1 {
			labels[i] = next
			next++
		}
	}
	return labels
}
