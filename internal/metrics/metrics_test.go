package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestARIIdenticalPartitions(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRandIndex(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI identical = %v, want 1", got)
	}
	// Relabeled but identical structure.
	relabeled := []int{7, 7, 3, 3, 9, 9}
	got, err = AdjustedRandIndex(truth, relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI relabeled = %v, want 1", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Standard worked example: ARI of these partitions is ~0.2424...
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRandIndex(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Compute expected by hand: contingency {0,0}:2 {0,1}:1 {1,1}:1 {1,2}:2
	// sumComb = 1 + 0 + 0 + 1 = 2; rows: C(3,2)*2 = 6; cols: 1+1+1 = 3.
	// total C(6,2)=15; expected = 6*3/15 = 1.2; max = 4.5.
	want := (2.0 - 1.2) / (4.5 - 1.2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ARI = %v, want %v", got, want)
	}
}

func TestARIOppositeStructure(t *testing.T) {
	// Predicting one big cluster when truth has structure: ARI 0 (degenerate
	// adjustment gives <= 0).
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 0, 0}
	got, err := AdjustedRandIndex(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-12 {
		t.Errorf("ARI all-merged = %v, want <= 0", got)
	}
}

func TestARIErrors(t *testing.T) {
	if _, err := AdjustedRandIndex(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := AdjustedRandIndex([]int{1}, []int{1, 2}); err == nil {
		t.Error("mismatch should error")
	}
}

func TestARISingleItem(t *testing.T) {
	got, err := AdjustedRandIndex([]int{3}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("single-item ARI = %v, want 1", got)
	}
}

func TestARIDegenerateAllSingletons(t *testing.T) {
	// Both partitions all singletons: identical, ARI 1.
	got, err := AdjustedRandIndex([]int{0, 1, 2}, []int{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("all-singletons ARI = %v, want 1", got)
	}
	// One all-singletons vs one all-merged: not identical, degenerate 0.
	got, err = AdjustedRandIndex([]int{0, 1, 2}, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("singletons-vs-merged ARI = %v, want 0", got)
	}
}

// Property: ARI is symmetric, bounded by 1, and invariant to relabeling.
func TestARIProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		ab, err1 := AdjustedRandIndex(a, b)
		ba, err2 := AdjustedRandIndex(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		if ab > 1+1e-12 {
			return false
		}
		// Relabel b by adding 100 to every label: same partition.
		b2 := make([]int, n)
		for i := range b {
			b2[i] = b[i] + 100
		}
		ab2, err := AdjustedRandIndex(a, b2)
		return err == nil && math.Abs(ab-ab2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE = %v, want 1", got)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatch should error")
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("empty should error")
	}
	perfect, err := MAE([]float64{4, 5}, []float64{4, 5})
	if err != nil || perfect != 0 {
		t.Errorf("perfect MAE = %v, %v", perfect, err)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE(nil, []float64{1}); err == nil {
		t.Error("mismatch should error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

// Property: RMSE >= MAE always (power-mean inequality).
func TestRMSEAtLeastMAE(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		mae, err1 := MAE(a, b)
		rmse, err2 := RMSE(a, b)
		return err1 == nil && err2 == nil && rmse+1e-9 >= mae
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseGrouping(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	// Perfect prediction.
	s, err := PairwiseGrouping(truth, []int{5, 5, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Precision != 1 || s.Recall != 1 || s.F1 != 1 {
		t.Errorf("perfect scores = %+v", s)
	}
	// All merged: recall 1, precision 2/6.
	s, err = PairwiseGrouping(truth, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Recall != 1 {
		t.Errorf("recall = %v, want 1", s.Recall)
	}
	if math.Abs(s.Precision-2.0/6.0) > 1e-12 {
		t.Errorf("precision = %v, want 1/3", s.Precision)
	}
	// All singletons: no predicted pairs; precision 0 by convention.
	s, err = PairwiseGrouping(truth, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.TP != 0 || s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Errorf("singleton scores = %+v", s)
	}
	if _, err := PairwiseGrouping([]int{1}, []int{1, 2}); err == nil {
		t.Error("mismatch should error")
	}
}

func TestGroupsToLabels(t *testing.T) {
	labels := GroupsToLabels([][]int{{0, 2}, {1}}, 4)
	// items 0 and 2 share a label; 1 has its own; 3 uncovered gets fresh.
	if labels[0] != labels[2] {
		t.Error("grouped items should share a label")
	}
	if labels[1] == labels[0] || labels[3] == labels[0] || labels[3] == labels[1] {
		t.Errorf("labels = %v", labels)
	}
	// Out-of-range and duplicate indices tolerated.
	labels = GroupsToLabels([][]int{{0, 0, 9}, {-1}}, 2)
	if len(labels) != 2 {
		t.Fatalf("labels len = %d, want 2", len(labels))
	}
	if labels[0] == labels[1] {
		t.Error("uncovered item must not join group 0")
	}
	// Empty groups list: all singletons.
	labels = GroupsToLabels(nil, 3)
	seen := map[int]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Error("expected all-distinct labels")
		}
		seen[l] = true
	}
}
