// Package graph provides the small graph substrate shared by the AG-TS and
// AG-TR grouping methods: a weighted undirected graph over account indices,
// edge-threshold filtering, and connected-component discovery (iterative
// DFS, plus a union-find alternative used for cross-checking).
package graph

import (
	"fmt"
	"sort"
)

// Undirected is a weighted undirected graph over vertices 0..N-1.
// The zero value is unusable; construct with NewUndirected.
type Undirected struct {
	n   int
	adj [][]edge
}

type edge struct {
	to     int
	weight float64
}

// NewUndirected creates a graph with n isolated vertices.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		n = 0
	}
	return &Undirected{n: n, adj: make([][]edge, n)}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// AddEdge adds an undirected edge between u and v with the given weight.
// Self-loops are ignored. Out-of-range vertices return an error.
func (g *Undirected) AddEdge(u, v int, weight float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return nil
	}
	g.adj[u] = append(g.adj[u], edge{to: v, weight: weight})
	g.adj[v] = append(g.adj[v], edge{to: u, weight: weight})
	return nil
}

// Degree returns the number of edges incident to u (0 for out-of-range).
func (g *Undirected) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// HasEdge reports whether an edge u-v exists.
func (g *Undirected) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// ConnectedComponents returns the connected components of g using an
// iterative depth-first search. Every vertex appears in exactly one
// component; isolated vertices form singleton components. Components are
// ordered by their smallest vertex, and vertices within a component are
// sorted ascending, so the output is deterministic.
func (g *Undirected) ConnectedComponents() [][]int {
	visited := make([]bool, g.n)
	var components [][]int
	stack := make([]int, 0, g.n)
	for start := 0; start < g.n; start++ {
		if visited[start] {
			continue
		}
		var comp []int
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !visited[e.to] {
					visited[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		sort.Ints(comp)
		components = append(components, comp)
	}
	return components
}

// ThresholdAbove builds a graph over n vertices from a symmetric weight
// function, keeping edges with weight(i, j) > threshold. It evaluates
// weight once per unordered pair (i < j). Used by AG-TS, where high
// affinity means suspicious.
func ThresholdAbove(n int, weight func(i, j int) float64, threshold float64) *Undirected {
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := weight(i, j); w > threshold {
				// Error impossible: indices are in range by construction.
				_ = g.AddEdge(i, j, w)
			}
		}
	}
	return g
}

// ThresholdBelow builds a graph over n vertices keeping edges with
// weight(i, j) < threshold. Used by AG-TR, where low dissimilarity means
// suspicious.
func ThresholdBelow(n int, weight func(i, j int) float64, threshold float64) *Undirected {
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := weight(i, j); w < threshold {
				_ = g.AddEdge(i, j, w)
			}
		}
	}
	return g
}

// ThresholdAbovePacked is ThresholdAbove over a precomputed packed weight
// matrix: weights holds the strict upper triangle in row-major order
// ((0,1), (0,2), ..., (n-2,n-1), as produced by parallel.Pairwise), so its
// length must be n*(n-1)/2. The grouping methods fill the packed matrix in
// parallel and then build the graph here; scanning the triangle in the same
// row-major order keeps edge insertion — and thus component discovery —
// byte-identical to the sequential weight-function path.
func ThresholdAbovePacked(n int, weights []float64, threshold float64) (*Undirected, error) {
	return thresholdPacked(n, weights, func(w float64) bool { return w > threshold })
}

// ThresholdBelowPacked is ThresholdBelow over a packed weight matrix; see
// ThresholdAbovePacked for the layout.
func ThresholdBelowPacked(n int, weights []float64, threshold float64) (*Undirected, error) {
	return thresholdPacked(n, weights, func(w float64) bool { return w < threshold })
}

func thresholdPacked(n int, weights []float64, keep func(w float64) bool) (*Undirected, error) {
	if want := n * (n - 1) / 2; n >= 2 && len(weights) != want {
		return nil, fmt.Errorf("graph: packed matrix has %d weights, want %d for n=%d", len(weights), want, n)
	}
	g := NewUndirected(n)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := weights[k]; keep(w) {
				_ = g.AddEdge(i, j, w)
			}
			k++
		}
	}
	return g, nil
}

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It provides an independent implementation of component
// discovery used to cross-validate DFS results in tests.
type UnionFind struct {
	parent []int
	rank   []byte
	count  int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	if n < 0 {
		n = 0
	}
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Components returns the sets as sorted slices, ordered by smallest member.
func (uf *UnionFind) Components() [][]int {
	byRoot := make(map[int][]int)
	for i := range uf.parent {
		r := uf.Find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	comps := make([][]int, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		comps = append(comps, members)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}
