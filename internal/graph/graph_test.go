package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := NewUndirected(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range edge should error")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative vertex should error")
	}
	if err := g.AddEdge(1, 1, 1); err != nil {
		t.Errorf("self-loop should be silently ignored, got %v", err)
	}
	if g.Degree(1) != 0 {
		t.Error("self-loop should not add degree")
	}
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be bidirectional")
	}
	if g.HasEdge(0, 2) || g.HasEdge(5, 0) {
		t.Error("HasEdge false positives")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Error("degree wrong after AddEdge")
	}
	if g.Degree(17) != 0 {
		t.Error("degree of out-of-range vertex should be 0")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewUndirected(7)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	// 5 and 6 isolated.
	got := g.ConnectedComponents()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("components = %v, want %v", got, want)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	if got := NewUndirected(0).ConnectedComponents(); len(got) != 0 {
		t.Errorf("components of empty graph = %v", got)
	}
	if NewUndirected(-5).N() != 0 {
		t.Error("negative n should clamp to 0")
	}
}

func TestConnectedComponentsCycle(t *testing.T) {
	g := NewUndirected(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 2, 3)
	got := g.ConnectedComponents()
	if len(got) != 1 || len(got[0]) != 4 {
		t.Errorf("cycle components = %v, want one of size 4", got)
	}
}

func TestThresholdAbove(t *testing.T) {
	weights := [][]float64{
		{0, 5, 1},
		{5, 0, 2},
		{1, 2, 0},
	}
	g := ThresholdAbove(3, func(i, j int) float64 { return weights[i][j] }, 1.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("edges above threshold missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("edge below threshold present")
	}
	// Strict inequality: weight == threshold excluded.
	g2 := ThresholdAbove(3, func(i, j int) float64 { return weights[i][j] }, 2)
	if g2.HasEdge(1, 2) {
		t.Error("weight == threshold should be excluded by ThresholdAbove")
	}
}

func TestThresholdBelow(t *testing.T) {
	weights := [][]float64{
		{0, 5, 1},
		{5, 0, 2},
		{1, 2, 0},
	}
	g := ThresholdBelow(3, func(i, j int) float64 { return weights[i][j] }, 1.5)
	if !g.HasEdge(0, 2) {
		t.Error("edge below threshold missing")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Error("edges above threshold present")
	}
	g2 := ThresholdBelow(3, func(i, j int) float64 { return weights[i][j] }, 2)
	if g2.HasEdge(1, 2) {
		t.Error("weight == threshold should be excluded by ThresholdBelow")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("initial count = %d, want 5", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(0, 1) {
		t.Error("repeat union should not merge")
	}
	uf.Union(1, 2)
	if uf.Count() != 3 {
		t.Errorf("count = %d, want 3", uf.Count())
	}
	if uf.Find(0) != uf.Find(2) {
		t.Error("0 and 2 should share a root")
	}
	if uf.Find(3) == uf.Find(0) {
		t.Error("3 should be separate")
	}
	comps := uf.Components()
	want := [][]int{{0, 1, 2}, {3}, {4}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

// Property: DFS components and union-find components agree on random graphs,
// and always form a partition of the vertex set.
func TestComponentsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := NewUndirected(n)
		uf := NewUnionFind(n)
		edges := rng.Intn(3 * n)
		for e := 0; e < edges; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v, 1); err != nil {
				return false
			}
			uf.Union(u, v)
		}
		a := g.ConnectedComponents()
		b := uf.Components()
		if !reflect.DeepEqual(a, b) {
			return false
		}
		// Partition check.
		seen := make([]bool, n)
		for _, comp := range a {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mustEdge(t *testing.T, g *Undirected, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v, 1); err != nil {
		t.Fatal(err)
	}
}

// TestPackedThresholdMatchesFunc checks that the packed-matrix builders
// produce graphs identical to the weight-function builders on random
// symmetric weights.
func TestPackedThresholdMatchesFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 2, 5, 12} {
		packed := make([]float64, n*(n-1)/2)
		for k := range packed {
			packed[k] = rng.Float64()
		}
		weight := func(i, j int) float64 {
			return packed[i*(2*n-i-1)/2+(j-i-1)]
		}
		for _, threshold := range []float64{0.2, 0.5, 0.9} {
			wantAbove := ThresholdAbove(n, weight, threshold)
			gotAbove, err := ThresholdAbovePacked(n, packed, threshold)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantAbove.ConnectedComponents(), gotAbove.ConnectedComponents()) {
				t.Errorf("n=%d t=%.1f: packed above components differ", n, threshold)
			}
			wantBelow := ThresholdBelow(n, weight, threshold)
			gotBelow, err := ThresholdBelowPacked(n, packed, threshold)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantBelow.ConnectedComponents(), gotBelow.ConnectedComponents()) {
				t.Errorf("n=%d t=%.1f: packed below components differ", n, threshold)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if wantAbove.HasEdge(i, j) != gotAbove.HasEdge(i, j) {
						t.Errorf("n=%d: edge (%d,%d) mismatch", n, i, j)
					}
				}
			}
		}
	}
}

func TestPackedThresholdLengthValidation(t *testing.T) {
	if _, err := ThresholdAbovePacked(4, []float64{1, 2}, 0); err == nil {
		t.Error("short packed matrix should error")
	}
	if _, err := ThresholdBelowPacked(3, make([]float64, 5), 0); err == nil {
		t.Error("long packed matrix should error")
	}
	if _, err := ThresholdBelowPacked(1, nil, 0); err != nil {
		t.Errorf("n=1 with empty matrix should be fine: %v", err)
	}
}
