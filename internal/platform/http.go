package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strings"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/obs"
)

// API DTOs. Field names form the wire contract of the platform service.
type (
	// TaskDTO describes a published task.
	TaskDTO struct {
		ID   int     `json:"id"`
		Name string  `json:"name"`
		X    float64 `json:"x"`
		Y    float64 `json:"y"`
	}
	// SubmissionRequest is one sensing report.
	SubmissionRequest struct {
		Account string    `json:"account"`
		Task    int       `json:"task"`
		Value   float64   `json:"value"`
		Time    time.Time `json:"time"`
	}
	// FingerprintRequest carries a sign-in fingerprint: either a raw
	// motion capture (the live path) or an already-extracted feature
	// vector (the replay/import path). Exactly one form must be present.
	FingerprintRequest struct {
		Account    string    `json:"account"`
		SampleRate float64   `json:"sample_rate,omitempty"`
		AccelX     []float64 `json:"accel_x,omitempty"`
		AccelY     []float64 `json:"accel_y,omitempty"`
		AccelZ     []float64 `json:"accel_z,omitempty"`
		GyroX      []float64 `json:"gyro_x,omitempty"`
		GyroY      []float64 `json:"gyro_y,omitempty"`
		GyroZ      []float64 `json:"gyro_z,omitempty"`
		Features   []float64 `json:"features,omitempty"`
	}
	// AggregateRequest names the aggregation method to run.
	AggregateRequest struct {
		Method string `json:"method"`
	}
	// AggregateResponse returns per-task estimates. Tasks with no data are
	// reported with Estimated=false.
	AggregateResponse struct {
		Method string       `json:"method"`
		Truths []TruthDTO   `json:"truths"`
		Meta   ResponseMeta `json:"meta"`
	}
	// TruthDTO is one task's estimate. Value is always serialized when
	// present in the struct — a legitimate estimate of exactly 0 (a dBm
	// offset, a categorical label 0) must survive the wire, so the field
	// deliberately has no omitempty; gate on Estimated. Uncertainty is
	// the weighted standard error (omitted when unavailable or infinite,
	// e.g. for single-report tasks).
	TruthDTO struct {
		Task        int     `json:"task"`
		Value       float64 `json:"value"`
		Estimated   bool    `json:"estimated"`
		Uncertainty float64 `json:"uncertainty,omitempty"`
	}
	// ResponseMeta carries loop metadata.
	ResponseMeta struct {
		Iterations int  `json:"iterations"`
		Converged  bool `json:"converged"`
	}
	// StatsResponse summarizes the store.
	StatsResponse struct {
		Tasks    int `json:"tasks"`
		Accounts int `json:"accounts"`
	}
	// ErrorResponse is the uniform error body. Code is the stable
	// machine-readable contract (see the Code* constants); Error is the
	// human-readable message and may change between releases.
	ErrorResponse struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
)

// ResponseMet is the truncated pre-redesign name of ResponseMeta, kept as
// an alias for one release so existing callers keep compiling.
//
// Deprecated: use ResponseMeta.
type ResponseMet = ResponseMeta

// MetricsSnapshot is the body served at /v1/metrics: a point-in-time copy
// of the platform's metrics registry.
type MetricsSnapshot = obs.Snapshot

// Stable error codes carried in ErrorResponse.Code. Clients should branch
// on these (or on the sentinel errors Client maps them to), never on the
// error message text.
const (
	CodeAccountCapReached  = "account_cap_reached"
	CodeUnknownTask        = "unknown_task"
	CodeDuplicateReport    = "duplicate_report"
	CodeEmptyAccount       = "empty_account"
	CodeBadFingerprint     = "bad_fingerprint"
	CodeUnknownAggregation = "unknown_aggregation"
	CodeMalformedRequest   = "malformed_request"
	CodeDurability         = "durability_unavailable"
	CodeInternal           = "internal"
)

// codeForError maps a store/server error onto its wire code and HTTP
// status. The zero return is the internal-error fallback.
func codeForError(err error) (code string, status int) {
	switch {
	case errors.Is(err, ErrUnknownTask):
		return CodeUnknownTask, http.StatusBadRequest
	case errors.Is(err, ErrEmptyAccount):
		return CodeEmptyAccount, http.StatusBadRequest
	case errors.Is(err, ErrBadFingerprint):
		return CodeBadFingerprint, http.StatusBadRequest
	case errors.Is(err, ErrUnknownAggregation):
		return CodeUnknownAggregation, http.StatusBadRequest
	case errors.Is(err, ErrMalformedRequest):
		return CodeMalformedRequest, http.StatusBadRequest
	case errors.Is(err, ErrDuplicateReport):
		return CodeDuplicateReport, http.StatusConflict
	case errors.Is(err, ErrTooManyAccounts):
		return CodeAccountCapReached, http.StatusTooManyRequests
	case errors.Is(err, ErrDurability):
		// 503, not 500: the request was valid and the client's bounded
		// retry may land after the disk recovers.
		return CodeDurability, http.StatusServiceUnavailable
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// sentinelForCode is the client-side inverse of codeForError: a stable
// code maps back to the typed sentinel error, so errors.Is works across
// the wire.
func sentinelForCode(code string) error {
	switch code {
	case CodeAccountCapReached:
		return ErrTooManyAccounts
	case CodeUnknownTask:
		return ErrUnknownTask
	case CodeDuplicateReport:
		return ErrDuplicateReport
	case CodeEmptyAccount:
		return ErrEmptyAccount
	case CodeBadFingerprint:
		return ErrBadFingerprint
	case CodeUnknownAggregation:
		return ErrUnknownAggregation
	case CodeMalformedRequest:
		return ErrMalformedRequest
	case CodeDurability:
		return ErrDurability
	default:
		return nil
	}
}

// Server exposes a Store over HTTP. Every /v1 route is instrumented: a
// per-route request counter, 4xx/5xx error counters, and a latency
// histogram, plus a shared in-flight gauge, all in the server's metrics
// registry. The registry itself is served at /v1/metrics (JSON) and
// /metrics (Prometheus text).
type Server struct {
	store *Store
	mux   *http.ServeMux
	log   *log.Logger
	reg   *obs.Registry
}

// NewServer wires the HTTP handlers against the process-wide metrics
// registry (obs.Default()), so the /metrics endpoints also expose the
// framework/grouping/truth instrumentation recorded by the library.
// logger may be nil to disable logging.
func NewServer(store *Store, logger *log.Logger) *Server {
	return NewServerWithRegistry(store, logger, nil)
}

// NewServerWithRegistry is NewServer with an explicit metrics registry;
// nil means obs.Default(). Library metrics always flow to obs.Default(),
// so pass a custom registry only when HTTP-layer isolation is wanted
// (e.g. hermetic tests).
func NewServerWithRegistry(store *Store, logger *log.Logger, reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{store: store, mux: http.NewServeMux(), log: logger, reg: reg}
	s.handle("GET /v1/tasks", s.handleTasks)
	s.handle("POST /v1/submissions", s.handleSubmit)
	s.handle("POST /v1/fingerprints", s.handleFingerprint)
	s.handle("POST /v1/aggregate", s.handleAggregate)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/dataset", s.handleDataset)
	// The metrics endpoints themselves are not instrumented: scrapes
	// every few seconds would dominate the request counters.
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	return s
}

// handle registers pattern with request counting, error counting, latency
// timing, and in-flight tracking around h.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	base := "http." + routeMetricName(pattern)
	requests := s.reg.Counter(base + ".requests")
	errors4xx := s.reg.Counter(base + ".errors_4xx")
	errors5xx := s.reg.Counter(base + ".errors_5xx")
	latency := s.reg.Timer(base + ".latency_seconds")
	inFlight := s.reg.Gauge("http.in_flight")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		sw := latency.Start()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		sw.Stop()
		requests.Inc()
		switch {
		case rec.status >= 500:
			errors5xx.Inc()
		case rec.status >= 400:
			errors4xx.Inc()
		}
	})
}

// routeMetricName turns a mux pattern like "POST /v1/aggregate" into a
// metric segment like "post_v1_aggregate".
func routeMetricName(pattern string) string {
	name := strings.ToLower(pattern)
	name = strings.Trim(strings.NewReplacer(" ", "_", "/", "_").Replace(name), "_")
	for strings.Contains(name, "__") {
		name = strings.ReplaceAll(name, "__", "_")
	}
	return name
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("platform: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code, status := codeForError(err)
	s.writeJSON(w, status, ErrorResponse{Code: code, Error: err.Error()})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrMalformedRequest, err))
		return false
	}
	return true
}

func (s *Server) handleTasks(w http.ResponseWriter, _ *http.Request) {
	tasks := s.store.Tasks()
	out := make([]TaskDTO, len(tasks))
	for i, t := range tasks {
		out[i] = TaskDTO{ID: t.ID, Name: t.Name, X: t.X, Y: t.Y}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmissionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Time.IsZero() {
		req.Time = time.Now().UTC()
	}
	if err := s.store.Submit(req.Account, req.Task, req.Value, req.Time); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "accepted"})
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	var req FingerprintRequest
	if !s.decode(w, r, &req) {
		return
	}
	hasRaw := len(req.AccelX) > 0 || len(req.AccelY) > 0 || len(req.AccelZ) > 0 ||
		len(req.GyroX) > 0 || len(req.GyroY) > 0 || len(req.GyroZ) > 0
	if len(req.Features) > 0 {
		if hasRaw {
			s.writeError(w, fmt.Errorf("%w: both raw capture and feature vector present; send exactly one", ErrBadFingerprint))
			return
		}
		if err := s.store.RecordFingerprintFeatures(req.Account, req.Features); err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
		return
	}
	rec := mems.Recording{
		SampleRate: req.SampleRate,
		AccelX:     req.AccelX, AccelY: req.AccelY, AccelZ: req.AccelZ,
		GyroX: req.GyroX, GyroY: req.GyroY, GyroZ: req.GyroZ,
	}
	if err := s.store.RecordFingerprint(req.Account, rec); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req AggregateRequest
	if !s.decode(w, r, &req) {
		return
	}
	res, unc, err := s.store.AggregateWithUncertainty(req.Method)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := AggregateResponse{
		Method: req.Method,
		Meta:   ResponseMeta{Iterations: res.Iterations, Converged: res.Converged},
	}
	for j, v := range res.Truths {
		dto := TruthDTO{Task: j}
		if v == v { // not NaN
			dto.Value = v
			dto.Estimated = true
			if j < len(unc) && !math.IsNaN(unc[j]) && !math.IsInf(unc[j], 0) {
				dto.Uncertainty = unc[j]
			}
		}
		resp.Truths = append(resp.Truths, dto)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleDataset exports the full campaign in the mcs JSON schema, so a
// campaign can be archived and re-aggregated offline.
func (s *Server) handleDataset(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.store.Dataset().EncodeJSON(w); err != nil {
		s.logf("platform: export dataset: %v", err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Tasks:    len(s.store.Tasks()),
		Accounts: s.store.NumAccounts(),
	})
}

// handleMetricsJSON serves the registry snapshot as JSON: counters,
// gauges, and histogram summaries (count/sum/min/max/p50/p95/p99).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// handleMetricsProm serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logf("platform: write prometheus: %v", err)
	}
}

// TasksFromPOIs builds platform tasks from named coordinates.
func TasksFromPOIs(names []string, xs, ys []float64) ([]mcs.Task, error) {
	if len(names) != len(xs) || len(xs) != len(ys) {
		return nil, errors.New("platform: names/xs/ys length mismatch")
	}
	tasks := make([]mcs.Task, len(names))
	for i := range names {
		tasks[i] = mcs.Task{ID: i, Name: names[i], X: xs[i], Y: ys[i]}
	}
	return tasks, nil
}
