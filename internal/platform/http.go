package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/obs"
	"sybiltd/internal/truth"
)

// API DTOs. Field names form the wire contract of the platform service.
type (
	// TaskDTO describes a published task.
	TaskDTO struct {
		ID   int     `json:"id"`
		Name string  `json:"name"`
		X    float64 `json:"x"`
		Y    float64 `json:"y"`
	}
	// SubmissionRequest is one sensing report.
	SubmissionRequest struct {
		Account string    `json:"account"`
		Task    int       `json:"task"`
		Value   float64   `json:"value"`
		Time    time.Time `json:"time"`
	}
	// BatchSubmissionRequest is a bulk of sensing reports submitted in one
	// request (POST /v1/reports:batch). Items are journaled as one WAL
	// batch and acknowledged per item.
	BatchSubmissionRequest struct {
		Reports []SubmissionRequest `json:"reports"`
	}
	// BatchItemResult is one item's outcome, positionally matching the
	// request's Reports. Code/Error are set only on rejection; Code uses
	// the same stable wire codes as ErrorResponse.
	BatchItemResult struct {
		Status string `json:"status"` // "accepted" or "rejected"
		Code   string `json:"code,omitempty"`
		Error  string `json:"error,omitempty"`
	}
	// BatchSubmissionResponse reports the per-item outcomes plus tallies.
	BatchSubmissionResponse struct {
		Accepted int               `json:"accepted"`
		Rejected int               `json:"rejected"`
		Results  []BatchItemResult `json:"results"`
	}
	// FingerprintRequest carries a sign-in fingerprint: either a raw
	// motion capture (the live path) or an already-extracted feature
	// vector (the replay/import path). Exactly one form must be present.
	FingerprintRequest struct {
		Account    string    `json:"account"`
		SampleRate float64   `json:"sample_rate,omitempty"`
		AccelX     []float64 `json:"accel_x,omitempty"`
		AccelY     []float64 `json:"accel_y,omitempty"`
		AccelZ     []float64 `json:"accel_z,omitempty"`
		GyroX      []float64 `json:"gyro_x,omitempty"`
		GyroY      []float64 `json:"gyro_y,omitempty"`
		GyroZ      []float64 `json:"gyro_z,omitempty"`
		Features   []float64 `json:"features,omitempty"`
	}
	// AggregateRequest names the aggregation method to run.
	AggregateRequest struct {
		Method string `json:"method"`
	}
	// AggregateResponse returns per-task estimates. Tasks with no data are
	// reported with Estimated=false.
	AggregateResponse struct {
		Method string       `json:"method"`
		Truths []TruthDTO   `json:"truths"`
		Meta   ResponseMeta `json:"meta"`
	}
	// TruthDTO is one task's estimate. Value is always serialized when
	// present in the struct — a legitimate estimate of exactly 0 (a dBm
	// offset, a categorical label 0) must survive the wire, so the field
	// deliberately has no omitempty; gate on Estimated. Uncertainty is
	// the weighted standard error (omitted when unavailable or infinite,
	// e.g. for single-report tasks).
	TruthDTO struct {
		Task        int     `json:"task"`
		Value       float64 `json:"value"`
		Estimated   bool    `json:"estimated"`
		Uncertainty float64 `json:"uncertainty,omitempty"`
	}
	// ResponseMeta carries loop metadata. Degraded marks a result computed
	// on the graceful-degradation path (per-account truth discovery after
	// grouping timed out or failed); DegradedReason says why.
	ResponseMeta struct {
		Iterations     int    `json:"iterations"`
		Converged      bool   `json:"converged"`
		Degraded       bool   `json:"degraded,omitempty"`
		DegradedReason string `json:"degraded_reason,omitempty"`
	}
	// StatsResponse summarizes the store. Degraded marks a sharded
	// platform's partial answer (some shards unreachable, their accounts
	// uncounted); DegradedReason says why.
	StatsResponse struct {
		Tasks          int    `json:"tasks"`
		Accounts       int    `json:"accounts"`
		Degraded       bool   `json:"degraded,omitempty"`
		DegradedReason string `json:"degraded_reason,omitempty"`
	}
	// ErrorResponse is the uniform error body. Code is the stable
	// machine-readable contract (see the Code* constants); Error is the
	// human-readable message and may change between releases. RingVersion
	// accompanies CodeWrongShard: the ring version the refusing shard was
	// fenced at, so a stale router knows its topology is behind.
	ErrorResponse struct {
		Code        string `json:"code"`
		Error       string `json:"error"`
		RingVersion uint64 `json:"ring_version,omitempty"`
	}
	// FenceRequest is the POST /v1/admin/fence body: the migration
	// coordinator's instruction to a donor shard to durably refuse writes
	// for accounts the new ring moved elsewhere.
	FenceRequest struct {
		RingVersion uint64   `json:"ring_version"`
		Accounts    []string `json:"accounts"`
	}
	// FenceResponse acknowledges a fence with the shard's resulting fence
	// version.
	FenceResponse struct {
		Status       string `json:"status"`
		FenceVersion uint64 `json:"fence_version"`
	}
	// PurgeRequest is the POST /v1/admin/purge body: the migration
	// coordinator's (or an operator's) instruction to drop the data of
	// every account fenced at or below the given ring version, keeping the
	// fence itself (see FencePurger).
	PurgeRequest struct {
		RingVersion uint64 `json:"ring_version"`
	}
	// PurgeResponse acknowledges a purge with the number of accounts
	// dropped.
	PurgeResponse struct {
		Status string `json:"status"`
		Purged int    `json:"purged"`
	}
)

// RingVersionHeader stamps mutating RPCs with the sender's ring version
// (online resharding). A shard that has been fenced at a higher version
// refuses the mutation with CodeWrongShard — the stale-router fence: a
// router that missed a cutover cannot write through its outdated
// topology. Unstamped requests are still subject to the per-account
// fence, just not the version check.
const RingVersionHeader = "X-Ring-Version"

// Err returns nil for an accepted batch item, or the rejection mapped
// back to the same typed sentinel a single Submit would have returned
// (errors.Is works on it exactly like on a Submit error).
func (r BatchItemResult) Err() error {
	if r.Status == "accepted" {
		return nil
	}
	if s := sentinelForCode(r.Code); s != nil {
		return fmt.Errorf("%w: %s", s, r.Error)
	}
	return fmt.Errorf("platform: batch item rejected (%s): %s", r.Code, r.Error)
}

// MetricsSnapshot is the body served at /v1/metrics: a point-in-time copy
// of the platform's metrics registry.
type MetricsSnapshot = obs.Snapshot

// Stable error codes carried in ErrorResponse.Code. Clients should branch
// on these (or on the sentinel errors Client maps them to), never on the
// error message text.
const (
	CodeAccountCapReached  = "account_cap_reached"
	CodeUnknownTask        = "unknown_task"
	CodeDuplicateReport    = "duplicate_report"
	CodeEmptyAccount       = "empty_account"
	CodeBadFingerprint     = "bad_fingerprint"
	CodeUnknownAggregation = "unknown_aggregation"
	CodeMalformedRequest   = "malformed_request"
	CodeDurability         = "durability_unavailable"
	// CodeRateLimited marks a per-account token-bucket rejection; the
	// response carries a Retry-After header and is safe to retry after it.
	CodeRateLimited = "rate_limited"
	// CodeOverloaded marks load shedding (admission queue full or wait
	// budget spent) or a request deadline hit mid-operation; the response
	// carries a Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeShardUnavailable marks a sharded platform unable to reach the
	// shard(s) an operation needs; retryable like overloaded.
	CodeShardUnavailable = "shard_unavailable"
	// CodeNotPrimary marks a write sent to a replica-group follower; the
	// caller must target the group's primary. 503 so a router-level retry
	// (after refreshing its primary view) can heal it.
	CodeNotPrimary = "not_primary"
	// CodeReplicaLag marks a replication guarantee miss: a semi-sync ack
	// timed out, or a follower read exceeded its staleness bound. 503.
	CodeReplicaLag = "replica_lag"
	// CodeUnimplemented marks an endpoint this node knowingly does not
	// serve (HTTP 501). NOT retryable: the answer will not change.
	CodeUnimplemented = "unimplemented"
	// CodeWrongShard marks a mutation refused because the account moved to
	// another replica group in an online reshard (or the request's stamped
	// ring version predates the fence). 503-class, but NOT retryable
	// against the same shard — the response carries ring_version and the
	// caller must refresh its topology and re-route.
	CodeWrongShard = "wrong_shard"
	CodeInternal   = "internal"
)

// codeForError maps a store/server error onto its wire code and HTTP
// status. The zero return is the internal-error fallback.
func codeForError(err error) (code string, status int) {
	switch {
	case errors.Is(err, ErrUnknownTask):
		return CodeUnknownTask, http.StatusBadRequest
	case errors.Is(err, ErrEmptyAccount):
		return CodeEmptyAccount, http.StatusBadRequest
	case errors.Is(err, ErrBadFingerprint):
		return CodeBadFingerprint, http.StatusBadRequest
	case errors.Is(err, ErrUnknownAggregation):
		return CodeUnknownAggregation, http.StatusBadRequest
	case errors.Is(err, ErrMalformedRequest):
		return CodeMalformedRequest, http.StatusBadRequest
	case errors.Is(err, ErrDuplicateReport):
		return CodeDuplicateReport, http.StatusConflict
	case errors.Is(err, ErrTooManyAccounts):
		return CodeAccountCapReached, http.StatusTooManyRequests
	case errors.Is(err, ErrRateLimited):
		return CodeRateLimited, http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded, http.StatusServiceUnavailable
	case errors.Is(err, ErrShardUnavailable):
		// The covering shard (or every shard, for a gathered read) was
		// unreachable; the client's bounded retry may land after the shard
		// recovers or the partition heals.
		return CodeShardUnavailable, http.StatusServiceUnavailable
	case errors.Is(err, ErrNotPrimary):
		// 503: the router refreshes its primary view and retries against
		// the promoted replica.
		return CodeNotPrimary, http.StatusServiceUnavailable
	case errors.Is(err, ErrWrongShard):
		// 503: the router reloads its ring topology and re-routes to the
		// account's new owner group. Retrying here can never succeed.
		return CodeWrongShard, http.StatusServiceUnavailable
	case errors.Is(err, ErrReplicaLag):
		return CodeReplicaLag, http.StatusServiceUnavailable
	case errors.Is(err, ErrUnimplemented):
		return CodeUnimplemented, http.StatusNotImplemented
	case errors.Is(err, ErrDurability):
		// 503, not 500: the request was valid and the client's bounded
		// retry may land after the disk recovers.
		return CodeDurability, http.StatusServiceUnavailable
	case isCtxErr(err):
		// A deadline or cancellation that reached the handler without
		// being wrapped: the server gave up under load, not the client's
		// request being wrong.
		return CodeOverloaded, http.StatusServiceUnavailable
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// sentinelForCode is the client-side inverse of codeForError: a stable
// code maps back to the typed sentinel error, so errors.Is works across
// the wire.
func sentinelForCode(code string) error {
	switch code {
	case CodeAccountCapReached:
		return ErrTooManyAccounts
	case CodeUnknownTask:
		return ErrUnknownTask
	case CodeDuplicateReport:
		return ErrDuplicateReport
	case CodeEmptyAccount:
		return ErrEmptyAccount
	case CodeBadFingerprint:
		return ErrBadFingerprint
	case CodeUnknownAggregation:
		return ErrUnknownAggregation
	case CodeMalformedRequest:
		return ErrMalformedRequest
	case CodeDurability:
		return ErrDurability
	case CodeRateLimited:
		return ErrRateLimited
	case CodeOverloaded:
		return ErrOverloaded
	case CodeShardUnavailable:
		return ErrShardUnavailable
	case CodeNotPrimary:
		return ErrNotPrimary
	case CodeReplicaLag:
		return ErrReplicaLag
	case CodeUnimplemented:
		return ErrUnimplemented
	case CodeWrongShard:
		return ErrWrongShard
	default:
		return nil
	}
}

// Server exposes a Store over HTTP. Every /v1 route is instrumented: a
// per-route request counter, 4xx/5xx error counters, and a latency
// histogram, plus a shared in-flight gauge, all in the server's metrics
// registry. The registry itself is served at /v1/metrics (JSON) and
// /metrics (Prometheus text).
//
// With ServerOptions.Limits set, every /v1 route additionally passes a
// weighted-concurrency admission gate (shed with 503 + Retry-After when
// the bounded wait queue overflows or the wait budget expires), mutating
// routes pass a per-account token-bucket rate limiter (429 + Retry-After),
// and the configured request deadline is attached to the request context
// and propagated into store, durability, and aggregation work. /healthz,
// /readyz, and the metrics endpoints bypass the gate and the latency
// histograms entirely: an operator must be able to observe an overloaded
// server, and scrapes must not compete with traffic for admission.
type Server struct {
	store Store
	mux   *http.ServeMux
	log   *log.Logger
	reg   *obs.Registry

	limits   ServerLimits
	gate     *gate           // nil when MaxConcurrent == 0
	limiter  *accountLimiter // nil when RatePerSec == 0
	hub      *StreamHub      // truth-watch fan-out (always present)
	repl     *Replication    // nil on an unreplicated node
	draining atomic.Bool

	shedOverload *obs.Counter
	shedRate     *obs.Counter
	gateInUse    *obs.Gauge
	gateQueued   *obs.Gauge
}

// ServerOptions configures NewServerWithOptions. The zero value matches
// NewServer: process-wide metrics registry, no logging, no overload
// protection.
type ServerOptions struct {
	// Logger receives request-handling diagnostics; nil disables logging.
	Logger *log.Logger
	// Registry is the metrics registry; nil means obs.Default(). Library
	// metrics always flow to obs.Default(), so pass a custom registry only
	// when HTTP-layer isolation is wanted (e.g. hermetic tests).
	Registry *obs.Registry
	// Limits is the overload-protection configuration. The zero value
	// disables the admission gate, rate limiter, and request deadline.
	Limits ServerLimits
	// Stream tunes the GET /v1/truths:watch subscription hub. The zero
	// value enables streaming with defaults (per-task subscriber buffers,
	// 4096 subscribers, 15s heartbeat).
	Stream StreamConfig
	// Replication, when non-nil, serves the /v1/repl endpoints (frame
	// shipping, status, role flips) against the node's replication
	// manager. Without it those endpoints answer 501 unimplemented.
	Replication *Replication
	// DisableWatch turns GET /v1/truths:watch into a typed 501
	// unimplemented response instead of a live stream. Replica followers
	// set this: their state advances by replicated frames, not client
	// acks, so a follower stream would sit silent and then lie after a
	// promotion. Watchers belong on the router or the primary.
	DisableWatch bool
}

// NewServer wires the HTTP handlers against the process-wide metrics
// registry (obs.Default()), so the /metrics endpoints also expose the
// framework/grouping/truth instrumentation recorded by the library.
// logger may be nil to disable logging.
func NewServer(store Store, logger *log.Logger) *Server {
	return NewServerWithOptions(store, ServerOptions{Logger: logger})
}

// NewServerWithRegistry is NewServer with an explicit metrics registry;
// nil means obs.Default().
func NewServerWithRegistry(store Store, logger *log.Logger, reg *obs.Registry) *Server {
	return NewServerWithOptions(store, ServerOptions{Logger: logger, Registry: reg})
}

// Route admission weights: heavier routes consume more gate capacity, so
// one aggregation in flight leaves room for several cheap reads but two
// aggregations can saturate a small gate — which is the point.
const (
	weightLight     = 1 // tasks, stats, submissions, fingerprints
	weightDataset   = 2 // full-campaign export
	weightAggregate = 4 // truth-discovery run
	// weightDeferred marks a route whose admission cost depends on the
	// request body (a batch costs one unit per item): handle() skips the
	// gate and the handler acquires its own weight after decoding.
	weightDeferred = 0
)

// NewServerWithOptions is the fully-configurable constructor.
func NewServerWithOptions(store Store, opts ServerOptions) *Server {
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{
		store:  store,
		mux:    http.NewServeMux(),
		log:    opts.Logger,
		reg:    reg,
		repl:   opts.Replication,
		limits: opts.Limits.withDefaults(),

		shedOverload: reg.Counter("http.shed.overload"),
		shedRate:     reg.Counter("http.shed.rate_limited"),
		gateInUse:    reg.Gauge("http.gate.in_use"),
		gateQueued:   reg.Gauge("http.gate.queued"),
	}
	if s.limits.MaxConcurrent > 0 {
		s.gate = newGate(s.limits.MaxConcurrent, s.limits.MaxQueue)
	}
	if s.limits.RatePerSec > 0 {
		s.limiter = newAccountLimiter(s.limits.RatePerSec, s.limits.RateBurst)
	}
	// The watch hub: every acknowledged submission feeds the shared
	// evolving-truth estimator, and subscribers get per-task updates on
	// change. Seeded from the store's current dataset so a durable restart
	// streams the recovered state, not an empty one. The hub's goroutine
	// starts lazily on the first subscription. A store that cannot answer
	// Tasks at construction (a router whose shards are still coming up)
	// gets a single-task hub rather than no hub: the watch stream is a
	// side channel, not worth failing construction over.
	numTasks := 0
	if tasks, err := store.Tasks(context.Background()); err == nil {
		numTasks = len(tasks)
	} else {
		s.logf("platform: tasks unavailable at construction (%v); stream hub sized for one task", err)
	}
	if numTasks < 1 {
		numTasks = 1 // zero-task stores exist only in hand-built tests
	}
	hub, err := NewStreamHub(numTasks, opts.Stream, reg)
	if err != nil {
		// With numTasks >= 1 the constructor can only fail on invalid
		// estimator tuning (e.g. Online.Decay outside (0, 1]). The watch
		// stream is a side channel of the server, so trade the bad knobs
		// for truth.NewOnline defaults — loudly — rather than failing
		// construction or serving with a nil hub.
		s.logf("platform: stream config rejected (%v); watch hub falling back to default estimator tuning", err)
		fallback := opts.Stream
		fallback.Online = truth.OnlineConfig{}
		hub, err = NewStreamHub(numTasks, fallback, reg)
		if err != nil {
			// Unreachable: the zero OnlineConfig always validates.
			panic(fmt.Sprintf("platform: stream hub fallback: %v", err))
		}
	}
	s.hub = hub
	// Install the listener before taking the seeding snapshot so no
	// submission can fall between the two: the snapshot then misses
	// nothing the listener didn't see, and seed skips pairs a live Feed
	// already delivered, so the overlap is never replayed backwards.
	store.SetSubmitListener(hub.Feed)
	if ds, err := store.Dataset(context.Background()); err == nil && len(ds.Accounts) > 0 {
		hub.seed(ds)
	}
	s.handle("GET /v1/tasks", weightLight, s.handleTasks)
	s.handle("POST /v1/submissions", weightLight, s.handleSubmit)
	s.handle("POST /v1/reports:batch", weightDeferred, s.handleSubmitBatch)
	s.handle("POST /v1/fingerprints", weightLight, s.handleFingerprint)
	s.handle("POST /v1/aggregate", weightAggregate, s.handleAggregate)
	s.handle("GET /v1/stats", weightLight, s.handleStats)
	s.handle("GET /v1/dataset", weightDataset, s.handleDataset)
	// The watch route is a long-lived stream: it bypasses the admission
	// gate (a subscription would pin gate units for its whole life,
	// starving request traffic), the per-request deadline, and the latency
	// histogram (an hours-long "request" would drag percentiles into
	// fiction). Fan-out safety comes from the hub's own subscriber cap and
	// per-subscriber bounded buffers instead.
	if opts.DisableWatch {
		s.handleStream("GET /v1/truths:watch", func(w http.ResponseWriter, _ *http.Request) {
			s.writeError(w, fmt.Errorf("%w: truth streaming is not served on this node", ErrUnimplemented))
		})
	} else {
		s.handleStream("GET /v1/truths:watch", s.handleWatch)
	}
	// Replication plane. The routes exist on every node so a misdirected
	// ship fails with a typed 501 instead of a bare 404; the gate is
	// bypassed (weightDeferred) — replication traffic must flow precisely
	// when client load has the gate saturated, and a blocked ship turns
	// follower lag into a second incident.
	s.handle("POST /v1/repl/frames", weightDeferred, s.handleReplShip)
	s.handle("POST /v1/repl/role", weightDeferred, s.handleReplRole)
	s.mux.HandleFunc("GET /v1/repl/status", s.handleReplStatus)
	// Resharding plane: WAL tail export (the migration coordinator's
	// catch-up stream) and the donor fence. Both bypass the gate like the
	// replication routes — a migration must make progress precisely when
	// client load is heaviest, or it never converges.
	s.handle("POST /v1/repl/export", weightDeferred, s.handleReplExport)
	s.handle("POST /v1/admin/fence", weightDeferred, s.handleFence)
	s.handle("POST /v1/admin/purge", weightDeferred, s.handlePurge)
	// Unknown /v1 paths answer a typed 501 unimplemented JSON body rather
	// than the mux's bare 404, so a version-skewed client fails with a
	// decodable coded error instead of a body-parse failure.
	s.mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, fmt.Errorf("%w: no handler for %s %s", ErrUnimplemented, r.Method, r.URL.Path))
	})
	// The metrics and health endpoints themselves are not instrumented and
	// not gated: scrapes every few seconds would dominate the request
	// counters, and health checks must answer precisely when the gate is
	// saturated.
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// SetDraining marks the server as shutting down: /readyz starts answering
// 503 so load balancers stop routing new traffic, while in-flight and
// already-admitted requests complete normally.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// handle registers pattern with request counting, error counting, latency
// timing, in-flight tracking, and — when configured — deadline attachment
// and gate admission around h. Shed requests are counted in the route's
// request/error counters but not its latency histogram: a rejection in
// microseconds would drag the percentiles into fiction.
func (s *Server) handle(pattern string, weight int, h http.HandlerFunc) {
	base := "http." + routeMetricName(pattern)
	requests := s.reg.Counter(base + ".requests")
	errors4xx := s.reg.Counter(base + ".errors_4xx")
	errors5xx := s.reg.Counter(base + ".errors_5xx")
	latency := s.reg.Timer(base + ".latency_seconds")
	inFlight := s.reg.Gauge("http.in_flight")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			requests.Inc()
			switch {
			case rec.status >= 500:
				errors5xx.Inc()
			case rec.status >= 400:
				errors4xx.Inc()
			}
		}()
		if s.limits.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.limits.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.gate != nil && weight != weightDeferred {
			if err := s.gate.acquire(r.Context(), weight, s.limits.QueueTimeout); err != nil {
				s.shedOverload.Inc()
				s.updateGateGauges()
				s.writeError(rec, err)
				return
			}
			s.updateGateGauges()
			defer func() {
				s.gate.release(weight)
				s.updateGateGauges()
			}()
		}
		sw := latency.Start()
		h(rec, r)
		sw.Stop()
	})
}

// handleStream registers a streaming route: request/error counting and
// in-flight tracking like handle, but no latency histogram, no admission
// gate, and no request deadline — the three things that would kill or be
// killed by a long-lived subscription.
func (s *Server) handleStream(pattern string, h http.HandlerFunc) {
	base := "http." + routeMetricName(pattern)
	requests := s.reg.Counter(base + ".requests")
	errors4xx := s.reg.Counter(base + ".errors_4xx")
	errors5xx := s.reg.Counter(base + ".errors_5xx")
	inFlight := s.reg.Gauge("http.in_flight")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			requests.Inc()
			switch {
			case rec.status >= 500:
				errors5xx.Inc()
			case rec.status >= 400:
				errors4xx.Inc()
			}
		}()
		h(rec, r)
	})
}

// Hub returns the server's truth-watch stream hub (e.g. to drive round
// ticks from an embedder's own cadence).
func (s *Server) Hub() *StreamHub { return s.hub }

// Close stops the stream hub, disconnecting watch subscribers. The HTTP
// routes keep serving; call during shutdown after draining.
func (s *Server) Close() {
	s.hub.Close()
}

// handleWatch serves GET /v1/truths:watch: a server-push SSE stream of
// on-change truth updates. Resume with the standard Last-Event-ID header
// (or ?from=<seq>): the subscriber is seeded with every task whose
// estimate changed after that sequence number, falling back to a full
// snapshot of the current estimates.
//
// The stream is exempt from the server-wide read/write timeouts (cleared
// via http.ResponseController) — those exist to kill stuck requests, and
// a subscription is not stuck — but every individual write carries a
// bounded deadline, so a peer that stops draining its socket for longer
// than the write window is disconnected rather than pinning the handler.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var afterSeq uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		afterSeq, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("from"); v != "" {
		afterSeq, _ = strconv.ParseUint(v, 10, 64)
	}
	sub, err := s.hub.Subscribe(afterSeq)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer sub.Close()

	rc := http.NewResponseController(w)
	// Lift the connection's slowloris deadlines: this response is meant to
	// outlive them. Errors are ignored — a ResponseWriter without deadline
	// support (some test recorders) still streams, it just can't shed a
	// jammed peer early.
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}

	heartbeat := time.NewTicker(s.hub.cfg.Heartbeat)
	defer heartbeat.Stop()
	writeWindow := s.hub.cfg.WriteWindow
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.hub.Done():
			return
		case <-heartbeat.C:
			_ = rc.SetWriteDeadline(time.Now().Add(writeWindow))
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
			_ = rc.SetWriteDeadline(time.Time{})
		case <-sub.Notify():
			updates := sub.Take()
			if len(updates) == 0 {
				continue
			}
			_ = rc.SetWriteDeadline(time.Now().Add(writeWindow))
			for _, u := range updates {
				payload, err := json.Marshal(u)
				if err != nil {
					s.logf("platform: marshal truth update: %v", err)
					continue
				}
				if _, err := fmt.Fprintf(w, "id: %d\nevent: truth\ndata: %s\n\n", u.Seq, payload); err != nil {
					return
				}
			}
			if err := rc.Flush(); err != nil {
				return
			}
			_ = rc.SetWriteDeadline(time.Time{})
			s.hub.observePushLatency(updates, time.Now())
		}
	}
}

func (s *Server) updateGateGauges() {
	if s.gate == nil {
		return
	}
	inUse, queued := s.gate.load()
	s.gateInUse.Set(int64(inUse))
	s.gateQueued.Set(int64(queued))
}

// routeMetricName turns a mux pattern like "POST /v1/aggregate" into a
// metric segment like "post_v1_aggregate".
func routeMetricName(pattern string) string {
	name := strings.ToLower(pattern)
	name = strings.Trim(strings.NewReplacer(" ", "_", "/", "_").Replace(name), "_")
	for strings.Contains(name, "__") {
		name = strings.ReplaceAll(name, "__", "_")
	}
	return name
}

// statusRecorder captures the status code written by a handler.
//
// It forwards the optional ResponseWriter interfaces a streaming handler
// needs: Flush for the legacy `w.(http.Flusher)` assertion and Unwrap for
// http.ResponseController (Flush, SetReadDeadline, SetWriteDeadline).
// Without these, every handler behind the instrumented mux silently lost
// the ability to stream — the embedded ResponseWriter satisfies only the
// methods in the interface, so the underlying Flusher was unreachable and
// chunked/SSE responses buffered until the handler returned.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying Flusher, if any.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("platform: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code, status := codeForError(err)
	if code == CodeRateLimited || code == CodeOverloaded {
		// Shed-load responses advertise when to come back. A handler that
		// computed a tighter estimate (the rate limiter's next-token time)
		// sets the header first; otherwise fall back to the configured hint.
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", retryAfterValue(s.limits.RetryAfterHint))
		}
	}
	body := ErrorResponse{Code: code, Error: err.Error()}
	var ws *WrongShardError
	if errors.As(err, &ws) {
		body.RingVersion = ws.RingVersion
	}
	s.writeJSON(w, status, body)
}

// checkRingVersion applies the stale-router fence to a mutating request:
// a request stamped with a ring version below the version this shard was
// fenced at is refused with wrong_shard, whatever account it names — the
// sender's whole topology predates the cutover, so its routing cannot be
// trusted. Unstamped requests pass (they still hit the per-account fence
// in the store). Returns nil when the store has no fence capability.
func (s *Server) checkRingVersion(r *http.Request) error {
	h := r.Header.Get(RingVersionHeader)
	if h == "" {
		return nil
	}
	v, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return fmt.Errorf("%w: bad %s header %q", ErrMalformedRequest, RingVersionHeader, h)
	}
	f, ok := s.store.(Fencer)
	if !ok {
		return nil
	}
	if fenced := f.FenceVersion(); v < fenced {
		return &WrongShardError{RingVersion: fenced}
	}
	return nil
}

// allowAccount applies the per-account rate limit; with no limiter
// configured every request passes.
func (s *Server) allowAccount(w http.ResponseWriter, account string) bool {
	if s.limiter == nil {
		return true
	}
	wait, ok := s.limiter.allow(account)
	if ok {
		return true
	}
	s.shedRate.Inc()
	w.Header().Set("Retry-After", retryAfterValue(wait))
	s.writeError(w, fmt.Errorf("%w: account %q", ErrRateLimited, account))
	return false
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	return s.decodeLimit(w, r, v, 8<<20)
}

func (s *Server) decodeLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrMalformedRequest, err))
		return false
	}
	return true
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := s.store.Tasks(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := make([]TaskDTO, len(tasks))
	for i, t := range tasks {
		out[i] = TaskDTO{ID: t.ID, Name: t.Name, X: t.X, Y: t.Y}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmissionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.allowAccount(w, req.Account) {
		return
	}
	if err := s.checkRingVersion(r); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Time.IsZero() {
		req.Time = time.Now().UTC()
	}
	if err := s.store.Submit(r.Context(), req.Account, req.Task, req.Value, req.Time); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "accepted"})
}

// MaxBatchItems bounds one POST /v1/reports:batch request. The byte cap
// on the body already bounds the batch; this keeps the admission-gate
// weight arithmetic (and the WAL batch size) in a sane range.
const MaxBatchItems = 4096

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSubmissionRequest
	if !s.decode(w, r, &req) {
		return
	}
	n := len(req.Reports)
	if n > MaxBatchItems {
		s.writeError(w, fmt.Errorf("%w: batch of %d exceeds %d items", ErrMalformedRequest, n, MaxBatchItems))
		return
	}
	if err := s.checkRingVersion(r); err != nil {
		s.writeError(w, err)
		return
	}
	if n == 0 {
		s.writeJSON(w, http.StatusOK, BatchSubmissionResponse{Results: []BatchItemResult{}})
		return
	}
	// Admission cost is proportional to the work: one gate unit per item,
	// acquired only now that the body is decoded and the count known (the
	// gate clamps a batch heavier than its whole capacity so it can still
	// run alone).
	if s.gate != nil {
		weight := n * weightLight
		if weight > s.limits.MaxConcurrent {
			weight = s.limits.MaxConcurrent
		}
		if err := s.gate.acquire(r.Context(), weight, s.limits.QueueTimeout); err != nil {
			s.shedOverload.Inc()
			s.updateGateGauges()
			s.writeError(w, err)
			return
		}
		s.updateGateGauges()
		defer func() {
			s.gate.release(weight)
			s.updateGateGauges()
		}()
	}
	// Rate limiting charges each account for its item count, all or
	// nothing per account: a blocked account's items are rejected
	// per-item with rate_limited while other accounts' items proceed.
	items := make([]BatchSubmission, n)
	perAccount := make(map[string]int)
	for i, rep := range req.Reports {
		at := rep.Time
		if at.IsZero() {
			at = time.Now().UTC()
		}
		items[i] = BatchSubmission{Account: rep.Account, Task: rep.Task, Value: rep.Value, At: at}
		if rep.Account != "" {
			perAccount[rep.Account]++
		}
	}
	var blocked map[string]error
	if s.limiter != nil {
		var maxWait time.Duration
		for acct, cnt := range perAccount {
			if wait, ok := s.limiter.allowN(acct, cnt); !ok {
				if blocked == nil {
					blocked = make(map[string]error)
				}
				blocked[acct] = fmt.Errorf("%w: account %q", ErrRateLimited, acct)
				s.shedRate.Inc()
				if wait > maxWait {
					maxWait = wait
				}
			}
		}
		if blocked != nil {
			w.Header().Set("Retry-After", retryAfterValue(maxWait))
		}
	}
	results := make([]BatchItemResult, n)
	submitIdx := make([]int, 0, n)
	toSubmit := make([]BatchSubmission, 0, n)
	for i := range items {
		if err := blocked[items[i].Account]; err != nil {
			code, _ := codeForError(err)
			results[i] = BatchItemResult{Status: "rejected", Code: code, Error: err.Error()}
			continue
		}
		submitIdx = append(submitIdx, i)
		toSubmit = append(toSubmit, items[i])
	}
	errs := s.store.SubmitBatch(r.Context(), toSubmit)
	for j, i := range submitIdx {
		if err := errs[j]; err != nil {
			code, _ := codeForError(err)
			results[i] = BatchItemResult{Status: "rejected", Code: code, Error: err.Error()}
		} else {
			results[i] = BatchItemResult{Status: "accepted"}
		}
	}
	resp := BatchSubmissionResponse{Results: results}
	for _, res := range results {
		if res.Status == "accepted" {
			resp.Accepted++
		} else {
			resp.Rejected++
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	var req FingerprintRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.allowAccount(w, req.Account) {
		return
	}
	if err := s.checkRingVersion(r); err != nil {
		s.writeError(w, err)
		return
	}
	hasRaw := len(req.AccelX) > 0 || len(req.AccelY) > 0 || len(req.AccelZ) > 0 ||
		len(req.GyroX) > 0 || len(req.GyroY) > 0 || len(req.GyroZ) > 0
	if len(req.Features) > 0 {
		if hasRaw {
			s.writeError(w, fmt.Errorf("%w: both raw capture and feature vector present; send exactly one", ErrBadFingerprint))
			return
		}
		if err := s.store.RecordFingerprintFeatures(r.Context(), req.Account, req.Features); err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
		return
	}
	rec := mems.Recording{
		SampleRate: req.SampleRate,
		AccelX:     req.AccelX, AccelY: req.AccelY, AccelZ: req.AccelZ,
		GyroX: req.GyroX, GyroY: req.GyroY, GyroZ: req.GyroZ,
	}
	if err := s.store.RecordFingerprint(r.Context(), req.Account, rec); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req AggregateRequest
	if !s.decode(w, r, &req) {
		return
	}
	res, unc, err := s.store.Aggregate(r.Context(), req.Method)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := AggregateResponse{
		Method: req.Method,
		Meta: ResponseMeta{
			Iterations:     res.Iterations,
			Converged:      res.Converged,
			Degraded:       res.Degraded,
			DegradedReason: res.DegradedReason,
		},
	}
	for j, v := range res.Truths {
		dto := TruthDTO{Task: j}
		if v == v { // not NaN
			dto.Value = v
			dto.Estimated = true
			if j < len(unc) && !math.IsNaN(unc[j]) && !math.IsInf(unc[j], 0) {
				dto.Uncertainty = unc[j]
			}
		}
		resp.Truths = append(resp.Truths, dto)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleDataset exports the full campaign in the mcs JSON schema, so a
// campaign can be archived and re-aggregated offline.
func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	ds, err := s.store.Dataset(r.Context())
	if err != nil {
		// A partial dataset would silently drop accounts from an archived
		// campaign, so a sharded store fails the export instead of
		// degrading it; surface that as the usual coded error.
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := ds.EncodeJSON(w); err != nil {
		s.logf("platform: export dataset: %v", err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats, err := s.store.Stats(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, stats)
}

// handleReplShip serves the follower half of WAL shipping: the primary
// POSTs sequence-numbered, CRC-carrying frames (or a full snapshot) and
// gets back the follower's durable cursor. The body limit is wider than
// the client-facing routes' — a snapshot ship carries a whole campaign.
func (s *Server) handleReplShip(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		s.writeError(w, fmt.Errorf("%w: replication not configured on this node", ErrUnimplemented))
		return
	}
	var req ReplShipRequest
	if !s.decodeLimit(w, r, &req, 256<<20) {
		return
	}
	resp, err := s.repl.ApplyShip(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleReplRole flips the node's replica role (the router's
// promotion/demotion lever).
func (s *Server) handleReplRole(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		s.writeError(w, fmt.Errorf("%w: replication not configured on this node", ErrUnimplemented))
		return
	}
	var req ReplRoleRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.repl.SetRole(r.Context(), req); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.repl.Status())
}

// handleReplStatus reports the node's replication state. Ungated like the
// health endpoints: the router's failover poller must see role/lag
// precisely when the node is busiest.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		s.writeError(w, fmt.Errorf("%w: replication not configured on this node", ErrUnimplemented))
		return
	}
	s.writeJSON(w, http.StatusOK, s.repl.Status())
}

// handleReplExport serves the migration coordinator's WAL tail read:
// decoded durable records by sequence range (see Exporter). 501 on a
// store with no durable history.
func (s *Server) handleReplExport(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.store.(Exporter)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: WAL export not served on this node", ErrUnimplemented))
		return
	}
	var req ExportRequest
	if !s.decode(w, r, &req) {
		return
	}
	batch, err := exp.ExportSince(r.Context(), req.FromSeq, req.MaxRecords)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, batch)
}

// handleFence installs a resharding fence on this shard (see Fencer): the
// named accounts durably refuse writes with wrong_shard from here on.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	f, ok := s.store.(Fencer)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: fencing not served on this node", ErrUnimplemented))
		return
	}
	var req FenceRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := f.Fence(r.Context(), req.RingVersion, req.Accounts); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, FenceResponse{Status: "fenced", FenceVersion: f.FenceVersion()})
}

// handlePurge drops fenced accounts' data (see FencePurger): the
// post-migration GC the coordinator runs once a reshard is done, also
// available to operators cleaning up after a coordinator that could not
// reach this donor in time.
func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) {
	p, ok := s.store.(FencePurger)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: fence purging not served on this node", ErrUnimplemented))
		return
	}
	var req PurgeRequest
	if !s.decode(w, r, &req) {
		return
	}
	n, err := p.PurgeFenced(r.Context(), req.RingVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, PurgeResponse{Status: "purged", Purged: n})
}

// handleHealthz is liveness: the process is up and serving. Always 200 —
// an overloaded server is alive, and restarting it would only make the
// overload worse.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: whether new traffic should be routed here.
// 503 while draining (shutdown in progress) or while the admission gate is
// saturated (a new arrival would be shed immediately). On a store that
// reports per-shard health (the router), readiness additionally requires
// every shard ready, and the body carries the per-shard breakdown so an
// operator sees which shard flipped the fleet.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, ReadyzResponse{Status: "draining"})
		return
	case s.gate != nil && s.gate.saturated():
		s.writeJSON(w, http.StatusServiceUnavailable, ReadyzResponse{Status: "overloaded"})
		return
	}
	var ring RingStatus
	if rr, ok := s.store.(RingStatusReporter); ok {
		ring = rr.RingStatus()
	}
	if hr, ok := s.store.(HealthReporter); ok {
		shards := hr.ShardHealth(r.Context())
		resp := ReadyzResponse{Status: "ready", Shards: shards,
			RingVersion: ring.Version, Migrating: ring.Migrating}
		status := http.StatusOK
		for _, sh := range shards {
			if !sh.Ready {
				resp.Status = "degraded"
				status = http.StatusServiceUnavailable
				break
			}
		}
		s.writeJSON(w, status, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, ReadyzResponse{Status: "ready",
		RingVersion: ring.Version, Migrating: ring.Migrating})
}

// handleMetricsJSON serves the registry snapshot as JSON: counters,
// gauges, and histogram summaries (count/sum/min/max/p50/p95/p99).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// handleMetricsProm serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logf("platform: write prometheus: %v", err)
	}
}

// TasksFromPOIs builds platform tasks from named coordinates.
func TasksFromPOIs(names []string, xs, ys []float64) ([]mcs.Task, error) {
	if len(names) != len(xs) || len(xs) != len(ys) {
		return nil, errors.New("platform: names/xs/ys length mismatch")
	}
	tasks := make([]mcs.Task, len(names))
	for i := range names {
		tasks[i] = mcs.Task{ID: i, Name: names[i], X: xs[i], Y: ys[i]}
	}
	return tasks, nil
}
