package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
)

// API DTOs. Field names form the wire contract of the platform service.
type (
	// TaskDTO describes a published task.
	TaskDTO struct {
		ID   int     `json:"id"`
		Name string  `json:"name"`
		X    float64 `json:"x"`
		Y    float64 `json:"y"`
	}
	// SubmissionRequest is one sensing report.
	SubmissionRequest struct {
		Account string    `json:"account"`
		Task    int       `json:"task"`
		Value   float64   `json:"value"`
		Time    time.Time `json:"time"`
	}
	// FingerprintRequest carries a sign-in fingerprint: either a raw
	// motion capture (the live path) or an already-extracted feature
	// vector (the replay/import path). Exactly one form must be present.
	FingerprintRequest struct {
		Account    string    `json:"account"`
		SampleRate float64   `json:"sample_rate,omitempty"`
		AccelX     []float64 `json:"accel_x,omitempty"`
		AccelY     []float64 `json:"accel_y,omitempty"`
		AccelZ     []float64 `json:"accel_z,omitempty"`
		GyroX      []float64 `json:"gyro_x,omitempty"`
		GyroY      []float64 `json:"gyro_y,omitempty"`
		GyroZ      []float64 `json:"gyro_z,omitempty"`
		Features   []float64 `json:"features,omitempty"`
	}
	// AggregateRequest names the aggregation method to run.
	AggregateRequest struct {
		Method string `json:"method"`
	}
	// AggregateResponse returns per-task estimates. Tasks with no data are
	// reported with Estimated=false.
	AggregateResponse struct {
		Method string      `json:"method"`
		Truths []TruthDTO  `json:"truths"`
		Meta   ResponseMet `json:"meta"`
	}
	// TruthDTO is one task's estimate. Uncertainty is the weighted
	// standard error (omitted when unavailable or infinite, e.g. for
	// single-report tasks).
	TruthDTO struct {
		Task        int     `json:"task"`
		Value       float64 `json:"value,omitempty"`
		Estimated   bool    `json:"estimated"`
		Uncertainty float64 `json:"uncertainty,omitempty"`
	}
	// ResponseMet carries loop metadata.
	ResponseMet struct {
		Iterations int  `json:"iterations"`
		Converged  bool `json:"converged"`
	}
	// StatsResponse summarizes the store.
	StatsResponse struct {
		Tasks    int `json:"tasks"`
		Accounts int `json:"accounts"`
	}
	// errorResponse is the uniform error body.
	errorResponse struct {
		Error string `json:"error"`
	}
)

// Server exposes a Store over HTTP.
type Server struct {
	store *Store
	mux   *http.ServeMux
	log   *log.Logger
}

// NewServer wires the HTTP handlers. logger may be nil to disable logging.
func NewServer(store *Store, logger *log.Logger) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), log: logger}
	s.mux.HandleFunc("GET /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("POST /v1/submissions", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/fingerprints", s.handleFingerprint)
	s.mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/dataset", s.handleDataset)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("platform: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownTask),
		errors.Is(err, ErrEmptyAccount),
		errors.Is(err, ErrBadFingerprint),
		errors.Is(err, ErrUnknownAggregation):
		status = http.StatusBadRequest
	case errors.Is(err, ErrDuplicateReport):
		status = http.StatusConflict
	case errors.Is(err, ErrTooManyAccounts):
		status = http.StatusTooManyRequests
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("malformed request: %v", err)})
		return false
	}
	return true
}

func (s *Server) handleTasks(w http.ResponseWriter, _ *http.Request) {
	tasks := s.store.Tasks()
	out := make([]TaskDTO, len(tasks))
	for i, t := range tasks {
		out[i] = TaskDTO{ID: t.ID, Name: t.Name, X: t.X, Y: t.Y}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmissionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Time.IsZero() {
		req.Time = time.Now().UTC()
	}
	if err := s.store.Submit(req.Account, req.Task, req.Value, req.Time); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "accepted"})
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	var req FingerprintRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Features) > 0 {
		if err := s.store.RecordFingerprintFeatures(req.Account, req.Features); err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
		return
	}
	rec := mems.Recording{
		SampleRate: req.SampleRate,
		AccelX:     req.AccelX, AccelY: req.AccelY, AccelZ: req.AccelZ,
		GyroX: req.GyroX, GyroY: req.GyroY, GyroZ: req.GyroZ,
	}
	if err := s.store.RecordFingerprint(req.Account, rec); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "recorded"})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req AggregateRequest
	if !s.decode(w, r, &req) {
		return
	}
	res, unc, err := s.store.AggregateWithUncertainty(req.Method)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := AggregateResponse{
		Method: req.Method,
		Meta:   ResponseMet{Iterations: res.Iterations, Converged: res.Converged},
	}
	for j, v := range res.Truths {
		dto := TruthDTO{Task: j}
		if v == v { // not NaN
			dto.Value = v
			dto.Estimated = true
			if j < len(unc) && !math.IsNaN(unc[j]) && !math.IsInf(unc[j], 0) {
				dto.Uncertainty = unc[j]
			}
		}
		resp.Truths = append(resp.Truths, dto)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleDataset exports the full campaign in the mcs JSON schema, so a
// campaign can be archived and re-aggregated offline.
func (s *Server) handleDataset(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.store.Dataset().EncodeJSON(w); err != nil {
		s.logf("platform: export dataset: %v", err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Tasks:    len(s.store.Tasks()),
		Accounts: s.store.NumAccounts(),
	})
}

// TasksFromPOIs builds platform tasks from named coordinates.
func TasksFromPOIs(names []string, xs, ys []float64) ([]mcs.Task, error) {
	if len(names) != len(xs) || len(xs) != len(ys) {
		return nil, errors.New("platform: names/xs/ys length mismatch")
	}
	tasks := make([]mcs.Task, len(names))
	for i := range names {
		tasks[i] = mcs.Task{ID: i, Name: names[i], X: xs[i], Y: ys[i]}
	}
	return tasks, nil
}
