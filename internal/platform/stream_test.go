package platform

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/truth"
)

// newStreamServer builds an isolated-registry server over n tasks plus an
// httptest server in front of it, registering cleanup for both.
func newStreamServer(t *testing.T, n int, opts ServerOptions) (*LocalStore, *Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Registry = reg
	store := NewLocalStore(testTasks(n))
	server := NewServerWithOptions(store, opts)
	ts := httptest.NewServer(server)
	t.Cleanup(func() {
		ts.Close()
		server.Close()
	})
	return store, server, ts, reg
}

// TestWatchReceivesUpdateAfterSubmit is the end-to-end acceptance check:
// a live GET /v1/truths:watch subscriber receives an on-change truth
// update after a plain POST /v1/submissions, over real HTTP, without
// anyone calling /v1/aggregate.
func TestWatchReceivesUpdateAfterSubmit(t *testing.T) {
	_, _, ts, _ := newStreamServer(t, 3, ServerOptions{})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	w, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 1, Value: -61.5}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	u, ok := w.Next(5 * time.Second)
	if !ok {
		t.Fatal("no truth update pushed after submit")
	}
	if u.Task != 1 || u.Value != -61.5 {
		t.Fatalf("update = %+v, want task 1 value -61.5", u)
	}
	if u.Seq == 0 {
		t.Fatalf("update carries no sequence number: %+v", u)
	}
}

// TestWatchReceivesUpdateAfterBatch: the batch ingest path must feed the
// stream too, and only the acknowledged subset of a mixed batch counts.
func TestWatchReceivesUpdateAfterBatch(t *testing.T) {
	_, _, ts, _ := newStreamServer(t, 4, ServerOptions{})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	w, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	results, err := client.SubmitBatch(ctx, []SubmissionRequest{
		{Account: "ana", Task: 2, Value: -70},
		{Account: "bo", Task: 99, Value: -70}, // rejected: unknown task
		{Account: "cy", Task: 2, Value: -72},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if results[1].Err() == nil {
		t.Fatal("expected item 1 to be rejected")
	}
	u, ok := w.Next(5 * time.Second)
	if !ok {
		t.Fatal("no truth update pushed after batch submit")
	}
	if u.Task != 2 {
		t.Fatalf("update for task %d, want 2", u.Task)
	}
	// Two accepted reports, -70 and -72: the estimate lies between them.
	if u.Value < -72 || u.Value > -70 {
		t.Fatalf("estimate %v outside the reported range [-72, -70]", u.Value)
	}
}

// TestFlusherReachableBehindInstrumentedMux is the statusRecorder
// regression test: a handler registered through the instrumented handle()
// wrapper must still be able to stream — both via the legacy
// `w.(http.Flusher)` assertion and via http.ResponseController. Before
// the fix, statusRecorder embedded only the ResponseWriter interface, so
// the underlying Flusher was unreachable and every streaming response
// buffered until the handler returned.
func TestFlusherReachableBehindInstrumentedMux(t *testing.T) {
	store := NewLocalStore(testTasks(1))
	server := NewServerWithOptions(store, ServerOptions{Registry: obs.NewRegistry()})
	defer server.Close()

	var asserted atomic.Bool
	firstChunk := make(chan struct{})
	release := make(chan struct{})
	server.handle("GET /flushprobe", weightLight, func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		asserted.Store(ok)
		if !ok {
			return
		}
		io.WriteString(w, "first\n")
		f.Flush()
		close(firstChunk)
		<-release
		io.WriteString(w, "second\n")
	})
	ts := httptest.NewServer(server)
	defer ts.Close()
	defer close(release)

	resp, err := http.Get(ts.URL + "/flushprobe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The first chunk must arrive while the handler is still running —
	// that is what "can flush" means.
	select {
	case <-firstChunk:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never flushed its first chunk")
	}
	if !asserted.Load() {
		t.Fatal("w.(http.Flusher) failed behind the instrumented mux")
	}
	buf := bufio.NewReader(resp.Body)
	line, err := buf.ReadString('\n')
	if err != nil || line != "first\n" {
		t.Fatalf("first streamed chunk = %q, %v", line, err)
	}
}

// TestWatchOutlivesRequestTimeout pins the timeout exemption: with a
// 50ms per-request deadline and a 150ms server write timeout, a watch
// subscription must keep delivering long after both expired, while normal
// routes still get the deadline attached to their context.
func TestWatchOutlivesRequestTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewLocalStore(testTasks(2))
	server := NewServerWithOptions(store, ServerOptions{
		Registry: reg,
		Limits:   ServerLimits{RequestTimeout: 50 * time.Millisecond},
	})
	defer server.Close()
	var deadlineSet atomic.Bool
	server.handle("GET /deadline-probe", weightLight, func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		deadlineSet.Store(ok)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewUnstartedServer(server)
	ts.Config.ReadTimeout = 150 * time.Millisecond
	ts.Config.WriteTimeout = 150 * time.Millisecond
	ts.Start()
	defer ts.Close()

	// Normal routes still carry the request deadline.
	resp, err := http.Get(ts.URL + "/deadline-probe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !deadlineSet.Load() {
		t.Fatal("normal route lost its request deadline")
	}

	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	w, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	// Sit out both the request timeout (50ms) and the server write
	// timeout (150ms) several times over, then prove the stream is alive.
	time.Sleep(600 * time.Millisecond)
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: -55}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, ok := w.Next(5 * time.Second); !ok {
		t.Fatal("subscription died before outliving the request/write timeouts")
	}
}

// TestStreamCoalescingSlowSubscriber pins latest-wins drop-intermediate
// semantics at the hub: a subscriber that never drains sees intermediate
// values coalesced away (dropped counter > 0) and, on its eventual drain,
// exactly the latest value — while a fast subscriber is fed every step
// without ever blocking on the slow one.
func TestStreamCoalescingSlowSubscriber(t *testing.T) {
	reg := obs.NewRegistry()
	hub, err := NewStreamHub(2, StreamConfig{Epsilon: 1e-12}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	slow, err := hub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := hub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}

	const steps = 50
	var lastVal float64
	for i := 0; i < steps; i++ {
		lastVal = float64(-100 + i)
		hub.Feed([]BatchSubmission{{Account: fmt.Sprintf("a%d", i), Task: 0, Value: lastVal}})
		// The fast subscriber drains continuously and must see progress
		// without waiting on the slow one.
		select {
		case <-fast.Notify():
			fast.Take()
		case <-time.After(2 * time.Second):
			t.Fatalf("fast subscriber starved at step %d while slow subscriber stalled", i)
		}
	}
	// Wait for the hub loop to settle (the estimate runs async).
	deadline := time.Now().Add(5 * time.Second)
	var got []TruthUpdate
	for time.Now().Before(deadline) {
		if got = slow.Take(); len(got) > 0 {
			// The pending buffer holds at most one update per task.
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("slow subscriber drained %d pending updates, want exactly 1 (latest-wins per task)", len(got))
	}
	if got[0].Task != 0 {
		t.Fatalf("pending update for task %d, want 0", got[0].Task)
	}
	if slow.Dropped() == 0 {
		t.Fatal("slow subscriber reports zero dropped updates; intermediates must be coalesced")
	}
	if reg.Counter("stream.dropped_updates").Value() == 0 {
		t.Fatal("hub dropped-updates counter is zero")
	}
	// The estimate moves monotonically toward the last reported value as
	// reports accumulate; the slow drain must carry a late estimate, not
	// the first one.
	if got[0].Value == -100 {
		t.Fatalf("slow subscriber got the first estimate %v; wanted a later, coalesced one", got[0].Value)
	}
}

// smallWriteBufListener shrinks the kernel send buffer of every accepted
// connection so a non-reading peer exerts backpressure after ~100 small
// SSE events instead of after megabytes of loopback buffering.
type smallWriteBufListener struct{ net.Listener }

func (l smallWriteBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		tc.SetWriteBuffer(2048)
	}
	return c, err
}

// TestStreamSlowSubscriberOverHTTP drives the acceptance scenario over a
// real socket: one subscriber never reads its connection while another
// consumes normally. The server must keep pushing to the fast subscriber
// and record dropped (coalesced) updates for the slow one.
func TestStreamSlowSubscriberOverHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewLocalStore(testTasks(1))
	server := NewServerWithOptions(store, ServerOptions{
		Registry: reg,
		Stream:   StreamConfig{Epsilon: 1e-12, WriteWindow: 500 * time.Millisecond},
	})
	defer server.Close()
	ts := httptest.NewUnstartedServer(server)
	ts.Listener = smallWriteBufListener{ts.Listener}
	ts.Start()
	defer ts.Close()

	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Slow subscriber: a raw socket with a tiny receive buffer that sends
	// the watch request and then never reads a byte. Combined with the
	// shrunken server send buffer, the handler's writes block after a
	// bounded number of events.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(2048)
	}
	fmt.Fprintf(conn, "GET /v1/truths:watch HTTP/1.1\r\nHost: slow\r\nAccept: text/event-stream\r\n\r\n")

	fast, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	// Submit until the hub has coalesced at least one update away for the
	// stalled subscriber. Each submit comes from a fresh account, so each
	// genuinely moves the estimate.
	dropped := reg.Counter("stream.dropped_updates")
	var lastSeq uint64
	for i := 0; i < 5000 && dropped.Value() == 0; i++ {
		if err := client.Submit(ctx, SubmissionRequest{
			Account: fmt.Sprintf("acct-%04d", i), Task: 0, Value: float64(i % 97),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		// Drain the fast subscriber opportunistically (non-blocking); it
		// must keep receiving while the slow one stalls.
		for drained := false; !drained; {
			select {
			case u := <-fast.Updates():
				lastSeq = u.Seq
			default:
				drained = true
			}
		}
	}
	if dropped.Value() == 0 {
		t.Fatal("no dropped updates recorded for the stalled subscriber")
	}
	// The fast subscriber keeps making progress after drops occurred.
	if err := client.Submit(ctx, SubmissionRequest{Account: "final", Task: 0, Value: 1000}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		u, ok := fast.Next(time.Second)
		if ok && u.Seq > lastSeq {
			return // progress proven
		}
	}
	t.Fatal("fast subscriber stopped receiving after the slow subscriber stalled")
}

// TestWatchResume: a subscriber that reconnects with its last sequence
// number receives the tasks that changed while it was away — and nothing
// it has already seen when nothing changed.
func TestWatchResume(t *testing.T) {
	_, server, ts, _ := newStreamServer(t, 4, ServerOptions{})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	w, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: -10}); err != nil {
		t.Fatal(err)
	}
	u, ok := w.Next(5 * time.Second)
	if !ok {
		t.Fatal("no initial update")
	}
	seen := u.Seq

	// Disconnect, change a different task while away, reconnect resuming.
	cancel()
	for range w.Updates() {
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := client.Submit(ctx2, SubmissionRequest{Account: "bo", Task: 3, Value: -20}); err != nil {
		t.Fatal(err)
	}
	w2, err := client.Watch(ctx2, WatchOptions{FromSeq: seen})
	if err != nil {
		t.Fatal(err)
	}
	u2, ok := w2.Next(5 * time.Second)
	if !ok {
		t.Fatal("resume delivered nothing")
	}
	if u2.Task != 3 || u2.Seq <= seen {
		t.Fatalf("resume delivered %+v, want the task-3 change after seq %d", u2, seen)
	}
	if u3, ok := w2.Next(300 * time.Millisecond); ok {
		t.Fatalf("resume re-delivered already-seen state: %+v", u3)
	}
	_ = server
}

// TestWatchMaxSubscribers: the cap sheds new subscribers with the
// overloaded wire code, and closing a subscription frees a slot.
func TestWatchMaxSubscribers(t *testing.T) {
	_, _, ts, reg := newStreamServer(t, 1, ServerOptions{
		Stream: StreamConfig{MaxSubscribers: 1},
	})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	first, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	if _, err := client.Watch(ctx, WatchOptions{}); err == nil {
		t.Fatal("second subscription admitted past MaxSubscribers=1")
	} else if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("shed error %v does not carry the overloaded code", err)
	}
	if reg.Counter("stream.subscribe_rejections").Value() == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestStreamSubscriberChurnNoLeak churns 1k hub subscriptions (plus live
// traffic) and checks no goroutines accumulate: the hub runs exactly one
// loop goroutine regardless of subscriber count, and a closed
// subscription leaves nothing behind.
func TestStreamSubscriberChurnNoLeak(t *testing.T) {
	reg := obs.NewRegistry()
	hub, err := NewStreamHub(4, StreamConfig{}, reg)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		sub, err := hub.Subscribe(0)
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		hub.Feed([]BatchSubmission{{Account: fmt.Sprintf("a%d", i%100), Task: i % 4, Value: float64(i)}})
		sub.Take()
		sub.Close()
	}
	if g := reg.Gauge("stream.subscribers").Value(); g != 0 {
		t.Fatalf("subscriber gauge = %d after churn, want 0", g)
	}
	hub.Close()
	// Goroutines park asynchronously; allow them a moment to exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 1k subscriber churn", before, runtime.NumGoroutine())
}

// TestWatchHTTPChurnNoLeak does a smaller churn over real HTTP: every
// closed client connection must terminate its handler goroutine.
func TestWatchHTTPChurnNoLeak(t *testing.T) {
	_, _, ts, reg := newStreamServer(t, 2, ServerOptions{})
	client := NewClient(ts.URL)

	warm, cancelWarm := context.WithCancel(context.Background())
	w, err := client.Watch(warm, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancelWarm()
	for range w.Updates() {
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		wi, err := client.Watch(ctx, WatchOptions{})
		if err != nil {
			t.Fatalf("watch %d: %v", i, err)
		}
		cancel()
		for range wi.Updates() {
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Gauge("stream.subscribers").Value() == 0 && runtime.NumGoroutine() <= before+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("leak after HTTP churn: %d goroutines (baseline %d), %d subscribers still registered",
		runtime.NumGoroutine(), before, reg.Gauge("stream.subscribers").Value())
}

// TestWatchReconnectResumes: the auto-reconnecting watcher survives its
// connection being severed and picks the stream back up with resume.
func TestWatchReconnectResumes(t *testing.T) {
	_, _, ts, _ := newStreamServer(t, 2, ServerOptions{})
	// MaxRetries covers the submit that races the severed connection pool:
	// CloseClientConnections kills pooled submit conns too, so the first
	// POST after the cut can land on a dead socket.
	client := NewClientWithConfig(ts.URL, ClientConfig{MaxRetries: 3, RetryBaseDelay: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	w, err := client.Watch(ctx, WatchOptions{Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: -30}); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Next(5 * time.Second); !ok {
		t.Fatal("no update before the cut")
	}

	// Sever every open client connection; the watcher must redial.
	ts.CloseClientConnections()
	if err := client.Submit(ctx, SubmissionRequest{Account: "bo", Task: 1, Value: -40}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		u, ok := w.Next(time.Second)
		if ok && u.Task == 1 {
			return // reconnected and resumed
		}
	}
	t.Fatal("watcher never recovered after its connection was severed")
}

// TestStreamMetricsExposed: the fan-out metrics ride the standard
// /v1/metrics endpoint.
func TestStreamMetricsExposed(t *testing.T) {
	_, _, ts, _ := newStreamServer(t, 1, ServerOptions{})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	w, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: 5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Next(5 * time.Second); !ok {
		t.Fatal("no update")
	}
	snap, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gauges["stream.subscribers"] != 1 {
		t.Errorf("stream.subscribers = %d, want 1", snap.Gauges["stream.subscribers"])
	}
	if snap.Counters["stream.reports"] == 0 {
		t.Error("stream.reports counter is zero")
	}
	if snap.Counters["stream.pushed_updates"] == 0 {
		t.Error("stream.pushed_updates counter is zero")
	}
	if _, ok := snap.Histograms["stream.push_latency_seconds"]; !ok {
		t.Error("stream.push_latency_seconds histogram missing")
	}
}

// TestStreamSeedsFromExistingData: reports submitted before the server
// (or hub) existed — e.g. recovered from a WAL — appear on the stream as
// the initial snapshot.
func TestStreamSeedsFromExistingData(t *testing.T) {
	store := NewLocalStore(testTasks(2))
	if err := store.Submit(context.Background(), "ana", 1, -42, at(0)); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	server := NewServerWithOptions(store, ServerOptions{Registry: reg})
	ts := httptest.NewServer(server)
	defer ts.Close()
	defer server.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	w, err := NewClient(ts.URL).Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u, ok := w.Next(5 * time.Second)
	if !ok {
		t.Fatal("no snapshot update for pre-existing data")
	}
	if u.Task != 1 || u.Value != -42 {
		t.Fatalf("snapshot update = %+v, want task 1 value -42", u)
	}
}

// TestTakeDeliversMonotoneSeq is the coalescing-order regression test:
// latest-wins replaces a pending update in place, which used to leave the
// task at its old FIFO position, so a drain could emit seq 9 before seq 6.
// A client that disconnected mid-batch would then resume from the max seq
// it saw and permanently skip the lower-seq update it was still owed.
// Take must deliver in ascending Seq order.
func TestTakeDeliversMonotoneSeq(t *testing.T) {
	hub, err := NewStreamHub(3, StreamConfig{}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	sub, err := hub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Close)

	sub.offer(TruthUpdate{Seq: 5, Task: 0, Value: 1})
	sub.offer(TruthUpdate{Seq: 6, Task: 1, Value: 2})
	sub.offer(TruthUpdate{Seq: 9, Task: 0, Value: 3}) // coalesces task 0 in place

	got := sub.Take()
	if len(got) != 2 {
		t.Fatalf("Take returned %d updates, want 2 (coalesced)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("non-monotone delivery: seq %d after seq %d (batch %+v)",
				got[i].Seq, got[i-1].Seq, got)
		}
	}
	if got[0].Seq != 6 || got[1].Seq != 9 {
		t.Fatalf("seqs = [%d, %d], want [6, 9]", got[0].Seq, got[1].Seq)
	}
	if got[1].Value != 3 {
		t.Fatalf("coalesced task 0 carries value %v, want the latest (3)", got[1].Value)
	}
	if d := sub.Dropped(); d != 1 {
		t.Fatalf("dropped = %d, want 1 (the superseded intermediate)", d)
	}
}

// TestStreamConfigClampsMaxIterations: the Online doc promises at most 25
// refinement iterations per re-estimate; an explicit larger value must be
// clamped, not passed through, while smaller explicit values survive.
func TestStreamConfigClampsMaxIterations(t *testing.T) {
	c := StreamConfig{Online: truth.OnlineConfig{MaxIterations: 500}}.withDefaults(4)
	if c.Online.MaxIterations != 25 {
		t.Fatalf("MaxIterations 500 clamped to %d, want 25", c.Online.MaxIterations)
	}
	c = StreamConfig{Online: truth.OnlineConfig{MaxIterations: 3}}.withDefaults(4)
	if c.Online.MaxIterations != 3 {
		t.Fatalf("explicit MaxIterations 3 became %d, want 3", c.Online.MaxIterations)
	}
	c = StreamConfig{}.withDefaults(4)
	if c.Online.MaxIterations != 25 {
		t.Fatalf("zero MaxIterations defaulted to %d, want 25", c.Online.MaxIterations)
	}
}

// TestInvalidStreamOnlineConfigFallsBack: an invalid estimator tuning
// (Decay outside (0, 1]) must not leave the server with a nil hub — it
// falls back to default tuning and the watch stream still works
// end-to-end. Before the fix this panicked on the first submission.
func TestInvalidStreamOnlineConfigFallsBack(t *testing.T) {
	_, _, ts, _ := newStreamServer(t, 2, ServerOptions{
		Stream: StreamConfig{Online: truth.OnlineConfig{Decay: 2}},
	})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	w, err := client.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: -55}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	u, ok := w.Next(5 * time.Second)
	if !ok {
		t.Fatal("no truth update pushed with fallback stream config")
	}
	if u.Task != 0 || u.Value != -55 {
		t.Fatalf("update = %+v, want task 0 value -55", u)
	}
}

// TestSeedSkipsPairsAlreadyFed: the submit listener is installed before
// the seeding snapshot is taken, so a pair can reach the hub via Feed
// first and then appear in the snapshot too. seed must keep the live-fed
// value (at least as new as the snapshot) rather than rewinding it.
func TestSeedSkipsPairsAlreadyFed(t *testing.T) {
	hub, err := NewStreamHub(1, StreamConfig{}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	hub.Feed([]BatchSubmission{{Account: "ana", Task: 0, Value: -60}})
	hub.seed(&mcs.Dataset{
		Tasks: make([]mcs.Task, 1),
		Accounts: []mcs.Account{
			{ID: "ana", Observations: []mcs.Observation{{Task: 0, Value: -90}}}, // stale snapshot of ana
			{ID: "bo", Observations: []mcs.Observation{{Task: 0, Value: -58}}},  // snapshot-only, must land
		},
	})
	hub.estMu.Lock()
	ests := hub.est.Estimate()
	hub.estMu.Unlock()
	// ana's live -60 must survive the stale -90 replay; with bo's -58 the
	// estimate lies between the two live reports.
	if ests[0] < -60 || ests[0] > -58 {
		t.Fatalf("estimate %v outside [-60, -58]: seed overwrote a live feed", ests[0])
	}
}
