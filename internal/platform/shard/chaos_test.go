package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/platform"
)

// crashableShard is one durable shard process stand-in: a stable listener
// whose handler can be swapped, so "kill -9" (abort the WAL without a
// final snapshot, answer nothing) and "restart" (recover the data dir,
// serve again on the same address) happen without the listener moving —
// exactly what a supervisor restarting a crashed process looks like to
// the router.
type crashableShard struct {
	t   *testing.T
	dir string

	mu    sync.RWMutex
	alive bool
	store *platform.LocalStore
	d     *platform.Durability
	api   *platform.Server

	srv *httptest.Server
}

func newCrashableShard(t *testing.T, dir string, tasks int) *crashableShard {
	t.Helper()
	s := &crashableShard{t: t, dir: dir}
	s.srv = httptest.NewServer(http.HandlerFunc(s.serve))
	t.Cleanup(s.srv.Close)
	s.start(tasks)
	return s
}

func (s *crashableShard) serve(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	alive, api := s.alive, s.api
	s.mu.RUnlock()
	if !alive {
		// A dead process answers nothing: abort the connection so the
		// router sees a transport error, not a well-formed HTTP response.
		panic(http.ErrAbortHandler)
	}
	api.ServeHTTP(w, r)
}

func (s *crashableShard) start(tasks int) {
	s.t.Helper()
	store, d, _, err := platform.OpenDurable(s.dir, testTasks(tasks), platform.DurableOptions{
		CommitLinger:   time.Millisecond,
		CommitMaxBatch: 8,
	})
	if err != nil {
		s.t.Fatalf("open shard dir %s: %v", s.dir, err)
	}
	s.mu.Lock()
	s.store, s.d, s.api, s.alive = store, d, platform.NewServer(store, nil), true
	s.mu.Unlock()
}

// kill simulates the process dying mid-flight: the WAL handle closes with
// no final snapshot, and the listener stops answering.
func (s *crashableShard) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive = false
	s.api.Close()
	if err := s.d.Abort(); err != nil {
		s.t.Errorf("abort shard durability: %v", err)
	}
}

// restart recovers the shard's data dir and serves again.
func (s *crashableShard) restart(tasks int) { s.start(tasks) }

// TestChaosShardedZeroAckedLoss is the sharded chaos campaign: a 3-shard
// durable fleet behind a router, a concurrent submission load, one shard
// killed (WAL aborted, connection refused) mid-campaign and later
// restarted from its data dir. The contract under test:
//
//   - writes owned by the dead shard fail retryably (shard_unavailable) —
//     and ONLY those; the other shards keep acknowledging throughout;
//   - aggregation and stats keep answering, flagged degraded, while the
//     dataset export fails retryably;
//   - /readyz names the dead shard;
//   - after recovery every acknowledged submission — including acks from
//     before the kill — is present with the right value: zero acked loss;
//   - the final router aggregation is bit-identical to a single-node run
//     over the merged dataset.
func TestChaosShardedZeroAckedLoss(t *testing.T) {
	const (
		numTasks      = 3
		phase1Workers = 12
		phase2Workers = 12
	)
	root := t.TempDir()
	shards := make([]*crashableShard, 3)
	backends := make([]platform.Store, 3)
	addrs := make([]string, 3)
	for i := range shards {
		shards[i] = newCrashableShard(t, filepath.Join(root, fmt.Sprintf("shard-%d", i)), numTasks)
		addrs[i] = shards[i].srv.URL
		backends[i] = platform.NewRemoteStore(platform.NewClient(addrs[i],
			platform.WithRetries(2),
			platform.WithBackoff(time.Millisecond, 10*time.Millisecond),
		))
	}
	store, err := New(context.Background(), backends, Options{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	routerAPI := platform.NewServer(store, nil)
	router := httptest.NewServer(routerAPI)
	t.Cleanup(router.Close)
	t.Cleanup(routerAPI.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type acked struct {
		account string
		task    int
		value   float64
	}
	var (
		mu       sync.Mutex
		ackedSet []acked
		failed   []platform.SubmissionRequest
	)
	load := func(phase string, workers int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				client := platform.NewClient(router.URL,
					platform.WithRetries(3),
					platform.WithBackoff(time.Millisecond, 20*time.Millisecond),
				)
				account := fmt.Sprintf("%s-acct-%d", phase, w)
				for task := 0; task < numTasks; task++ {
					req := platform.SubmissionRequest{
						Account: account, Task: task,
						Value: float64(-60 - w - task), Time: at(w*numTasks + task),
					}
					err := client.Submit(ctx, req)
					mu.Lock()
					// A duplicate rejection on retry proves the write
					// landed before its ack was lost: it counts as acked.
					if err == nil || errors.Is(err, platform.ErrDuplicateReport) {
						ackedSet = append(ackedSet, acked{req.Account, req.Task, req.Value})
					} else {
						failed = append(failed, req)
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: all shards healthy; every submission must ack.
	load("p1", phase1Workers)
	if len(failed) != 0 {
		t.Fatalf("healthy fleet rejected %d submissions: %v", len(failed), failed[0])
	}

	// Kill shard 1 — hard: the WAL closes with no final snapshot, so only
	// fsynced-before-ack records survive, which is exactly the durability
	// promise being tested.
	shards[1].kill()

	// Phase 2: concurrent load against a degraded fleet, plus degraded
	// reads in flight at the same time.
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		client := platform.NewClient(router.URL, platform.WithRetries(0))
		sawDegradedAgg, sawDegradedStats := false, false
		for i := 0; i < 20; i++ {
			if agg, err := client.Aggregate(ctx, "mean"); err == nil && agg.Meta.Degraded {
				sawDegradedAgg = true
			}
			if st, err := client.Stats(ctx); err == nil && st.Degraded {
				sawDegradedStats = true
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !sawDegradedAgg || !sawDegradedStats {
			t.Errorf("degraded fleet never served a degraded answer (agg=%v stats=%v)",
				sawDegradedAgg, sawDegradedStats)
		}
	}()
	load("p2", phase2Workers)
	readWG.Wait()

	// Only submissions owned by the dead shard may have failed, and every
	// failure must be the retryable shard_unavailable.
	mu.Lock()
	for _, req := range failed {
		if sh := store.Shard(req.Account); sh != 1 {
			t.Errorf("submission for %s (shard %d) failed with shard 1 down", req.Account, sh)
		}
	}
	phase2Failed := len(failed)
	mu.Unlock()
	if phase2Failed == 0 {
		t.Error("no submission was owned by the dead shard; the campaign proves nothing")
	}

	// The strict read fails retryably; readyz names the dead shard.
	probe := platform.NewClient(router.URL, platform.WithRetries(0))
	if _, err := probe.Dataset(ctx); !errors.Is(err, platform.ErrShardUnavailable) {
		t.Errorf("dataset with dead shard = %v, want ErrShardUnavailable", err)
	}
	rz, err := probe.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != "degraded" || rz.Shards[1].Ready || rz.Shards[1].Status != "unreachable" {
		t.Errorf("readyz during outage = %+v, want degraded with shard 1 unreachable", rz)
	}

	// Restart shard 1 from its data dir and drain the failed submissions.
	shards[1].restart(numTasks)
	mu.Lock()
	retry := append([]platform.SubmissionRequest(nil), failed...)
	failed = failed[:0]
	mu.Unlock()
	client := platform.NewClient(router.URL,
		platform.WithRetries(3),
		platform.WithBackoff(time.Millisecond, 20*time.Millisecond),
	)
	for _, req := range retry {
		err := client.Submit(ctx, req)
		if err != nil && !errors.Is(err, platform.ErrDuplicateReport) {
			t.Fatalf("post-recovery submit %s/%d: %v", req.Account, req.Task, err)
		}
		mu.Lock()
		ackedSet = append(ackedSet, acked{req.Account, req.Task, req.Value})
		mu.Unlock()
	}
	rz, err = probe.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != "ready" {
		t.Errorf("readyz after recovery = %+v, want ready", rz)
	}

	// Zero acked loss: every acknowledged submission — including phase-1
	// acks that lived only in shard 1's WAL when it died — is in the
	// merged dataset with the right value.
	ds, err := probe.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	values := make(map[string]map[int]float64, ds.NumAccounts())
	for _, acct := range ds.Accounts {
		values[acct.ID] = make(map[int]float64, len(acct.Observations))
		for _, obs := range acct.Observations {
			values[acct.ID][obs.Task] = obs.Value
		}
	}
	want := (phase1Workers + phase2Workers) * numTasks
	if len(ackedSet) != want {
		t.Errorf("%d acked submissions, want %d (every submission eventually acked)", len(ackedSet), want)
	}
	for _, a := range ackedSet {
		v, ok := values[a.account][a.task]
		if !ok {
			t.Errorf("ACKED DATA LOST: %s task %d missing from the recovered fleet", a.account, a.task)
			continue
		}
		if v != a.value {
			t.Errorf("acked %s task %d = %v, recovered %v", a.account, a.task, a.value, v)
		}
	}

	// Bit-identical aggregation: the router's answer equals a single-node
	// run over the merged dataset it exported.
	for _, method := range []string{"mean", "crh", "td-ts"} {
		agg, err := probe.Aggregate(ctx, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if agg.Meta.Degraded {
			t.Errorf("%s degraded after full recovery: %q", method, agg.Meta.DegradedReason)
		}
		res, _, err := platform.AggregateDataset(ctx, method, ds)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		for _, tr := range agg.Truths {
			if !tr.Estimated {
				if tr.Task < len(res.Truths) && !math.IsNaN(res.Truths[tr.Task]) {
					t.Errorf("%s task %d: router unestimated, single-node %v", method, tr.Task, res.Truths[tr.Task])
				}
				continue
			}
			if tr.Value != res.Truths[tr.Task] {
				t.Errorf("%s task %d: router %v != single-node %v (not bit-identical)",
					method, tr.Task, tr.Value, res.Truths[tr.Task])
			}
		}
	}
}
