// Package shard turns N independent platform nodes into one: a
// consistent-hash ring routes every account to exactly one shard, writes
// go to the owning shard, and reads that need the whole campaign
// (dataset, aggregation, stats) scatter-gather across all of them. The
// composite shard.Store implements platform.Store, so the router in
// front of the fleet is the unchanged platform.Server serving the
// unchanged /v1 wire API.
package shard

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count when Options
// leaves it zero. 128 points per shard keeps the expected load imbalance
// across a handful of shards in the low single-digit percents.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over shard indices. Keys (account IDs)
// map to the successor of their hash among every shard's virtual points,
// so adding or removing one shard moves only ~1/N of the keyspace and
// account→shard assignment is stable across process restarts — which is
// what keeps an account's duplicate-report guard on a single WAL.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring for shards shards with virtualNodes points each
// (<= 0 means DefaultVirtualNodes). Panics if shards < 1: a ring over
// nothing is a programming error, not a runtime condition.
func NewRing(shards, virtualNodes int) *Ring {
	if shards < 1 {
		panic("shard: ring needs at least one shard")
	}
	seeds := make([]int, shards)
	for s := range seeds {
		seeds[s] = s
	}
	return NewRingWeighted(seeds, nil, virtualNodes)
}

// NewRingWeighted builds a ring whose virtual-point labels derive from a
// stable per-group seed rather than the group's slice position. Seeds are
// what make shrink minimal: when group i retires, the survivors keep
// their seeds — and therefore their exact virtual points — so the only
// keys that move are the retired group's. A positional labeling would
// relabel every group after the gap and reshuffle the whole keyspace.
//
// weights scales each group's virtual-point count:
// round(weight*virtualNodes), floored at one point so every group owns
// some keyspace. nil means uniform 1.0 — in which case the ring is
// point-for-point identical to NewRing over the same seed sequence.
// Operator rebalancing for heterogeneous hardware is a weight-vector
// change: only the delta's worth of keys moves, in proportion.
//
// Panics on empty seeds, duplicate seeds, mismatched lengths, or a
// weight that is not a positive finite number — all programming errors;
// the Store validates operator input before building rings.
func NewRingWeighted(seeds []int, weights []float64, virtualNodes int) *Ring {
	if len(seeds) < 1 {
		panic("shard: ring needs at least one shard")
	}
	if weights != nil && len(weights) != len(seeds) {
		panic("shard: ring weights must match seeds")
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(seeds)*virtualNodes), shards: len(seeds)}
	seen := make(map[int]bool, len(seeds))
	for s, seed := range seeds {
		if seen[seed] {
			panic("shard: duplicate ring seed")
		}
		seen[seed] = true
		w := 1.0
		if weights != nil {
			w = weights[s]
		}
		if !(w > 0) || math.IsInf(w, 0) {
			panic("shard: ring weight must be a positive finite number")
		}
		n := int(math.Round(w * float64(virtualNodes)))
		if n < 1 {
			n = 1
		}
		for v := 0; v < n; v++ {
			h := hashKey(fmt.Sprintf("shard-%d/vnode-%d", seed, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break by shard index
		// so the ring is deterministic regardless of sort stability.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Shard maps key to its owning shard: the first virtual point at or after
// the key's hash, wrapping at the top of the ring.
func (r *Ring) Shard(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Replicas maps key to the n distinct shards that would host its replica
// group: the owner (same as Shard) followed by the next distinct shards
// met walking the ring clockwise, skipping virtual points of shards
// already chosen. n is clamped to the shard count — a ring cannot place
// two replicas of one group on the same shard, because one machine dying
// would then take both. With replica groups layered on top (each shard
// being a primary+followers group), this walk is how resharding with
// replication keeps key movement minimal: adding a shard re-homes only
// the ring segments it captures, same as the unreplicated ring.
func (r *Ring) Replicas(key string, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > r.shards {
		n = r.shards
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}

// Moved reports whether key's owning shard differs between two rings —
// the per-key form of the reshard delta. Growing a ring by one shard
// moves a key only when the new shard's virtual points capture its hash
// segment, so for any old/new pair produced by adding one shard, every
// moved key lands on the new shard (the property test pins this; the
// migration coordinator and the donor fence lists are built on it).
func Moved(oldRing, newRing *Ring, key string) bool {
	return oldRing.Shard(key) != newRing.Shard(key)
}

// hashKey is 64-bit FNV-1a finished with a splitmix64-style avalanche:
// fast and dependency-free (this is load balancing, not authentication).
// Raw FNV-1a clusters badly on short near-identical keys — vnode labels
// differ in a character or two, and without the finalizer a 4-shard/128-
// vnode ring showed a 1.6x load skew; the finalizer spreads single-bit
// input differences across the whole word.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
