package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingWeightedUniformIdentity pins the backward-compatibility anchor
// for weighted rings: nil weights, an explicit all-ones weight vector,
// and the positional NewRing constructor must all produce the same
// key→shard assignment. Every ring built before weights existed keeps
// exactly its old placement — upgrading the binary moves zero keys.
func TestRingWeightedUniformIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5} {
		seeds := make([]int, n)
		ones := make([]float64, n)
		for i := range seeds {
			seeds[i] = i
			ones[i] = 1.0
		}
		positional := NewRing(n, 32)
		nilWeights := NewRingWeighted(seeds, nil, 32)
		oneWeights := NewRingWeighted(seeds, ones, 32)
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("acct-%d-%d", rng.Int63(), i)
			p := positional.Shard(key)
			if got := nilWeights.Shard(key); got != p {
				t.Fatalf("n=%d key %q: nil-weight ring says %d, positional says %d", n, key, got, p)
			}
			if got := oneWeights.Shard(key); got != p {
				t.Fatalf("n=%d key %q: all-ones ring says %d, positional says %d", n, key, got, p)
			}
		}
	}
}

// TestRingWeightedMovementProportional is the rebalance-delta property
// test: changing one group's weight moves only the keys the weight delta
// accounts for, and moves them in the right direction. Upweighting group
// 0 only ADDS virtual points for group 0 (labels are seed-stable and the
// per-group point list is a prefix under scaling), so every moved key
// must land ON group 0; downweighting only removes group 0's points, so
// every moved key must come FROM group 0. The moved fraction tracks the
// ownership-share delta.
func TestRingWeightedMovementProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seeds := []int{0, 1, 2}
	base := NewRingWeighted(seeds, nil, 64)
	const keys = 4000

	t.Run("upweight", func(t *testing.T) {
		up := NewRingWeighted(seeds, []float64{2, 1, 1}, 64)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("acct-%d-%d", rng.Int63(), i)
			if base.Shard(key) == up.Shard(key) {
				continue
			}
			moved++
			if got := up.Shard(key); got != 0 {
				t.Fatalf("key %q moved to group %d, want the upweighted group 0", key, got)
			}
		}
		// Share goes 1/3 → 2/4: expect ~1/6 of the keyspace to move.
		frac := float64(moved) / keys
		want := 1.0/2 - 1.0/3
		if frac < want/2 || frac > want*2 {
			t.Errorf("upweight moved fraction %.3f, want about %.3f", frac, want)
		}
	})

	t.Run("downweight", func(t *testing.T) {
		down := NewRingWeighted(seeds, []float64{0.5, 1, 1}, 64)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("acct-%d-%d", rng.Int63(), i)
			if base.Shard(key) == down.Shard(key) {
				continue
			}
			moved++
			if got := base.Shard(key); got != 0 {
				t.Fatalf("key %q moved off group %d, want moves only off the downweighted group 0", key, got)
			}
		}
		// Share goes 1/3 → 0.5/2.5: expect ~2/15 of the keyspace to move.
		frac := float64(moved) / keys
		want := 1.0/3 - 0.5/2.5
		if frac < want/2 || frac > want*2 {
			t.Errorf("downweight moved fraction %.3f, want about %.3f", frac, want)
		}
	})
}

// TestRingMovedOnShrink is the decommission-delta property test: removing
// one group from a seed-stable ring moves exactly the retired group's
// keys — survivors keep their seeds, therefore their exact virtual
// points, therefore every key they already owned. This is what makes a
// live decommission a single-donor migration: the drain only ever reads
// from the retiring group.
func TestRingMovedOnShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const retired = 2
	oldRing := NewRing(4, 32)
	// Survivors keep seeds {0,1,3}; their new slice positions are 0,1,2.
	newRing := NewRingWeighted([]int{0, 1, 3}, nil, 32)
	seedToNew := map[int]int{0: 0, 1: 1, 3: 2}

	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("acct-%d-%d", rng.Int63(), i)
		oldOwner := oldRing.Shard(key)
		newOwner := newRing.Shard(key)
		if oldOwner == retired {
			moved++
			continue // re-homed somewhere among the survivors
		}
		// A survivor's key must stay with the same seed.
		if want := seedToNew[oldOwner]; newOwner != want {
			t.Fatalf("key %q owned by surviving seed %d moved to slice position %d, want %d",
				key, oldOwner, newOwner, want)
		}
	}
	// The retired group owned ~1/4 of the keyspace.
	frac := float64(moved) / keys
	if frac < 0.25/2 || frac > 0.25*2 {
		t.Errorf("retired group owned fraction %.3f, want about 0.250", frac)
	}
}

// TestRingWeightedValidationPanics pins the constructor's programming-
// error contract: duplicate seeds, mismatched weight length, and
// non-positive weights all panic rather than silently building a ring
// with undefined placement.
func TestRingWeightedValidationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate seeds", func() { NewRingWeighted([]int{0, 1, 1}, nil, 8) })
	mustPanic("empty seeds", func() { NewRingWeighted(nil, nil, 8) })
	mustPanic("weight length mismatch", func() { NewRingWeighted([]int{0, 1}, []float64{1}, 8) })
	mustPanic("zero weight", func() { NewRingWeighted([]int{0, 1}, []float64{1, 0}, 8) })
	mustPanic("negative weight", func() { NewRingWeighted([]int{0, 1}, []float64{1, -2}, 8) })
}
