package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sybiltd/internal/platform"
)

// wireCase provokes one stable wire code on one /v1 route and states the
// full contract: HTTP status, code string, and the typed sentinel the
// code must round-trip to through errors.Is.
type wireCase struct {
	name       string
	method     string
	path       string
	body       string
	wantStatus int
	wantCode   string
	sentinel   error
	routerOnly bool // needs a sharded topology (e.g. a dead shard)
	localOnly  bool // needs single-node store knobs (e.g. the account cap)
}

// wireCases returns the conformance table. seedAccount already has a
// report on task 0, liveAccount is a fresh account on a reachable shard
// (task validation happens on the owning shard), capAccount trips the
// account cap (single-node), and deadAccount is owned by a shard that is
// down (router).
func wireCases(seedAccount, liveAccount, capAccount, deadAccount string) []wireCase {
	return []wireCase{
		{
			name: "submissions empty account", method: "POST", path: "/v1/submissions",
			body:       `{"account":"","task":0,"value":1}`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeEmptyAccount,
			sentinel: platform.ErrEmptyAccount,
		},
		{
			name: "submissions unknown task", method: "POST", path: "/v1/submissions",
			body:       `{"account":"` + liveAccount + `","task":99,"value":1}`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeUnknownTask,
			sentinel: platform.ErrUnknownTask,
		},
		{
			name: "submissions duplicate", method: "POST", path: "/v1/submissions",
			body:       `{"account":"` + seedAccount + `","task":0,"value":1}`,
			wantStatus: http.StatusConflict, wantCode: platform.CodeDuplicateReport,
			sentinel: platform.ErrDuplicateReport,
		},
		{
			name: "submissions malformed body", method: "POST", path: "/v1/submissions",
			body:       `{"account":`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeMalformedRequest,
			sentinel: platform.ErrMalformedRequest,
		},
		{
			name: "batch malformed body", method: "POST", path: "/v1/reports:batch",
			body:       `[]`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeMalformedRequest,
			sentinel: platform.ErrMalformedRequest,
		},
		{
			name: "fingerprints both forms", method: "POST", path: "/v1/fingerprints",
			body:       `{"account":"conf-fp","features":[1,2],"accel_x":[1,2,3]}`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeBadFingerprint,
			sentinel: platform.ErrBadFingerprint,
		},
		{
			name: "aggregate unknown method", method: "POST", path: "/v1/aggregate",
			body:       `{"method":"quantum"}`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeUnknownAggregation,
			sentinel: platform.ErrUnknownAggregation,
		},
		{
			name: "aggregate malformed body", method: "POST", path: "/v1/aggregate",
			body:       `not json`,
			wantStatus: http.StatusBadRequest, wantCode: platform.CodeMalformedRequest,
			sentinel: platform.ErrMalformedRequest,
		},
		{
			name: "submissions account cap", method: "POST", path: "/v1/submissions",
			body:       `{"account":"` + capAccount + `","task":0,"value":1}`,
			wantStatus: http.StatusTooManyRequests, wantCode: platform.CodeAccountCapReached,
			sentinel: platform.ErrTooManyAccounts, localOnly: true,
		},
		{
			name: "submissions wrong shard", method: "POST", path: "/v1/submissions",
			body:       `{"account":"conf-fenced","task":0,"value":1}`,
			wantStatus: http.StatusServiceUnavailable, wantCode: platform.CodeWrongShard,
			sentinel: platform.ErrWrongShard, localOnly: true,
		},
		{
			name: "submissions shard unavailable", method: "POST", path: "/v1/submissions",
			body:       `{"account":"` + deadAccount + `","task":0,"value":1}`,
			wantStatus: http.StatusServiceUnavailable, wantCode: platform.CodeShardUnavailable,
			sentinel: platform.ErrShardUnavailable, routerOnly: true,
		},
		{
			name: "fingerprints shard unavailable", method: "POST", path: "/v1/fingerprints",
			body:       `{"account":"` + deadAccount + `","features":[1,2,3]}`,
			wantStatus: http.StatusServiceUnavailable, wantCode: platform.CodeShardUnavailable,
			sentinel: platform.ErrShardUnavailable, routerOnly: true,
		},
		{
			name: "dataset shard unavailable", method: "GET", path: "/v1/dataset",
			wantStatus: http.StatusServiceUnavailable, wantCode: platform.CodeShardUnavailable,
			sentinel: platform.ErrShardUnavailable, routerOnly: true,
		},
	}
}

// runWireCases fires each applicable case at base and checks the triple
// (HTTP status, wire code, sentinel round-trip). The sentinel check is the
// same mapping the client's APIError.Unwrap performs, so it proves
// errors.Is works across the wire for every code the route can emit.
func runWireCases(t *testing.T, base string, cases []wireCase, router bool) {
	t.Helper()
	for _, tc := range cases {
		if (tc.routerOnly && !router) || (tc.localOnly && router) {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = bytes.NewReader([]byte(tc.body))
			}
			req, err := http.NewRequest(tc.method, base+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("HTTP %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var er platform.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			if er.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", er.Code, tc.wantCode)
			}
			if er.Error == "" {
				t.Error("error body has no human-readable message")
			}
			wire := &platform.APIError{Code: er.Code, Message: er.Error, Status: resp.StatusCode}
			if !errors.Is(wire, tc.sentinel) {
				t.Errorf("errors.Is(%v, %v) = false: code %q does not round-trip", wire, tc.sentinel, er.Code)
			}
		})
	}
}

func TestWireCodeConformanceSingleNode(t *testing.T) {
	store := platform.NewLocalStore(testTasks(1))
	store.SetMaxAccounts(2)
	api := platform.NewServer(store, nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	t.Cleanup(api.Close)

	ctx := context.Background()
	if err := store.Submit(ctx, "conf-seed", 0, 1, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	// The "unknown task" case registers its account; fill the remaining
	// cap slot so the cap case trips.
	if err := store.Submit(ctx, "conf-unknown-task", 0, 1, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	// The wrong-shard case needs a fenced account: after a reshard hands
	// an account to another group, mutations naming it answer wrong_shard.
	if err := store.Fence(ctx, 1, []string{"conf-fenced"}); err != nil {
		t.Fatal(err)
	}
	runWireCases(t, srv.URL, wireCases("conf-seed", "conf-unknown-task", "conf-over-cap", ""), false)

	// Batch items carry the same codes positionally, and BatchItemResult
	// round-trips them to sentinels via Err().
	client := platform.NewClient(srv.URL, platform.WithHTTPClient(srv.Client()), platform.WithRetries(0))
	results, err := client.SubmitBatch(ctx, []platform.SubmissionRequest{
		{Account: "conf-seed", Task: 0, Value: 1},  // duplicate
		{Account: "conf-seed", Task: 42, Value: 1}, // unknown task
		{Account: "", Task: 0, Value: 1},           // empty account
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []error{platform.ErrDuplicateReport, platform.ErrUnknownTask, platform.ErrEmptyAccount} {
		if !errors.Is(results[i].Err(), want) {
			t.Errorf("batch item %d = %v, want %v", i, results[i].Err(), want)
		}
	}
}

func TestWireCodeConformanceRouter(t *testing.T) {
	f := newHTTPFleet(t, 3, 1)
	ctx := context.Background()
	owners := accountsPerShard(f.store)
	if err := f.client.Submit(ctx, platform.SubmissionRequest{Account: owners[0], Task: 0, Value: 1, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	// Kill shard 1 so its owner account provokes shard_unavailable (and
	// the strict dataset read fails retryably).
	f.shardHTTP[1].Close()
	runWireCases(t, f.router.URL, wireCases(owners[0], owners[0], "", owners[1]), true)
}
