package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/platform"
	"sybiltd/internal/truth"
)

func testTasks(n int) []mcs.Task {
	tasks := make([]mcs.Task, n)
	for i := range tasks {
		tasks[i] = mcs.Task{ID: i, Name: fmt.Sprintf("POI-%d", i+1), X: float64(i) * 10, Y: 0}
	}
	return tasks
}

func at(min int) time.Time {
	return time.Date(2026, 7, 1, 10, min, 0, 0, time.UTC)
}

// newLocalFleet builds a sharded store over n in-process LocalStore
// backends sharing one task list.
func newLocalFleet(t *testing.T, shards, tasks int) (*Store, []*platform.LocalStore) {
	t.Helper()
	backends := make([]platform.Store, shards)
	locals := make([]*platform.LocalStore, shards)
	for i := range backends {
		locals[i] = platform.NewLocalStore(testTasks(tasks))
		backends[i] = locals[i]
	}
	s, err := New(context.Background(), backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, locals
}

// accountsPerShard returns one account name owned by each shard,
// discovered by probing the ring.
func accountsPerShard(s *Store) []string {
	out := make([]string, s.Shards())
	found := 0
	for i := 0; found < s.Shards(); i++ {
		name := fmt.Sprintf("acct-%d", i)
		sh := s.Shard(name)
		if out[sh] == "" {
			out[sh] = name
			found++
		}
	}
	return out
}

func TestShardStoreRoutesWritesToOwner(t *testing.T) {
	s, locals := newLocalFleet(t, 3, 2)
	owners := accountsPerShard(s)
	for sh, account := range owners {
		if err := s.Submit(context.Background(), account, 0, float64(10+sh), at(sh)); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordFingerprintFeatures(context.Background(), account, []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Each backend must hold exactly the one account routed to it.
	for sh, local := range locals {
		if n := local.NumAccounts(); n != 1 {
			t.Errorf("shard %d holds %d accounts, want 1", sh, n)
		}
		ds, _ := local.Dataset(context.Background())
		if len(ds.Accounts) != 1 || ds.Accounts[0].ID != owners[sh] {
			t.Errorf("shard %d holds %v, want [%s]", sh, ds.Accounts, owners[sh])
		}
	}
	// The duplicate guard lives with the owning shard: a second submit for
	// the same (account, task) is rejected no matter how it is routed.
	if err := s.Submit(context.Background(), owners[0], 0, 99, at(9)); !errors.Is(err, platform.ErrDuplicateReport) {
		t.Errorf("duplicate submit: %v, want ErrDuplicateReport", err)
	}
	if err := s.Submit(context.Background(), "", 0, 1, at(0)); !errors.Is(err, platform.ErrEmptyAccount) {
		t.Errorf("empty account: %v, want ErrEmptyAccount", err)
	}
}

func TestShardStoreSubmitBatchPositional(t *testing.T) {
	s, _ := newLocalFleet(t, 3, 2)
	owners := accountsPerShard(s)
	// Seed a report so position 3 below is an in-store duplicate.
	if err := s.Submit(context.Background(), owners[1], 0, 5, at(0)); err != nil {
		t.Fatal(err)
	}
	items := []platform.BatchSubmission{
		{Account: owners[0], Task: 0, Value: 1, At: at(1)},          // ok
		{Account: owners[2], Task: 1, Value: 2, At: at(1)},          // ok
		{Account: owners[0], Task: 1, Value: math.NaN(), At: at(1)}, // NaN
		{Account: owners[1], Task: 0, Value: 3, At: at(1)},          // duplicate
		{Account: "", Task: 0, Value: 4, At: at(1)},                 // empty account
		{Account: owners[1], Task: 9, Value: 5, At: at(1)},          // unknown task
		{Account: owners[2], Task: 0, Value: 6, At: at(1)},          // ok
	}
	errs := s.SubmitBatch(context.Background(), items)
	if len(errs) != len(items) {
		t.Fatalf("got %d results for %d items", len(errs), len(items))
	}
	wantOK := []int{0, 1, 6}
	for _, i := range wantOK {
		if errs[i] != nil {
			t.Errorf("item %d: %v, want accepted", i, errs[i])
		}
	}
	for i, sentinel := range map[int]error{
		2: platform.ErrMalformedRequest,
		3: platform.ErrDuplicateReport,
		4: platform.ErrEmptyAccount,
		5: platform.ErrUnknownTask,
	} {
		if !errors.Is(errs[i], sentinel) {
			t.Errorf("item %d: %v, want %v", i, errs[i], sentinel)
		}
	}
}

// failingStore wraps a Store and fails every operation, simulating an
// unreachable shard process.
type failingStore struct {
	platform.Store
	err error
}

func (f *failingStore) Submit(ctx context.Context, account string, task int, value float64, at time.Time) error {
	return f.err
}
func (f *failingStore) SubmitBatch(ctx context.Context, items []platform.BatchSubmission) []error {
	errs := make([]error, len(items))
	for i := range errs {
		errs[i] = f.err
	}
	return errs
}
func (f *failingStore) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	return f.err
}
func (f *failingStore) RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error {
	return f.err
}
func (f *failingStore) Dataset(ctx context.Context) (*mcs.Dataset, error) { return nil, f.err }
func (f *failingStore) Aggregate(ctx context.Context, method string) (truth.Result, []float64, error) {
	return truth.Result{}, nil, f.err
}
func (f *failingStore) Stats(ctx context.Context) (platform.StatsResponse, error) {
	return platform.StatsResponse{}, f.err
}
func (f *failingStore) Ready(ctx context.Context) (platform.ReadyzResponse, error) {
	return platform.ReadyzResponse{}, f.err
}

func TestShardStoreSubmitBatchOneShardDown(t *testing.T) {
	backends := make([]platform.Store, 3)
	for i := range backends {
		backends[i] = platform.NewLocalStore(testTasks(2))
	}
	down := fmt.Errorf("%w: connection refused", platform.ErrShardUnavailable)
	backends[1] = &failingStore{Store: backends[1], err: down}
	s, err := New(context.Background(), backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	owners := accountsPerShard(s)
	items := []platform.BatchSubmission{
		{Account: owners[0], Task: 0, Value: 1, At: at(0)},
		{Account: owners[1], Task: 0, Value: 2, At: at(0)}, // → dead shard
		{Account: owners[2], Task: 0, Value: 3, At: at(0)},
		{Account: owners[1], Task: 1, Value: 4, At: at(0)}, // → dead shard
	}
	errs := s.SubmitBatch(context.Background(), items)
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("items on live shards failed: %v / %v", errs[0], errs[2])
	}
	for _, i := range []int{1, 3} {
		if !errors.Is(errs[i], platform.ErrShardUnavailable) {
			t.Errorf("item %d on dead shard: %v, want ErrShardUnavailable", i, errs[i])
		}
	}
}

func TestShardStoreAggregateBitIdenticalToSingleNode(t *testing.T) {
	s, _ := newLocalFleet(t, 3, 3)
	// A spread of accounts across all shards, several reports each.
	for i := 0; i < 12; i++ {
		account := fmt.Sprintf("worker-%d", i)
		for task := 0; task < 3; task++ {
			v := float64(20+task*5) + float64(i%5)*0.25
			if err := s.Submit(context.Background(), account, task, v, at(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	merged, err := s.Dataset(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumAccounts() != 12 {
		t.Fatalf("merged dataset has %d accounts, want 12", merged.NumAccounts())
	}
	for _, method := range []string{"mean", "median", "crh", "td-ts", "td-tr"} {
		res, unc, err := s.Aggregate(context.Background(), method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		// Replay the merged dataset through a single-node store: the shard
		// store promises bit-identical truths on the same input.
		single := platform.NewLocalStore(merged.Tasks)
		for _, acct := range merged.Accounts {
			for _, obs := range acct.Observations {
				if err := single.Submit(context.Background(), acct.ID, obs.Task, obs.Value, obs.Time); err != nil {
					t.Fatalf("%s: replay %s/%d: %v", method, acct.ID, obs.Task, err)
				}
			}
		}
		want, wantUnc, err := single.Aggregate(context.Background(), method)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		if len(res.Truths) != len(want.Truths) {
			t.Fatalf("%s: %d truths vs %d", method, len(res.Truths), len(want.Truths))
		}
		for task := range want.Truths {
			if res.Truths[task] != want.Truths[task] && !(math.IsNaN(res.Truths[task]) && math.IsNaN(want.Truths[task])) {
				t.Errorf("%s task %d: sharded %v != single-node %v", method, task, res.Truths[task], want.Truths[task])
			}
			if task < len(unc) && task < len(wantUnc) &&
				unc[task] != wantUnc[task] && !(math.IsNaN(unc[task]) && math.IsNaN(wantUnc[task])) {
				t.Errorf("%s task %d uncertainty: sharded %v != single-node %v", method, task, unc[task], wantUnc[task])
			}
		}
		if res.Degraded {
			t.Errorf("%s: degraded with every shard reachable: %q", method, res.DegradedReason)
		}
	}
}

func TestShardStoreDegradedReads(t *testing.T) {
	backends := make([]platform.Store, 3)
	locals := make([]*platform.LocalStore, 3)
	for i := range backends {
		locals[i] = platform.NewLocalStore(testTasks(1))
		backends[i] = locals[i]
	}
	s, err := New(context.Background(), backends, Options{Addrs: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	owners := accountsPerShard(s)
	for sh, account := range owners {
		if err := s.Submit(context.Background(), account, 0, float64(10+sh), at(sh)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill shard 1 after the writes landed.
	down := fmt.Errorf("%w: connection refused", platform.ErrShardUnavailable)
	s.topology().groups[1].replicas[0] = &failingStore{Store: locals[1], err: down}

	// Aggregate and Stats answer from the reachable part, flagged.
	res, _, err := s.Aggregate(context.Background(), "mean")
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "shards_unreachable:1") {
		t.Errorf("aggregate degraded=%v reason=%q, want shards_unreachable:1", res.Degraded, res.DegradedReason)
	}
	stats, err := s.Stats(context.Background())
	if err != nil {
		t.Fatalf("degraded stats: %v", err)
	}
	if !stats.Degraded || !strings.Contains(stats.DegradedReason, "shards_unreachable:1") {
		t.Errorf("stats degraded=%v reason=%q", stats.Degraded, stats.DegradedReason)
	}
	if stats.Accounts != 2 {
		t.Errorf("degraded stats counted %d accounts, want 2 (reachable shards)", stats.Accounts)
	}

	// Dataset is strict: a partial export is worse than a late one.
	if _, err := s.Dataset(context.Background()); !errors.Is(err, platform.ErrShardUnavailable) {
		t.Errorf("partial dataset: %v, want ErrShardUnavailable", err)
	}

	// An unknown method is a 400-class answer even with shards down.
	if _, _, err := s.Aggregate(context.Background(), "quantum"); !errors.Is(err, platform.ErrUnknownAggregation) {
		t.Errorf("unknown method: %v, want ErrUnknownAggregation", err)
	}

	// All shards down → error, not an empty degraded answer.
	for i := range s.topology().groups {
		s.topology().groups[i].replicas[0] = &failingStore{Store: locals[i], err: down}
	}
	if _, _, err := s.Aggregate(context.Background(), "mean"); !errors.Is(err, platform.ErrShardUnavailable) {
		t.Errorf("all-shards-down aggregate: %v, want ErrShardUnavailable", err)
	}
	if _, err := s.Stats(context.Background()); !errors.Is(err, platform.ErrShardUnavailable) {
		t.Errorf("all-shards-down stats: %v, want ErrShardUnavailable", err)
	}
}

func TestShardStoreHealthAndListener(t *testing.T) {
	s, locals := newLocalFleet(t, 3, 1)
	// LocalStore backends have no Pinger capability → trivially ready.
	health := s.ShardHealth(context.Background())
	if len(health) != 3 {
		t.Fatalf("health for %d shards, want 3", len(health))
	}
	for _, h := range health {
		if !h.Ready || h.Status != "ready" {
			t.Errorf("shard %d: ready=%v status=%q", h.Shard, h.Ready, h.Status)
		}
	}
	// A failing Pinger backend reports unreachable.
	down := fmt.Errorf("%w: connection refused", platform.ErrShardUnavailable)
	s.topology().groups[2].replicas[0] = &failingStore{Store: locals[2], err: down}
	health = s.ShardHealth(context.Background())
	if health[2].Ready || health[2].Status != "unreachable" {
		t.Errorf("dead shard health = %+v, want unreachable", health[2])
	}

	// The submit listener sees exactly the acked submissions.
	var mu sync.Mutex
	var seen []platform.BatchSubmission
	s.SetSubmitListener(func(items []platform.BatchSubmission) {
		mu.Lock()
		seen = append(seen, items...)
		mu.Unlock()
	})
	owners := accountsPerShard(s)
	if err := s.Submit(context.Background(), owners[0], 0, 7, at(0)); err != nil {
		t.Fatal(err)
	}
	errs := s.SubmitBatch(context.Background(), []platform.BatchSubmission{
		{Account: owners[1], Task: 0, Value: 8, At: at(1)},
		{Account: owners[0], Task: 0, Value: 9, At: at(1)}, // duplicate → not acked
	})
	if errs[0] != nil || errs[1] == nil {
		t.Fatalf("batch errs = %v", errs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("listener saw %d submissions, want 2 (only acked): %v", len(seen), seen)
	}
}

func TestShardStoreNewFailsWithNoBackends(t *testing.T) {
	if _, err := New(context.Background(), nil, Options{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
}
