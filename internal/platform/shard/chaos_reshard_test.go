package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// TestChaosReshardKillMidMigrationZeroAckedLoss is the acceptance gate for
// online resharding: a 2-group replicated fleet under sustained write load
// grows to 3 groups while
//
//   - a donor primary is killed mid-handoff (failover must promote its
//     follower and the migration must resume against the promotion), and
//   - the router process is "restarted" mid-migration (the coordinator
//     journal on disk is the only state that survives; the fresh router
//     must resume — or cleanly abort and retry — from it).
//
// Invariants at the end: the migration completed, every acked write is
// present exactly once (zero acked loss, no double-apply), the grown
// router's aggregation is bit-identical to a single-node run over the
// merged dataset, and the ring sits at version 2 over 3 shards.
func TestChaosReshardKillMidMigrationZeroAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign")
	}
	root := t.TempDir()
	const tasks = 3

	// Two donor groups, two replicas each, semi-sync shipping: an ack
	// means the write is on the follower too, so killing the primary may
	// not lose it.
	fleet, configs := newReplicatedFleet(t, root, 2, 2, platform.AckSemiSync, 10*time.Millisecond)
	_, joinerConfigs := newReplicatedFleet(t, filepath.Join(root, "join"), 1, 2, platform.AckSemiSync, 10*time.Millisecond)
	joinCfg := joinerConfigs[0]

	ctx := context.Background()
	store1, err := NewReplicated(ctx, configs, Options{VirtualNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	// DeadInterval doubles as the probe's answer deadline: it must be
	// generous enough that the sustained load (which saturates these
	// single-process httptest servers, especially under -race) cannot
	// manufacture a false death — a spurious promotion starts a failover
	// ping-pong that invalidates the migration's cursors every few
	// seconds and the catch-up never converges.
	fo := FailoverOptions{ProbeInterval: 25 * time.Millisecond, DeadInterval: 500 * time.Millisecond}
	poller1 := store1.StartFailover(fo)

	// cur is "the router": workers always write through whatever process
	// currently plays that role, surviving the restart swap below.
	var cur atomic.Pointer[Store]
	cur.Store(store1)

	// Pre-seed so the snapshot stage has real bytes to ship.
	var mu sync.Mutex
	t0 := time.Now()
	acked := make(map[string]float64)
	ackedAt := make(map[string]time.Duration)
	for i := 0; i < 24; i++ {
		acct := fmt.Sprintf("seed-%d", i)
		for task := 0; task < tasks; task++ {
			if err := store1.Submit(ctx, acct, task, float64(i+task), at(task)); err != nil {
				t.Fatal(err)
			}
		}
		acked[acct] = float64(i)
	}

	// Sustained load: every submit is retried until acked; a duplicate
	// reply means an earlier attempt landed, which counts as acked.
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				acct := fmt.Sprintf("live-%d-%d", w, i)
				val := float64(w*1000 + i)
				for {
					err := cur.Load().Submit(ctx, acct, i%tasks, val, at(i%tasks))
					if err == nil || errors.Is(err, platform.ErrDuplicateReport) {
						break // a duplicate reply means an earlier attempt landed
					}
					select {
					case <-stopLoad:
						return
					case <-time.After(time.Millisecond):
					}
				}
				mu.Lock()
				acked[acct] = val
				ackedAt[acct] = time.Since(t0)
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	journalPath := filepath.Join(root, "reshard.json")
	reg := obs.NewRegistry()
	opts := MigrationOptions{JournalPath: journalPath, PollInterval: 5 * time.Millisecond, Registry: reg}
	m1, err := store1.StartMigration(joinCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	run1 := make(chan error, 1)
	go func() { run1 <- m1.Run(ctx1) }()

	// Chaos event 1: kill donor group 0's primary mid-handoff. Failover
	// must promote the follower; the coordinator's donor probes must
	// re-resolve and resume shipping from the promotion. Wait for the
	// promotion to be visible before the next chaos event: a router that
	// restarts while a group has a dead, never-promoted primary is
	// (deliberately) fenced from promoting it — that scenario needs an
	// operator, not this campaign.
	time.Sleep(30 * time.Millisecond)
	fleet[0].procs[0].kill()
	t.Logf("killed donor group 0 primary mid-migration (t=%v)", time.Since(t0))
	follower := platform.NewClient(fleet[0].procs[1].srv.URL, platform.WithRetries(0))
	waitUntil(t, 15*time.Second, "donor follower promoted", func() bool {
		rs, err := follower.ReplStatus(ctx)
		return err == nil && rs.Role == platform.RolePrimary
	})
	t.Logf("donor follower promoted (t=%v)", time.Since(t0))

	// Let the migration make progress against the promoted follower, then
	// chaos event 2: "restart the router" — abandon the old process
	// (cancel its coordinator, stop its poller) and bring up a fresh one
	// whose only migration knowledge is the journal file.
	deadline := time.After(15 * time.Second)
	var run1Err error
wait:
	for {
		select {
		case run1Err = <-run1:
			break wait // finished (or aborted) before we pulled the plug
		case <-deadline:
			t.Fatal("migration made no progress after donor kill")
		case <-time.After(10 * time.Millisecond):
			if j, ok, _ := LoadMigrationJournal(journalPath); ok && j.Phase != MigrationSeeding {
				cancel1()
				run1Err = <-run1
				break wait
			}
		}
	}
	cancel1()
	poller1.Stop()
	t.Logf("router restart with journal-only state (t=%v, old run: %v)", time.Since(t0), run1Err)

	j, ok, err := LoadMigrationJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	var store2 *Store
	var m2 *Migration
	switch {
	case ok && j.Phase == MigrationDone:
		// Finished before the restart: the new router starts with the
		// grown config and adopts the journaled ring version.
		store2, err = NewReplicated(ctx, append(append([]GroupConfig{}, configs...), joinCfg), Options{VirtualNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		store2.AdoptRingVersion(j.RingVersion)
	case ok && j.Pending():
		store2, err = NewReplicated(ctx, configs, Options{VirtualNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		m2, err = store2.ResumeMigration(joinCfg, j, opts)
		if err != nil {
			t.Fatalf("resume from journal %+v: %v", j, err)
		}
	default:
		// Aborted (or no journal survived): retry the migration fresh.
		store2, err = NewReplicated(ctx, configs, Options{VirtualNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		m2, err = store2.StartMigration(joinCfg, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	poller2 := store2.StartFailover(fo)
	defer poller2.Stop()
	cur.Store(store2)
	t.Logf("swapped to restarted router (t=%v)", time.Since(t0))
	if m2 != nil {
		if err := m2.Run(ctx); err != nil {
			// One retry: the fleet may still be converging on the promoted
			// primary. A clean abort must leave the ring untouched.
			t.Logf("resumed migration failed (%v); retrying once", err)
			if store2.RingVersion() != 1 {
				t.Fatalf("failed migration left ring at v%d", store2.RingVersion())
			}
			m2, err = store2.StartMigration(joinCfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := m2.Run(ctx); err != nil {
				t.Fatalf("retried migration: %v", err)
			}
		}
	}

	t.Logf("migration complete (t=%v)", time.Since(t0))
	// Keep load running briefly against the grown fleet, then stop.
	time.Sleep(50 * time.Millisecond)
	close(stopLoad)
	wg.Wait()

	if v := store2.RingVersion(); v != 2 {
		t.Errorf("final ring version = %d, want 2", v)
	}
	if n := store2.Shards(); n != 3 {
		t.Errorf("final shard count = %d, want 3", n)
	}
	jf, ok, err := LoadMigrationJournal(journalPath)
	if err != nil || !ok || jf.Phase != MigrationDone {
		t.Errorf("final journal = %+v ok=%v err=%v, want done", jf, ok, err)
	}
	if g := reg.Snapshot().Gauges; g["reshard.keys_moved"] < 1 {
		t.Errorf("reshard.keys_moved = %d, want > 0", g["reshard.keys_moved"])
	}

	// Zero acked loss, no double-apply: every acked account is present
	// exactly once with its value intact; the joiner actually owns keys.
	ds, err := store2.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	byID := make(map[string]int)
	for _, a := range ds.Accounts {
		byID[a.ID]++
	}
	lost := 0
	for acct := range acked {
		switch byID[acct] {
		case 0:
			lost++
			if lost <= 5 {
				t.Errorf("acked account %s lost after reshard (v2 owner=shard %d, acked at t=%v)",
					acct, store2.Shard(acct), ackedAt[acct])
			}
		case 1:
		default:
			t.Errorf("acked account %s present %d times (double-apply)", acct, byID[acct])
		}
	}
	if lost > 5 {
		t.Errorf("... and %d more acked accounts lost", lost-5)
	}
	for _, a := range ds.Accounts {
		want, isAcked := acked[a.ID]
		if !isAcked {
			continue
		}
		for _, obs := range a.Observations {
			if len(a.Observations) == 1 && obs.Value != want && strings.HasPrefix(a.ID, "live") {
				t.Errorf("account %s holds value %v, want %v", a.ID, obs.Value, want)
			}
		}
	}
	moved := 0
	for acct := range acked {
		if store2.Shard(acct) == 2 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("grown ring assigned no acked accounts to the joiner")
	}
	t.Logf("%d acked accounts, %d owned by the joiner", len(acked), moved)

	// Bit-identical aggregation: the grown router must compute exactly
	// what a single node computes over the merged dataset.
	for _, method := range []string{"mean", "crh", "td-ts"} {
		res, _, err := store2.Aggregate(ctx, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		want, _, err := platform.AggregateDataset(ctx, method, ds)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		for task := range want.Truths {
			if res.Truths[task] != want.Truths[task] {
				t.Errorf("%s task %d: sharded %v != single-node %v", method, task, res.Truths[task], want.Truths[task])
			}
		}
	}
}
