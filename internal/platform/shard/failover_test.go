package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// replProc is one replica process stand-in for failover tests: a durable
// store with its replication manager behind a real listener, killable
// without losing its data dir and restartable on the same address.
type replProc struct {
	t       *testing.T
	dir     string
	store   *platform.LocalStore
	d       *platform.Durability
	repl    *platform.Replication
	reg     *obs.Registry
	api     *platform.Server
	srv     *httptest.Server
	client  *platform.Client
	stopped bool
}

// startReplProc boots one replica over dir. An empty addr takes a fresh
// listener; a non-empty addr rebinds a previous replica's address, which
// is what a supervisor restarting the process looks like to the router.
func startReplProc(t *testing.T, dir, addr string, ropts platform.ReplicationOptions) *replProc {
	t.Helper()
	store, d, _, err := platform.OpenDurable(dir, testTasks(3), platform.DurableOptions{})
	if err != nil {
		t.Fatalf("open replica dir %s: %v", dir, err)
	}
	reg := obs.NewRegistry()
	if ropts.Registry == nil {
		ropts.Registry = reg
	}
	repl := platform.NewReplication(store, d, ropts)
	api := platform.NewServerWithOptions(store, platform.ServerOptions{
		Registry:     reg,
		Replication:  repl,
		DisableWatch: ropts.FollowerOf != "",
	})
	var srv *httptest.Server
	if addr == "" {
		srv = httptest.NewServer(api)
	} else {
		srv = httptest.NewUnstartedServer(api)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		srv.Listener.Close()
		srv.Listener = l
		srv.Start()
	}
	n := &replProc{
		t: t, dir: dir, store: store, d: d, repl: repl, reg: reg,
		api: api, srv: srv, client: platform.NewClient(srv.URL, platform.WithRetries(0)),
	}
	t.Cleanup(n.stop)
	return n
}

// stop shuts the replica down cleanly. Idempotent.
func (n *replProc) stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.srv.Close()
	n.api.Close()
	n.repl.Close()
	_ = n.d.Close()
}

// kill simulates the process dying: the listener stops answering and the
// WAL closes with no final snapshot, so only fsynced-before-ack records
// survive in the data dir.
func (n *replProc) kill() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.api.Close()
	n.repl.Close()
	if err := n.d.Abort(); err != nil {
		n.t.Errorf("abort replica durability: %v", err)
	}
}

// addrOf strips the scheme so the address can be rebound.
func (n *replProc) addrOf() string {
	return n.srv.Listener.Addr().String()
}

// replGroupProcs is one replica group's processes, initial primary first.
type replGroupProcs struct {
	procs []*replProc
}

// newReplicatedFleet boots groups x replicasPer durable replicas (each
// group's replica 0 the initial primary, shipping to the rest) and returns
// the processes plus the GroupConfigs a router needs to front them.
func newReplicatedFleet(t *testing.T, root string, groups, replicasPer int, mode platform.AckMode, ship time.Duration) ([]*replGroupProcs, []GroupConfig) {
	t.Helper()
	fleet := make([]*replGroupProcs, groups)
	cfgs := make([]GroupConfig, groups)
	for gi := 0; gi < groups; gi++ {
		g := &replGroupProcs{procs: make([]*replProc, replicasPer)}
		followers := make([]string, 0, replicasPer-1)
		for ri := 1; ri < replicasPer; ri++ {
			g.procs[ri] = startReplProc(t, filepath.Join(root, fmt.Sprintf("g%d-r%d", gi, ri)), "", platform.ReplicationOptions{
				FollowerOf:   "http://primary.pending.invalid",
				ShipInterval: ship,
			})
			followers = append(followers, g.procs[ri].srv.URL)
		}
		g.procs[0] = startReplProc(t, filepath.Join(root, fmt.Sprintf("g%d-r0", gi)), "", platform.ReplicationOptions{
			Mode:         mode,
			Followers:    followers,
			ShipInterval: ship,
		})
		fleet[gi] = g
		gc := GroupConfig{}
		for _, p := range g.procs {
			gc.Replicas = append(gc.Replicas, platform.NewRemoteStore(platform.NewClient(p.srv.URL, platform.WithRetries(0))))
			gc.Addrs = append(gc.Addrs, p.srv.URL)
		}
		cfgs[gi] = gc
	}
	return fleet, cfgs
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func counterOf(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// TestFailoverPromotesOnPrimaryDeath is the router-side failover path end
// to end: the poller notices a dead primary, promotes its follower at a
// higher epoch, the router's writes to that group start landing again
// without any reconfiguration, /readyz names every replica with its role
// and probe age, and the returned old primary is demoted by the poller
// and caught up by the new primary's shipping.
func TestFailoverPromotesOnPrimaryDeath(t *testing.T) {
	root := t.TempDir()
	fleet, cfgs := newReplicatedFleet(t, root, 2, 2, platform.AckAsync, 10*time.Millisecond)
	store, err := NewReplicated(context.Background(), cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	poller := store.StartFailover(FailoverOptions{
		ProbeInterval: 20 * time.Millisecond,
		DeadInterval:  120 * time.Millisecond,
		Registry:      reg,
	})
	t.Cleanup(poller.Stop)
	routerAPI := platform.NewServer(store, nil)
	router := httptest.NewServer(routerAPI)
	t.Cleanup(router.Close)
	t.Cleanup(routerAPI.Close)

	ctx := context.Background()
	client := platform.NewClient(router.URL, platform.WithRetries(0))
	owners := accountsPerShard(store)
	for gi, acct := range owners {
		if err := client.Submit(ctx, platform.SubmissionRequest{Account: acct, Task: 0, Value: float64(10 + gi), Time: at(gi)}); err != nil {
			t.Fatalf("seed submit shard %d: %v", gi, err)
		}
	}

	// Let group 0's follower converge before the kill so promotion loses
	// nothing even in async mode.
	const gi = 0
	pst, err := fleet[gi].procs[0].client.ReplStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "group-0 follower catch-up", func() bool {
		st, err := fleet[gi].procs[1].client.ReplStatus(ctx)
		return err == nil && st.DurableSeq == pst.DurableSeq
	})

	oldAddr := fleet[gi].procs[0].addrOf()
	fleet[gi].procs[0].kill()

	// The poller must flip the group's primary on its own.
	waitUntil(t, 5*time.Second, "poller promotion of group-0 follower", func() bool {
		return store.Primary(gi) == 1
	})
	if n := counterOf(reg, "repl.failovers"); n < 1 {
		t.Errorf("repl.failovers = %d after a promotion, want >= 1", n)
	}
	st, err := fleet[gi].procs[1].client.ReplStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != platform.RolePrimary || st.Epoch < 1 {
		t.Errorf("promoted follower reports role=%q epoch=%d, want primary at epoch >= 1", st.Role, st.Epoch)
	}

	// Writes owned by group 0 land again through the router, untouched.
	if err := client.Submit(ctx, platform.SubmissionRequest{Account: owners[gi], Task: 1, Value: 42, Time: at(7)}); err != nil {
		t.Fatalf("submit after promotion: %v", err)
	}
	// The other group never noticed.
	if err := client.Submit(ctx, platform.SubmissionRequest{Account: owners[1], Task: 1, Value: 43, Time: at(7)}); err != nil {
		t.Fatalf("submit to healthy group during failover: %v", err)
	}

	// /readyz names every replica with role and probe age; the dead old
	// primary is flagged, the promoted follower reads as primary.
	rz, err := client.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rz.Shards) != 4 {
		t.Fatalf("readyz lists %d replicas, want 4: %+v", len(rz.Shards), rz.Shards)
	}
	if rz.Status != "degraded" {
		t.Errorf("readyz status with a dead replica = %q, want degraded", rz.Status)
	}
	byReplica := make(map[[2]int]platform.ShardHealth, len(rz.Shards))
	for _, h := range rz.Shards {
		if h.ProbeAgeMs < 1 {
			t.Errorf("replica %d/%d has probe age %d, want >= 1 (poller-cached entries are stamped)", h.Shard, h.Replica, h.ProbeAgeMs)
		}
		byReplica[[2]int{h.Shard, h.Replica}] = h
	}
	if h := byReplica[[2]int{gi, 0}]; h.Ready || h.Status != "unreachable" {
		t.Errorf("dead old primary renders %+v, want unreachable", h)
	}
	waitUntil(t, 2*time.Second, "readyz to show the promoted follower as primary", func() bool {
		rz, err := client.Ready(ctx)
		if err != nil {
			return false
		}
		for _, h := range rz.Shards {
			if h.Shard == gi && h.Replica == 1 {
				return h.Ready && h.Role == platform.RolePrimary
			}
		}
		return false
	})

	// The old primary returns still believing it is primary (it reloads
	// its stale epoch from disk and was never told otherwise). The poller
	// demotes it by epoch and the new primary's shipping catches it up.
	old := startReplProc(t, filepath.Join(root, "g0-r0"), oldAddr, platform.ReplicationOptions{
		ShipInterval: 10 * time.Millisecond,
	})
	waitUntil(t, 10*time.Second, "old primary demoted and caught up", func() bool {
		ost, err := old.client.ReplStatus(ctx)
		if err != nil || ost.Role != platform.RoleFollower {
			return false
		}
		nst, err := fleet[gi].procs[1].client.ReplStatus(ctx)
		return err == nil && ost.Epoch == nst.Epoch && ost.DurableSeq == nst.DurableSeq && ost.Lag == 0
	})
	waitUntil(t, 5*time.Second, "readyz to heal after rejoin", func() bool {
		rz, err := client.Ready(ctx)
		return err == nil && rz.Status == "ready"
	})

	// Nothing acked was lost across the failover: both seed writes and the
	// post-promotion writes are in the merged dataset.
	ds, err := client.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Accounts) != 2 {
		t.Fatalf("dataset holds %d accounts after failover, want 2", len(ds.Accounts))
	}
	for _, acct := range ds.Accounts {
		if len(acct.Observations) != 2 {
			t.Errorf("account %s has %d observations, want 2 (one pre-kill, one post-promotion)", acct.ID, len(acct.Observations))
		}
	}
}

// TestReadFailoverToFollower: with no poller (no promotion), a group whose
// primary is dead still answers reads from its follower — datasets export,
// aggregation stays undegraded — while writes fail retryably.
func TestReadFailoverToFollower(t *testing.T) {
	root := t.TempDir()
	fleet, cfgs := newReplicatedFleet(t, root, 1, 2, platform.AckAsync, 5*time.Millisecond)
	store, err := NewReplicated(context.Background(), cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := store.Submit(ctx, fmt.Sprintf("acct-%d", i), i%3, float64(i), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	pst, err := fleet[0].procs[0].client.ReplStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		st, err := fleet[0].procs[1].client.ReplStatus(ctx)
		return err == nil && st.DurableSeq == pst.DurableSeq
	})

	fleet[0].procs[0].kill()

	// Strict reads and aggregation answer from the follower, clean.
	ds, err := store.Dataset(ctx)
	if err != nil {
		t.Fatalf("dataset with dead primary = %v, want follower to answer", err)
	}
	if len(ds.Accounts) != 5 {
		t.Errorf("follower served %d accounts, want 5", len(ds.Accounts))
	}
	stats, err := store.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded {
		t.Errorf("stats degraded with a live follower: %+v", stats)
	}
	if _, _, err := store.Aggregate(ctx, "mean"); err != nil {
		t.Fatalf("aggregate with dead primary: %v", err)
	}

	// Writes cannot land headless — and fail with the retryable code, not
	// a hang or a misroute to the follower.
	err = store.Submit(ctx, "acct-0", 2, 99, at(30))
	if !errors.Is(err, platform.ErrShardUnavailable) {
		t.Errorf("write to headless group = %v, want ErrShardUnavailable", err)
	}
}

// TestShardHealthLiveProbes pins the no-poller ShardHealth path: every
// replica gets exactly one fully-populated entry, concurrent callers are
// race-clean (the result slice is pre-sized before the probe goroutines
// start — an append racing their writes could silently drop results into
// a stale backing array), and a dead replica renders unreachable rather
// than as a zero-value entry.
func TestShardHealthLiveProbes(t *testing.T) {
	root := t.TempDir()
	fleet, cfgs := newReplicatedFleet(t, root, 2, 2, platform.AckAsync, 10*time.Millisecond)
	store, err := NewReplicated(context.Background(), cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet[1].procs[1].kill()

	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([][]platform.ShardHealth, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = store.ShardHealth(ctx)
		}(i)
	}
	wg.Wait()
	for i, out := range results {
		if len(out) != 4 {
			t.Fatalf("call %d: %d entries, want 4", i, len(out))
		}
		for _, h := range out {
			if h.Status == "" || h.Addr == "" {
				t.Fatalf("call %d: replica %d/%d entry never filled in: %+v", i, h.Shard, h.Replica, h)
			}
			if h.Shard == 1 && h.Replica == 1 {
				if h.Ready || h.Status != "unreachable" {
					t.Errorf("call %d: dead replica renders %+v, want unreachable", i, h)
				}
			} else if !h.Ready {
				t.Errorf("call %d: live replica %d/%d not ready: %+v", i, h.Shard, h.Replica, h)
			}
		}
	}
}

// TestFailoverRefusesPromotionWithUnobservedEpoch pins the
// epoch-visibility fence: a poller that never managed to read the
// primary's replication status (here: the primary died before the poller
// started) must not promote — its view of the dead primary's epoch is a
// zero value, so the chosen promotion epoch could collide with the real
// one and seat two writers at the same epoch. Once the primary has been
// observed alive even once, the same death promotes normally.
func TestFailoverRefusesPromotionWithUnobservedEpoch(t *testing.T) {
	root := t.TempDir()
	fleet, cfgs := newReplicatedFleet(t, root, 1, 2, platform.AckAsync, 10*time.Millisecond)
	oldAddr := fleet[0].procs[0].addrOf()
	fleet[0].procs[0].kill() // dies before the poller ever sees it

	store, err := NewReplicated(context.Background(), cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	poller := store.StartFailover(FailoverOptions{
		ProbeInterval: 20 * time.Millisecond,
		DeadInterval:  60 * time.Millisecond,
		Registry:      reg,
	})
	t.Cleanup(poller.Stop)

	// Give the poller several dead intervals to (wrongly) act.
	time.Sleep(300 * time.Millisecond)
	if got := store.Primary(0); got != 0 {
		t.Fatalf("poller promoted replica %d with the primary's epoch never observed", got)
	}
	if n := counterOf(reg, "repl.failovers"); n != 0 {
		t.Fatalf("repl.failovers = %d, want 0 (promotion must be fenced)", n)
	}

	// The primary returns; one successful probe clears the fence.
	old := startReplProc(t, filepath.Join(root, "g0-r0"), oldAddr, platform.ReplicationOptions{
		ShipInterval: 10 * time.Millisecond,
	})
	waitUntil(t, 5*time.Second, "poller to observe the primary's epoch", func() bool {
		for _, h := range store.ShardHealth(context.Background()) {
			if h.Shard == 0 && h.Replica == 0 {
				return h.Ready && h.Role == platform.RolePrimary
			}
		}
		return false
	})

	// The same death now promotes: the fence only guards the unknown.
	old.kill()
	waitUntil(t, 5*time.Second, "promotion once the epoch is known", func() bool {
		return store.Primary(0) == 1
	})
	if n := counterOf(reg, "repl.failovers"); n < 1 {
		t.Errorf("repl.failovers = %d after promotion, want >= 1", n)
	}
}

// TestFailoverPollerJitterBounds pins the probe-period jitter contract:
// draws stay inside [(1-Jitter), (1+Jitter)] x interval, actually spread
// across that band instead of clustering, and zero jitter is exact.
func TestFailoverPollerJitterBounds(t *testing.T) {
	const interval = 100 * time.Millisecond
	p := &FailoverPoller{opts: FailoverOptions{ProbeInterval: interval, Jitter: 0.2}}
	rng := rand.New(rand.NewSource(42))
	lo, hi := 2*interval, time.Duration(0)
	for i := 0; i < 5000; i++ {
		d := p.delay(rng)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("draw %d: delay %v outside [80ms, 120ms]", i, d)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo > 85*time.Millisecond || hi < 115*time.Millisecond {
		t.Errorf("5000 draws span [%v, %v]: jitter is not spreading probes", lo, hi)
	}

	exact := &FailoverPoller{opts: FailoverOptions{ProbeInterval: interval, Jitter: 0}}
	for i := 0; i < 100; i++ {
		if d := exact.delay(rng); d != interval {
			t.Fatalf("zero jitter drew %v, want exactly %v", d, interval)
		}
	}
}
