package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// durableBackendAt is durableBackend with a caller-owned directory and
// durability handle, for tests that restart a backend from its WAL.
func durableBackendAt(t testing.TB, dir string, tasks int) (*platform.LocalStore, *platform.Durability) {
	t.Helper()
	store, d, _, err := platform.OpenDurable(dir, testTasks(tasks), platform.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return store, d
}

// TestDecommissionDrainsToSurvivorsEndToEnd is the shrink tentpole's
// happy path under live load: a 3-shard durable fleet retires group 1
// while writers hammer it, no write ever surfaces an error, every
// account lands exactly once on the survivors, the donor's data is
// purged (but its fence keeps answering wrong_shard), and the shrunk
// router aggregates bit-identically to a single node over the merged
// dataset.
func TestDecommissionDrainsToSurvivorsEndToEnd(t *testing.T) {
	s, locals := newDurableFleet(t, 3, 2)
	ctx := context.Background()
	const pre = 90
	oldOwner := make(map[string]int, pre)
	for i := 0; i < pre; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		for task := 0; task < 2; task++ {
			if err := s.Submit(ctx, acct, task, float64(i+task), at(task)); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 {
			if err := s.RecordFingerprintFeatures(ctx, acct, []float64{float64(i), 1, 2}); err != nil {
				t.Fatal(err)
			}
		}
		oldOwner[acct] = s.Shard(acct)
	}

	// Live load racing the cutover: a write may see the flip mid-flight
	// but must never surface an error to the caller.
	var mu sync.Mutex
	acked := make(map[string]float64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				acct := fmt.Sprintf("live-%d-%d", w, i)
				val := float64(w*1000 + i)
				if err := s.Submit(ctx, acct, i%2, val, at(i%2)); err != nil && !errors.Is(err, platform.ErrDuplicateReport) {
					t.Errorf("live write %s: %v", acct, err)
					return
				}
				mu.Lock()
				acked[acct] = val
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	reg := obs.NewRegistry()
	opts := migOpts(t)
	opts.Registry = reg
	m, err := s.StartDecommission(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !s.RingStatus().Migrating {
		t.Error("RingStatus does not flag the in-flight decommission")
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("decommission: %v", err)
	}
	close(stop)
	wg.Wait()

	if v := s.RingVersion(); v != 2 {
		t.Errorf("ring version = %d, want 2", v)
	}
	if n := s.Shards(); n != 2 {
		t.Errorf("shard count = %d, want 2", n)
	}
	j := m.Journal()
	if j.Phase != MigrationDone || j.Kind != MigrationShrink || j.Retired != 1 {
		t.Errorf("journal = %+v, want done shrink retiring group 1", j)
	}
	if jf, ok, err := LoadMigrationJournal(opts.JournalPath); err != nil || !ok || jf.Phase != MigrationDone || jf.Kind != MigrationShrink {
		t.Errorf("persisted journal = %+v ok=%v err=%v, want done shrink", jf, ok, err)
	}
	if len(j.Seeds) != 2 || j.Seeds[0] != 0 || j.Seeds[1] != 2 {
		t.Errorf("journal seeds = %v, want the survivors' gapped seeds [0 2]", j.Seeds)
	}

	// Observability: the gauges describe a finished shrink, lag zeroed.
	g := reg.Snapshot().Gauges
	if g["reshard.state"] != migrationStateGauge(MigrationDone) {
		t.Errorf("reshard.state = %d, want %d (done)", g["reshard.state"], migrationStateGauge(MigrationDone))
	}
	if g["reshard.kind"] != migrationKindGauge(MigrationShrink) {
		t.Errorf("reshard.kind = %d, want %d (shrink)", g["reshard.kind"], migrationKindGauge(MigrationShrink))
	}
	if g["reshard.catchup_lag_records"] != 0 {
		t.Errorf("reshard.catchup_lag_records = %d, want 0 after done", g["reshard.catchup_lag_records"])
	}
	if j.KeysMoved < 1 {
		t.Errorf("keys_moved = %d, want > 0", j.KeysMoved)
	}

	// Zero loss, no double-apply: pre-seeded and acked live accounts are
	// all present exactly once on the survivors.
	ds, err := s.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]int)
	for _, a := range ds.Accounts {
		byID[a.ID]++
	}
	mu.Lock()
	for acct := range acked {
		if byID[acct] != 1 {
			t.Errorf("acked account %s present %d times, want 1", acct, byID[acct])
		}
	}
	mu.Unlock()
	movedTotal := 0
	for i := 0; i < pre; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		if byID[acct] != 1 {
			t.Errorf("pre-seeded account %s present %d times, want 1", acct, byID[acct])
		}
		if oldOwner[acct] == 1 {
			movedTotal++
			if got := s.Shard(acct); got > 1 {
				t.Errorf("moved account %s routed to shard %d on a 2-shard ring", acct, got)
			}
		}
	}
	if movedTotal == 0 {
		t.Fatal("retired group owned no accounts; the ring fixture is broken")
	}

	// The donor's account data is purged — memory released — but the
	// fence lives on: a stray write direct to the retired backend is
	// still refused with wrong_shard, never silently accepted.
	dds, err := locals[1].Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dds.Accounts) != 0 {
		t.Errorf("retired donor still holds %d accounts after purge", len(dds.Accounts))
	}
	if c := counterOf(reg, "reshard.purged_accounts"); c < int64(movedTotal) {
		t.Errorf("reshard.purged_accounts = %d, want >= %d", c, movedTotal)
	}
	var fencedAcct string
	for acct, gi := range oldOwner {
		if gi == 1 {
			fencedAcct = acct
			break
		}
	}
	if err := locals[1].Submit(ctx, fencedAcct, 0, 1, at(1)); !errors.Is(err, platform.ErrWrongShard) {
		t.Errorf("direct write to the purged donor = %v, want ErrWrongShard", err)
	}

	// Bit-identical aggregation across the shrunk fleet.
	for _, method := range []string{"mean", "crh", "td-ts"} {
		res, _, err := s.Aggregate(ctx, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		want, _, err := platform.AggregateDataset(ctx, method, ds)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		for task := range want.Truths {
			if res.Truths[task] != want.Truths[task] {
				t.Errorf("%s task %d: sharded %v != single-node %v", method, task, res.Truths[task], want.Truths[task])
			}
		}
	}
}

// TestRebalanceMovesOnlyWeightDelta: re-weighting a 3-shard fleet to
// [2,1,1] moves exactly the upweighted group's gain — every moved
// account lands on group 0, nothing else shifts, donors purge what they
// gave up, and the fleet's per-backend datasets partition the account
// set by new ownership.
func TestRebalanceMovesOnlyWeightDelta(t *testing.T) {
	s, locals := newDurableFleet(t, 3, 2)
	ctx := context.Background()
	const pre = 90
	oldOwner := make(map[string]int, pre)
	for i := 0; i < pre; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		if err := s.Submit(ctx, acct, i%2, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
		oldOwner[acct] = s.Shard(acct)
	}

	reg := obs.NewRegistry()
	opts := migOpts(t)
	opts.Registry = reg
	m, err := s.StartRebalance([]float64{2, 1, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	if v, n := s.RingVersion(), s.Shards(); v != 2 || n != 3 {
		t.Errorf("ring v%d over %d shards, want v2 over 3 (rebalance keeps the group count)", v, n)
	}
	j := m.Journal()
	if j.Phase != MigrationDone || j.Kind != MigrationRebalance {
		t.Errorf("journal = %+v, want done rebalance", j)
	}
	if len(j.Weights) != 3 || j.Weights[0] != 2 {
		t.Errorf("journal weights = %v, want [2 1 1]", j.Weights)
	}
	if g := reg.Snapshot().Gauges; g["reshard.kind"] != migrationKindGauge(MigrationRebalance) {
		t.Errorf("reshard.kind = %d, want %d (rebalance)", g["reshard.kind"], migrationKindGauge(MigrationRebalance))
	}

	moved := 0
	for acct, was := range oldOwner {
		now := s.Shard(acct)
		if now == was {
			continue
		}
		moved++
		if now != 0 {
			t.Errorf("account %s moved to group %d, want only moves onto the upweighted group 0", acct, now)
		}
	}
	if moved == 0 {
		t.Fatal("rebalance moved no accounts; the ring fixture is broken")
	}

	// Every backend holds exactly the accounts the new ring assigns it:
	// targets received their gain, donors purged what they gave up.
	for gi, l := range locals {
		ds, err := l.Dataset(ctx)
		if err != nil {
			t.Fatal(err)
		}
		holds := make(map[string]bool, len(ds.Accounts))
		for _, a := range ds.Accounts {
			holds[a.ID] = true
		}
		for acct := range oldOwner {
			if want := s.Shard(acct) == gi; holds[acct] != want {
				t.Errorf("backend %d holds %s = %v, want %v", gi, acct, holds[acct], want)
			}
		}
	}

	ds, err := s.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumAccounts(); got != pre {
		t.Errorf("merged dataset holds %d accounts, want %d", got, pre)
	}
}

// TestRebalanceRefusesBadWeights pins the operator-input contract: a
// no-op weight vector, a wrong-length vector, and a non-positive weight
// are all refused as malformed without wedging the migrating flag.
func TestRebalanceRefusesBadWeights(t *testing.T) {
	s, _ := newDurableFleet(t, 3, 2)
	for _, tc := range []struct {
		name    string
		weights []float64
	}{
		{"unchanged", []float64{1, 1, 1}},
		{"wrong length", []float64{2, 1}},
		{"zero weight", []float64{0, 1, 1}},
		{"negative weight", []float64{-1, 1, 1}},
	} {
		if _, err := s.StartRebalance(tc.weights, migOpts(t)); !errors.Is(err, platform.ErrMalformedRequest) {
			t.Errorf("%s: StartRebalance = %v, want ErrMalformedRequest", tc.name, err)
		}
		if s.RingStatus().Migrating {
			t.Fatalf("%s: refusal left the migrating flag raised", tc.name)
		}
	}
	// A valid vector still goes through after the refusals.
	if _, err := s.StartRebalance([]float64{2, 1, 1}, migOpts(t)); err != nil {
		t.Errorf("valid rebalance after refusals: %v", err)
	}
}

// TestDecommissionRefusals pins the shrink guardrails: out-of-range
// groups, the last group, and resume journals that no longer match the
// configuration are refused, and a refusal never wedges the migrating
// flag.
func TestDecommissionRefusals(t *testing.T) {
	s, _ := newDurableFleet(t, 2, 2)
	for _, gi := range []int{-1, 2, 7} {
		if _, err := s.StartDecommission(gi, migOpts(t)); !errors.Is(err, platform.ErrMalformedRequest) {
			t.Errorf("StartDecommission(%d) = %v, want ErrMalformedRequest", gi, err)
		}
		if s.RingStatus().Migrating {
			t.Fatalf("refusal for group %d left the migrating flag raised", gi)
		}
	}
	if _, err := s.StartDecommission(0, MigrationOptions{}); err == nil {
		t.Error("StartDecommission without a journal path succeeded")
	}

	single, err := New(context.Background(), []platform.Store{durableBackend(t, 2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.StartDecommission(0, migOpts(t)); !errors.Is(err, platform.ErrMalformedRequest) {
		t.Errorf("decommissioning the last group = %v, want ErrMalformedRequest", err)
	}

	// Resume-side: an unknown kind and a retired index beyond the
	// configuration are both corrupt-journal shapes that must refuse
	// rather than guess.
	base := MigrationJournal{
		RingVersion: 2, Phase: MigrationSeeding, Kind: MigrationShrink,
		Retired: 0, Seeds: []int{1}, Cursors: make([]uint64, 1), CursorEpochs: make([]uint64, 1),
	}
	bad := base
	bad.Kind = "sideways"
	if _, err := s.ResumeMigration(GroupConfig{}, bad, migOpts(t)); err == nil {
		t.Error("resume with an unknown journal kind succeeded")
	}
	bad = base
	bad.Retired = 5
	if _, err := s.ResumeMigration(GroupConfig{}, bad, migOpts(t)); err == nil {
		t.Error("resume retiring an unconfigured group succeeded")
	}

	// A shrink journal naming a retiring address that is not at the
	// journaled position means the operator already removed the group
	// from the configuration — resuming would drain the wrong group.
	addressed, err := NewReplicated(context.Background(), []GroupConfig{
		{Replicas: []platform.Store{durableBackend(t, 2)}, Addrs: []string{"http://a"}},
		{Replicas: []platform.Store{durableBackend(t, 2)}, Addrs: []string{"http://b"}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mismatched := base
	mismatched.Addrs = []string{"http://gone"}
	if _, err := addressed.ResumeMigration(GroupConfig{}, mismatched, migOpts(t)); err == nil {
		t.Error("resume with a mismatched retiring address succeeded")
	}
	if s.RingStatus().Migrating || addressed.RingStatus().Migrating {
		t.Error("resume refusals left a migrating flag raised")
	}
}

// TestDecommissionAbortResetsGauges is the stale-gauge bugfix test: a
// decommission that aborts pre-flip (the retiring donor cannot export)
// must stamp the terminal gauges — state=aborted, catch-up lag zeroed,
// duration stamped — instead of leaving them describing a run that is no
// longer happening. The ring must be untouched and a fresh migration
// startable.
func TestDecommissionAbortResetsGauges(t *testing.T) {
	// The retiring donor wraps its store in failingStore, which hides the
	// Exporter capability — seeding fails with a permanent error.
	backends := []platform.Store{
		durableBackend(t, 2),
		&failingStore{Store: durableBackend(t, 2), err: errors.New("disk on fire")},
	}
	s, err := New(context.Background(), backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts := migOpts(t)
	opts.Registry = reg
	m, err := s.StartDecommission(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err == nil {
		t.Fatal("decommission with an export-less donor reported success")
	}

	if m.Journal().Phase != MigrationAborted {
		t.Errorf("journal phase = %q, want aborted", m.Journal().Phase)
	}
	g := reg.Snapshot().Gauges
	if g["reshard.state"] != migrationStateGauge(MigrationAborted) {
		t.Errorf("reshard.state = %d, want %d (aborted)", g["reshard.state"], migrationStateGauge(MigrationAborted))
	}
	if g["reshard.catchup_lag_records"] != 0 {
		t.Errorf("reshard.catchup_lag_records = %d, want 0 after abort", g["reshard.catchup_lag_records"])
	}
	if _, ok := g["reshard.duration_seconds"]; !ok {
		t.Error("reshard.duration_seconds not stamped on abort")
	}
	if v, n := s.RingVersion(), s.Shards(); v != 1 || n != 2 {
		t.Errorf("abort changed the ring: v%d over %d shards, want v1 over 2", v, n)
	}
	if s.RingStatus().Migrating {
		t.Error("migrating flag still raised after abort")
	}
	if _, err := s.StartRebalance([]float64{2, 1}, migOpts(t)); err != nil {
		t.Errorf("fresh migration after the abort refused: %v", err)
	}
}

// TestShrinkResumeFromSeedingJournal is the pre-flip router-restart path
// for a decommission: the router dies right after journaling the shrink,
// a fresh router over the full (retiring group included) configuration
// resumes from the journal and completes the drain.
func TestShrinkResumeFromSeedingJournal(t *testing.T) {
	backends := make([]platform.Store, 3)
	locals := make([]*platform.LocalStore, 3)
	for i := range backends {
		locals[i] = durableBackend(t, 2)
		backends[i] = locals[i]
	}
	ctx := context.Background()
	s1, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s1.Submit(ctx, fmt.Sprintf("pre-%d", i), i%2, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	opts := migOpts(t)
	if _, err := s1.StartDecommission(1, opts); err != nil {
		t.Fatal(err)
	}
	// Router dies here: the journal says "seeding", nothing was shipped.

	s2, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, ok, err := LoadMigrationJournal(opts.JournalPath)
	if err != nil || !ok {
		t.Fatalf("load journal: ok=%v err=%v", ok, err)
	}
	if !j.Pending() || j.Flipped() || j.Kind != MigrationShrink {
		t.Fatalf("journal %+v, want a pending pre-flip shrink", j)
	}
	m2, err := s2.ResumeMigration(GroupConfig{}, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(ctx); err != nil {
		t.Fatalf("resumed decommission: %v", err)
	}
	if v, n := s2.RingVersion(), s2.Shards(); v != 2 || n != 2 {
		t.Errorf("resumed shrink ended at ring v%d over %d shards, want v2 over 2", v, n)
	}
	ds, err := s2.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumAccounts(); got != 60 {
		t.Errorf("merged dataset holds %d accounts, want 60", got)
	}
	if dds, err := locals[1].Dataset(ctx); err != nil || len(dds.Accounts) != 0 {
		t.Errorf("retired donor holds %d accounts (err=%v), want 0 after purge", len(dds.Accounts), err)
	}
}

// TestShrinkResumeCompletesAfterFlip is the crash-after-cutover path for
// a decommission: the journal says flipped, so a fresh router must
// reinstall the shrunk candidate topology immediately (before any
// traffic routes by the stale 3-group ring into the fenced donor) and
// then finish fence/drain/purge.
func TestShrinkResumeCompletesAfterFlip(t *testing.T) {
	backends := make([]platform.Store, 3)
	locals := make([]*platform.LocalStore, 3)
	for i := range backends {
		locals[i] = durableBackend(t, 2)
		backends[i] = locals[i]
	}
	ctx := context.Background()
	s1, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s1.Submit(ctx, fmt.Sprintf("pre-%d", i), i%2, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	opts := migOpts(t)
	m1, err := s1.StartDecommission(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the first half of Run by hand, crashing right after the flip
	// hits the journal.
	if err := m1.seedAndCatchup(ctx); err != nil {
		t.Fatal(err)
	}
	s1.installTopology(m1.cand)
	m1.stampRetired()
	if err := m1.setPhase(MigrationFlipped); err != nil {
		t.Fatal(err)
	}
	// Router dies here.

	s2, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, ok, err := LoadMigrationJournal(opts.JournalPath)
	if err != nil || !ok || !j.Flipped() || j.Kind != MigrationShrink {
		t.Fatalf("journal %+v ok=%v err=%v, want a flipped shrink", j, ok, err)
	}
	m2, err := s2.ResumeMigration(GroupConfig{}, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The flip must be visible BEFORE Run: the donors are already fenced
	// at v2, so serving the old 3-group ring would refuse every moved key.
	if v, n := s2.RingVersion(), s2.Shards(); v != 2 || n != 2 {
		t.Fatalf("post-flip resume serves ring v%d over %d shards before Run, want v2 over 2", v, n)
	}
	if err := m2.Run(ctx); err != nil {
		t.Fatalf("resumed decommission: %v", err)
	}
	if m2.Journal().Phase != MigrationDone {
		t.Errorf("journal phase = %q, want done", m2.Journal().Phase)
	}
	ds, err := s2.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumAccounts(); got != 60 {
		t.Errorf("merged dataset holds %d accounts, want 60", got)
	}
	if dds, err := locals[1].Dataset(ctx); err != nil || len(dds.Accounts) != 0 {
		t.Errorf("retired donor holds %d accounts (err=%v), want 0 after purge", len(dds.Accounts), err)
	}
	// Writes keep landing on the shrunk fleet.
	if err := s2.Submit(ctx, "post-shrink", 0, 1, at(1)); err != nil {
		t.Errorf("write after resumed shrink: %v", err)
	}
}

// TestMigrationJournalCorruptAndEmptyRecovery is the fsync-bugfix
// satellite's observable contract: a missing journal is a clean "no
// migration", but an empty or corrupt one — the torn states the
// write+fsync+rename discipline exists to prevent — is a hard error the
// boot path must surface, and after the operator removes the bad file a
// fresh migration journals cleanly with no .tmp debris left behind.
func TestMigrationJournalCorruptAndEmptyRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reshard.json")
	if _, ok, err := LoadMigrationJournal(path); ok || err != nil {
		t.Fatalf("missing journal: ok=%v err=%v, want ok=false err=nil", ok, err)
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadMigrationJournal(path); err == nil {
		t.Error("empty journal loaded without error")
	}
	if err := os.WriteFile(path, []byte(`{"ring_version": 2, "phase": "seed`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadMigrationJournal(path); err == nil {
		t.Error("corrupt journal loaded without error")
	}

	// Operator recovery: remove the bad file, start fresh.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	s, _ := newDurableFleet(t, 2, 2)
	opts := migOpts(t)
	opts.JournalPath = path
	if _, err := s.StartDecommission(1, opts); err != nil {
		t.Fatal(err)
	}
	j, ok, err := LoadMigrationJournal(path)
	if err != nil || !ok || j.Kind != MigrationShrink || j.Phase != MigrationSeeding {
		t.Errorf("journal after fresh start = %+v ok=%v err=%v, want a seeding shrink", j, ok, err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("journal .tmp file left behind (stat err=%v)", err)
	}
}

// TestRingFloorPersistAdoptRefuse covers the persisted ring-version
// floor: the floor file tracks every topology install, a rebooting
// router adopts it (reproducing the exact post-shrink gapped-seed ring),
// refuses to serve when the configuration no longer matches, and refuses
// to parse a torn file.
func TestRingFloorPersistAdoptRefuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring_state.json")
	if _, ok, err := LoadRingState(path); ok || err != nil {
		t.Fatalf("missing ring state: ok=%v err=%v, want ok=false err=nil", ok, err)
	}

	backends := []platform.Store{durableBackend(t, 2), durableBackend(t, 2)}
	ctx := context.Background()
	s1, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.EnableRingStatePersistence(path); err != nil {
		t.Fatal(err)
	}
	st, ok, err := LoadRingState(path)
	if err != nil || !ok || st.Floor != 1 {
		t.Fatalf("fresh floor = %+v ok=%v err=%v, want floor 1", st, ok, err)
	}

	// A topology install (here: adopting a recorded post-shrink shape
	// with gapped seeds and weights) rewrites the floor file.
	if err := s1.AdoptRingState(3, []int{0, 2}, []float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	st, ok, err = LoadRingState(path)
	if err != nil || !ok {
		t.Fatalf("reload floor: ok=%v err=%v", ok, err)
	}
	if st.Floor != 3 || len(st.Seeds) != 2 || st.Seeds[1] != 2 || len(st.Weights) != 2 || st.Weights[0] != 2 {
		t.Errorf("persisted floor = %+v, want floor 3, seeds [0 2], weights [2 1]", st)
	}

	// A rebooting router adopts the recorded shape and reproduces the
	// exact ring — gapped seeds and all.
	s2, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AdoptRingState(st.Floor, st.Seeds, st.Weights); err != nil {
		t.Fatal(err)
	}
	if v := s2.RingVersion(); v != 3 {
		t.Errorf("adopted ring version = %d, want 3", v)
	}
	want := NewRingWeighted([]int{0, 2}, []float64{2, 1}, DefaultVirtualNodes)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("acct-%d", i)
		if got := s2.Shard(key); got != want.Shard(key) {
			t.Fatalf("adopted ring routes %q to %d, recorded shape says %d", key, got, want.Shard(key))
		}
	}
	// Re-adopting an older version is a no-op, not a downgrade.
	if err := s2.AdoptRingState(2, st.Seeds, st.Weights); err != nil || s2.RingVersion() != 3 {
		t.Errorf("older adopt: err=%v version=%d, want nil no-op at 3", err, s2.RingVersion())
	}

	// A configuration that no longer matches the recorded shape must be
	// refused — serving from a guessed ring routes writes to non-owners.
	s3, err := New(ctx, append(backends, durableBackend(t, 2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.AdoptRingState(st.Floor, st.Seeds, st.Weights); err == nil {
		t.Error("adopting a 2-group floor over a 3-group configuration succeeded")
	}

	// A torn floor file is an error, never a silent fresh start.
	if err := os.WriteFile(path, []byte(`{"floor":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRingState(path); err == nil {
		t.Error("corrupt ring state loaded without error")
	}
	if err := os.WriteFile(path, []byte(`{"floor":0,"seeds":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRingState(path); err == nil {
		t.Error("incomplete ring state loaded without error")
	}
}

// TestReshardPurgeSurvivesRestart pins the journaled purge record: after
// a grow migration, the donors' moved accounts are gone and stay gone
// across a WAL-replay restart (no final snapshot), while the fence keeps
// refusing stray writes at the same watermark — the purge drops data,
// never the fence.
func TestReshardPurgeSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "d0"), filepath.Join(root, "d1")}
	stores := make([]*platform.LocalStore, 2)
	durs := make([]*platform.Durability, 2)
	backends := make([]platform.Store, 2)
	for i := range dirs {
		stores[i], durs[i] = durableBackendAt(t, dirs[i], 2)
		backends[i] = stores[i]
	}
	ctx := context.Background()
	s, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const pre = 60
	oldOwner := make(map[string]int, pre)
	for i := 0; i < pre; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		if err := s.Submit(ctx, acct, i%2, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
		oldOwner[acct] = s.Shard(acct)
	}
	joiner := durableBackend(t, 2)
	m, err := s.StartMigration(GroupConfig{Replicas: []platform.Store{joiner}}, migOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatal(err)
	}

	// Find one moved account per donor and remember each donor's
	// post-purge holdings.
	movedOf := make([]string, 2)
	keptOf := make([]int, 2)
	for gi := range stores {
		ds, err := stores[gi].Dataset(ctx)
		if err != nil {
			t.Fatal(err)
		}
		keptOf[gi] = len(ds.Accounts)
		for _, a := range ds.Accounts {
			if s.Shard(a.ID) != gi {
				t.Errorf("donor %d still holds moved account %s after purge", gi, a.ID)
			}
		}
	}
	for i := 0; i < pre; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		if s.Shard(acct) != 2 {
			continue
		}
		// Moved to the joiner: its old owner fenced (then purged) it and
		// must refuse a stray direct write.
		gi := oldOwner[acct]
		if err := stores[gi].Submit(ctx, acct, 0, 1, at(1)); !errors.Is(err, platform.ErrWrongShard) {
			t.Errorf("donor %d accepts purged account %s (err=%v), want ErrWrongShard", gi, acct, err)
		}
		if movedOf[gi] == "" {
			movedOf[gi] = acct
		}
	}

	// Crash-restart both donors WITHOUT a final snapshot: recovery must
	// replay the journaled purge record and reconstruct the purged state.
	for gi := range stores {
		if err := durs[gi].Abort(); err != nil {
			t.Fatal(err)
		}
		reopened, d2, _, err := platform.OpenDurable(dirs[gi], testTasks(2), platform.DurableOptions{})
		if err != nil {
			t.Fatalf("reopen donor %d: %v", gi, err)
		}
		t.Cleanup(func() { _ = d2.Close() })
		ds, err := reopened.Dataset(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Accounts) != keptOf[gi] {
			t.Errorf("reopened donor %d holds %d accounts, want %d (purge lost across restart)", gi, len(ds.Accounts), keptOf[gi])
		}
		for _, a := range ds.Accounts {
			if s.Shard(a.ID) != gi {
				t.Errorf("reopened donor %d resurrected moved account %s", gi, a.ID)
			}
		}
		if movedOf[gi] != "" {
			if err := reopened.Submit(ctx, movedOf[gi], 0, 1, at(1)); !errors.Is(err, platform.ErrWrongShard) {
				t.Errorf("reopened donor %d accepts fenced account %s (err=%v), want ErrWrongShard", gi, movedOf[gi], err)
			}
		}
	}
}
