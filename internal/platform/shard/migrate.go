// Online resharding: reshape a live fleet's ring with zero acked loss.
// The coordinator runs inside the router and drives a fenced key handoff
// in one of three kinds — grow (admit a new replica group), shrink
// (decommission a group, draining its keys to the survivors), and
// rebalance (change the per-group vnode weights) — all through the same
// state machine:
//
//	seed     — snapshot-ship every moved account from each donor (a
//	           filtered dataset read replayed through the target groups'
//	           regular write API, so targets journal and replicate it
//	           like any other traffic);
//	catch-up — stream each donor's decoded WAL tail for the moved
//	           accounts until the lag is small;
//	flip     — publish the candidate topology (one atomic pointer swap;
//	           new writes route by the new ring);
//	fence    — journal a fence on each donor: further mutations naming a
//	           moved account answer wrong_shard, and requests stamped
//	           with a stale ring version are refused wholesale;
//	drain    — stream the remaining tail (writes that raced the flip)
//	           to the targets, then declare the migration done and
//	           purge the donors' fenced data (keeping the fence
//	           watermark, so stale writers still get wrong_shard).
//
// The kinds differ only in who donates and what the candidate ring looks
// like: a grow's donors are every existing group and the sole target is
// the joiner; a shrink's sole donor is the retiring group and the
// targets are all survivors; a rebalance makes every group a donor of
// whatever keyspace the new weights take from it.
//
// Every step is crash-survivable. Coordinator state is journaled to a
// file after each transition and each tail batch, so a restarted router
// resumes (post-flip it MUST complete; pre-flip it may instead abort with
// no ring change). Re-seeding and re-tailing are idempotent: the targets'
// (account, task) duplicate guard absorbs re-delivery, so a crash between
// a write and its journal entry cannot double-apply. A donor primary
// dying mid-handoff stalls the tail until failover promotes a follower —
// whose WAL holds byte-identical records at the same sequence numbers, so
// the persisted cursor stays valid.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// Migration phases, as journaled. Seeding and catch-up precede the flip:
// a failure there aborts with no ring change. Flipped and fenced are
// post-cutover: the ring changed, so the migration must run to completion
// (resume after a crash; a retry loop after transient failure).
const (
	MigrationSeeding = "seeding"
	MigrationCatchup = "catchup"
	MigrationFlipped = "flipped"
	MigrationFenced  = "fenced"
	MigrationDone    = "done"
	MigrationAborted = "aborted"
)

// Migration kinds, as journaled in MigrationJournal.Kind.
const (
	MigrationGrow      = "grow"
	MigrationShrink    = "shrink"
	MigrationRebalance = "rebalance"
)

// migrationStateGauge encodes a phase for the reshard.state gauge.
func migrationStateGauge(phase string) int64 {
	switch phase {
	case MigrationSeeding:
		return 1
	case MigrationCatchup:
		return 2
	case MigrationFlipped:
		return 3
	case MigrationFenced:
		return 4
	case MigrationDone:
		return 5
	case MigrationAborted:
		return 6
	}
	return 0
}

// migrationKindGauge encodes a kind for the reshard.kind gauge.
func migrationKindGauge(kind string) int64 {
	switch kind {
	case MigrationGrow:
		return 1
	case MigrationShrink:
		return 2
	case MigrationRebalance:
		return 3
	}
	return 0
}

// MigrationJournal is the coordinator's persisted state: everything a
// restarted router needs to resume (or cleanly abort) an in-flight
// reshard. Cursors[i] is donor i's WAL export cursor — records at or
// below it have been forwarded to the targets (or predate the seed
// snapshot, which covered them). Donor numbering is per kind: a grow or
// rebalance has one donor per pre-flip group in group order; a shrink
// has exactly one donor, the retiring group.
type MigrationJournal struct {
	// RingVersion is the topology version the migration installs at the
	// flip (current version + 1 at start).
	RingVersion uint64 `json:"ring_version"`
	// Phase is the last durably reached phase.
	Phase string `json:"phase"`
	// Kind says which reshape this is: grow, shrink, or rebalance.
	// Journals written before kinds existed carry none and are grows.
	Kind string `json:"kind,omitempty"`
	// Retired is the retiring group's pre-flip index (shrink only).
	Retired int `json:"retired"`
	// Addrs are the replica addresses (primary first) of the group being
	// admitted (grow) or retired (shrink), so a restarted router can
	// rebuild its clients — or verify the configured group still matches.
	Addrs []string `json:"addrs,omitempty"`
	// Seeds and Weights describe the candidate ring (see
	// NewRingWeighted): survivors keep their seeds across a shrink, so
	// the post-flip seed vector may be gapped and cannot be recomputed
	// from a group count alone.
	Seeds   []int     `json:"seeds,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	// Cursors holds one WAL export cursor per donor.
	Cursors []uint64 `json:"cursors"`
	// CursorEpochs holds the donor replication epoch each cursor was
	// minted under. A donor failover starts a new lineage that may reuse
	// sequence numbers the old one already burned, so a cursor is only
	// meaningful together with its epoch: on mismatch the tail re-seeds
	// instead of silently skipping the new lineage's records.
	CursorEpochs []uint64 `json:"cursor_epochs,omitempty"`
	// KeysMoved counts accounts re-homed by the migration.
	KeysMoved int `json:"keys_moved"`
	// BytesShipped estimates the seed + tail payload volume.
	BytesShipped int64 `json:"bytes_shipped"`
}

// Pending reports whether the journal describes an unfinished migration.
func (j MigrationJournal) Pending() bool {
	switch j.Phase {
	case MigrationSeeding, MigrationCatchup, MigrationFlipped, MigrationFenced:
		return true
	}
	return false
}

// Flipped reports whether the cutover already happened: the ring changed,
// so a resuming router must reinstall the candidate topology and complete
// the migration rather than abort it.
func (j MigrationJournal) Flipped() bool {
	return j.Phase == MigrationFlipped || j.Phase == MigrationFenced
}

// kind normalizes Kind: journals from before kinds existed are grows.
func (j MigrationJournal) kind() string {
	if j.Kind == "" {
		return MigrationGrow
	}
	return j.Kind
}

// LoadMigrationJournal reads a coordinator journal. ok=false (with a nil
// error) means no journal exists — no migration was ever started, or the
// last one was cleaned up.
func LoadMigrationJournal(path string) (MigrationJournal, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return MigrationJournal{}, false, nil
	}
	if err != nil {
		return MigrationJournal{}, false, fmt.Errorf("shard: read migration journal: %w", err)
	}
	var j MigrationJournal
	if err := json.Unmarshal(data, &j); err != nil {
		return MigrationJournal{}, false, fmt.Errorf("shard: decode migration journal %s: %w", path, err)
	}
	return j, true, nil
}

// MigrationOptions tunes a migration.
type MigrationOptions struct {
	// JournalPath is where coordinator state persists (required).
	JournalPath string
	// BatchSize bounds seed batches and WAL tail reads; <= 0 means 512,
	// clamped to platform.MaxBatchItems.
	BatchSize int
	// FlipLag is the total catch-up lag (donor WAL records not yet
	// forwarded) under which the coordinator cuts over; <= 0 means 64.
	// Correctness never depends on it — the post-fence drain forwards
	// whatever raced the flip — it only bounds the drain's length.
	FlipLag int
	// PollInterval paces catch-up polls and donor-failure retries;
	// <= 0 means 50ms.
	PollInterval time.Duration
	// Registry receives the reshard.* metrics; nil means obs.Default().
	Registry *obs.Registry
	// Logger receives phase diagnostics; nil disables.
	Logger *log.Logger
}

func (o MigrationOptions) withDefaults() MigrationOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 512
	}
	if o.BatchSize > platform.MaxBatchItems {
		o.BatchSize = platform.MaxBatchItems
	}
	if o.FlipLag <= 0 {
		o.FlipLag = 64
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	return o
}

// donorRef is one donating group: its handle plus its position in the
// pre-flip topology and (when it survives the migration) the candidate
// one. A shrink's retiring donor is absent from the candidate topology —
// candGi is -1 — which is why donors are carried as handles instead of
// candidate indices.
type donorRef struct {
	g      *group
	oldGi  int
	candGi int // -1 when the donor leaves the ring
}

// Migration is one in-flight reshard. Drive it with Run; at most one
// migration may be in flight per Store.
type Migration struct {
	store *Store
	opts  MigrationOptions
	reg   *obs.Registry
	log   *log.Logger

	// old is the pre-flip topology the migration started from; cand is
	// the candidate it installs at the flip. The moved-account filter
	// compares ownership between the two rings.
	old  *topology
	cand *topology

	// donors are the groups whose moved accounts ship out, indexed like
	// the journal's cursors.
	donors []donorRef

	j     MigrationJournal
	start time.Time
}

// newMigration assembles the coordinator core shared by every start and
// resume path.
func newMigration(s *Store, old, cand *topology, donors []donorRef, j MigrationJournal, opts MigrationOptions) *Migration {
	return &Migration{
		store:  s,
		opts:   opts,
		reg:    opts.Registry,
		log:    opts.Logger,
		old:    old,
		cand:   cand,
		donors: donors,
		j:      j,
	}
}

// StartMigration begins admitting gc as a new replica group (a grow). It
// validates the target, journals the initial state, and returns the
// coordinator; the caller drives it with Run (typically in its own
// goroutine). Exactly one migration may be in flight per store.
func (s *Store) StartMigration(gc GroupConfig, opts MigrationOptions) (*Migration, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("shard: migration needs a journal path")
	}
	groups, err := buildGroups([]GroupConfig{gc})
	if err != nil {
		return nil, err
	}
	joinW := gc.Weight
	if joinW == 0 {
		joinW = 1
	}
	if err := validWeight(joinW); err != nil {
		return nil, err
	}
	if !s.migrating.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("shard: a migration is already in flight")
	}
	cur := s.topology()
	seeds := append(append([]int(nil), cur.seeds...), nextSeed(cur.seeds))
	weights := growWeights(cur.weights, len(cur.groups), joinW)
	cand := &topology{
		version: cur.version + 1,
		ring:    NewRingWeighted(seeds, weights, s.vnodes),
		groups:  append(append([]*group(nil), cur.groups...), groups[0]),
		seeds:   seeds,
		weights: weights,
	}
	j := MigrationJournal{
		RingVersion:  cand.version,
		Phase:        MigrationSeeding,
		Kind:         MigrationGrow,
		Addrs:        append([]string(nil), gc.Addrs...),
		Seeds:        seeds,
		Weights:      weights,
		Cursors:      make([]uint64, len(cur.groups)),
		CursorEpochs: make([]uint64, len(cur.groups)),
	}
	m := newMigration(s, cur, cand, growDonors(cur), j, opts)
	if err := m.persist(); err != nil {
		s.migrating.Store(false)
		return nil, err
	}
	return m, nil
}

// StartDecommission begins retiring group gi (a shrink): the same fenced
// handoff as a grow with donor and joiner swapped — the retiring group is
// the sole donor and the survivors are the targets. The retired group
// stays in the pre-flip topology (and keeps serving reads) until the
// flip; after the drain its fenced data is purged and its failover
// probes retire. The caller decommissions one group at a time and keeps
// the group in the router's configuration until the journal reads done.
func (s *Store) StartDecommission(gi int, opts MigrationOptions) (*Migration, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("shard: migration needs a journal path")
	}
	if !s.migrating.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("shard: a migration is already in flight")
	}
	cur := s.topology()
	if gi < 0 || gi >= len(cur.groups) {
		s.migrating.Store(false)
		return nil, fmt.Errorf("%w: group %d out of range (fleet has %d)", platform.ErrMalformedRequest, gi, len(cur.groups))
	}
	if len(cur.groups) < 2 {
		s.migrating.Store(false)
		return nil, fmt.Errorf("%w: cannot decommission the last group", platform.ErrMalformedRequest)
	}
	cand := shrinkTopology(cur, gi, s.vnodes)
	retiring := cur.groups[gi]
	j := MigrationJournal{
		RingVersion:  cand.version,
		Phase:        MigrationSeeding,
		Kind:         MigrationShrink,
		Retired:      gi,
		Addrs:        append([]string(nil), retiring.addrs...),
		Seeds:        cand.seeds,
		Weights:      cand.weights,
		Cursors:      make([]uint64, 1),
		CursorEpochs: make([]uint64, 1),
	}
	donors := []donorRef{{g: retiring, oldGi: gi, candGi: -1}}
	m := newMigration(s, cur, cand, donors, j, opts)
	if err := m.persist(); err != nil {
		s.migrating.Store(false)
		return nil, err
	}
	return m, nil
}

// StartRebalance begins re-weighting the ring: every group becomes a
// donor of whatever keyspace the new weight vector takes from it, and
// the same seed/catch-up/flip/fence/drain machinery moves exactly that
// delta. weights is positional with the configured groups.
func (s *Store) StartRebalance(weights []float64, opts MigrationOptions) (*Migration, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("shard: migration needs a journal path")
	}
	if !s.migrating.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("shard: a migration is already in flight")
	}
	cur := s.topology()
	norm, err := rebalanceWeights(cur, weights)
	if err != nil {
		s.migrating.Store(false)
		return nil, err
	}
	cand := &topology{
		version: cur.version + 1,
		ring:    NewRingWeighted(cur.seeds, norm, s.vnodes),
		groups:  cur.groups,
		seeds:   cur.seeds,
		weights: norm,
	}
	j := MigrationJournal{
		RingVersion:  cand.version,
		Phase:        MigrationSeeding,
		Kind:         MigrationRebalance,
		Seeds:        cand.seeds,
		Weights:      norm,
		Cursors:      make([]uint64, len(cur.groups)),
		CursorEpochs: make([]uint64, len(cur.groups)),
	}
	m := newMigration(s, cur, cand, growDonors(cur), j, opts)
	if err := m.persist(); err != nil {
		s.migrating.Store(false)
		return nil, err
	}
	return m, nil
}

// ResumeMigration rebuilds the coordinator for a journaled migration —
// the router-restart path — dispatching on the journal's kind. For a
// grow, gc must describe the same joining group the journal names (the
// caller rebuilds its clients from j.Addrs); shrink and rebalance ignore
// gc, since every involved group is already in the store's configuration.
// A pre-flip journal resumes from seeding (idempotent); a post-flip
// journal reinstalls the candidate topology before resuming, because the
// fleet's donors are already fenced at j.RingVersion and the flipped ring
// is the only topology that can serve the moved accounts.
func (s *Store) ResumeMigration(gc GroupConfig, j MigrationJournal, opts MigrationOptions) (*Migration, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("shard: migration needs a journal path")
	}
	if !j.Pending() {
		return nil, fmt.Errorf("shard: journal phase %q is not resumable", j.Phase)
	}
	cur := s.topology()
	if j.RingVersion != cur.version+1 {
		return nil, fmt.Errorf("shard: journal targets ring v%d but the store is at v%d (want v%d)",
			j.RingVersion, cur.version, j.RingVersion-1)
	}
	if len(j.CursorEpochs) != len(j.Cursors) {
		// Journal written before epochs were recorded: zero epochs never
		// match a live donor, so every tail starts with a safe re-seed.
		j.CursorEpochs = make([]uint64, len(j.Cursors))
	}

	var cand *topology
	var donors []donorRef
	switch j.kind() {
	case MigrationGrow:
		if len(j.Cursors) != len(cur.groups) {
			return nil, fmt.Errorf("shard: journal has %d donor cursors for %d groups", len(j.Cursors), len(cur.groups))
		}
		groups, err := buildGroups([]GroupConfig{gc})
		if err != nil {
			return nil, err
		}
		seeds := j.Seeds
		if len(seeds) == 0 {
			// Journal written before seeds were recorded: a grow's seeds
			// are always the current vector plus the next free seed.
			seeds = append(append([]int(nil), cur.seeds...), nextSeed(cur.seeds))
		}
		if len(seeds) != len(cur.groups)+1 {
			return nil, fmt.Errorf("shard: journal has %d ring seeds for a grow over %d groups", len(seeds), len(cur.groups))
		}
		cand = &topology{
			version: j.RingVersion,
			ring:    NewRingWeighted(seeds, j.Weights, s.vnodes),
			groups:  append(append([]*group(nil), cur.groups...), groups[0]),
			seeds:   seeds,
			weights: j.Weights,
		}
		donors = growDonors(cur)
	case MigrationShrink:
		if len(j.Cursors) != 1 {
			return nil, fmt.Errorf("shard: shrink journal has %d donor cursors, want 1", len(j.Cursors))
		}
		if j.Retired < 0 || j.Retired >= len(cur.groups) {
			return nil, fmt.Errorf("shard: shrink journal retires group %d but the fleet has %d groups", j.Retired, len(cur.groups))
		}
		if len(cur.groups) < 2 {
			return nil, fmt.Errorf("shard: cannot resume a shrink with a single configured group")
		}
		retiring := cur.groups[j.Retired]
		if len(j.Addrs) > 0 && len(retiring.addrs) > 0 && j.Addrs[0] != retiring.addrs[0] {
			return nil, fmt.Errorf("shard: shrink journal retires %s but configured group %d is %s — keep the retiring group in the configuration until the journal reads done",
				j.Addrs[0], j.Retired, retiring.addrs[0])
		}
		cand = shrinkTopology(cur, j.Retired, s.vnodes)
		donors = []donorRef{{g: retiring, oldGi: j.Retired, candGi: -1}}
	case MigrationRebalance:
		if len(j.Cursors) != len(cur.groups) {
			return nil, fmt.Errorf("shard: journal has %d donor cursors for %d groups", len(j.Cursors), len(cur.groups))
		}
		norm, err := rebalanceWeights(cur, j.Weights)
		if err != nil && !errors.Is(err, errWeightsUnchanged) {
			return nil, err
		}
		cand = &topology{
			version: j.RingVersion,
			ring:    NewRingWeighted(cur.seeds, norm, s.vnodes),
			groups:  cur.groups,
			seeds:   cur.seeds,
			weights: norm,
		}
		donors = growDonors(cur)
	default:
		return nil, fmt.Errorf("shard: unknown migration kind %q", j.Kind)
	}

	if !s.migrating.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("shard: a migration is already in flight")
	}
	m := newMigration(s, cur, cand, donors, j, opts)
	if j.Flipped() {
		// The fleet already cut over before the restart: reinstall the
		// candidate topology before any traffic routes by the stale ring
		// and trips the donors' fences.
		s.installTopology(m.cand)
		m.stampRetired()
	}
	return m, nil
}

// growDonors makes every group of t a donor that keeps its position.
func growDonors(t *topology) []donorRef {
	donors := make([]donorRef, len(t.groups))
	for i, g := range t.groups {
		donors[i] = donorRef{g: g, oldGi: i, candGi: i}
	}
	return donors
}

// nextSeed picks the first vnode seed above every seed in use, so a
// joiner can never collide with a survivor's virtual points — even after
// shrinks left gaps in the vector.
func nextSeed(seeds []int) int {
	next := 0
	for _, s := range seeds {
		if s >= next {
			next = s + 1
		}
	}
	return next
}

// growWeights extends the current weight vector with the joiner's weight,
// staying nil when everything is the default 1.0.
func growWeights(cur []float64, n int, joinW float64) []float64 {
	if cur == nil && joinW == 1 {
		return nil
	}
	out := make([]float64, 0, n+1)
	if cur == nil {
		for i := 0; i < n; i++ {
			out = append(out, 1)
		}
	} else {
		out = append(out, cur...)
	}
	return append(out, joinW)
}

// errWeightsUnchanged marks a rebalance whose weights equal the current
// vector — refused at start (the operator typoed), tolerated on resume.
var errWeightsUnchanged = errors.New("weights unchanged")

// rebalanceWeights validates and normalizes an operator weight vector
// against topology t: positional, positive finite, all-1 collapsing to
// nil so the ring stays byte-identical to the unweighted construction.
func rebalanceWeights(t *topology, weights []float64) ([]float64, error) {
	if len(weights) != len(t.groups) {
		return nil, fmt.Errorf("%w: %d weights for %d groups", platform.ErrMalformedRequest, len(weights), len(t.groups))
	}
	uniform := true
	norm := make([]float64, len(weights))
	for i, w := range weights {
		if err := validWeight(w); err != nil {
			return nil, fmt.Errorf("group %d: %w", i, err)
		}
		norm[i] = w
		if w != 1 {
			uniform = false
		}
	}
	if uniform {
		norm = nil
	}
	unchanged := true
	for i := range weights {
		curW := 1.0
		if t.weights != nil {
			curW = t.weights[i]
		}
		if weights[i] != curW {
			unchanged = false
			break
		}
	}
	if unchanged {
		return norm, fmt.Errorf("%w: %w", platform.ErrMalformedRequest, errWeightsUnchanged)
	}
	return norm, nil
}

// shrinkTopology builds the candidate topology with group gi removed:
// survivors keep their group objects, seeds, and weights, so their
// virtual points — and therefore their keys — do not move.
func shrinkTopology(cur *topology, gi, vnodes int) *topology {
	groups := make([]*group, 0, len(cur.groups)-1)
	seeds := make([]int, 0, len(cur.groups)-1)
	var weights []float64
	if cur.weights != nil {
		weights = make([]float64, 0, len(cur.groups)-1)
	}
	for i, g := range cur.groups {
		if i == gi {
			continue
		}
		groups = append(groups, g)
		seeds = append(seeds, cur.seeds[i])
		if cur.weights != nil {
			weights = append(weights, cur.weights[i])
		}
	}
	return &topology{
		version: cur.version + 1,
		ring:    NewRingWeighted(seeds, weights, vnodes),
		groups:  groups,
		seeds:   seeds,
		weights: weights,
	}
}

// Journal returns the coordinator's current journaled state.
func (m *Migration) Journal() MigrationJournal { return m.j }

// persist writes the journal durably: the bytes are fsynced in the tmp
// file BEFORE the rename installs it (and the directory fsynced after),
// the same discipline as snapshots — rename alone orders nothing, and a
// crash after an unsynced rename can install an empty or torn journal,
// which would strand a post-flip migration unresumable.
func (m *Migration) persist() error {
	data, err := json.Marshal(m.j)
	if err != nil {
		return fmt.Errorf("shard: encode migration journal: %w", err)
	}
	tmp := m.opts.JournalPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: write migration journal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("shard: write migration journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("shard: sync migration journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: close migration journal: %w", err)
	}
	if err := os.Rename(tmp, m.opts.JournalPath); err != nil {
		return fmt.Errorf("shard: install migration journal: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(m.opts.JournalPath)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	m.reg.Gauge("reshard.state").Set(migrationStateGauge(m.j.Phase))
	m.reg.Gauge("reshard.kind").Set(migrationKindGauge(m.j.kind()))
	m.reg.Gauge("reshard.keys_moved").Set(int64(m.j.KeysMoved))
	m.reg.Gauge("reshard.bytes_shipped").Set(m.j.BytesShipped)
	return nil
}

// setPhase journals a phase transition.
func (m *Migration) setPhase(phase string) error {
	m.j.Phase = phase
	m.logf("%s phase -> %s (ring v%d)", m.j.kind(), phase, m.j.RingVersion)
	return m.persist()
}

// moved reports whether the migration re-homes account away from donor
// di: the old ring owned it there and the candidate ring does not. (For
// a retiring donor the second half is vacuous — everything it owns
// moves.) Filtering on old-ring ownership also skips accounts a donor
// merely holds fenced from an earlier migration.
func (m *Migration) moved(di int, account string) bool {
	if account == "" {
		return false
	}
	d := m.donors[di]
	if m.old.ring.Shard(account) != d.oldGi {
		return false
	}
	return d.candGi < 0 || m.cand.ring.Shard(account) != d.candGi
}

// donorLabel names donor di in logs and errors.
func (m *Migration) donorLabel(di int) string {
	d := m.donors[di]
	if a := d.g.addr(d.g.primaryIdx()); a != "" {
		return fmt.Sprintf("%d (%s)", d.oldGi, a)
	}
	return fmt.Sprint(d.oldGi)
}

// stampRetired propagates the candidate ring version to retiring donors'
// clients: they are absent from the candidate topology, so
// installTopology's propagation misses them, and the coordinator's own
// post-flip export/fence/purge requests should carry the version the
// donor is fenced at rather than a stale stamp.
func (m *Migration) stampRetired() {
	for _, d := range m.donors {
		if d.candGi >= 0 {
			continue
		}
		for _, b := range d.g.replicas {
			if rc, ok := b.(replClient); ok {
				rc.Client().SetRingVersion(m.cand.version)
			}
		}
	}
}

// Run drives the migration to completion: seed, catch up, flip, fence,
// drain, purge. Pre-flip failures abort cleanly (journal marked aborted,
// no ring change, the fleet untouched). Post-flip failures leave the
// journal resumable — the caller retries or a restarted router resumes.
// ctx bounds the whole run; a donor group that is entirely dark stalls
// the run (retrying at PollInterval) rather than failing it, because
// failover is expected to promote a follower.
func (m *Migration) Run(ctx context.Context) (err error) {
	m.start = time.Now()
	defer m.store.migrating.Store(false)
	// Terminal stamping happens on every exit — success, abort, and
	// resumable failure alike — so the gauges never describe a run that
	// is no longer happening.
	defer func() {
		m.reg.Gauge("reshard.duration_seconds").Set(int64(time.Since(m.start).Seconds()))
	}()

	if m.j.Phase == MigrationSeeding || m.j.Phase == MigrationCatchup {
		if err := m.seedAndCatchup(ctx); err != nil {
			// Pre-flip, aborting is always clean: nothing routed to the
			// targets yet, donors still own every key.
			m.j.Phase = MigrationAborted
			if perr := m.persist(); perr != nil {
				m.logf("abort: persisting aborted state failed: %v", perr)
			}
			m.reg.Gauge("reshard.catchup_lag_records").Set(0)
			m.logf("aborted before flip: %v", err)
			return fmt.Errorf("shard: migration aborted before flip: %w", err)
		}
		m.store.installTopology(m.cand)
		m.stampRetired()
		if err := m.setPhase(MigrationFlipped); err != nil {
			return err
		}
	}

	if m.j.Phase == MigrationFlipped {
		if err := m.fenceDonors(ctx); err != nil {
			return fmt.Errorf("shard: migration fence (resumable): %w", err)
		}
		if err := m.setPhase(MigrationFenced); err != nil {
			return err
		}
	}

	if err := m.drain(ctx); err != nil {
		return fmt.Errorf("shard: migration drain (resumable): %w", err)
	}
	if err := m.setPhase(MigrationDone); err != nil {
		return err
	}
	// The purge survives the caller's cancellation: a router shutting
	// down right as the drain lands would otherwise cancel the GC between
	// the Done journal write and here, and nothing ever re-purges a done
	// migration. Detaching (with a bounded deadline) closes that window;
	// a donor that is genuinely unreachable still just keeps its garbage
	// until an operator purges it by hand.
	pctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	m.purgeDonors(pctx)
	m.retireDonors()
	m.logf("%s done: %d accounts moved, ~%d bytes shipped, %s elapsed",
		m.j.kind(), m.j.KeysMoved, m.j.BytesShipped, time.Since(m.start).Round(time.Millisecond))
	return nil
}

// sleep waits one poll interval or until ctx ends.
func (m *Migration) sleep(ctx context.Context) error {
	t := time.NewTimer(m.opts.PollInterval)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// donorRetryable classifies donor-side failures worth waiting out: the
// donor's current primary is gone or mid-failover, and the poller (or our
// own refreshPrimary) will surface a promoted follower.
func donorRetryable(err error) bool {
	return errors.Is(err, platform.ErrShardUnavailable) ||
		errors.Is(err, platform.ErrNotPrimary) ||
		errors.Is(err, platform.ErrReplicaLag) ||
		errors.Is(err, platform.ErrOverloaded)
}

// withDonor runs fn against donor di's current primary, riding out
// failover: on a retryable failure it re-probes the group for the real
// primary and tries again at PollInterval until ctx ends. Non-retryable
// errors surface immediately. The donor is addressed by its group
// handle, never its topology position — post-flip, a shrink's retiring
// donor has no position.
func (m *Migration) withDonor(ctx context.Context, di int, fn func(platform.Store) error) error {
	g := m.donors[di].g
	for {
		err := fn(g.replicas[g.primaryIdx()])
		if err == nil || !donorRetryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		m.logf("donor %s: %v (retrying)", m.donorLabel(di), err)
		m.store.refreshPrimaryGroup(ctx, g)
		if serr := m.sleep(ctx); serr != nil {
			return err
		}
	}
}

// withTarget runs fn against target group tgi's current primary. Before
// the flip a target failure returns immediately — aborting is cheap and
// clean while the old ring still owns everything, and a joiner that is
// down should fail the migration, not stall it. After the flip there is
// no abort: the candidate ring is live, the drain MUST land on the
// survivors, so a target losing its primary stalls the handoff until
// promotion, riding out failover the way withDonor does for donors.
// Re-delivery after a partial attempt is absorbed by the duplicate guard.
func (m *Migration) withTarget(ctx context.Context, tgi int, fn func(platform.Store) error) error {
	for {
		err := m.store.writeTo(ctx, m.cand, tgi, fn)
		if err == nil || !donorRetryable(err) || !m.j.Flipped() {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		m.logf("target group %d: %v (retrying)", tgi, err)
		m.store.refreshPrimary(ctx, m.cand, tgi)
		if serr := m.sleep(ctx); serr != nil {
			return err
		}
	}
}

// forwardBatch replays moved submissions into their candidate-ring
// owners: a grow funnels everything to the joiner, a shrink spreads the
// retiring group's keys across every survivor, a rebalance follows the
// weight delta. Duplicate rejections are success: the record was already
// seeded or forwarded (a resume re-covers ground), and the duplicate
// guard is exactly what makes that idempotent instead of double-applied.
func (m *Migration) forwardBatch(ctx context.Context, items []platform.BatchSubmission) error {
	if len(items) == 0 {
		return nil
	}
	// Bucket by candidate owner, preserving relative order within each
	// target so one account's in-batch duplicate semantics survive.
	buckets := make(map[int][]platform.BatchSubmission)
	order := make([]int, 0, 2)
	for _, it := range items {
		tgi := m.cand.ring.Shard(it.Account)
		if _, ok := buckets[tgi]; !ok {
			order = append(order, tgi)
		}
		buckets[tgi] = append(buckets[tgi], it)
	}
	for _, tgi := range order {
		sub := buckets[tgi]
		for len(sub) > 0 {
			n := len(sub)
			if n > m.opts.BatchSize {
				n = m.opts.BatchSize
			}
			chunk := sub[:n]
			sub = sub[n:]
			var errs []error
			if err := m.withTarget(ctx, tgi, func(b platform.Store) error {
				errs = b.SubmitBatch(ctx, chunk)
				for _, e := range errs {
					if e != nil && donorRetryable(e) {
						return e // let withTarget re-probe and resend the chunk
					}
				}
				return nil
			}); err != nil {
				return err
			}
			for i, e := range errs {
				if e != nil && !errors.Is(e, platform.ErrDuplicateReport) {
					return fmt.Errorf("forward %s/task %d: %w", chunk[i].Account, chunk[i].Task, e)
				}
			}
			for _, it := range chunk {
				m.j.BytesShipped += int64(len(it.Account)) + 24
			}
		}
	}
	return nil
}

// forwardFingerprint replays a moved fingerprint feature vector to the
// account's candidate-ring owner.
func (m *Migration) forwardFingerprint(ctx context.Context, account string, features []float64) error {
	tgi := m.cand.ring.Shard(account)
	if err := m.withTarget(ctx, tgi, func(b platform.Store) error {
		return b.RecordFingerprintFeatures(ctx, account, features)
	}); err != nil {
		return fmt.Errorf("forward fingerprint %s: %w", account, err)
	}
	m.j.BytesShipped += int64(len(account) + 8*len(features))
	return nil
}

// seedDonor snapshots donor di's moved accounts into the targets and
// sets the tail cursor. The cursor is read from the SAME primary BEFORE
// the dataset read: the tail may then re-deliver records the dataset
// already contained (absorbed by the duplicate guard) but can never skip
// one. Returns the number of accounts seeded.
func (m *Migration) seedDonor(ctx context.Context, di int) (int, error) {
	var cursor, cursorEpoch uint64
	var accounts []mcs.Account
	err := m.withDonor(ctx, di, func(b platform.Store) error {
		exp, ok := b.(platform.Exporter)
		if !ok {
			return fmt.Errorf("%w: donor %s cannot export its WAL", platform.ErrUnimplemented, m.donorLabel(di))
		}
		probe, err := exp.ExportSince(ctx, math.MaxUint64, 1)
		if err != nil {
			return err
		}
		d, err := b.Dataset(ctx)
		if err != nil {
			return err
		}
		cursor = probe.DurableSeq
		cursorEpoch = probe.Epoch
		accounts = d.Accounts
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("seed donor %s: %w", m.donorLabel(di), err)
	}
	// Accumulate every moved account into one forward stream (forwardBatch
	// chunks it by BatchSize). One batch per account would cost one target
	// replication ack per account — at semi-sync ship cadence that drains
	// slower than sustained load refills, and the catch-up never converges.
	seeded := 0
	var items []platform.BatchSubmission
	for _, a := range accounts {
		if !m.moved(di, a.ID) {
			continue
		}
		seeded++
		if len(a.Fingerprint) > 0 {
			if err := m.forwardFingerprint(ctx, a.ID, a.Fingerprint); err != nil {
				return 0, err
			}
		}
		for _, o := range a.Observations {
			items = append(items, platform.BatchSubmission{Account: a.ID, Task: o.Task, Value: o.Value, At: o.Time})
		}
	}
	if err := m.forwardBatch(ctx, items); err != nil {
		return 0, err
	}
	m.j.Cursors[di] = cursor
	m.j.CursorEpochs[di] = cursorEpoch
	return seeded, nil
}

// tailDonor pumps donor di's WAL tail from the journaled cursor, forwards
// the moved records, advances the cursor, and returns the remaining lag.
// A compaction signal (the cursor's range no longer in the donor's WAL)
// falls back to a full re-seed — safe because re-delivery is idempotent.
func (m *Migration) tailDonor(ctx context.Context, di int) (uint64, error) {
	for {
		var batch platform.ExportBatch
		err := m.withDonor(ctx, di, func(b platform.Store) error {
			exp, ok := b.(platform.Exporter)
			if !ok {
				return fmt.Errorf("%w: donor %s cannot export its WAL", platform.ErrUnimplemented, m.donorLabel(di))
			}
			var e error
			batch, e = exp.ExportSince(ctx, m.j.Cursors[di], m.opts.BatchSize)
			return e
		})
		if err != nil {
			return 0, fmt.Errorf("tail donor %s: %w", m.donorLabel(di), err)
		}
		if batch.SnapshotNeeded || batch.Epoch != m.j.CursorEpochs[di] {
			// A compacted tail range and a donor failover invalidate the
			// cursor the same way. The failover case is the subtle one: the
			// promoted follower's durable history may end a few records
			// short of the dead primary's, and its new lineage then reuses
			// those sequence numbers for different records — records a
			// seq-only cursor would silently skip.
			if batch.SnapshotNeeded {
				m.logf("donor %s: tail range compacted away; re-seeding", m.donorLabel(di))
			} else {
				m.logf("donor %s: failover changed epoch %d -> %d; cursor invalid, re-seeding",
					m.donorLabel(di), m.j.CursorEpochs[di], batch.Epoch)
			}
			if _, err := m.seedDonor(ctx, di); err != nil {
				return 0, err
			}
			if err := m.persist(); err != nil {
				return 0, err
			}
			continue
		}
		var items []platform.BatchSubmission
		for _, rec := range batch.Records {
			if !m.moved(di, rec.Account) {
				continue
			}
			switch rec.Op {
			case platform.ExportOpSubmit:
				items = append(items, platform.BatchSubmission{
					Account: rec.Account, Task: rec.Task, Value: rec.Value, At: rec.Time,
				})
			case platform.ExportOpFingerprint:
				if err := m.forwardFingerprint(ctx, rec.Account, rec.Features); err != nil {
					return 0, err
				}
			}
		}
		if err := m.forwardBatch(ctx, items); err != nil {
			return 0, err
		}
		m.j.Cursors[di] = batch.NextSeq
		if err := m.persist(); err != nil {
			return 0, err
		}
		lag := uint64(0)
		if batch.DurableSeq > batch.NextSeq {
			lag = batch.DurableSeq - batch.NextSeq
		}
		if len(batch.Records) == 0 || lag == 0 {
			return lag, nil
		}
	}
}

// seedAndCatchup runs the pre-flip phases: snapshot-seed every donor,
// then pump the WAL tails until the total lag drops under FlipLag.
func (m *Migration) seedAndCatchup(ctx context.Context) error {
	if m.j.Phase == MigrationSeeding {
		keys := 0
		for di := range m.donors {
			n, err := m.seedDonor(ctx, di)
			if err != nil {
				return err
			}
			keys += n
		}
		// Seeding restarts from scratch on resume, so the count is
		// assigned, not accumulated.
		m.j.KeysMoved = keys
		if err := m.setPhase(MigrationCatchup); err != nil {
			return err
		}
	}
	for {
		var total uint64
		for di := range m.donors {
			lag, err := m.tailDonor(ctx, di)
			if err != nil {
				return err
			}
			total += lag
		}
		m.reg.Gauge("reshard.catchup_lag_records").Set(int64(total))
		if total <= uint64(m.opts.FlipLag) {
			return nil
		}
		if err := m.sleep(ctx); err != nil {
			return err
		}
	}
}

// fenceDonors journals a fence on every donor at the new ring version:
// the donor's current moved-account set (which may have grown since the
// seed — accounts created while the migration ran) is refused further
// mutations, and any request stamped with a pre-flip ring version is
// refused wholesale. Fencing is idempotent, so a resume re-fences freely.
func (m *Migration) fenceDonors(ctx context.Context) error {
	for di := range m.donors {
		err := m.withDonor(ctx, di, func(b platform.Store) error {
			f, ok := b.(platform.Fencer)
			if !ok {
				return fmt.Errorf("%w: donor %s cannot fence accounts", platform.ErrUnimplemented, m.donorLabel(di))
			}
			ds, err := b.Dataset(ctx)
			if err != nil {
				return err
			}
			var accounts []string
			for _, a := range ds.Accounts {
				if m.moved(di, a.ID) {
					accounts = append(accounts, a.ID)
				}
			}
			return f.Fence(ctx, m.cand.version, accounts)
		})
		if err != nil {
			return fmt.Errorf("fence donor %s: %w", m.donorLabel(di), err)
		}
	}
	return nil
}

// drain pumps each donor's tail past its post-fence high-water mark. The
// fence guarantees no moved-account record lands after it, so reaching
// the post-fence durable sequence means every acked moved write — however
// it raced the flip — is on its new owner.
func (m *Migration) drain(ctx context.Context) error {
	for di := range m.donors {
		if err := m.drainDonor(ctx, di); err != nil {
			return err
		}
	}
	m.reg.Gauge("reshard.catchup_lag_records").Set(0)
	return nil
}

// drainDonor pumps donor di's tail to the post-fence high-water mark:
// everything at or below it must be forwarded; nothing above it can name
// a moved account. The target is only meaningful on the lineage it was
// probed from — a mid-drain failover re-seeds the tail (epoch mismatch)
// and the target must then be re-probed on the new lineage. That stays
// sound because the fence record itself is semi-sync replicated: any
// promotable follower already holds it, so the new lineage's high-water
// mark is post-fence too.
func (m *Migration) drainDonor(ctx context.Context, di int) error {
	for {
		var target, targetEpoch uint64
		if err := m.withDonor(ctx, di, func(b platform.Store) error {
			exp, ok := b.(platform.Exporter)
			if !ok {
				return fmt.Errorf("%w: donor %s cannot export its WAL", platform.ErrUnimplemented, m.donorLabel(di))
			}
			probe, err := exp.ExportSince(ctx, math.MaxUint64, 1)
			if err != nil {
				return err
			}
			target, targetEpoch = probe.DurableSeq, probe.Epoch
			return nil
		}); err != nil {
			return fmt.Errorf("drain donor %s: %w", m.donorLabel(di), err)
		}
		// Pump the tail until the cursor passes the target on the target's
		// own lineage. This must run even when the journaled cursor epoch
		// already disagrees with targetEpoch (a failover happened between
		// the cursor's mint and this probe — e.g. the journal survived a
		// router restart but the donor did not): tailDonor is the code
		// that notices the mismatch and re-seeds, so skipping it would
		// spin on the stale epoch forever.
		for m.j.CursorEpochs[di] != targetEpoch || m.j.Cursors[di] < target {
			lag, err := m.tailDonor(ctx, di)
			if err != nil {
				return err
			}
			m.reg.Gauge("reshard.catchup_lag_records").Set(int64(lag))
			if m.j.CursorEpochs[di] != targetEpoch {
				// The donor failed over while draining: the target belongs
				// to a dead lineage. Re-probe it on the current one.
				break
			}
			if m.j.Cursors[di] >= target {
				break
			}
			if err := m.sleep(ctx); err != nil {
				return err
			}
		}
		if m.j.CursorEpochs[di] == targetEpoch && m.j.Cursors[di] >= target {
			return nil
		}
	}
}

// purgeDonors garbage-collects the moved accounts' data from each donor
// after the migration durably completed: a journaled purge drops every
// account fenced at or below the candidate ring version while keeping
// the fence-version watermark, so the donor keeps answering wrong_shard
// to stale writers without carrying the moved observations in memory and
// every snapshot forever. Purging is best-effort — the migration is
// already done, and a donor that is briefly unreachable simply keeps its
// garbage until an operator purges it; failing the migration over it
// would re-run a handoff that already finished.
func (m *Migration) purgeDonors(ctx context.Context) {
	for di, d := range m.donors {
		cur := d.g.primaryIdx()
		p, ok := d.g.replicas[cur].(platform.FencePurger)
		if !ok {
			continue
		}
		n, err := p.PurgeFenced(ctx, m.cand.version)
		if err != nil && errors.Is(err, platform.ErrNotPrimary) {
			// The donor failed over since the drain; one refresh, like any
			// routed write.
			if idx, ok2 := m.store.refreshPrimaryGroup(ctx, d.g); ok2 && idx != cur {
				if p2, ok3 := d.g.replicas[idx].(platform.FencePurger); ok3 {
					n, err = p2.PurgeFenced(ctx, m.cand.version)
				}
			}
		}
		if err != nil {
			m.logf("donor %s: post-done purge failed (data stays until a later purge): %v", m.donorLabel(di), err)
			continue
		}
		if n > 0 {
			m.logf("donor %s: purged %d fenced accounts", m.donorLabel(di), n)
		}
		m.reg.Counter("reshard.purged_accounts").Add(int64(n))
	}
}

// retireDonors ends failover probe coverage for donors that left the
// ring (shrink only) — they needed it through the drain, but a retired
// group is no longer this router's to fail over, and /readyz should stop
// reporting it.
func (m *Migration) retireDonors() {
	for _, d := range m.donors {
		if d.candGi < 0 {
			m.store.retireGroupProbes(d.g)
		}
	}
}

func (m *Migration) logf(format string, args ...any) {
	if m.log != nil {
		m.log.Printf("reshard: "+format, args...)
	}
}
