// Online resharding: admit a new replica group to a live fleet with zero
// acked loss. The coordinator runs inside the router and drives a fenced
// key handoff:
//
//	seed     — snapshot-ship every moved account from each donor (a
//	           filtered dataset read replayed through the joiner's
//	           regular write API, so the joiner journals and replicates
//	           it like any other traffic);
//	catch-up — stream each donor's decoded WAL tail for the moved
//	           accounts until the lag is small;
//	flip     — publish the grown topology (one atomic pointer swap;
//	           new writes route by the new ring);
//	fence    — journal a fence on each donor: further mutations naming a
//	           moved account answer wrong_shard, and requests stamped
//	           with a stale ring version are refused wholesale;
//	drain    — stream the remaining tail (writes that raced the flip)
//	           to the joiner, then declare the migration done.
//
// Every step is crash-survivable. Coordinator state is journaled to a
// file after each transition and each tail batch, so a restarted router
// resumes (post-flip it MUST complete; pre-flip it may instead abort with
// no ring change). Re-seeding and re-tailing are idempotent: the joiner's
// (account, task) duplicate guard absorbs re-delivery, so a crash between
// a write and its journal entry cannot double-apply. A donor primary
// dying mid-handoff stalls the tail until failover promotes a follower —
// whose WAL holds byte-identical records at the same sequence numbers, so
// the persisted cursor stays valid.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// Migration phases, as journaled. Seeding and catch-up precede the flip:
// a failure there aborts with no ring change. Flipped and fenced are
// post-cutover: the ring grew, so the migration must run to completion
// (resume after a crash; a retry loop after transient failure).
const (
	MigrationSeeding = "seeding"
	MigrationCatchup = "catchup"
	MigrationFlipped = "flipped"
	MigrationFenced  = "fenced"
	MigrationDone    = "done"
	MigrationAborted = "aborted"
)

// migrationStateGauge encodes a phase for the reshard.state gauge.
func migrationStateGauge(phase string) int64 {
	switch phase {
	case MigrationSeeding:
		return 1
	case MigrationCatchup:
		return 2
	case MigrationFlipped:
		return 3
	case MigrationFenced:
		return 4
	case MigrationDone:
		return 5
	case MigrationAborted:
		return 6
	}
	return 0
}

// MigrationJournal is the coordinator's persisted state: everything a
// restarted router needs to resume (or cleanly abort) an in-flight
// reshard. Cursors[gi] is the donor's WAL export cursor — records at or
// below it have been forwarded to the joiner (or predate the seed
// snapshot, which covered them).
type MigrationJournal struct {
	// RingVersion is the topology version the migration installs at the
	// flip (current version + 1 at start).
	RingVersion uint64 `json:"ring_version"`
	// Phase is the last durably reached phase.
	Phase string `json:"phase"`
	// Addrs are the joining group's replica addresses (primary first), so
	// a restarted router can rebuild its clients.
	Addrs []string `json:"addrs,omitempty"`
	// Cursors holds one WAL export cursor per donor group.
	Cursors []uint64 `json:"cursors"`
	// CursorEpochs holds the donor replication epoch each cursor was
	// minted under. A donor failover starts a new lineage that may reuse
	// sequence numbers the old one already burned, so a cursor is only
	// meaningful together with its epoch: on mismatch the tail re-seeds
	// instead of silently skipping the new lineage's records.
	CursorEpochs []uint64 `json:"cursor_epochs,omitempty"`
	// KeysMoved counts accounts re-homed to the joiner.
	KeysMoved int `json:"keys_moved"`
	// BytesShipped estimates the seed + tail payload volume.
	BytesShipped int64 `json:"bytes_shipped"`
}

// Pending reports whether the journal describes an unfinished migration.
func (j MigrationJournal) Pending() bool {
	switch j.Phase {
	case MigrationSeeding, MigrationCatchup, MigrationFlipped, MigrationFenced:
		return true
	}
	return false
}

// Flipped reports whether the cutover already happened: the ring grew, so
// a resuming router must re-admit the group and complete the migration
// rather than abort it.
func (j MigrationJournal) Flipped() bool {
	return j.Phase == MigrationFlipped || j.Phase == MigrationFenced
}

// LoadMigrationJournal reads a coordinator journal. ok=false (with a nil
// error) means no journal exists — no migration was ever started, or the
// last one was cleaned up.
func LoadMigrationJournal(path string) (MigrationJournal, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return MigrationJournal{}, false, nil
	}
	if err != nil {
		return MigrationJournal{}, false, fmt.Errorf("shard: read migration journal: %w", err)
	}
	var j MigrationJournal
	if err := json.Unmarshal(data, &j); err != nil {
		return MigrationJournal{}, false, fmt.Errorf("shard: decode migration journal %s: %w", path, err)
	}
	return j, true, nil
}

// MigrationOptions tunes a migration.
type MigrationOptions struct {
	// JournalPath is where coordinator state persists (required).
	JournalPath string
	// BatchSize bounds seed batches and WAL tail reads; <= 0 means 512,
	// clamped to platform.MaxBatchItems.
	BatchSize int
	// FlipLag is the total catch-up lag (donor WAL records not yet
	// forwarded) under which the coordinator cuts over; <= 0 means 64.
	// Correctness never depends on it — the post-fence drain forwards
	// whatever raced the flip — it only bounds the drain's length.
	FlipLag int
	// PollInterval paces catch-up polls and donor-failure retries;
	// <= 0 means 50ms.
	PollInterval time.Duration
	// Registry receives the reshard.* metrics; nil means obs.Default().
	Registry *obs.Registry
	// Logger receives phase diagnostics; nil disables.
	Logger *log.Logger
}

func (o MigrationOptions) withDefaults() MigrationOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 512
	}
	if o.BatchSize > platform.MaxBatchItems {
		o.BatchSize = platform.MaxBatchItems
	}
	if o.FlipLag <= 0 {
		o.FlipLag = 64
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	return o
}

// Migration is one in-flight reshard: the coordinator admitting a single
// new replica group. Drive it with Run; at most one migration may be in
// flight per Store.
type Migration struct {
	store *Store
	opts  MigrationOptions
	reg   *obs.Registry
	log   *log.Logger

	// cand is the candidate topology: the current groups plus the joiner,
	// at version journal.RingVersion. Seed and catch-up route by it
	// without publishing it; the flip publishes it.
	cand  *topology
	newGi int // the joiner's group index within cand

	j     MigrationJournal
	start time.Time
}

// StartMigration begins admitting gc as a new replica group. It validates
// the target, journals the initial state, and returns the coordinator;
// the caller drives it with Run (typically in its own goroutine). Exactly
// one migration may be in flight per store.
func (s *Store) StartMigration(gc GroupConfig, opts MigrationOptions) (*Migration, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("shard: migration needs a journal path")
	}
	groups, err := buildGroups([]GroupConfig{gc})
	if err != nil {
		return nil, err
	}
	if !s.migrating.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("shard: a migration is already in flight")
	}
	cur := s.topology()
	m := &Migration{
		store: s,
		opts:  opts,
		reg:   opts.Registry,
		log:   opts.Logger,
		newGi: len(cur.groups),
		j: MigrationJournal{
			RingVersion:  cur.version + 1,
			Phase:        MigrationSeeding,
			Addrs:        append([]string(nil), gc.Addrs...),
			Cursors:      make([]uint64, len(cur.groups)),
			CursorEpochs: make([]uint64, len(cur.groups)),
		},
	}
	m.cand = &topology{
		version: m.j.RingVersion,
		ring:    NewRing(len(cur.groups)+1, s.vnodes),
		groups:  append(append([]*group(nil), cur.groups...), groups[0]),
	}
	if err := m.persist(); err != nil {
		s.migrating.Store(false)
		return nil, err
	}
	return m, nil
}

// ResumeMigration rebuilds the coordinator for a journaled migration —
// the router-restart path. gc must describe the same joining group the
// journal names (the caller rebuilds its clients from j.Addrs). A
// pre-flip journal resumes from seeding (idempotent); a post-flip journal
// re-admits the group into the topology before resuming, because the
// fleet's donors are already fenced at j.RingVersion and the grown ring
// is the only topology that can serve the moved accounts.
func (s *Store) ResumeMigration(gc GroupConfig, j MigrationJournal, opts MigrationOptions) (*Migration, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, fmt.Errorf("shard: migration needs a journal path")
	}
	if !j.Pending() {
		return nil, fmt.Errorf("shard: journal phase %q is not resumable", j.Phase)
	}
	cur := s.topology()
	if j.RingVersion != cur.version+1 {
		return nil, fmt.Errorf("shard: journal targets ring v%d but the store is at v%d (want v%d)",
			j.RingVersion, cur.version, j.RingVersion-1)
	}
	if len(j.Cursors) != len(cur.groups) {
		return nil, fmt.Errorf("shard: journal has %d donor cursors for %d groups", len(j.Cursors), len(cur.groups))
	}
	if len(j.CursorEpochs) != len(j.Cursors) {
		// Journal written before epochs were recorded: zero epochs never
		// match a live donor, so every tail starts with a safe re-seed.
		j.CursorEpochs = make([]uint64, len(j.Cursors))
	}
	groups, err := buildGroups([]GroupConfig{gc})
	if err != nil {
		return nil, err
	}
	if !s.migrating.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("shard: a migration is already in flight")
	}
	m := &Migration{
		store: s,
		opts:  opts,
		reg:   opts.Registry,
		log:   opts.Logger,
		newGi: len(cur.groups),
		j:     j,
	}
	m.cand = &topology{
		version: j.RingVersion,
		ring:    NewRing(len(cur.groups)+1, s.vnodes),
		groups:  append(append([]*group(nil), cur.groups...), groups[0]),
	}
	if j.Flipped() {
		// The fleet already cut over before the restart: reinstall the
		// grown topology before any traffic routes by the stale ring and
		// trips the donors' fences.
		s.installTopology(m.cand)
	}
	return m, nil
}

// Journal returns the coordinator's current journaled state.
func (m *Migration) Journal() MigrationJournal { return m.j }

// persist writes the journal durably (tmp + rename).
func (m *Migration) persist() error {
	data, err := json.Marshal(m.j)
	if err != nil {
		return fmt.Errorf("shard: encode migration journal: %w", err)
	}
	tmp := m.opts.JournalPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: write migration journal: %w", err)
	}
	if err := os.Rename(tmp, m.opts.JournalPath); err != nil {
		return fmt.Errorf("shard: install migration journal: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(m.opts.JournalPath)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	m.reg.Gauge("reshard.state").Set(migrationStateGauge(m.j.Phase))
	m.reg.Gauge("reshard.keys_moved").Set(int64(m.j.KeysMoved))
	m.reg.Gauge("reshard.bytes_shipped").Set(m.j.BytesShipped)
	return nil
}

// setPhase journals a phase transition.
func (m *Migration) setPhase(phase string) error {
	m.j.Phase = phase
	m.logf("phase -> %s (ring v%d)", phase, m.j.RingVersion)
	return m.persist()
}

// moved reports whether the candidate ring re-homes account to the
// joiner. Donor datasets and WAL tails are filtered by it.
func (m *Migration) moved(account string) bool {
	return account != "" && m.cand.ring.Shard(account) == m.newGi
}

// Run drives the migration to completion: seed, catch up, flip, fence,
// drain. Pre-flip failures abort cleanly (journal marked aborted, no ring
// change, the fleet untouched). Post-flip failures leave the journal
// resumable — the caller retries or a restarted router resumes. ctx
// bounds the whole run; a donor group that is entirely dark stalls the
// run (retrying at PollInterval) rather than failing it, because failover
// is expected to promote a follower.
func (m *Migration) Run(ctx context.Context) (err error) {
	m.start = time.Now()
	defer m.store.migrating.Store(false)
	defer func() {
		if err == nil {
			m.reg.Gauge("reshard.duration_seconds").Set(int64(time.Since(m.start).Seconds()))
		}
	}()

	if m.j.Phase == MigrationSeeding || m.j.Phase == MigrationCatchup {
		if err := m.seedAndCatchup(ctx); err != nil {
			// Pre-flip, aborting is always clean: nothing routed to the
			// joiner yet, donors still own every key.
			m.j.Phase = MigrationAborted
			if perr := m.persist(); perr != nil {
				m.logf("abort: persisting aborted state failed: %v", perr)
			}
			m.logf("aborted before flip: %v", err)
			return fmt.Errorf("shard: migration aborted before flip: %w", err)
		}
		m.store.installTopology(m.cand)
		if err := m.setPhase(MigrationFlipped); err != nil {
			return err
		}
	}

	if m.j.Phase == MigrationFlipped {
		if err := m.fenceDonors(ctx); err != nil {
			return fmt.Errorf("shard: migration fence (resumable): %w", err)
		}
		if err := m.setPhase(MigrationFenced); err != nil {
			return err
		}
	}

	if err := m.drain(ctx); err != nil {
		return fmt.Errorf("shard: migration drain (resumable): %w", err)
	}
	if err := m.setPhase(MigrationDone); err != nil {
		return err
	}
	m.logf("done: %d accounts moved, ~%d bytes shipped, %s elapsed",
		m.j.KeysMoved, m.j.BytesShipped, time.Since(m.start).Round(time.Millisecond))
	return nil
}

// sleep waits one poll interval or until ctx ends.
func (m *Migration) sleep(ctx context.Context) error {
	t := time.NewTimer(m.opts.PollInterval)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// donorRetryable classifies donor-side failures worth waiting out: the
// donor's current primary is gone or mid-failover, and the poller (or our
// own refreshPrimary) will surface a promoted follower.
func donorRetryable(err error) bool {
	return errors.Is(err, platform.ErrShardUnavailable) ||
		errors.Is(err, platform.ErrNotPrimary) ||
		errors.Is(err, platform.ErrReplicaLag) ||
		errors.Is(err, platform.ErrOverloaded)
}

// withDonor runs fn against donor group gi's current primary, riding out
// failover: on a retryable failure it re-probes the group for the real
// primary and tries again at PollInterval until ctx ends. Non-retryable
// errors surface immediately.
func (m *Migration) withDonor(ctx context.Context, gi int, fn func(platform.Store) error) error {
	for {
		g := m.cand.groups[gi]
		err := fn(g.replicas[g.primaryIdx()])
		if err == nil || !donorRetryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		m.logf("donor %d: %v (retrying)", gi, err)
		m.store.refreshPrimary(ctx, m.cand, gi)
		if serr := m.sleep(ctx); serr != nil {
			return err
		}
	}
}

// joinerWrite runs fn against the joining group's current primary (via
// the same not_primary refresh-and-retry as routed writes).
func (m *Migration) joinerWrite(ctx context.Context, fn func(platform.Store) error) error {
	return m.store.writeTo(ctx, m.cand, m.newGi, fn)
}

// forwardBatch replays moved submissions into the joiner. Duplicate
// rejections are success: the record was already seeded or forwarded (a
// resume re-covers ground), and the duplicate guard is exactly what makes
// that idempotent instead of double-applied.
func (m *Migration) forwardBatch(ctx context.Context, items []platform.BatchSubmission) error {
	for len(items) > 0 {
		n := len(items)
		if n > m.opts.BatchSize {
			n = m.opts.BatchSize
		}
		chunk := items[:n]
		items = items[n:]
		var errs []error
		if err := m.joinerWrite(ctx, func(b platform.Store) error {
			errs = b.SubmitBatch(ctx, chunk)
			for _, e := range errs {
				if e != nil && errors.Is(e, platform.ErrNotPrimary) {
					return e // let writeTo re-probe and resend the chunk
				}
			}
			return nil
		}); err != nil {
			return err
		}
		for i, e := range errs {
			if e != nil && !errors.Is(e, platform.ErrDuplicateReport) {
				return fmt.Errorf("forward %s/task %d: %w", chunk[i].Account, chunk[i].Task, e)
			}
		}
		for _, it := range chunk {
			m.j.BytesShipped += int64(len(it.Account)) + 24
		}
	}
	return nil
}

// forwardFingerprint replays a moved fingerprint feature vector.
func (m *Migration) forwardFingerprint(ctx context.Context, account string, features []float64) error {
	if err := m.joinerWrite(ctx, func(b platform.Store) error {
		return b.RecordFingerprintFeatures(ctx, account, features)
	}); err != nil {
		return fmt.Errorf("forward fingerprint %s: %w", account, err)
	}
	m.j.BytesShipped += int64(len(account) + 8*len(features))
	return nil
}

// seedDonor snapshots donor gi's moved accounts into the joiner and sets
// the tail cursor. The cursor is read from the SAME primary BEFORE the
// dataset read: the tail may then re-deliver records the dataset already
// contained (absorbed by the duplicate guard) but can never skip one.
// Returns the number of accounts seeded.
func (m *Migration) seedDonor(ctx context.Context, gi int) (int, error) {
	var cursor, cursorEpoch uint64
	var accounts []mcs.Account
	err := m.withDonor(ctx, gi, func(b platform.Store) error {
		exp, ok := b.(platform.Exporter)
		if !ok {
			return fmt.Errorf("%w: donor %d cannot export its WAL", platform.ErrUnimplemented, gi)
		}
		probe, err := exp.ExportSince(ctx, math.MaxUint64, 1)
		if err != nil {
			return err
		}
		d, err := b.Dataset(ctx)
		if err != nil {
			return err
		}
		cursor = probe.DurableSeq
		cursorEpoch = probe.Epoch
		accounts = d.Accounts
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("seed donor %d: %w", gi, err)
	}
	// Accumulate every moved account into one forward stream (forwardBatch
	// chunks it by BatchSize). One batch per account would cost one joiner
	// replication ack per account — at semi-sync ship cadence that drains
	// slower than sustained load refills, and the catch-up never converges.
	seeded := 0
	var items []platform.BatchSubmission
	for _, a := range accounts {
		if !m.moved(a.ID) {
			continue
		}
		seeded++
		if len(a.Fingerprint) > 0 {
			if err := m.forwardFingerprint(ctx, a.ID, a.Fingerprint); err != nil {
				return 0, err
			}
		}
		for _, o := range a.Observations {
			items = append(items, platform.BatchSubmission{Account: a.ID, Task: o.Task, Value: o.Value, At: o.Time})
		}
	}
	if err := m.forwardBatch(ctx, items); err != nil {
		return 0, err
	}
	m.j.Cursors[gi] = cursor
	m.j.CursorEpochs[gi] = cursorEpoch
	return seeded, nil
}

// tailDonor pumps donor gi's WAL tail from the journaled cursor, forwards
// the moved records, advances the cursor, and returns the remaining lag.
// A compaction signal (the cursor's range no longer in the donor's WAL)
// falls back to a full re-seed — safe because re-delivery is idempotent.
func (m *Migration) tailDonor(ctx context.Context, gi int) (uint64, error) {
	for {
		var batch platform.ExportBatch
		err := m.withDonor(ctx, gi, func(b platform.Store) error {
			exp, ok := b.(platform.Exporter)
			if !ok {
				return fmt.Errorf("%w: donor %d cannot export its WAL", platform.ErrUnimplemented, gi)
			}
			var e error
			batch, e = exp.ExportSince(ctx, m.j.Cursors[gi], m.opts.BatchSize)
			return e
		})
		if err != nil {
			return 0, fmt.Errorf("tail donor %d: %w", gi, err)
		}
		if batch.SnapshotNeeded || batch.Epoch != m.j.CursorEpochs[gi] {
			// A compacted tail range and a donor failover invalidate the
			// cursor the same way. The failover case is the subtle one: the
			// promoted follower's durable history may end a few records
			// short of the dead primary's, and its new lineage then reuses
			// those sequence numbers for different records — records a
			// seq-only cursor would silently skip.
			if batch.SnapshotNeeded {
				m.logf("donor %d: tail range compacted away; re-seeding", gi)
			} else {
				m.logf("donor %d: failover changed epoch %d -> %d; cursor invalid, re-seeding",
					gi, m.j.CursorEpochs[gi], batch.Epoch)
			}
			if _, err := m.seedDonor(ctx, gi); err != nil {
				return 0, err
			}
			if err := m.persist(); err != nil {
				return 0, err
			}
			continue
		}
		var items []platform.BatchSubmission
		for _, rec := range batch.Records {
			if !m.moved(rec.Account) {
				continue
			}
			switch rec.Op {
			case platform.ExportOpSubmit:
				items = append(items, platform.BatchSubmission{
					Account: rec.Account, Task: rec.Task, Value: rec.Value, At: rec.Time,
				})
			case platform.ExportOpFingerprint:
				if err := m.forwardFingerprint(ctx, rec.Account, rec.Features); err != nil {
					return 0, err
				}
			}
		}
		if err := m.forwardBatch(ctx, items); err != nil {
			return 0, err
		}
		m.j.Cursors[gi] = batch.NextSeq
		if err := m.persist(); err != nil {
			return 0, err
		}
		lag := uint64(0)
		if batch.DurableSeq > batch.NextSeq {
			lag = batch.DurableSeq - batch.NextSeq
		}
		if len(batch.Records) == 0 || lag == 0 {
			return lag, nil
		}
	}
}

// seedAndCatchup runs the pre-flip phases: snapshot-seed every donor,
// then pump the WAL tails until the total lag drops under FlipLag.
func (m *Migration) seedAndCatchup(ctx context.Context) error {
	if m.j.Phase == MigrationSeeding {
		keys := 0
		for gi := 0; gi < m.newGi; gi++ {
			n, err := m.seedDonor(ctx, gi)
			if err != nil {
				return err
			}
			keys += n
		}
		// Seeding restarts from scratch on resume, so the count is
		// assigned, not accumulated.
		m.j.KeysMoved = keys
		if err := m.setPhase(MigrationCatchup); err != nil {
			return err
		}
	}
	for {
		var total uint64
		for gi := 0; gi < m.newGi; gi++ {
			lag, err := m.tailDonor(ctx, gi)
			if err != nil {
				return err
			}
			total += lag
		}
		m.reg.Gauge("reshard.catchup_lag_records").Set(int64(total))
		if total <= uint64(m.opts.FlipLag) {
			return nil
		}
		if err := m.sleep(ctx); err != nil {
			return err
		}
	}
}

// fenceDonors journals a fence on every donor at the new ring version:
// the donor's current moved-account set (which may have grown since the
// seed — accounts created while the migration ran) is refused further
// mutations, and any request stamped with a pre-flip ring version is
// refused wholesale. Fencing is idempotent, so a resume re-fences freely.
func (m *Migration) fenceDonors(ctx context.Context) error {
	for gi := 0; gi < m.newGi; gi++ {
		err := m.withDonor(ctx, gi, func(b platform.Store) error {
			f, ok := b.(platform.Fencer)
			if !ok {
				return fmt.Errorf("%w: donor %d cannot fence accounts", platform.ErrUnimplemented, gi)
			}
			ds, err := b.Dataset(ctx)
			if err != nil {
				return err
			}
			var accounts []string
			for _, a := range ds.Accounts {
				if m.moved(a.ID) {
					accounts = append(accounts, a.ID)
				}
			}
			return f.Fence(ctx, m.cand.version, accounts)
		})
		if err != nil {
			return fmt.Errorf("fence donor %d: %w", gi, err)
		}
	}
	return nil
}

// drain pumps each donor's tail past its post-fence high-water mark. The
// fence guarantees no moved-account record lands after it, so reaching
// the post-fence durable sequence means every acked moved write — however
// it raced the flip — is on the joiner.
func (m *Migration) drain(ctx context.Context) error {
	for gi := 0; gi < m.newGi; gi++ {
		if err := m.drainDonor(ctx, gi); err != nil {
			return err
		}
	}
	m.reg.Gauge("reshard.catchup_lag_records").Set(0)
	return nil
}

// drainDonor pumps donor gi's tail to the post-fence high-water mark:
// everything at or below it must be forwarded; nothing above it can name
// a moved account. The target is only meaningful on the lineage it was
// probed from — a mid-drain failover re-seeds the tail (epoch mismatch)
// and the target must then be re-probed on the new lineage. That stays
// sound because the fence record itself is semi-sync replicated: any
// promotable follower already holds it, so the new lineage's high-water
// mark is post-fence too.
func (m *Migration) drainDonor(ctx context.Context, gi int) error {
	for {
		var target, targetEpoch uint64
		if err := m.withDonor(ctx, gi, func(b platform.Store) error {
			exp, ok := b.(platform.Exporter)
			if !ok {
				return fmt.Errorf("%w: donor %d cannot export its WAL", platform.ErrUnimplemented, gi)
			}
			probe, err := exp.ExportSince(ctx, math.MaxUint64, 1)
			if err != nil {
				return err
			}
			target, targetEpoch = probe.DurableSeq, probe.Epoch
			return nil
		}); err != nil {
			return fmt.Errorf("drain donor %d: %w", gi, err)
		}
		// Pump the tail until the cursor passes the target on the target's
		// own lineage. This must run even when the journaled cursor epoch
		// already disagrees with targetEpoch (a failover happened between
		// the cursor's mint and this probe — e.g. the journal survived a
		// router restart but the donor did not): tailDonor is the code
		// that notices the mismatch and re-seeds, so skipping it would
		// spin on the stale epoch forever.
		for m.j.CursorEpochs[gi] != targetEpoch || m.j.Cursors[gi] < target {
			lag, err := m.tailDonor(ctx, gi)
			if err != nil {
				return err
			}
			m.reg.Gauge("reshard.catchup_lag_records").Set(int64(lag))
			if m.j.CursorEpochs[gi] != targetEpoch {
				// The donor failed over while draining: the target belongs
				// to a dead lineage. Re-probe it on the current one.
				break
			}
			if m.j.Cursors[gi] >= target {
				break
			}
			if err := m.sleep(ctx); err != nil {
				return err
			}
		}
		if m.j.CursorEpochs[gi] == targetEpoch && m.j.Cursors[gi] >= target {
			return nil
		}
	}
}

func (m *Migration) logf(format string, args ...any) {
	if m.log != nil {
		m.log.Printf("reshard: "+format, args...)
	}
}
