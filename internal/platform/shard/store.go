package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/platform"
	"sybiltd/internal/truth"
)

// Options tunes New and NewReplicated.
type Options struct {
	// VirtualNodes is the per-shard virtual-node count on the ring;
	// <= 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Tasks, when non-nil, is the published task list; nil makes New
	// fetch it from the first shard that answers. Every shard must be
	// configured with the identical task list — the ring partitions
	// accounts, not tasks.
	Tasks []mcs.Task
	// Addrs labels each shard in health reports and error messages
	// (typically its base URL). Optional; missing entries render as the
	// shard index alone. Used by New; NewReplicated takes per-replica
	// addresses in each GroupConfig instead.
	Addrs []string
}

// GroupConfig describes one replica group — one ring position. Replicas[0]
// is the assumed primary at construction time; the router revises that
// view on the fly when a write answers not_primary or the failover poller
// promotes a follower.
type GroupConfig struct {
	// Replicas are the group members, primary first.
	Replicas []platform.Store
	// Addrs labels each replica (typically its base URL); optional,
	// positionally matching Replicas.
	Addrs []string
	// Weight scales this group's share of the keyspace by scaling its
	// virtual-node count (see NewRingWeighted). Zero means the default
	// 1.0; negative or non-finite weights fail construction. Operators
	// use weights to size ring positions to heterogeneous hardware, and
	// change them live via Store.StartRebalance.
	Weight float64
}

// group is one ring position: a replica set with a current-primary view.
// The replica list is fixed at construction; only the primary index moves.
type group struct {
	replicas []platform.Store
	addrs    []string

	mu      sync.RWMutex
	primary int
}

func (g *group) primaryIdx() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.primary
}

func (g *group) setPrimary(i int) {
	g.mu.Lock()
	g.primary = i
	g.mu.Unlock()
}

func (g *group) addr(i int) string {
	if i < len(g.addrs) {
		return g.addrs[i]
	}
	return ""
}

// topology is one immutable routing generation: a ring over a group list,
// stamped with a monotonic version. The live topology sits behind an
// atomic pointer on Store; an online reshard builds the next generation
// off to the side (see admitCandidate) and publishes it in one pointer
// swap — the cutover is a single atomic store, never a half-installed
// ring. Group objects are shared between generations, so the primary view
// a failover established survives the swap.
type topology struct {
	version uint64
	ring    *Ring
	groups  []*group
	// seeds are the per-group vnode-label seeds the ring was built from
	// (see NewRingWeighted). They are positional with groups but NOT
	// equal to slice indices after a shrink: survivors keep their seeds,
	// so the seed vector may have gaps. Carrying them on the topology is
	// what lets a migration — and a restarted router adopting journaled
	// ring state — rebuild the exact same ring.
	seeds []int
	// weights are the per-group vnode weights; nil means uniform 1.0.
	weights []float64
}

// label names shard gi (by its current primary) in errors and health
// reports.
func (t *topology) label(gi int) string {
	g := t.groups[gi]
	if a := g.addr(g.primaryIdx()); a != "" {
		return fmt.Sprintf("shard %d (%s)", gi, a)
	}
	return fmt.Sprintf("shard %d", gi)
}

// replicaLabel names one replica of shard gi.
func (t *topology) replicaLabel(gi, ri int) string {
	g := t.groups[gi]
	if a := g.addr(ri); a != "" {
		return fmt.Sprintf("shard %d replica %d (%s)", gi, ri, a)
	}
	return fmt.Sprintf("shard %d replica %d", gi, ri)
}

// replClient is the optional backend capability the router uses for the
// replication control plane: status probes to find the primary after a
// not_primary rejection, and role flips during failover. RemoteStore
// provides it; backends without it simply never get probed.
type replClient interface {
	Client() *platform.Client
}

// Store routes operations across N replica groups by consistent hash of
// the account ID. Writes go to the current primary of the group owning the
// account — so the per-account duplicate guard, rate bucket, and WAL
// entries all live in exactly one place — and whole-campaign reads
// scatter-gather, falling back to followers when a group's primary is
// unreachable. It implements platform.Store plus the HealthReporter and
// RingStatusReporter capabilities, so a platform.Server fronting it serves
// the identical /v1 wire API with an aggregated /readyz.
//
// The ring and group list live in a versioned topology behind an atomic
// pointer: every operation routes against one consistent snapshot, and an
// online reshard (see Migration) grows the fleet by publishing the next
// topology generation mid-flight.
type Store struct {
	topo   atomic.Pointer[topology]
	vnodes int
	tasks  []mcs.Task

	// migrating is raised while an online reshard is in flight; /readyz
	// surfaces it next to the ring version.
	migrating atomic.Bool

	hookMu   sync.RWMutex
	onSubmit platform.SubmitListener

	pollMu sync.Mutex
	poller *FailoverPoller

	// floorMu guards the ring-state persistence path enabled by
	// EnableRingStatePersistence; floorPath empty means disabled.
	floorMu   sync.Mutex
	floorPath string
}

// Store implements platform.Store plus the HealthReporter and
// RingStatusReporter capabilities.
var (
	_ platform.Store              = (*Store)(nil)
	_ platform.HealthReporter     = (*Store)(nil)
	_ platform.RingStatusReporter = (*Store)(nil)
)

// New composes backends into one sharded store of single-replica groups.
// When opts.Tasks is nil the task list is fetched from the first shard
// that answers (ctx bounds the fetch); a fleet that is entirely down fails
// construction.
func New(ctx context.Context, backends []platform.Store, opts Options) (*Store, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: no backends")
	}
	groups := make([]GroupConfig, len(backends))
	for i, b := range backends {
		groups[i] = GroupConfig{Replicas: []platform.Store{b}}
		if i < len(opts.Addrs) {
			groups[i].Addrs = []string{opts.Addrs[i]}
		}
	}
	return NewReplicated(ctx, groups, opts)
}

// NewReplicated composes replica groups into one sharded store — the ring
// spans the groups, not the individual replicas, so key placement is
// identical to an unreplicated fleet of the same group count and adding a
// group moves only the ring segments it captures.
func NewReplicated(ctx context.Context, configs []GroupConfig, opts Options) (*Store, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("shard: no backends")
	}
	groups, err := buildGroups(configs)
	if err != nil {
		return nil, err
	}
	weights, err := configWeights(configs)
	if err != nil {
		return nil, err
	}
	seeds := make([]int, len(groups))
	for i := range seeds {
		seeds[i] = i
	}
	s := &Store{vnodes: opts.VirtualNodes}
	s.installTopology(&topology{
		version: 1,
		ring:    NewRingWeighted(seeds, weights, opts.VirtualNodes),
		groups:  groups,
		seeds:   seeds,
		weights: weights,
	})
	if opts.Tasks != nil {
		s.tasks = append([]mcs.Task(nil), opts.Tasks...)
		return s, nil
	}
	t := s.topology()
	var lastErr error
	for gi, g := range t.groups {
		for ri, b := range g.replicas {
			tasks, err := b.Tasks(ctx)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", t.replicaLabel(gi, ri), err)
				continue
			}
			s.tasks = tasks
			return s, nil
		}
	}
	return nil, fmt.Errorf("shard: fetch tasks from any shard: %w", lastErr)
}

// buildGroups materializes group state from configs.
func buildGroups(configs []GroupConfig) ([]*group, error) {
	groups := make([]*group, len(configs))
	for i, gc := range configs {
		if len(gc.Replicas) == 0 {
			return nil, fmt.Errorf("shard: group %d has no replicas", i)
		}
		addrs := make([]string, len(gc.Replicas))
		copy(addrs, gc.Addrs)
		groups[i] = &group{replicas: gc.Replicas, addrs: addrs}
	}
	return groups, nil
}

// configWeights extracts the per-group weight vector from configs,
// normalizing "all default" to nil so an unweighted fleet builds the
// exact same ring it always has.
func configWeights(configs []GroupConfig) ([]float64, error) {
	weights := make([]float64, len(configs))
	uniform := true
	for i, gc := range configs {
		w := gc.Weight
		if w == 0 {
			w = 1
		}
		if err := validWeight(w); err != nil {
			return nil, fmt.Errorf("shard: group %d: %w", i, err)
		}
		weights[i] = w
		if w != 1 {
			uniform = false
		}
	}
	if uniform {
		return nil, nil
	}
	return weights, nil
}

// validWeight screens a ring weight before it reaches NewRingWeighted
// (which panics on programmer error; operator input gets an error).
func validWeight(w float64) error {
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("%w: ring weight %v must be a positive finite number", platform.ErrMalformedRequest, w)
	}
	return nil
}

// topology returns the live routing snapshot. Operations load it once and
// route every step of themselves against that one generation.
func (s *Store) topology() *topology { return s.topo.Load() }

// group returns group gi of the live topology, or nil when gi is out of
// range (a poller goroutine racing a topology it has not yet synced to).
func (s *Store) group(gi int) *group {
	t := s.topology()
	if gi < 0 || gi >= len(t.groups) {
		return nil
	}
	return t.groups[gi]
}

// installTopology publishes t as the live topology and propagates its
// version: every replica client's subsequent requests carry it in the
// X-Ring-Version header (the fence a reshard uses against stale routers),
// and the failover poller picks up any newly admitted groups.
func (s *Store) installTopology(t *topology) {
	s.topo.Store(t)
	for _, g := range t.groups {
		for _, b := range g.replicas {
			if rc, ok := b.(replClient); ok {
				rc.Client().SetRingVersion(t.version)
			}
		}
	}
	s.persistRingState(t)
	s.pollMu.Lock()
	p := s.poller
	s.pollMu.Unlock()
	if p != nil {
		p.syncGroups(t)
	}
}

// AdoptRingVersion republishes the current topology at version v. This is
// the restart path of a router whose fleet already completed a reshard
// while this process was down: its configuration now lists the grown
// fleet, but a fresh topology always starts at version 1, and mutations
// stamped below the fleet's fence version would be refused wholesale by
// the fenced donors. Versions at or below the current one are ignored —
// the version is monotonic.
func (s *Store) AdoptRingVersion(v uint64) {
	t := s.topology()
	if v <= t.version {
		return
	}
	s.installTopology(&topology{version: v, ring: t.ring, groups: t.groups, seeds: t.seeds, weights: t.weights})
}

// AdoptRingState republishes the current group list under an explicitly
// recorded ring shape: version, per-group vnode seeds, and weights. This
// is the restart path after a shrink or rebalance completed while the
// router was down — positional seeds would be wrong (survivors keep
// gapped seeds after a shrink), so the journal and the persisted ring
// floor record the exact shape and a rebooting router adopts it here.
// The seed vector must match the configured group count: a mismatch
// means the configuration no longer describes the fleet that produced
// the recorded ring, and serving from a guessed ring would route writes
// to non-owners — so the mismatch is an error and the caller must not
// serve. Versions at or below the current one are ignored.
func (s *Store) AdoptRingState(version uint64, seeds []int, weights []float64) error {
	t := s.topology()
	if len(seeds) != len(t.groups) {
		return fmt.Errorf("shard: recorded ring has %d groups, configuration has %d — refusing to guess placement", len(seeds), len(t.groups))
	}
	if weights != nil && len(weights) != len(seeds) {
		return fmt.Errorf("shard: recorded ring has %d weights for %d groups", len(weights), len(seeds))
	}
	for _, w := range weights {
		if err := validWeight(w); err != nil {
			return err
		}
	}
	if version <= t.version {
		return nil
	}
	s.installTopology(&topology{
		version: version,
		ring:    NewRingWeighted(seeds, weights, s.vnodes),
		groups:  t.groups,
		seeds:   append([]int(nil), seeds...),
		weights: append([]float64(nil), weights...),
	})
	return nil
}

// RingStatus reports the live topology version and whether an online
// reshard is in flight (implements platform.RingStatusReporter; /readyz
// folds it into its body).
func (s *Store) RingStatus() platform.RingStatus {
	return platform.RingStatus{Version: s.topology().version, Migrating: s.migrating.Load()}
}

// RingVersion returns the live topology version.
func (s *Store) RingVersion() uint64 { return s.topology().version }

// Shard returns the ring's owning shard index for an account — exposed so
// tests and operators can predict placement.
func (s *Store) Shard(account string) int { return s.topology().ring.Shard(account) }

// Shards returns the number of replica groups (ring positions).
func (s *Store) Shards() int { return len(s.topology().groups) }

// Primary returns the index within shard gi's replica group that the
// router currently believes is the primary — exposed so failover tests and
// operators can observe promotions.
func (s *Store) Primary(gi int) int { return s.topology().groups[gi].primaryIdx() }

// SetSubmitListener installs the acknowledged-submission hook: the
// router-level feed for its own stream hub, seeing every submission any
// shard acknowledged through this store.
func (s *Store) SetSubmitListener(fn platform.SubmitListener) {
	s.hookMu.Lock()
	s.onSubmit = fn
	s.hookMu.Unlock()
}

func (s *Store) notifySubmitted(items []platform.BatchSubmission) {
	if len(items) == 0 {
		return
	}
	s.hookMu.RLock()
	fn := s.onSubmit
	s.hookMu.RUnlock()
	if fn != nil {
		fn(items)
	}
}

// Tasks returns the task list every shard serves.
func (s *Store) Tasks(ctx context.Context) ([]mcs.Task, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", platform.ErrOverloaded, err)
	}
	out := make([]mcs.Task, len(s.tasks))
	copy(out, s.tasks)
	return out, nil
}

// refreshPrimary re-probes shard gi's replicas for their replication role
// and adopts the primary with the highest epoch. Returns the adopted
// replica index, or ok=false when no replica currently claims primary
// (mid-failover, or the group is unreplicated local stores).
func (s *Store) refreshPrimary(ctx context.Context, t *topology, gi int) (int, bool) {
	return s.refreshPrimaryGroup(ctx, t.groups[gi])
}

// refreshPrimaryGroup is refreshPrimary keyed by group handle rather than
// topology position — the migration coordinator needs it for a shrink's
// retiring donor, which is absent from the candidate topology.
func (s *Store) refreshPrimaryGroup(ctx context.Context, g *group) (int, bool) {
	best := -1
	var bestEpoch uint64
	for i, b := range g.replicas {
		rc, ok := b.(replClient)
		if !ok {
			continue
		}
		st, err := rc.Client().ReplStatus(ctx)
		if err != nil || st.Role != platform.RolePrimary {
			continue
		}
		if best == -1 || st.Epoch > bestEpoch {
			best, bestEpoch = i, st.Epoch
		}
	}
	if best < 0 {
		return 0, false
	}
	g.setPrimary(best)
	return best, true
}

// writeTo runs fn against shard gi's current primary within topology t. A
// not_primary rejection — the router's primary view went stale across a
// failover — re-probes the group for the real primary and retries once.
// The follower rejected the write before applying anything, so the retry
// cannot double-apply.
func (s *Store) writeTo(ctx context.Context, t *topology, gi int, fn func(platform.Store) error) error {
	g := t.groups[gi]
	cur := g.primaryIdx()
	err := fn(g.replicas[cur])
	if err == nil || len(g.replicas) == 1 || !errors.Is(err, platform.ErrNotPrimary) {
		return err
	}
	if idx, ok := s.refreshPrimary(ctx, t, gi); ok && idx != cur {
		return fn(g.replicas[idx])
	}
	return err
}

// routeWrite routes a single-account write to the account's owning shard.
// A wrong_shard refusal means the write raced an online-reshard cutover:
// the shard it reached was fenced at a newer ring version. Like
// not_primary, the shard refused before applying anything — so reload the
// topology (the cutover installs it before fencing the donors) and retry
// once against the account's new owner. Only when this router genuinely
// has no newer topology (it IS the stale router the fence exists for)
// does the typed refusal surface to the caller.
func (s *Store) routeWrite(ctx context.Context, account string, fn func(platform.Store) error) error {
	t := s.topology()
	gi := t.ring.Shard(account)
	err := s.writeTo(ctx, t, gi, fn)
	if err == nil {
		return nil
	}
	if errors.Is(err, platform.ErrWrongShard) {
		if nt := s.topology(); nt.version > t.version {
			ngi := nt.ring.Shard(account)
			if rerr := s.writeTo(ctx, nt, ngi, fn); rerr == nil {
				return nil
			} else {
				return fmt.Errorf("%s: %w", nt.label(ngi), rerr)
			}
		}
	}
	return fmt.Errorf("%s: %w", t.label(gi), err)
}

// Submit routes one observation to the account's owning shard.
func (s *Store) Submit(ctx context.Context, account string, task int, value float64, at time.Time) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	err := s.routeWrite(ctx, account, func(b platform.Store) error {
		return b.Submit(ctx, account, task, value, at)
	})
	if err != nil {
		return err
	}
	s.notifySubmitted([]platform.BatchSubmission{{Account: account, Task: task, Value: value, At: at}})
	return nil
}

// submitBatchTo dispatches one shard's sub-batch to its current primary,
// with the same not_primary refresh-and-retry as single writes. A follower
// rejects the whole sub-batch at the door (every error not_primary, no
// item applied), so resending the full sub-batch to the real primary is
// safe.
func (s *Store) submitBatchTo(ctx context.Context, t *topology, gi int, sub []platform.BatchSubmission) []error {
	g := t.groups[gi]
	cur := g.primaryIdx()
	errs := g.replicas[cur].SubmitBatch(ctx, sub)
	if len(g.replicas) == 1 {
		return errs
	}
	retriable := false
	for _, err := range errs {
		if err != nil && errors.Is(err, platform.ErrNotPrimary) {
			retriable = true
			break
		}
	}
	if !retriable {
		return errs
	}
	if idx, ok := s.refreshPrimary(ctx, t, gi); ok && idx != cur {
		return g.replicas[idx].SubmitBatch(ctx, sub)
	}
	return errs
}

// dispatchBatch sends the routed sub-batches concurrently against
// topology t and writes per-item outcomes into errs at the original
// positions (clearing any previous error on success — the wrong_shard
// re-route path reuses this over the retried positions).
func (s *Store) dispatchBatch(ctx context.Context, t *topology, routed [][]int, items []platform.BatchSubmission, errs []error) {
	var wg sync.WaitGroup
	for sh, idxs := range routed {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			sub := make([]platform.BatchSubmission, len(idxs))
			for j, i := range idxs {
				sub[j] = items[i]
			}
			subErrs := s.submitBatchTo(ctx, t, sh, sub)
			for j, i := range idxs {
				var err error
				if j < len(subErrs) {
					err = subErrs[j]
				} else {
					// A backend violating the positional contract is a bug;
					// refuse the unanswered tail rather than acking it.
					err = fmt.Errorf("%w: short batch response", platform.ErrShardUnavailable)
				}
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", t.label(sh), err)
				} else {
					errs[i] = nil
				}
			}
		}(sh, idxs)
	}
	wg.Wait()
}

// SubmitBatch splits the batch by owning shard, dispatches the per-shard
// sub-batches concurrently, and reassembles the per-item errors in the
// caller's positions. One shard failing its whole sub-batch (e.g. a 503)
// fails only the items routed to it; the rest of the batch settles
// normally. Items refused wrong_shard by a freshly fenced donor are
// re-routed once through the newer topology, same as single writes.
func (s *Store) SubmitBatch(ctx context.Context, items []platform.BatchSubmission) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	if err := ctx.Err(); err != nil {
		e := fmt.Errorf("%w: %v", platform.ErrOverloaded, err)
		for i := range errs {
			errs[i] = e
		}
		return errs
	}
	t := s.topology()
	// routed[sh] holds the original positions routed to shard sh, in
	// order — the sub-batch preserves relative item order, so in-batch
	// duplicate semantics inside one account are unchanged (one account
	// is never split across shards).
	routed := make([][]int, len(t.groups))
	for i, it := range items {
		if it.Account == "" {
			errs[i] = platform.ErrEmptyAccount
			continue
		}
		sh := t.ring.Shard(it.Account)
		routed[sh] = append(routed[sh], i)
	}
	s.dispatchBatch(ctx, t, routed, items, errs)
	// wrong_shard items raced a reshard cutover: if a newer topology is
	// installed, re-route just those positions through it and retry once.
	if nt := s.topology(); nt.version > t.version {
		rerouted := make([][]int, len(nt.groups))
		n := 0
		for i := range items {
			if errs[i] != nil && errors.Is(errs[i], platform.ErrWrongShard) {
				sh := nt.ring.Shard(items[i].Account)
				rerouted[sh] = append(rerouted[sh], i)
				n++
			}
		}
		if n > 0 {
			s.dispatchBatch(ctx, nt, rerouted, items, errs)
		}
	}
	var acked []platform.BatchSubmission
	for i := range items {
		if errs[i] == nil {
			acked = append(acked, items[i])
		}
	}
	s.notifySubmitted(acked)
	return errs
}

// RecordFingerprint routes a raw sign-in capture to the owning shard.
func (s *Store) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	return s.routeWrite(ctx, account, func(b platform.Store) error {
		return b.RecordFingerprint(ctx, account, rec)
	})
}

// RecordFingerprintFeatures routes an extracted feature vector to the
// owning shard.
func (s *Store) RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	return s.routeWrite(ctx, account, func(b platform.Store) error {
		return b.RecordFingerprintFeatures(ctx, account, features)
	})
}

// readFailover reports whether a read error warrants trying another
// replica of the same group: the replica is gone or refusing reads, rather
// than answering with a real (e.g. validation) error.
func readFailover(err error) bool {
	return errors.Is(err, platform.ErrShardUnavailable) ||
		errors.Is(err, platform.ErrReplicaLag) ||
		errors.Is(err, platform.ErrNotPrimary)
}

// readFrom runs fn against shard gi's current primary, falling back to the
// group's other replicas when the primary is unreachable. Followers apply
// the same frames the primary journaled, so a follower read is the same
// data at most a ship interval stale — an explicitly weaker answer the
// caller prefers over none while the poller promotes a replacement.
func (s *Store) readFrom(ctx context.Context, t *topology, gi int, fn func(platform.Store) error) error {
	g := t.groups[gi]
	cur := g.primaryIdx()
	err := fn(g.replicas[cur])
	if err == nil || len(g.replicas) == 1 || !readFailover(err) {
		return err
	}
	for off := 1; off < len(g.replicas); off++ {
		if ctx.Err() != nil {
			return err
		}
		i := (cur + off) % len(g.replicas)
		fbErr := fn(g.replicas[i])
		if fbErr == nil {
			return nil
		}
		if !readFailover(fbErr) {
			return fbErr
		}
	}
	return err
}

// gather snapshots every shard's dataset concurrently, each group through
// its primary with follower fallback. dss[i] and errs[i] are shard i's
// outcome; exactly one of them is set.
func (s *Store) gather(ctx context.Context, t *topology) (dss []*mcs.Dataset, errs []error) {
	dss = make([]*mcs.Dataset, len(t.groups))
	errs = make([]error, len(t.groups))
	var wg sync.WaitGroup
	for i := range t.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.readFrom(ctx, t, i, func(b platform.Store) error {
				ds, err := b.Dataset(ctx)
				if err != nil {
					return err
				}
				dss[i] = ds
				return nil
			})
		}(i)
	}
	wg.Wait()
	return dss, errs
}

// merge concatenates shard datasets in shard order under the composite
// task list, keeping from each shard only the accounts the ring assigns
// it. In steady state the filter is a no-op — every account a shard holds
// is one it owns. After an online reshard it is what makes the cutover
// non-destructive: the donor keeps its (fenced, frozen) copy of the moved
// accounts, and ownership filtering here is what excises that copy from
// reads instead of a deletion excising it from disk. Within a shard,
// accounts keep their registration order, so the merged account order is
// deterministic for a given fleet state.
func (s *Store) merge(t *topology, dss []*mcs.Dataset) *mcs.Dataset {
	out := &mcs.Dataset{Tasks: make([]mcs.Task, len(s.tasks))}
	copy(out.Tasks, s.tasks)
	for gi, ds := range dss {
		if ds == nil {
			continue
		}
		for _, a := range ds.Accounts {
			if t.ring.Shard(a.ID) == gi {
				out.Accounts = append(out.Accounts, a)
			}
		}
	}
	return out
}

// Dataset scatter-gathers the full campaign. Unlike Aggregate and Stats
// it does not degrade on partial failure: an export silently missing the
// unreachable shards' accounts would poison archives and offline
// re-aggregation, so any failed shard (every replica down) fails the read
// (retryably).
func (s *Store) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	t := s.topology()
	dss, errs := s.gather(ctx, t)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.label(i), err)
		}
	}
	return s.merge(t, dss), nil
}

// failedLabel builds the DegradedReason suffix naming unreachable shards.
func failedLabel(failed []int) string {
	parts := make([]string, len(failed))
	for i, sh := range failed {
		parts[i] = fmt.Sprint(sh)
	}
	return "shards_unreachable:" + strings.Join(parts, ",")
}

// Aggregate scatter-gathers shard datasets, merges the reachable ones,
// and aggregates the merged campaign with the same AggregateDataset the
// single-node store uses — on identical input the results are
// bit-identical. Partial gathers reuse the PR-4 degradation contract: the
// result is flagged Degraded with the unreachable shards named, because a
// truth estimate missing part of the crowd is still an answer, just a
// weaker one. Only a fleet that is entirely unreachable is an error.
func (s *Store) Aggregate(ctx context.Context, method string) (truth.Result, []float64, error) {
	// Validate the method before touching the network: an unknown method
	// must answer 400 even when every shard is down.
	if _, err := platform.AlgorithmByName(method); err != nil {
		return truth.Result{}, nil, err
	}
	t := s.topology()
	dss, errs := s.gather(ctx, t)
	var failed []int
	for i, err := range errs {
		if err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) == len(t.groups) {
		return truth.Result{}, nil, fmt.Errorf("%s: %w", t.label(failed[0]), errs[failed[0]])
	}
	res, unc, err := platform.AggregateDataset(ctx, method, s.merge(t, dss))
	if err != nil {
		return truth.Result{}, nil, err
	}
	if len(failed) > 0 {
		sort.Ints(failed)
		res.Degraded = true
		reason := failedLabel(failed)
		if res.DegradedReason != "" {
			res.DegradedReason += ";" + reason
		} else {
			res.DegradedReason = reason
		}
	}
	return res, unc, nil
}

// Stats sums shard summaries, each group read through its primary with
// follower fallback. Partial failures degrade (the reachable shards'
// counts, flagged) rather than erroring; a fleet entirely down is an
// error.
func (s *Store) Stats(ctx context.Context) (platform.StatsResponse, error) {
	type result struct {
		stats platform.StatsResponse
		err   error
	}
	t := s.topology()
	results := make([]result, len(t.groups))
	var wg sync.WaitGroup
	for i := range t.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].err = s.readFrom(ctx, t, i, func(b platform.Store) error {
				st, err := b.Stats(ctx)
				if err != nil {
					return err
				}
				results[i].stats = st
				return nil
			})
		}(i)
	}
	wg.Wait()
	out := platform.StatsResponse{Tasks: len(s.tasks)}
	var failed []int
	for i, r := range results {
		if r.err != nil {
			failed = append(failed, i)
			continue
		}
		out.Accounts += r.stats.Accounts
		if r.stats.Degraded {
			out.Degraded = true
			out.DegradedReason = r.stats.DegradedReason
		}
	}
	if len(failed) == len(t.groups) {
		return platform.StatsResponse{}, fmt.Errorf("%s: %w", t.label(failed[0]), results[failed[0]].err)
	}
	if len(failed) > 0 {
		out.Degraded = true
		reason := failedLabel(failed)
		if out.DegradedReason != "" {
			out.DegradedReason += ";" + reason
		} else {
			out.DegradedReason = reason
		}
	}
	return out, nil
}

// retireGroupProbes ends failover coverage for a group that finished
// leaving the ring (its post-flip drain completed), if a poller is
// running.
func (s *Store) retireGroupProbes(g *group) {
	s.pollMu.Lock()
	p := s.poller
	s.pollMu.Unlock()
	if p != nil {
		p.retireGroup(g)
	}
}

// ShardHealth reports per-replica health (implements
// platform.HealthReporter, the aggregated /readyz). With a failover
// poller running, answers come from its probe cache — each entry carrying
// its probe age and known replication role — so /readyz stays cheap under
// load-balancer polling. Without a poller every replica is probed live; a
// backend without the Pinger capability (e.g. an in-process LocalStore)
// is trivially ready.
func (s *Store) ShardHealth(ctx context.Context) []platform.ShardHealth {
	s.pollMu.Lock()
	p := s.poller
	s.pollMu.Unlock()
	if p != nil {
		return p.health()
	}
	t := s.topology()
	// The slice is fully sized before any probe goroutine starts: each
	// goroutine writes its own pre-allocated element, so the slice header
	// is never touched concurrently (an append here would race the
	// writers and could strand their results in a stale backing array).
	total := 0
	for _, g := range t.groups {
		total += len(g.replicas)
	}
	out := make([]platform.ShardHealth, total)
	var wg sync.WaitGroup
	pos := 0
	for gi, g := range t.groups {
		for ri, b := range g.replicas {
			out[pos] = platform.ShardHealth{Shard: gi, Replica: ri, Addr: g.addr(ri)}
			p, ok := b.(platform.Pinger)
			if !ok {
				out[pos].Ready = true
				out[pos].Status = "ready"
				pos++
				continue
			}
			wg.Add(1)
			go func(h *platform.ShardHealth, p platform.Pinger) {
				defer wg.Done()
				rz, err := p.Ready(ctx)
				if err != nil {
					h.Status = "unreachable"
					h.Error = err.Error()
					return
				}
				h.Status = rz.Status
				h.Ready = rz.Status == "ready"
			}(&out[pos], p)
			pos++
		}
	}
	wg.Wait()
	return out
}
