package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/platform"
	"sybiltd/internal/truth"
)

// Options tunes New.
type Options struct {
	// VirtualNodes is the per-shard virtual-node count on the ring;
	// <= 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Tasks, when non-nil, is the published task list; nil makes New
	// fetch it from the first shard that answers. Every shard must be
	// configured with the identical task list — the ring partitions
	// accounts, not tasks.
	Tasks []mcs.Task
	// Addrs labels each shard in health reports and error messages
	// (typically its base URL). Optional; missing entries render as the
	// shard index alone.
	Addrs []string
}

// Store routes operations across N platform.Store backends by consistent
// hash of the account ID. Writes go to the one shard owning the account —
// so the per-account duplicate guard, rate bucket, and WAL entries all
// live in exactly one place — and whole-campaign reads scatter-gather. It
// implements platform.Store plus the HealthReporter capability, so a
// platform.Server fronting it serves the identical /v1 wire API with an
// aggregated /readyz.
type Store struct {
	backends []platform.Store
	addrs    []string
	ring     *Ring
	tasks    []mcs.Task

	hookMu   sync.RWMutex
	onSubmit platform.SubmitListener
}

// Store implements platform.Store and the HealthReporter capability.
var (
	_ platform.Store          = (*Store)(nil)
	_ platform.HealthReporter = (*Store)(nil)
)

// New composes backends into one sharded store. When opts.Tasks is nil
// the task list is fetched from the first shard that answers (ctx bounds
// the fetch); a fleet that is entirely down fails construction.
func New(ctx context.Context, backends []platform.Store, opts Options) (*Store, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: no backends")
	}
	addrs := make([]string, len(backends))
	copy(addrs, opts.Addrs)
	s := &Store{
		backends: backends,
		addrs:    addrs,
		ring:     NewRing(len(backends), opts.VirtualNodes),
	}
	if opts.Tasks != nil {
		s.tasks = append([]mcs.Task(nil), opts.Tasks...)
		return s, nil
	}
	var lastErr error
	for i, b := range backends {
		tasks, err := b.Tasks(ctx)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", s.label(i), err)
			continue
		}
		s.tasks = tasks
		return s, nil
	}
	return nil, fmt.Errorf("shard: fetch tasks from any shard: %w", lastErr)
}

// label names shard i in errors and health reports.
func (s *Store) label(i int) string {
	if i < len(s.addrs) && s.addrs[i] != "" {
		return fmt.Sprintf("shard %d (%s)", i, s.addrs[i])
	}
	return fmt.Sprintf("shard %d", i)
}

// Shard returns the ring's owning shard index for an account — exposed so
// tests and operators can predict placement.
func (s *Store) Shard(account string) int { return s.ring.Shard(account) }

// Shards returns the number of shards.
func (s *Store) Shards() int { return len(s.backends) }

// SetSubmitListener installs the acknowledged-submission hook: the
// router-level feed for its own stream hub, seeing every submission any
// shard acknowledged through this store.
func (s *Store) SetSubmitListener(fn platform.SubmitListener) {
	s.hookMu.Lock()
	s.onSubmit = fn
	s.hookMu.Unlock()
}

func (s *Store) notifySubmitted(items []platform.BatchSubmission) {
	if len(items) == 0 {
		return
	}
	s.hookMu.RLock()
	fn := s.onSubmit
	s.hookMu.RUnlock()
	if fn != nil {
		fn(items)
	}
}

// Tasks returns the task list every shard serves.
func (s *Store) Tasks(ctx context.Context) ([]mcs.Task, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", platform.ErrOverloaded, err)
	}
	out := make([]mcs.Task, len(s.tasks))
	copy(out, s.tasks)
	return out, nil
}

// Submit routes one observation to the account's owning shard.
func (s *Store) Submit(ctx context.Context, account string, task int, value float64, at time.Time) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	sh := s.ring.Shard(account)
	if err := s.backends[sh].Submit(ctx, account, task, value, at); err != nil {
		return fmt.Errorf("%s: %w", s.label(sh), err)
	}
	s.notifySubmitted([]platform.BatchSubmission{{Account: account, Task: task, Value: value, At: at}})
	return nil
}

// SubmitBatch splits the batch by owning shard, dispatches the per-shard
// sub-batches concurrently, and reassembles the per-item errors in the
// caller's positions. One shard failing its whole sub-batch (e.g. a 503)
// fails only the items routed to it; the rest of the batch settles
// normally.
func (s *Store) SubmitBatch(ctx context.Context, items []platform.BatchSubmission) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	if err := ctx.Err(); err != nil {
		e := fmt.Errorf("%w: %v", platform.ErrOverloaded, err)
		for i := range errs {
			errs[i] = e
		}
		return errs
	}
	// groups[sh] holds the original positions routed to shard sh, in
	// order — the sub-batch preserves relative item order, so in-batch
	// duplicate semantics inside one account are unchanged (one account
	// is never split across shards).
	groups := make([][]int, len(s.backends))
	for i, it := range items {
		if it.Account == "" {
			errs[i] = platform.ErrEmptyAccount
			continue
		}
		sh := s.ring.Shard(it.Account)
		groups[sh] = append(groups[sh], i)
	}
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			sub := make([]platform.BatchSubmission, len(idxs))
			for j, i := range idxs {
				sub[j] = items[i]
			}
			subErrs := s.backends[sh].SubmitBatch(ctx, sub)
			for j, i := range idxs {
				var err error
				if j < len(subErrs) {
					err = subErrs[j]
				} else {
					// A backend violating the positional contract is a bug;
					// refuse the unanswered tail rather than acking it.
					err = fmt.Errorf("%w: short batch response", platform.ErrShardUnavailable)
				}
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", s.label(sh), err)
				}
			}
		}(sh, idxs)
	}
	wg.Wait()
	var acked []platform.BatchSubmission
	for i := range items {
		if errs[i] == nil {
			acked = append(acked, items[i])
		}
	}
	s.notifySubmitted(acked)
	return errs
}

// RecordFingerprint routes a raw sign-in capture to the owning shard.
func (s *Store) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	sh := s.ring.Shard(account)
	if err := s.backends[sh].RecordFingerprint(ctx, account, rec); err != nil {
		return fmt.Errorf("%s: %w", s.label(sh), err)
	}
	return nil
}

// RecordFingerprintFeatures routes an extracted feature vector to the
// owning shard.
func (s *Store) RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	sh := s.ring.Shard(account)
	if err := s.backends[sh].RecordFingerprintFeatures(ctx, account, features); err != nil {
		return fmt.Errorf("%s: %w", s.label(sh), err)
	}
	return nil
}

// gather snapshots every shard's dataset concurrently. dss[i] and errs[i]
// are shard i's outcome; exactly one of them is set.
func (s *Store) gather(ctx context.Context) (dss []*mcs.Dataset, errs []error) {
	dss = make([]*mcs.Dataset, len(s.backends))
	errs = make([]error, len(s.backends))
	var wg sync.WaitGroup
	for i, b := range s.backends {
		wg.Add(1)
		go func(i int, b platform.Store) {
			defer wg.Done()
			dss[i], errs[i] = b.Dataset(ctx)
		}(i, b)
	}
	wg.Wait()
	return dss, errs
}

// merge concatenates shard datasets in shard order under the composite
// task list. Within a shard, accounts keep their registration order, so
// the merged account order is deterministic for a given fleet state.
func (s *Store) merge(dss []*mcs.Dataset) *mcs.Dataset {
	out := &mcs.Dataset{Tasks: make([]mcs.Task, len(s.tasks))}
	copy(out.Tasks, s.tasks)
	for _, ds := range dss {
		if ds == nil {
			continue
		}
		out.Accounts = append(out.Accounts, ds.Accounts...)
	}
	return out
}

// Dataset scatter-gathers the full campaign. Unlike Aggregate and Stats
// it does not degrade on partial failure: an export silently missing the
// unreachable shards' accounts would poison archives and offline
// re-aggregation, so any failed shard fails the read (retryably).
func (s *Store) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	dss, errs := s.gather(ctx)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.label(i), err)
		}
	}
	return s.merge(dss), nil
}

// failedLabel builds the DegradedReason suffix naming unreachable shards.
func failedLabel(failed []int) string {
	parts := make([]string, len(failed))
	for i, sh := range failed {
		parts[i] = fmt.Sprint(sh)
	}
	return "shards_unreachable:" + strings.Join(parts, ",")
}

// Aggregate scatter-gathers shard datasets, merges the reachable ones,
// and aggregates the merged campaign with the same AggregateDataset the
// single-node store uses — on identical input the results are
// bit-identical. Partial gathers reuse the PR-4 degradation contract: the
// result is flagged Degraded with the unreachable shards named, because a
// truth estimate missing part of the crowd is still an answer, just a
// weaker one. Only a fleet that is entirely unreachable is an error.
func (s *Store) Aggregate(ctx context.Context, method string) (truth.Result, []float64, error) {
	// Validate the method before touching the network: an unknown method
	// must answer 400 even when every shard is down.
	if _, err := platform.AlgorithmByName(method); err != nil {
		return truth.Result{}, nil, err
	}
	dss, errs := s.gather(ctx)
	var failed []int
	for i, err := range errs {
		if err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) == len(s.backends) {
		return truth.Result{}, nil, fmt.Errorf("%s: %w", s.label(failed[0]), errs[failed[0]])
	}
	res, unc, err := platform.AggregateDataset(ctx, method, s.merge(dss))
	if err != nil {
		return truth.Result{}, nil, err
	}
	if len(failed) > 0 {
		sort.Ints(failed)
		res.Degraded = true
		reason := failedLabel(failed)
		if res.DegradedReason != "" {
			res.DegradedReason += ";" + reason
		} else {
			res.DegradedReason = reason
		}
	}
	return res, unc, nil
}

// Stats sums shard summaries. Partial failures degrade (the reachable
// shards' counts, flagged) rather than erroring; a fleet entirely down is
// an error.
func (s *Store) Stats(ctx context.Context) (platform.StatsResponse, error) {
	type result struct {
		stats platform.StatsResponse
		err   error
	}
	results := make([]result, len(s.backends))
	var wg sync.WaitGroup
	for i, b := range s.backends {
		wg.Add(1)
		go func(i int, b platform.Store) {
			defer wg.Done()
			results[i].stats, results[i].err = b.Stats(ctx)
		}(i, b)
	}
	wg.Wait()
	out := platform.StatsResponse{Tasks: len(s.tasks)}
	var failed []int
	for i, r := range results {
		if r.err != nil {
			failed = append(failed, i)
			continue
		}
		out.Accounts += r.stats.Accounts
		if r.stats.Degraded {
			out.Degraded = true
			out.DegradedReason = r.stats.DegradedReason
		}
	}
	if len(failed) == len(s.backends) {
		return platform.StatsResponse{}, fmt.Errorf("%s: %w", s.label(failed[0]), results[failed[0]].err)
	}
	if len(failed) > 0 {
		out.Degraded = true
		reason := failedLabel(failed)
		if out.DegradedReason != "" {
			out.DegradedReason += ";" + reason
		} else {
			out.DegradedReason = reason
		}
	}
	return out, nil
}

// ShardHealth probes every shard concurrently (implements
// platform.HealthReporter, the aggregated /readyz). A backend without the
// Pinger capability (e.g. an in-process LocalStore) is trivially ready.
func (s *Store) ShardHealth(ctx context.Context) []platform.ShardHealth {
	out := make([]platform.ShardHealth, len(s.backends))
	var wg sync.WaitGroup
	for i, b := range s.backends {
		out[i] = platform.ShardHealth{Shard: i}
		if i < len(s.addrs) {
			out[i].Addr = s.addrs[i]
		}
		p, ok := b.(platform.Pinger)
		if !ok {
			out[i].Ready = true
			out[i].Status = "ready"
			continue
		}
		wg.Add(1)
		go func(i int, p platform.Pinger) {
			defer wg.Done()
			rz, err := p.Ready(ctx)
			if err != nil {
				out[i].Status = "unreachable"
				out[i].Error = err.Error()
				return
			}
			out[i].Status = rz.Status
			out[i].Ready = rz.Status == "ready"
		}(i, p)
	}
	wg.Wait()
	return out
}
