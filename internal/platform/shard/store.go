package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/platform"
	"sybiltd/internal/truth"
)

// Options tunes New and NewReplicated.
type Options struct {
	// VirtualNodes is the per-shard virtual-node count on the ring;
	// <= 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Tasks, when non-nil, is the published task list; nil makes New
	// fetch it from the first shard that answers. Every shard must be
	// configured with the identical task list — the ring partitions
	// accounts, not tasks.
	Tasks []mcs.Task
	// Addrs labels each shard in health reports and error messages
	// (typically its base URL). Optional; missing entries render as the
	// shard index alone. Used by New; NewReplicated takes per-replica
	// addresses in each GroupConfig instead.
	Addrs []string
}

// GroupConfig describes one replica group — one ring position. Replicas[0]
// is the assumed primary at construction time; the router revises that
// view on the fly when a write answers not_primary or the failover poller
// promotes a follower.
type GroupConfig struct {
	// Replicas are the group members, primary first.
	Replicas []platform.Store
	// Addrs labels each replica (typically its base URL); optional,
	// positionally matching Replicas.
	Addrs []string
}

// group is one ring position: a replica set with a current-primary view.
// The replica list is fixed at construction; only the primary index moves.
type group struct {
	replicas []platform.Store
	addrs    []string

	mu      sync.RWMutex
	primary int
}

func (g *group) primaryIdx() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.primary
}

func (g *group) setPrimary(i int) {
	g.mu.Lock()
	g.primary = i
	g.mu.Unlock()
}

func (g *group) addr(i int) string {
	if i < len(g.addrs) {
		return g.addrs[i]
	}
	return ""
}

// replClient is the optional backend capability the router uses for the
// replication control plane: status probes to find the primary after a
// not_primary rejection, and role flips during failover. RemoteStore
// provides it; backends without it simply never get probed.
type replClient interface {
	Client() *platform.Client
}

// Store routes operations across N replica groups by consistent hash of
// the account ID. Writes go to the current primary of the group owning the
// account — so the per-account duplicate guard, rate bucket, and WAL
// entries all live in exactly one place — and whole-campaign reads
// scatter-gather, falling back to followers when a group's primary is
// unreachable. It implements platform.Store plus the HealthReporter
// capability, so a platform.Server fronting it serves the identical /v1
// wire API with an aggregated /readyz.
type Store struct {
	groups []*group
	ring   *Ring
	tasks  []mcs.Task

	hookMu   sync.RWMutex
	onSubmit platform.SubmitListener

	pollMu sync.Mutex
	poller *FailoverPoller
}

// Store implements platform.Store and the HealthReporter capability.
var (
	_ platform.Store          = (*Store)(nil)
	_ platform.HealthReporter = (*Store)(nil)
)

// New composes backends into one sharded store of single-replica groups.
// When opts.Tasks is nil the task list is fetched from the first shard
// that answers (ctx bounds the fetch); a fleet that is entirely down fails
// construction.
func New(ctx context.Context, backends []platform.Store, opts Options) (*Store, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: no backends")
	}
	groups := make([]GroupConfig, len(backends))
	for i, b := range backends {
		groups[i] = GroupConfig{Replicas: []platform.Store{b}}
		if i < len(opts.Addrs) {
			groups[i].Addrs = []string{opts.Addrs[i]}
		}
	}
	return NewReplicated(ctx, groups, opts)
}

// NewReplicated composes replica groups into one sharded store — the ring
// spans the groups, not the individual replicas, so key placement is
// identical to an unreplicated fleet of the same group count and adding a
// group moves only the ring segments it captures.
func NewReplicated(ctx context.Context, configs []GroupConfig, opts Options) (*Store, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("shard: no backends")
	}
	groups := make([]*group, len(configs))
	for i, gc := range configs {
		if len(gc.Replicas) == 0 {
			return nil, fmt.Errorf("shard: group %d has no replicas", i)
		}
		addrs := make([]string, len(gc.Replicas))
		copy(addrs, gc.Addrs)
		groups[i] = &group{replicas: gc.Replicas, addrs: addrs}
	}
	s := &Store{
		groups: groups,
		ring:   NewRing(len(groups), opts.VirtualNodes),
	}
	if opts.Tasks != nil {
		s.tasks = append([]mcs.Task(nil), opts.Tasks...)
		return s, nil
	}
	var lastErr error
	for gi, g := range groups {
		for ri, b := range g.replicas {
			tasks, err := b.Tasks(ctx)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", s.replicaLabel(gi, ri), err)
				continue
			}
			s.tasks = tasks
			return s, nil
		}
	}
	return nil, fmt.Errorf("shard: fetch tasks from any shard: %w", lastErr)
}

// label names shard gi (by its current primary) in errors and health
// reports.
func (s *Store) label(gi int) string {
	g := s.groups[gi]
	if a := g.addr(g.primaryIdx()); a != "" {
		return fmt.Sprintf("shard %d (%s)", gi, a)
	}
	return fmt.Sprintf("shard %d", gi)
}

// replicaLabel names one replica of shard gi.
func (s *Store) replicaLabel(gi, ri int) string {
	g := s.groups[gi]
	if a := g.addr(ri); a != "" {
		return fmt.Sprintf("shard %d replica %d (%s)", gi, ri, a)
	}
	return fmt.Sprintf("shard %d replica %d", gi, ri)
}

// Shard returns the ring's owning shard index for an account — exposed so
// tests and operators can predict placement.
func (s *Store) Shard(account string) int { return s.ring.Shard(account) }

// Shards returns the number of replica groups (ring positions).
func (s *Store) Shards() int { return len(s.groups) }

// Primary returns the index within shard gi's replica group that the
// router currently believes is the primary — exposed so failover tests and
// operators can observe promotions.
func (s *Store) Primary(gi int) int { return s.groups[gi].primaryIdx() }

// SetSubmitListener installs the acknowledged-submission hook: the
// router-level feed for its own stream hub, seeing every submission any
// shard acknowledged through this store.
func (s *Store) SetSubmitListener(fn platform.SubmitListener) {
	s.hookMu.Lock()
	s.onSubmit = fn
	s.hookMu.Unlock()
}

func (s *Store) notifySubmitted(items []platform.BatchSubmission) {
	if len(items) == 0 {
		return
	}
	s.hookMu.RLock()
	fn := s.onSubmit
	s.hookMu.RUnlock()
	if fn != nil {
		fn(items)
	}
}

// Tasks returns the task list every shard serves.
func (s *Store) Tasks(ctx context.Context) ([]mcs.Task, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", platform.ErrOverloaded, err)
	}
	out := make([]mcs.Task, len(s.tasks))
	copy(out, s.tasks)
	return out, nil
}

// refreshPrimary re-probes shard gi's replicas for their replication role
// and adopts the primary with the highest epoch. Returns the adopted
// replica index, or ok=false when no replica currently claims primary
// (mid-failover, or the group is unreplicated local stores).
func (s *Store) refreshPrimary(ctx context.Context, gi int) (int, bool) {
	g := s.groups[gi]
	best := -1
	var bestEpoch uint64
	for i, b := range g.replicas {
		rc, ok := b.(replClient)
		if !ok {
			continue
		}
		st, err := rc.Client().ReplStatus(ctx)
		if err != nil || st.Role != platform.RolePrimary {
			continue
		}
		if best == -1 || st.Epoch > bestEpoch {
			best, bestEpoch = i, st.Epoch
		}
	}
	if best < 0 {
		return 0, false
	}
	g.setPrimary(best)
	return best, true
}

// writeTo runs fn against shard gi's current primary. A not_primary
// rejection — the router's primary view went stale across a failover —
// re-probes the group for the real primary and retries once. The follower
// rejected the write before applying anything, so the retry cannot
// double-apply.
func (s *Store) writeTo(ctx context.Context, gi int, fn func(platform.Store) error) error {
	g := s.groups[gi]
	cur := g.primaryIdx()
	err := fn(g.replicas[cur])
	if err == nil || len(g.replicas) == 1 || !errors.Is(err, platform.ErrNotPrimary) {
		return err
	}
	if idx, ok := s.refreshPrimary(ctx, gi); ok && idx != cur {
		return fn(g.replicas[idx])
	}
	return err
}

// Submit routes one observation to the account's owning shard.
func (s *Store) Submit(ctx context.Context, account string, task int, value float64, at time.Time) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	sh := s.ring.Shard(account)
	err := s.writeTo(ctx, sh, func(b platform.Store) error {
		return b.Submit(ctx, account, task, value, at)
	})
	if err != nil {
		return fmt.Errorf("%s: %w", s.label(sh), err)
	}
	s.notifySubmitted([]platform.BatchSubmission{{Account: account, Task: task, Value: value, At: at}})
	return nil
}

// submitBatchTo dispatches one shard's sub-batch to its current primary,
// with the same not_primary refresh-and-retry as single writes. A follower
// rejects the whole sub-batch at the door (every error not_primary, no
// item applied), so resending the full sub-batch to the real primary is
// safe.
func (s *Store) submitBatchTo(ctx context.Context, gi int, sub []platform.BatchSubmission) []error {
	g := s.groups[gi]
	cur := g.primaryIdx()
	errs := g.replicas[cur].SubmitBatch(ctx, sub)
	if len(g.replicas) == 1 {
		return errs
	}
	retriable := false
	for _, err := range errs {
		if err != nil && errors.Is(err, platform.ErrNotPrimary) {
			retriable = true
			break
		}
	}
	if !retriable {
		return errs
	}
	if idx, ok := s.refreshPrimary(ctx, gi); ok && idx != cur {
		return g.replicas[idx].SubmitBatch(ctx, sub)
	}
	return errs
}

// SubmitBatch splits the batch by owning shard, dispatches the per-shard
// sub-batches concurrently, and reassembles the per-item errors in the
// caller's positions. One shard failing its whole sub-batch (e.g. a 503)
// fails only the items routed to it; the rest of the batch settles
// normally.
func (s *Store) SubmitBatch(ctx context.Context, items []platform.BatchSubmission) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	if err := ctx.Err(); err != nil {
		e := fmt.Errorf("%w: %v", platform.ErrOverloaded, err)
		for i := range errs {
			errs[i] = e
		}
		return errs
	}
	// routed[sh] holds the original positions routed to shard sh, in
	// order — the sub-batch preserves relative item order, so in-batch
	// duplicate semantics inside one account are unchanged (one account
	// is never split across shards).
	routed := make([][]int, len(s.groups))
	for i, it := range items {
		if it.Account == "" {
			errs[i] = platform.ErrEmptyAccount
			continue
		}
		sh := s.ring.Shard(it.Account)
		routed[sh] = append(routed[sh], i)
	}
	var wg sync.WaitGroup
	for sh, idxs := range routed {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			sub := make([]platform.BatchSubmission, len(idxs))
			for j, i := range idxs {
				sub[j] = items[i]
			}
			subErrs := s.submitBatchTo(ctx, sh, sub)
			for j, i := range idxs {
				var err error
				if j < len(subErrs) {
					err = subErrs[j]
				} else {
					// A backend violating the positional contract is a bug;
					// refuse the unanswered tail rather than acking it.
					err = fmt.Errorf("%w: short batch response", platform.ErrShardUnavailable)
				}
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", s.label(sh), err)
				}
			}
		}(sh, idxs)
	}
	wg.Wait()
	var acked []platform.BatchSubmission
	for i := range items {
		if errs[i] == nil {
			acked = append(acked, items[i])
		}
	}
	s.notifySubmitted(acked)
	return errs
}

// RecordFingerprint routes a raw sign-in capture to the owning shard.
func (s *Store) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	sh := s.ring.Shard(account)
	err := s.writeTo(ctx, sh, func(b platform.Store) error {
		return b.RecordFingerprint(ctx, account, rec)
	})
	if err != nil {
		return fmt.Errorf("%s: %w", s.label(sh), err)
	}
	return nil
}

// RecordFingerprintFeatures routes an extracted feature vector to the
// owning shard.
func (s *Store) RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error {
	if account == "" {
		return platform.ErrEmptyAccount
	}
	sh := s.ring.Shard(account)
	err := s.writeTo(ctx, sh, func(b platform.Store) error {
		return b.RecordFingerprintFeatures(ctx, account, features)
	})
	if err != nil {
		return fmt.Errorf("%s: %w", s.label(sh), err)
	}
	return nil
}

// readFailover reports whether a read error warrants trying another
// replica of the same group: the replica is gone or refusing reads, rather
// than answering with a real (e.g. validation) error.
func readFailover(err error) bool {
	return errors.Is(err, platform.ErrShardUnavailable) ||
		errors.Is(err, platform.ErrReplicaLag) ||
		errors.Is(err, platform.ErrNotPrimary)
}

// readFrom runs fn against shard gi's current primary, falling back to the
// group's other replicas when the primary is unreachable. Followers apply
// the same frames the primary journaled, so a follower read is the same
// data at most a ship interval stale — an explicitly weaker answer the
// caller prefers over none while the poller promotes a replacement.
func (s *Store) readFrom(ctx context.Context, gi int, fn func(platform.Store) error) error {
	g := s.groups[gi]
	cur := g.primaryIdx()
	err := fn(g.replicas[cur])
	if err == nil || len(g.replicas) == 1 || !readFailover(err) {
		return err
	}
	for off := 1; off < len(g.replicas); off++ {
		if ctx.Err() != nil {
			return err
		}
		i := (cur + off) % len(g.replicas)
		fbErr := fn(g.replicas[i])
		if fbErr == nil {
			return nil
		}
		if !readFailover(fbErr) {
			return fbErr
		}
	}
	return err
}

// gather snapshots every shard's dataset concurrently, each group through
// its primary with follower fallback. dss[i] and errs[i] are shard i's
// outcome; exactly one of them is set.
func (s *Store) gather(ctx context.Context) (dss []*mcs.Dataset, errs []error) {
	dss = make([]*mcs.Dataset, len(s.groups))
	errs = make([]error, len(s.groups))
	var wg sync.WaitGroup
	for i := range s.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.readFrom(ctx, i, func(b platform.Store) error {
				ds, err := b.Dataset(ctx)
				if err != nil {
					return err
				}
				dss[i] = ds
				return nil
			})
		}(i)
	}
	wg.Wait()
	return dss, errs
}

// merge concatenates shard datasets in shard order under the composite
// task list. Within a shard, accounts keep their registration order, so
// the merged account order is deterministic for a given fleet state.
func (s *Store) merge(dss []*mcs.Dataset) *mcs.Dataset {
	out := &mcs.Dataset{Tasks: make([]mcs.Task, len(s.tasks))}
	copy(out.Tasks, s.tasks)
	for _, ds := range dss {
		if ds == nil {
			continue
		}
		out.Accounts = append(out.Accounts, ds.Accounts...)
	}
	return out
}

// Dataset scatter-gathers the full campaign. Unlike Aggregate and Stats
// it does not degrade on partial failure: an export silently missing the
// unreachable shards' accounts would poison archives and offline
// re-aggregation, so any failed shard (every replica down) fails the read
// (retryably).
func (s *Store) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	dss, errs := s.gather(ctx)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.label(i), err)
		}
	}
	return s.merge(dss), nil
}

// failedLabel builds the DegradedReason suffix naming unreachable shards.
func failedLabel(failed []int) string {
	parts := make([]string, len(failed))
	for i, sh := range failed {
		parts[i] = fmt.Sprint(sh)
	}
	return "shards_unreachable:" + strings.Join(parts, ",")
}

// Aggregate scatter-gathers shard datasets, merges the reachable ones,
// and aggregates the merged campaign with the same AggregateDataset the
// single-node store uses — on identical input the results are
// bit-identical. Partial gathers reuse the PR-4 degradation contract: the
// result is flagged Degraded with the unreachable shards named, because a
// truth estimate missing part of the crowd is still an answer, just a
// weaker one. Only a fleet that is entirely unreachable is an error.
func (s *Store) Aggregate(ctx context.Context, method string) (truth.Result, []float64, error) {
	// Validate the method before touching the network: an unknown method
	// must answer 400 even when every shard is down.
	if _, err := platform.AlgorithmByName(method); err != nil {
		return truth.Result{}, nil, err
	}
	dss, errs := s.gather(ctx)
	var failed []int
	for i, err := range errs {
		if err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) == len(s.groups) {
		return truth.Result{}, nil, fmt.Errorf("%s: %w", s.label(failed[0]), errs[failed[0]])
	}
	res, unc, err := platform.AggregateDataset(ctx, method, s.merge(dss))
	if err != nil {
		return truth.Result{}, nil, err
	}
	if len(failed) > 0 {
		sort.Ints(failed)
		res.Degraded = true
		reason := failedLabel(failed)
		if res.DegradedReason != "" {
			res.DegradedReason += ";" + reason
		} else {
			res.DegradedReason = reason
		}
	}
	return res, unc, nil
}

// Stats sums shard summaries, each group read through its primary with
// follower fallback. Partial failures degrade (the reachable shards'
// counts, flagged) rather than erroring; a fleet entirely down is an
// error.
func (s *Store) Stats(ctx context.Context) (platform.StatsResponse, error) {
	type result struct {
		stats platform.StatsResponse
		err   error
	}
	results := make([]result, len(s.groups))
	var wg sync.WaitGroup
	for i := range s.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].err = s.readFrom(ctx, i, func(b platform.Store) error {
				st, err := b.Stats(ctx)
				if err != nil {
					return err
				}
				results[i].stats = st
				return nil
			})
		}(i)
	}
	wg.Wait()
	out := platform.StatsResponse{Tasks: len(s.tasks)}
	var failed []int
	for i, r := range results {
		if r.err != nil {
			failed = append(failed, i)
			continue
		}
		out.Accounts += r.stats.Accounts
		if r.stats.Degraded {
			out.Degraded = true
			out.DegradedReason = r.stats.DegradedReason
		}
	}
	if len(failed) == len(s.groups) {
		return platform.StatsResponse{}, fmt.Errorf("%s: %w", s.label(failed[0]), results[failed[0]].err)
	}
	if len(failed) > 0 {
		out.Degraded = true
		reason := failedLabel(failed)
		if out.DegradedReason != "" {
			out.DegradedReason += ";" + reason
		} else {
			out.DegradedReason = reason
		}
	}
	return out, nil
}

// ShardHealth reports per-replica health (implements
// platform.HealthReporter, the aggregated /readyz). With a failover
// poller running, answers come from its probe cache — each entry carrying
// its probe age and known replication role — so /readyz stays cheap under
// load-balancer polling. Without a poller every replica is probed live; a
// backend without the Pinger capability (e.g. an in-process LocalStore)
// is trivially ready.
func (s *Store) ShardHealth(ctx context.Context) []platform.ShardHealth {
	s.pollMu.Lock()
	p := s.poller
	s.pollMu.Unlock()
	if p != nil {
		return p.health()
	}
	// The slice is fully sized before any probe goroutine starts: each
	// goroutine writes its own pre-allocated element, so the slice header
	// is never touched concurrently (an append here would race the
	// writers and could strand their results in a stale backing array).
	total := 0
	for _, g := range s.groups {
		total += len(g.replicas)
	}
	out := make([]platform.ShardHealth, total)
	var wg sync.WaitGroup
	pos := 0
	for gi, g := range s.groups {
		for ri, b := range g.replicas {
			out[pos] = platform.ShardHealth{Shard: gi, Replica: ri, Addr: g.addr(ri)}
			p, ok := b.(platform.Pinger)
			if !ok {
				out[pos].Ready = true
				out[pos].Status = "ready"
				pos++
				continue
			}
			wg.Add(1)
			go func(h *platform.ShardHealth, p platform.Pinger) {
				defer wg.Done()
				rz, err := p.Ready(ctx)
				if err != nil {
					h.Status = "unreachable"
					h.Error = err.Error()
					return
				}
				h.Status = rz.Status
				h.Ready = rz.Status == "ready"
			}(&out[pos], p)
			pos++
		}
	}
	wg.Wait()
	return out
}
