package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// RingState is the router's persisted ring floor: the highest topology
// version this router has ever served, together with the seed and weight
// vectors that rebuild exactly that ring. A restarted router whose
// migration journal was cleaned up (or that crashed between the flip and
// the journal write) would otherwise boot at version 1 and briefly serve
// a pre-flip topology until the donors' fences reject it — the floor
// closes that window: boot refuses to serve below it.
type RingState struct {
	// Floor is the minimum topology version this router may serve.
	Floor uint64 `json:"floor"`
	// Seeds are the per-group vnode seeds of the floor ring (see
	// NewRingWeighted); positional with the configured groups.
	Seeds []int `json:"seeds"`
	// Weights are the per-group vnode weights; omitted means uniform.
	Weights []float64 `json:"weights,omitempty"`
}

// LoadRingState reads a persisted ring floor. A missing file is
// ok=false with a nil error (a fresh router has no floor); an unreadable
// or unparseable file is an error — serving with an unknown floor is
// exactly the window the floor exists to close, so the caller must not
// shrug it off.
func LoadRingState(path string) (RingState, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return RingState{}, false, nil
	}
	if err != nil {
		return RingState{}, false, fmt.Errorf("shard: read ring state: %w", err)
	}
	var st RingState
	if err := json.Unmarshal(data, &st); err != nil {
		return RingState{}, false, fmt.Errorf("shard: parse ring state %s: %w", path, err)
	}
	if st.Floor == 0 || len(st.Seeds) == 0 {
		return RingState{}, false, fmt.Errorf("shard: ring state %s is incomplete (floor=%d, %d seeds)", path, st.Floor, len(st.Seeds))
	}
	return st, true, nil
}

// EnableRingStatePersistence writes the current ring state to path now
// and rewrites it on every subsequent topology install (reshard flips,
// adoptions), so the floor on disk is durable before any traffic routes
// at the new version. Callers adopt any previously persisted floor
// (LoadRingState + AdoptRingState) before enabling persistence —
// enabling first would overwrite the old floor with the fresh process's
// version 1.
func (s *Store) EnableRingStatePersistence(path string) error {
	s.floorMu.Lock()
	s.floorPath = path
	s.floorMu.Unlock()
	return s.writeRingState(path, s.topology())
}

// persistRingState is the installTopology hook: best-effort rewrite of
// the enabled floor file. Failures surface as an error return from the
// next EnableRingStatePersistence call's explicit write; mid-flight they
// are swallowed — a router that cannot write its data dir has bigger
// problems (its migration journal lives there too) and refusing the
// topology install would wedge a flip that is already committed
// fleet-wide.
func (s *Store) persistRingState(t *topology) {
	s.floorMu.Lock()
	path := s.floorPath
	s.floorMu.Unlock()
	if path == "" {
		return
	}
	_ = s.writeRingState(path, t)
}

// writeRingState persists t's ring shape with the same tmp + fsync +
// rename discipline as snapshots and the migration journal: the rename
// is atomic, and the fsync before it means the renamed file can never be
// observed empty or torn after a crash.
func (s *Store) writeRingState(path string, t *topology) error {
	st := RingState{Floor: t.version, Seeds: t.seeds, Weights: t.weights}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("shard: encode ring state: %w", err)
	}
	s.floorMu.Lock()
	defer s.floorMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: write ring state: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("shard: write ring state: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("shard: sync ring state: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: close ring state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: install ring state: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}
