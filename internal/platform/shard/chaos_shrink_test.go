package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// TestChaosDecommissionKillSurvivorPrimaryZeroAckedLoss is the acceptance
// gate for live ring shrink: a 3-group replicated fleet under sustained
// write load decommissions its MIDDLE group (the index-shift case: the
// surviving group after the gap changes slice position but must keep its
// ring placement) while
//
//   - a SURVIVOR group's primary is killed mid-handoff — the survivors
//     are the drain's targets, so the handoff must stall until failover
//     promotes the follower (post-flip) or abort cleanly and be retried
//     (pre-flip), and
//   - the router process is "restarted" mid-migration, with the journal
//     and the persisted ring floor as the only surviving state.
//
// Invariants at the end: the decommission completed, every acked write is
// present exactly once on the survivors (zero acked loss, no
// double-apply), the retiring group's data is purged on primary AND
// follower while its fence survives, the retired group is absent from
// the ring and from /readyz-backing ShardHealth, and the shrunk router's
// aggregation is bit-identical to a single-node run over the merged
// dataset.
func TestChaosDecommissionKillSurvivorPrimaryZeroAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign")
	}
	root := t.TempDir()
	const tasks = 3
	const retired = 1

	// Three groups, two replicas each, semi-sync shipping: an ack means
	// the write is on the follower too, so killing a primary may not lose
	// it. Group 1 will retire; groups 0 and 2 survive.
	fleet, configs := newReplicatedFleet(t, root, 3, 2, platform.AckSemiSync, 10*time.Millisecond)

	ctx := context.Background()
	store1, err := NewReplicated(ctx, configs, Options{VirtualNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	// See the grow campaign for why DeadInterval must be generous under
	// sustained load on single-process httptest servers.
	fo := FailoverOptions{ProbeInterval: 25 * time.Millisecond, DeadInterval: 500 * time.Millisecond}
	poller1 := store1.StartFailover(fo)

	var cur atomic.Pointer[Store]
	cur.Store(store1)

	// Pre-seed so the snapshot stage has real bytes to ship off the
	// retiring group.
	var mu sync.Mutex
	t0 := time.Now()
	acked := make(map[string]float64)
	ackedAt := make(map[string]time.Duration)
	for i := 0; i < 24; i++ {
		acct := fmt.Sprintf("seed-%d", i)
		for task := 0; task < tasks; task++ {
			if err := store1.Submit(ctx, acct, task, float64(i+task), at(task)); err != nil {
				t.Fatal(err)
			}
		}
		acked[acct] = float64(i)
	}

	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				acct := fmt.Sprintf("live-%d-%d", w, i)
				val := float64(w*1000 + i)
				for {
					err := cur.Load().Submit(ctx, acct, i%tasks, val, at(i%tasks))
					if err == nil || errors.Is(err, platform.ErrDuplicateReport) {
						break
					}
					select {
					case <-stopLoad:
						return
					case <-time.After(time.Millisecond):
					}
				}
				mu.Lock()
				acked[acct] = val
				ackedAt[acct] = time.Since(t0)
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	journalPath := filepath.Join(root, "reshard.json")
	reg := obs.NewRegistry()
	opts := MigrationOptions{JournalPath: journalPath, PollInterval: 5 * time.Millisecond, Registry: reg}
	m1, err := store1.StartDecommission(retired, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	run1 := make(chan error, 1)
	go func() { run1 <- m1.Run(ctx1) }()

	// Chaos event 1: kill survivor group 0's primary AFTER the flip.
	// Group 0 is a mandatory TARGET of the post-flip drain — the
	// coordinator cannot abort any more, so it must stall the handoff
	// until failover promotes the follower and land the drain there. (A
	// pre-flip target death is the grow campaign's abort-and-retry path;
	// the post-flip stall is the hazard specific to shrink.) If the drain
	// outruns the journal poll and finishes first, the kill degrades into
	// the also-interesting "survivor primary dead at restart" case.
	killDeadline := time.After(15 * time.Second)
	var run1Err error
	run1Done := false
	for flipped := false; !flipped && !run1Done; {
		select {
		case run1Err = <-run1:
			run1Done = true
		case <-killDeadline:
			t.Fatal("decommission never reached the flip")
		case <-time.After(5 * time.Millisecond):
			if j, ok, _ := LoadMigrationJournal(journalPath); ok && (j.Flipped() || j.Phase == MigrationAborted) {
				flipped = true
			}
		}
	}
	fleet[0].procs[0].kill()
	t.Logf("killed survivor group 0 primary post-flip (t=%v, run1 done=%v)", time.Since(t0), run1Done)
	follower := platform.NewClient(fleet[0].procs[1].srv.URL, platform.WithRetries(0))
	waitUntil(t, 15*time.Second, "survivor follower promoted", func() bool {
		rs, err := follower.ReplStatus(ctx)
		return err == nil && rs.Role == platform.RolePrimary
	})
	t.Logf("survivor follower promoted (t=%v)", time.Since(t0))

	// Chaos event 2: "restart the router" — abandon the old process
	// mid-stall; the journal (and ring floor) are the only state that
	// survives.
	if !run1Done {
		cancel1()
		run1Err = <-run1
	}
	cancel1()
	poller1.Stop()
	t.Logf("router restart with journal-only state (t=%v, old run: %v)", time.Since(t0), run1Err)

	j, ok, err := LoadMigrationJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	survivors := []GroupConfig{configs[0], configs[2]}
	var store2 *Store
	var m2 *Migration
	switch {
	case ok && j.Phase == MigrationDone:
		// Finished before the restart: the new router boots with the
		// survivor configuration and adopts the journaled ring shape —
		// the gapped seeds are exactly why AdoptRingState exists.
		store2, err = NewReplicated(ctx, survivors, Options{VirtualNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := store2.AdoptRingState(j.RingVersion, j.Seeds, j.Weights); err != nil {
			t.Fatal(err)
		}
	case ok && j.Pending():
		// Mid-flight: the retiring group must stay configured until the
		// journal reads done.
		store2, err = NewReplicated(ctx, configs, Options{VirtualNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		m2, err = store2.ResumeMigration(GroupConfig{}, j, opts)
		if err != nil {
			t.Fatalf("resume from journal %+v: %v", j, err)
		}
	default:
		// Aborted: retry the decommission fresh.
		store2, err = NewReplicated(ctx, configs, Options{VirtualNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		m2, err = store2.StartDecommission(retired, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	poller2 := store2.StartFailover(fo)
	defer poller2.Stop()
	cur.Store(store2)
	t.Logf("swapped to restarted router (t=%v)", time.Since(t0))
	if m2 != nil {
		if err := m2.Run(ctx); err != nil {
			// One retry: pre-flip failures abort (ring untouched, start
			// fresh); post-flip failures leave a resumable journal.
			t.Logf("decommission attempt failed (%v); retrying once", err)
			j2, ok2, _ := LoadMigrationJournal(journalPath)
			switch {
			case ok2 && j2.Pending():
				m2, err = store2.ResumeMigration(GroupConfig{}, j2, opts)
				if err != nil {
					t.Fatal(err)
				}
			case store2.RingVersion() == 1:
				m2, err = store2.StartDecommission(retired, opts)
				if err != nil {
					t.Fatal(err)
				}
			default:
				t.Fatalf("failed decommission left ring at v%d with journal %+v", store2.RingVersion(), j2)
			}
			if err := m2.Run(ctx); err != nil {
				t.Fatalf("retried decommission: %v", err)
			}
		}
	}

	t.Logf("decommission complete (t=%v)", time.Since(t0))
	time.Sleep(50 * time.Millisecond)
	close(stopLoad)
	wg.Wait()

	if v := store2.RingVersion(); v != 2 {
		t.Errorf("final ring version = %d, want 2", v)
	}
	if n := store2.Shards(); n != 2 {
		t.Errorf("final shard count = %d, want 2", n)
	}
	jf, ok, err := LoadMigrationJournal(journalPath)
	if err != nil || !ok || jf.Phase != MigrationDone || jf.Kind != MigrationShrink {
		t.Errorf("final journal = %+v ok=%v err=%v, want a done shrink", jf, ok, err)
	}
	if len(jf.Seeds) != 2 || jf.Seeds[0] != 0 || jf.Seeds[1] != 2 {
		t.Errorf("final journal seeds = %v, want the survivors' gapped seeds [0 2]", jf.Seeds)
	}

	// The retired group is gone from health reporting: /readyz is built
	// from ShardHealth, and no retired-group address may appear there.
	retiredAddrs := make(map[string]bool)
	for _, a := range configs[retired].Addrs {
		retiredAddrs[a] = true
	}
	for _, h := range store2.ShardHealth(ctx) {
		if retiredAddrs[h.Addr] {
			t.Errorf("retired group address %s still reported by ShardHealth", h.Addr)
		}
	}

	// Zero acked loss, no double-apply, values intact.
	ds, err := store2.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	byID := make(map[string]int)
	for _, a := range ds.Accounts {
		byID[a.ID]++
	}
	lost := 0
	for acct := range acked {
		switch byID[acct] {
		case 0:
			lost++
			if lost <= 5 {
				t.Errorf("acked account %s lost after decommission (v2 owner=shard %d, acked at t=%v)",
					acct, store2.Shard(acct), ackedAt[acct])
			}
		case 1:
		default:
			t.Errorf("acked account %s present %d times (double-apply)", acct, byID[acct])
		}
	}
	if lost > 5 {
		t.Errorf("... and %d more acked accounts lost", lost-5)
	}
	for _, a := range ds.Accounts {
		want, isAcked := acked[a.ID]
		if !isAcked {
			continue
		}
		for _, obs := range a.Observations {
			if len(a.Observations) == 1 && obs.Value != want && strings.HasPrefix(a.ID, "live") {
				t.Errorf("account %s holds value %v, want %v", a.ID, obs.Value, want)
			}
		}
	}
	// The retiring group owned real keys on the old ring — they all had
	// to move to the survivors.
	oldRing := NewRing(3, 16)
	moved := 0
	for acct := range acked {
		if oldRing.Shard(acct) == retired {
			moved++
		}
		if gi := store2.Shard(acct); gi < 0 || gi > 1 {
			t.Errorf("account %s routed to shard %d on a 2-shard ring", acct, gi)
		}
	}
	if moved == 0 {
		t.Error("retired group owned no acked accounts; the fixture is broken")
	}
	t.Logf("%d acked accounts, %d drained off the retired group", len(acked), moved)

	// The retired group's replicas hold no account data (the journaled
	// purge reached the primary and shipped to the follower), and memory
	// is released on both.
	for ri, p := range fleet[retired].procs {
		p := p
		waitUntil(t, 10*time.Second, fmt.Sprintf("retired replica %d purged", ri), func() bool {
			dds, err := p.store.Dataset(ctx)
			return err == nil && len(dds.Accounts) == 0
		})
	}

	// Bit-identical aggregation on the shrunk fleet.
	for _, method := range []string{"mean", "crh", "td-ts"} {
		res, _, err := store2.Aggregate(ctx, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		want, _, err := platform.AggregateDataset(ctx, method, ds)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		for task := range want.Truths {
			if res.Truths[task] != want.Truths[task] {
				t.Errorf("%s task %d: sharded %v != single-node %v", method, task, res.Truths[task], want.Truths[task])
			}
		}
	}
}
