package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sybiltd/internal/platform"
)

// httpFleet is a 3-level test topology: shard processes (platform.Server
// over LocalStore, each on its own httptest listener), a shard.Store
// routing to them through RemoteStore clients, and a router (the same
// platform.Server over the shard.Store) that external clients talk to.
type httpFleet struct {
	locals    []*platform.LocalStore
	shardSrvs []*platform.Server
	shardHTTP []*httptest.Server
	store     *Store
	router    *httptest.Server
	routerAPI *platform.Server
	client    *platform.Client
}

func newHTTPFleet(t *testing.T, shards, tasks int) *httpFleet {
	t.Helper()
	f := &httpFleet{}
	backends := make([]platform.Store, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		local := platform.NewLocalStore(testTasks(tasks))
		api := platform.NewServer(local, nil)
		srv := httptest.NewServer(api)
		t.Cleanup(srv.Close)
		t.Cleanup(api.Close)
		f.locals = append(f.locals, local)
		f.shardSrvs = append(f.shardSrvs, api)
		f.shardHTTP = append(f.shardHTTP, srv)
		addrs[i] = srv.URL
		backends[i] = platform.NewRemoteStore(platform.NewClient(srv.URL, platform.WithRetries(0)))
	}
	store, err := New(context.Background(), backends, Options{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	f.store = store
	f.routerAPI = platform.NewServer(store, nil)
	f.router = httptest.NewServer(f.routerAPI)
	t.Cleanup(f.router.Close)
	t.Cleanup(f.routerAPI.Close)
	f.client = platform.NewClient(f.router.URL, platform.WithRetries(0))
	return f
}

func TestRouterServesWireAPIEndToEnd(t *testing.T) {
	f := newHTTPFleet(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tasks, err := f.client.Tasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("router serves %d tasks, want 2", len(tasks))
	}

	// Subscribe to the router's truth stream before submitting: router-side
	// acks must feed the router's own hub.
	w, err := f.client.Watch(ctx, platform.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Writes through the router land on their owning shards.
	owners := accountsPerShard(f.store)
	for sh, account := range owners {
		if err := f.client.Submit(ctx, platform.SubmissionRequest{
			Account: account, Task: 0, Value: float64(10 + sh), Time: at(sh),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for sh, local := range f.locals {
		if n := local.NumAccounts(); n != 1 {
			t.Errorf("shard %d holds %d accounts, want 1", sh, n)
		}
		_ = sh
	}

	// The stream observed at least one of the submissions.
	if _, ok := w.Next(5 * time.Second); !ok {
		t.Fatalf("no truth update on the router watch stream: %v", w.Err())
	}

	// Batch through the router: positional results, mixed outcomes.
	results, err := f.client.SubmitBatch(ctx, []platform.SubmissionRequest{
		{Account: owners[0], Task: 1, Value: 1, Time: at(5)},
		{Account: owners[0], Task: 0, Value: 2, Time: at(5)}, // duplicate
		{Account: owners[1], Task: 1, Value: 3, Time: at(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err() != nil || results[2].Err() != nil {
		t.Errorf("batch accepts failed: %v / %v", results[0].Err(), results[2].Err())
	}
	if !errors.Is(results[1].Err(), platform.ErrDuplicateReport) {
		t.Errorf("batch duplicate through router = %v, want ErrDuplicateReport", results[1].Err())
	}

	// Fingerprints route to the owning shard.
	if err := f.client.RecordFeatureFingerprint(ctx, owners[2], []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	// Stats sum across shards.
	stats, err := f.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 2 || stats.Accounts != 3 || stats.Degraded {
		t.Errorf("stats = %+v, want 2 tasks / 3 accounts, not degraded", stats)
	}

	// The dataset is the merged campaign.
	ds, err := f.client.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumAccounts() != 3 || ds.NumTasks() != 2 {
		t.Errorf("dataset = %d accounts / %d tasks", ds.NumAccounts(), ds.NumTasks())
	}

	// Aggregation through the router answers, not degraded.
	agg, err := f.client.Aggregate(ctx, "mean")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Meta.Degraded {
		t.Errorf("aggregate degraded with all shards up: %q", agg.Meta.DegradedReason)
	}
	if len(agg.Truths) != 2 {
		t.Errorf("aggregate covers %d tasks, want 2", len(agg.Truths))
	}
}

func TestRouterReadyzAggregatesShardHealth(t *testing.T) {
	f := newHTTPFleet(t, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	rz, err := f.client.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != "ready" || len(rz.Shards) != 3 {
		t.Fatalf("healthy fleet readyz = %+v, want ready with 3 shards", rz)
	}
	for _, sh := range rz.Shards {
		if !sh.Ready || sh.Status != "ready" || sh.Addr == "" {
			t.Errorf("shard health = %+v, want ready with addr", sh)
		}
	}

	// A draining shard flips the router to 503 with the shard named.
	f.shardSrvs[1].SetDraining(true)
	resp, err := http.Get(f.router.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with draining shard = HTTP %d, want 503", resp.StatusCode)
	}
	rz, err = f.client.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != "degraded" {
		t.Errorf("readyz status = %q, want degraded", rz.Status)
	}
	if rz.Shards[1].Ready || rz.Shards[1].Status != "draining" {
		t.Errorf("draining shard reported %+v", rz.Shards[1])
	}
	if !rz.Shards[0].Ready || !rz.Shards[2].Ready {
		t.Errorf("healthy shards reported not ready: %+v", rz.Shards)
	}
	f.shardSrvs[1].SetDraining(false)

	// An unreachable shard reports as such.
	f.shardHTTP[2].Close()
	rz, err = f.client.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != "degraded" || rz.Shards[2].Ready || rz.Shards[2].Status != "unreachable" {
		t.Errorf("readyz with dead shard = %+v", rz)
	}
	if rz.Shards[2].Error == "" {
		t.Errorf("unreachable shard carries no error detail: %+v", rz.Shards[2])
	}
}

func TestRouterShardUnavailableOnWrite(t *testing.T) {
	f := newHTTPFleet(t, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	owners := accountsPerShard(f.store)

	f.shardHTTP[1].Close()
	err := f.client.Submit(ctx, platform.SubmissionRequest{Account: owners[1], Task: 0, Value: 1, Time: at(0)})
	if !errors.Is(err, platform.ErrShardUnavailable) {
		t.Fatalf("submit to dead shard through router = %v, want ErrShardUnavailable", err)
	}
	var ae *platform.APIError
	if !errors.As(err, &ae) || ae.Code != platform.CodeShardUnavailable || ae.Status != http.StatusServiceUnavailable {
		t.Errorf("wire shape = %+v, want 503 %s", ae, platform.CodeShardUnavailable)
	}

	// Accounts owned by live shards are unaffected.
	for _, sh := range []int{0, 2} {
		if err := f.client.Submit(ctx, platform.SubmissionRequest{
			Account: owners[sh], Task: 0, Value: float64(sh), Time: at(0),
		}); err != nil {
			t.Errorf("live shard %d: %v", sh, err)
		}
	}

	// A batch splits: dead-shard items fail with shard_unavailable, live
	// items are acked.
	results, err := f.client.SubmitBatch(ctx, []platform.SubmissionRequest{
		{Account: fmt.Sprintf("%s-b", owners[0]), Task: 0, Value: 1, Time: at(1)},
		{Account: owners[1], Task: 0, Value: 2, Time: at(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The helper account may hash anywhere; recompute its owner.
	first := results[0].Err()
	if f.store.Shard(fmt.Sprintf("%s-b", owners[0])) == 1 {
		if !errors.Is(first, platform.ErrShardUnavailable) {
			t.Errorf("item 0 (dead shard) = %v", first)
		}
	} else if first != nil {
		t.Errorf("item 0 (live shard) = %v", first)
	}
	if !errors.Is(results[1].Err(), platform.ErrShardUnavailable) {
		t.Errorf("item 1 routed to dead shard = %v, want ErrShardUnavailable", results[1].Err())
	}
}
