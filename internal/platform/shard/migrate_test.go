package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// TestRingMovedDeltaMinimalOnGrow is the reshard-delta property test:
// growing a ring from n to n+1 shards moves exactly the keys whose owner
// changed, every moved key lands on the new shard, and the moved fraction
// is ~1/(n+1) — the minimal delta consistent hashing promises. The
// migration coordinator's moved-account filter and the donor fence lists
// are both built on the "moved keys land on the joiner" half.
func TestRingMovedDeltaMinimalOnGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8} {
		oldRing := NewRing(n, 32)
		newRing := NewRing(n+1, 32)
		const keys = 4000
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("acct-%d-%d", rng.Int63(), i)
			m := Moved(oldRing, newRing, key)
			if m != (oldRing.Shard(key) != newRing.Shard(key)) {
				t.Fatalf("n=%d: Moved(%q)=%v disagrees with owner comparison", n, key, m)
			}
			if !m {
				continue
			}
			moved++
			if got := newRing.Shard(key); got != n {
				t.Fatalf("n=%d: moved key %q landed on shard %d, want the new shard %d", n, key, got, n)
			}
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(n+1)
		if frac < want/2 || frac > want*2 {
			t.Errorf("n=%d: moved fraction %.3f, want about %.3f (minimal delta)", n, frac, want)
		}
	}
}

// TestReshardStaleRingVersionFencedOverHTTP pins the stale-router fence on
// the wire: once a shard is fenced at ring version 3, any mutation stamped
// with an older X-Ring-Version is refused wholesale with the typed
// wrong_shard code carrying the fence version, a current-version stamp
// passes for unmoved accounts, and the per-account fence still refuses the
// moved account itself.
func TestReshardStaleRingVersionFencedOverHTTP(t *testing.T) {
	store := platform.NewLocalStore(testTasks(2))
	api := platform.NewServer(store, nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	t.Cleanup(api.Close)
	ctx := context.Background()
	if err := store.Fence(ctx, 3, []string{"moved-acct"}); err != nil {
		t.Fatal(err)
	}

	stale := platform.NewClient(srv.URL, platform.WithRetries(3))
	stale.SetRingVersion(2)
	err := stale.Submit(ctx, platform.SubmissionRequest{Account: "fresh-acct", Task: 0, Value: 1, Time: at(0)})
	if !errors.Is(err, platform.ErrWrongShard) {
		t.Fatalf("stale-stamped submit = %v, want ErrWrongShard", err)
	}
	var ws *platform.WrongShardError
	if !errors.As(err, &ws) || ws.RingVersion != 3 {
		t.Errorf("refusal carries ring version %+v, want 3 (how far behind the router is)", ws)
	}
	if _, err := stale.SubmitBatch(ctx, []platform.SubmissionRequest{
		{Account: "fresh-acct", Task: 0, Value: 1, Time: at(0)},
	}); !errors.Is(err, platform.ErrWrongShard) {
		t.Errorf("stale-stamped batch = %v, want wholesale ErrWrongShard", err)
	}
	if err := stale.RecordFeatureFingerprint(ctx, "fresh-acct", []float64{1, 2}); !errors.Is(err, platform.ErrWrongShard) {
		t.Errorf("stale-stamped fingerprint = %v, want ErrWrongShard", err)
	}

	cur := platform.NewClient(srv.URL, platform.WithRetries(0))
	cur.SetRingVersion(3)
	if err := cur.Submit(ctx, platform.SubmissionRequest{Account: "fresh-acct", Task: 0, Value: 1, Time: at(0)}); err != nil {
		t.Fatalf("current-stamped submit to an unmoved account: %v", err)
	}
	err = cur.Submit(ctx, platform.SubmissionRequest{Account: "moved-acct", Task: 0, Value: 1, Time: at(0)})
	if !errors.Is(err, platform.ErrWrongShard) {
		t.Errorf("submit naming the fenced account = %v, want ErrWrongShard", err)
	}
}

// TestReshardWrongShardClientNoRetryNoBreakerBurn pins the client-side
// contract the cutover depends on: a wrong_shard refusal is semantic, not
// a fault — the client must not spend retry budget on it (a retry against
// a fenced shard can never succeed) and must not count it against the
// circuit breaker (a healthy shard answering wrong_shard would otherwise
// trip the breaker and blackhole the re-routed traffic too). Every refusal
// therefore reaches the wire exactly once.
func TestReshardWrongShardClientNoRetryNoBreakerBurn(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"code":"wrong_shard","error":"account moved off this shard","ring_version":7}`)
	}))
	t.Cleanup(srv.Close)

	client := platform.NewClient(srv.URL, platform.WithRetries(3), platform.WithBackoff(time.Millisecond, 0))
	ctx := context.Background()
	const calls = 20
	for i := 0; i < calls; i++ {
		err := client.Submit(ctx, platform.SubmissionRequest{Account: fmt.Sprintf("a-%d", i), Task: 0, Value: 1, Time: at(0)})
		if !errors.Is(err, platform.ErrWrongShard) {
			t.Fatalf("call %d: %v, want ErrWrongShard", i, err)
		}
		var ws *platform.WrongShardError
		if !errors.As(err, &ws) || ws.RingVersion != 7 {
			t.Fatalf("call %d: ring version not carried through: %v", i, err)
		}
	}
	// One wire hit per call: no retry burn. And all `calls` consecutive
	// refusals never opened the breaker — every later call still reached
	// the server instead of failing fast locally.
	if n := hits.Load(); n != calls {
		t.Errorf("%d wire hits for %d wrong_shard calls, want exactly %d (no retries, breaker never opened)", n, calls, calls)
	}
}

// durableBackend opens one WAL-journaled LocalStore (so it can export its
// WAL and journal fences — the donor capabilities a reshard needs).
func durableBackend(t testing.TB, tasks int) *platform.LocalStore {
	t.Helper()
	store, d, _, err := platform.OpenDurable(t.TempDir(), testTasks(tasks), platform.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return store
}

// newDurableFleet builds a sharded store over durable LocalStore backends.
func newDurableFleet(t testing.TB, shards, tasks int) (*Store, []*platform.LocalStore) {
	t.Helper()
	backends := make([]platform.Store, shards)
	locals := make([]*platform.LocalStore, shards)
	for i := range backends {
		locals[i] = durableBackend(t, tasks)
		backends[i] = locals[i]
	}
	s, err := New(context.Background(), backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, locals
}

// migOpts returns fast migration options journaling into a temp dir.
func migOpts(t testing.TB) MigrationOptions {
	t.Helper()
	return MigrationOptions{
		JournalPath:  filepath.Join(t.TempDir(), "reshard.json"),
		PollInterval: 2 * time.Millisecond,
	}
}

// TestReshardWriteRacedAgainstCutoverNeverFails is the re-route regression
// test: a 2-shard fleet grows to 3 while writers hammer it, and no write
// may ever surface an error — a write racing the cutover gets wrong_shard
// from a freshly fenced donor and must be transparently re-routed through
// the newer topology (routeWrite / SubmitBatch), never bubbled up as a
// 5xx. It also checks the observability satellites: the reshard.* gauges
// and the ring version on /readyz.
func TestReshardWriteRacedAgainstCutoverNeverFails(t *testing.T) {
	s, _ := newDurableFleet(t, 2, 2)
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		if err := s.Submit(ctx, acct, 0, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := s.RecordFingerprintFeatures(ctx, acct, []float64{float64(i), 1, 2}); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				account := fmt.Sprintf("live-%d-%d", w, i)
				if err := s.Submit(ctx, account, i%2, 1.5, at(1)); err != nil {
					t.Errorf("write during reshard surfaced an error: %v", err)
					return
				}
				wrote.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	joiner := durableBackend(t, 2)
	opts := migOpts(t)
	reg := obs.NewRegistry()
	opts.Registry = reg
	m, err := s.StartMigration(GroupConfig{Replicas: []platform.Store{joiner}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartMigration(GroupConfig{Replicas: []platform.Store{joiner}}, opts); err == nil {
		t.Error("second StartMigration while one is in flight succeeded")
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("migration: %v", err)
	}
	close(stop)
	wg.Wait()

	if v := s.RingVersion(); v != 2 {
		t.Errorf("ring version after reshard = %d, want 2", v)
	}
	if n := s.Shards(); n != 3 {
		t.Errorf("shards after reshard = %d, want 3", n)
	}
	if m.Journal().Phase != MigrationDone {
		t.Errorf("journal phase = %q, want done", m.Journal().Phase)
	}

	// Observability satellites: the reshard gauges describe the finished
	// migration, and /readyz carries the ring version.
	g := reg.Snapshot().Gauges
	if g["reshard.state"] != 5 {
		t.Errorf("reshard.state = %d, want 5 (done)", g["reshard.state"])
	}
	if g["reshard.keys_moved"] < 1 {
		t.Errorf("reshard.keys_moved = %d, want > 0", g["reshard.keys_moved"])
	}
	if g["reshard.bytes_shipped"] < 1 {
		t.Errorf("reshard.bytes_shipped = %d, want > 0", g["reshard.bytes_shipped"])
	}
	if g["reshard.catchup_lag_records"] != 0 {
		t.Errorf("reshard.catchup_lag_records = %d after drain, want 0", g["reshard.catchup_lag_records"])
	}
	if _, ok := g["reshard.duration_seconds"]; !ok {
		t.Error("reshard.duration_seconds gauge never set")
	}
	api := platform.NewServer(s, nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	t.Cleanup(api.Close)
	rz, err := platform.NewClient(srv.URL, platform.WithRetries(0)).Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rz.RingVersion != 2 || rz.Migrating {
		t.Errorf("readyz ring_version=%d migrating=%v, want 2/false", rz.RingVersion, rz.Migrating)
	}

	// Every write landed exactly once, fingerprints moved with their
	// accounts, and aggregation over the grown fleet is bit-identical to a
	// single-node run on the merged dataset.
	ds, err := s.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 60 + int(wrote.Load())
	if got := ds.NumAccounts(); got != total {
		t.Fatalf("merged dataset holds %d accounts, want %d", got, total)
	}
	seen := make(map[string]bool, total)
	for _, a := range ds.Accounts {
		if seen[a.ID] {
			t.Errorf("account %s appears twice in the merged dataset (donor copy not excised)", a.ID)
		}
		seen[a.ID] = true
		if len(a.Observations) != 1 {
			t.Errorf("account %s has %d observations, want 1 (double-applied by the handoff?)", a.ID, len(a.Observations))
		}
	}
	for i := 0; i < 60; i += 5 {
		acct := fmt.Sprintf("pre-%d", i)
		found := false
		for _, a := range ds.Accounts {
			if a.ID == acct {
				found = len(a.Fingerprint) > 0
			}
		}
		if !found {
			t.Errorf("account %s lost its fingerprint across the reshard", acct)
		}
	}
	for _, method := range []string{"mean", "crh", "td-ts"} {
		res, _, err := s.Aggregate(ctx, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		want, _, err := platform.AggregateDataset(ctx, method, ds)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		for task := range want.Truths {
			if res.Truths[task] != want.Truths[task] {
				t.Errorf("%s task %d: sharded %v != single-node %v", method, task, res.Truths[task], want.Truths[task])
			}
		}
	}
}

// TestReshardAbortsCleanlyWhenJoinerDiesPreFlip: a joining group that is
// unreachable during seeding aborts the migration with no ring change —
// the fleet never learns the joiner existed, writes keep landing, and a
// fresh migration can be started afterwards.
func TestReshardAbortsCleanlyWhenJoinerDiesPreFlip(t *testing.T) {
	s, _ := newDurableFleet(t, 2, 2)
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if err := s.Submit(ctx, fmt.Sprintf("pre-%d", i), 0, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	down := fmt.Errorf("%w: connection refused", platform.ErrShardUnavailable)
	joiner := &failingStore{Store: platform.NewLocalStore(testTasks(2)), err: down}
	m, err := s.StartMigration(GroupConfig{Replicas: []platform.Store{joiner}}, migOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if !s.RingStatus().Migrating {
		t.Error("RingStatus does not flag the in-flight migration")
	}
	if err := m.Run(ctx); err == nil {
		t.Fatal("migration with a dead joiner reported success")
	}
	if m.Journal().Phase != MigrationAborted {
		t.Errorf("journal phase = %q, want aborted", m.Journal().Phase)
	}
	if s.RingVersion() != 1 || s.Shards() != 2 {
		t.Errorf("abort changed the ring: v%d over %d shards, want v1 over 2", s.RingVersion(), s.Shards())
	}
	if st := s.RingStatus(); st.Migrating {
		t.Error("migrating flag still raised after abort")
	}
	if err := s.Submit(ctx, "post-abort", 0, 1, at(1)); err != nil {
		t.Errorf("write after aborted migration: %v", err)
	}
	if _, err := s.StartMigration(GroupConfig{Replicas: []platform.Store{durableBackend(t, 2)}}, migOpts(t)); err != nil {
		t.Errorf("fresh migration after an abort refused: %v", err)
	}
}

// TestReshardResumeFromSeedingJournal is the pre-flip router-restart path:
// the router dies right after journaling the migration start, a fresh
// router (new Store over the same fleet, ring still at v1) loads the
// journal and resumes — re-seeding from scratch, which the duplicate
// guard makes idempotent — and completes the handoff.
func TestReshardResumeFromSeedingJournal(t *testing.T) {
	backends := make([]platform.Store, 2)
	for i := range backends {
		backends[i] = durableBackend(t, 2)
	}
	ctx := context.Background()
	s1, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s1.Submit(ctx, fmt.Sprintf("pre-%d", i), i%2, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	joiner := durableBackend(t, 2)
	gc := GroupConfig{Replicas: []platform.Store{joiner}}
	opts := migOpts(t)
	if _, err := s1.StartMigration(gc, opts); err != nil {
		t.Fatal(err)
	}
	// Router dies here: the journal says "seeding", nothing was shipped.

	s2, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, ok, err := LoadMigrationJournal(opts.JournalPath)
	if err != nil || !ok {
		t.Fatalf("load journal: ok=%v err=%v", ok, err)
	}
	if !j.Pending() || j.Flipped() {
		t.Fatalf("journal %+v, want pending pre-flip", j)
	}
	m2, err := s2.ResumeMigration(gc, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.RingVersion() != 1 {
		t.Errorf("pre-flip resume changed the ring to v%d before running", s2.RingVersion())
	}
	if err := m2.Run(ctx); err != nil {
		t.Fatalf("resumed migration: %v", err)
	}
	if s2.RingVersion() != 2 || s2.Shards() != 3 {
		t.Errorf("after resume: ring v%d over %d shards, want v2 over 3", s2.RingVersion(), s2.Shards())
	}
	assertReshardComplete(t, s2, joiner, 60, 1)
}

// TestReshardResumeCompletesAfterFlip is the post-flip router-restart
// path: the router dies immediately after publishing the grown topology
// (journal phase "flipped", donors not yet fenced). A fresh router MUST
// complete this migration — the fleet's only consistent topology is the
// grown one — so ResumeMigration re-installs it before any traffic routes
// by the stale ring, and Run picks up at the fence.
func TestReshardResumeCompletesAfterFlip(t *testing.T) {
	backends := make([]platform.Store, 2)
	for i := range backends {
		backends[i] = durableBackend(t, 2)
	}
	ctx := context.Background()
	s1, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s1.Submit(ctx, fmt.Sprintf("pre-%d", i), i%2, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	joiner := durableBackend(t, 2)
	gc := GroupConfig{Replicas: []platform.Store{joiner}}
	opts := migOpts(t)
	m1, err := s1.StartMigration(gc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the coordinator to the exact crash point: seeded, caught up,
	// topology flipped and journaled — then the router dies before fencing.
	if err := m1.seedAndCatchup(ctx); err != nil {
		t.Fatal(err)
	}
	s1.installTopology(m1.cand)
	if err := m1.setPhase(MigrationFlipped); err != nil {
		t.Fatal(err)
	}

	s2, err := New(ctx, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, ok, err := LoadMigrationJournal(opts.JournalPath)
	if err != nil || !ok {
		t.Fatalf("load journal: ok=%v err=%v", ok, err)
	}
	if !j.Flipped() {
		t.Fatalf("journal phase %q, want flipped", j.Phase)
	}
	// A journal that does not match the store's ring lineage must be
	// refused, not trusted.
	if _, err := s2.ResumeMigration(gc, MigrationJournal{RingVersion: 9, Phase: MigrationFlipped, Cursors: make([]uint64, 2)}, opts); err == nil {
		t.Error("resume accepted a journal targeting the wrong ring version")
	}
	m2, err := s2.ResumeMigration(gc, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The grown topology must be live IMMEDIATELY — before Run — so no
	// write routes by the stale ring into a donor fence.
	if s2.RingVersion() != 2 || s2.Shards() != 3 {
		t.Fatalf("post-flip resume left the store at ring v%d over %d shards, want v2 over 3", s2.RingVersion(), s2.Shards())
	}
	if err := m2.Run(ctx); err != nil {
		t.Fatalf("resumed migration: %v", err)
	}
	if m2.Journal().Phase != MigrationDone {
		t.Errorf("journal phase = %q, want done", m2.Journal().Phase)
	}
	assertReshardComplete(t, s2, joiner, 60, 1)
}

// assertReshardComplete checks the post-migration invariants: the joiner
// holds every account the grown ring assigns it, writes naming moved
// accounts land on the joiner (the donors refuse them), and the merged
// dataset holds every account exactly once with obsPerAccount
// observations each.
func assertReshardComplete(t *testing.T, s *Store, joiner *platform.LocalStore, accounts, obsPerAccount int) {
	t.Helper()
	ctx := context.Background()
	jds, err := joiner.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	joinerHolds := make(map[string]bool, len(jds.Accounts))
	for _, a := range jds.Accounts {
		joinerHolds[a.ID] = true
	}
	movedTotal := 0
	for i := 0; i < accounts; i++ {
		acct := fmt.Sprintf("pre-%d", i)
		if s.Shard(acct) != s.Shards()-1 {
			continue
		}
		movedTotal++
		if !joinerHolds[acct] {
			t.Errorf("moved account %s missing from the joiner", acct)
		}
	}
	if movedTotal == 0 {
		t.Fatal("test fleet moved no accounts; the ring fixture is broken")
	}
	ds, err := s.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumAccounts(); got != accounts {
		t.Errorf("merged dataset holds %d accounts, want %d", got, accounts)
	}
	seen := make(map[string]bool, accounts)
	for _, a := range ds.Accounts {
		if seen[a.ID] {
			t.Errorf("account %s appears twice in the merged dataset", a.ID)
		}
		seen[a.ID] = true
		if len(a.Observations) != obsPerAccount {
			t.Errorf("account %s has %d observations, want %d", a.ID, len(a.Observations), obsPerAccount)
		}
	}
}
