package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/platform"
)

// BenchmarkIngestSharded measures acknowledged submits per second through
// a shard.Store over 1, 2, and 4 durable LocalStore backends (group
// commit on, like a production shard), under 32 concurrent submitters.
// On one machine all shards share a disk, so this quantifies the sharding
// tax rather than the fleet win: ring routing per submit, and group
// commits coalescing fewer records per fsync as the same submitter pool
// spreads across more WALs. The fleet win (independent disks, independent
// store locks) is what the chaos campaign's multi-process topology buys;
// this row exists so BENCH_ingest.json catches regressions in the
// routing path itself.
//
// Run via `make bench-ingest`; rows land in BENCH_ingest.json alongside
// the single-node shapes.
func BenchmarkIngestSharded(b *testing.B) {
	const workers = 32
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			backends := make([]platform.Store, shards)
			for i := range backends {
				store, d, _, err := platform.OpenDurable(b.TempDir(), testTasks(1), platform.DurableOptions{
					CommitLinger:   2 * time.Millisecond,
					CommitMaxBatch: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				backends[i] = store
			}
			s, err := New(context.Background(), backends, Options{})
			if err != nil {
				b.Fatal(err)
			}

			var wg sync.WaitGroup
			var idx sync.Mutex
			next := 0
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						idx.Lock()
						i := next
						next++
						idx.Unlock()
						if i >= b.N {
							return
						}
						account := fmt.Sprintf("w%02d-%06d", w, i)
						if err := s.Submit(context.Background(), account, 0, -80, at(0)); err != nil {
							b.Errorf("submit %s: %v", account, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acked-submits/sec")
		})
	}
}

// BenchmarkIngestDuringReshard measures acknowledged submits per second
// through a sharded store while an online reshard runs underneath it: a
// 2-shard durable fleet grows to 3 with the migration coordinator
// seeding, catching up, flipping, fencing, and draining concurrently
// with the load. Compare against BenchmarkIngestSharded's shards-2 row
// to see what a live migration costs foreground writes.
//
// Run via `make bench-ingest`; rows land in BENCH_ingest.json alongside
// the other ingest shapes.
func BenchmarkIngestDuringReshard(b *testing.B) {
	const workers = 32

	s, _ := newDurableFleet(b, 2, 1)
	joiner := durableBackend(b, 1)
	m, err := s.StartMigration(GroupConfig{Replicas: []platform.Store{joiner}}, migOpts(b))
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	migDone := make(chan error, 1)

	var wg sync.WaitGroup
	var idx sync.Mutex
	next := 0
	b.ResetTimer()
	go func() { migDone <- m.Run(ctx) }()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx.Lock()
				i := next
				next++
				idx.Unlock()
				if i >= b.N {
					return
				}
				account := fmt.Sprintf("w%02d-%06d", w, i)
				if err := s.Submit(ctx, account, 0, -80, at(0)); err != nil {
					b.Errorf("submit %s: %v", account, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acked-submits/sec")

	// The migration may or may not have finished within b.N submits;
	// either way it must end cleanly before the backends close.
	cancel()
	if err := <-migDone; err != nil && ctx.Err() == nil {
		b.Fatalf("migration: %v", err)
	}
}
